#!/usr/bin/env python
"""Long-sequence scaling: why SPRINT targets futuristic models.

The paper motivates SPRINT with the trend toward multi-thousand-token
sequences (GPT-class models, Synth-1/2 with 2K/4K tokens): on-chip
buffers hold a shrinking sliver of the K/V working set, so the baseline
drowns in data movement.  This example sweeps GPT-2-L, Synth-1, and
Synth-2 across the three SPRINT configurations and shows how the energy
benefit *grows* with sequence length -- and how, unlike the short-
sequence models, the Synth models reward the *larger* configurations.

Usage::

    python examples/long_sequence_gpt.py
"""

from repro import (
    ExecutionMode,
    L_SPRINT,
    M_SPRINT,
    S_SPRINT,
    SprintSystem,
    get_model,
)


def main() -> None:
    models = ("GPT-2-L", "Synth-1", "Synth-2")
    configs = (S_SPRINT, M_SPRINT, L_SPRINT)

    header = f"{'model':<10} {'seq':>5} " + "".join(
        f"{c.name:>12} " for c in configs
    )
    print("Energy reduction vs iso-resource baseline (higher is better)")
    print(header)
    for name in models:
        spec = get_model(name)
        cells = []
        for config in configs:
            system = SprintSystem(config)
            base = system.simulate_model(
                spec, ExecutionMode.BASELINE, num_samples=1, seed=0
            )
            sprint = system.simulate_model(
                spec, ExecutionMode.SPRINT, num_samples=1, seed=0
            )
            cells.append(f"{sprint.energy_reduction_vs(base):>11.2f}x")
        print(f"{name:<10} {spec.seq_len:>5} " + " ".join(cells))

    print()
    print("Coverage of the K/V working set by the on-chip buffers:")
    for name in models:
        spec = get_model(name)
        for config in configs:
            coverage = min(
                1.0, config.kv_capacity_vectors / spec.seq_len
            )
            print(f"  {name:<10} {config.name:<9} holds "
                  f"{coverage:6.1%} of the {spec.seq_len}-token sequence")
    print()
    print("Note the inversion: for 2K-4K sequences even 64 KB covers only "
          "a sliver,\nso the larger configs' extra reuse room wins "
          "(paper section VII-A).")


if __name__ == "__main__":
    main()
