#!/usr/bin/env python
"""Resource-constrained deployment: sizing on-chip memory for an edge NPU.

Transformer inference on edge devices (paper section II-B) cannot assume
buffers large enough for whole K/V matrices.  This example sweeps the
fraction of the working set that fits on chip and contrasts how the
baseline and SPRINT respond -- the design question an edge-NPU architect
actually faces: "how much SRAM do I need before returns diminish?"

Usage::

    python examples/edge_deployment.py
"""

from repro.core.configs import SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.models.zoo import get_model
from repro.workloads.generator import generate_workload


def config_with_cache(kb: int) -> SprintConfig:
    return SprintConfig(
        name=f"edge-{kb}KB", num_corelets=1, onchip_cache_kb=kb,
        num_qkpu=1, num_vpu=1, num_softmax=1,
        query_buffer_bytes=64, index_buffer_bytes=512,
    )


def main() -> None:
    spec = get_model("BERT-B")
    workload = generate_workload(
        seq_len=spec.seq_len,
        pruning_rate=spec.pruning_rate,
        padding_ratio=spec.padding_ratio,
        num_samples=2,
        locality=spec.locality,
        seed=3,
    )
    cache_sizes = (4, 8, 16, 32, 48, 64)

    print(f"Edge sizing study on {spec.name} (s={spec.seq_len})")
    print(f"{'cache':>6} {'coverage':>9} {'baseline uJ':>12} "
          f"{'SPRINT uJ':>10} {'reduction':>10} {'SPRINT fetch/query':>19}")
    for kb in cache_sizes:
        config = config_with_cache(kb)
        system = SprintSystem(config)
        reports = system.simulate_modes(
            workload, (ExecutionMode.BASELINE, ExecutionMode.SPRINT), spec.name
        )
        base = reports[ExecutionMode.BASELINE.value]
        sprint = reports[ExecutionMode.SPRINT.value]
        coverage = min(1.0, config.kv_capacity_vectors / spec.seq_len)
        fetch_per_query = (
            sprint.counts["key_fetches"] / max(sprint.counts["queries"], 1)
        )
        print(
            f"{kb:>4}KB {coverage:>8.1%} "
            f"{base.total_energy_pj / 1e6:>12.2f} "
            f"{sprint.total_energy_pj / 1e6:>10.2f} "
            f"{sprint.energy_reduction_vs(base):>9.2f}x "
            f"{fetch_per_query:>18.2f}"
        )

    print()
    print("Takeaway: the baseline needs the full working set on chip to "
          "tame data\nmovement, while SPRINT's in-memory pruning + "
          "locality reuse flattens the curve\n-- a few KB suffice "
          "(the paper's 1.6x energy edge of 16 KB over 64 KB).")


if __name__ == "__main__":
    main()
