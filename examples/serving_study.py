#!/usr/bin/env python
"""Serving study: SPRINT under production traffic, end to end.

Streams BERT-B inference requests through the serving simulator under
three arrival patterns (Poisson, bursty/MMPP, diurnal trace replay) and
three execution modes (BASELINE, PRUNING_ONLY, SPRINT), sweeping the
offered load.  For every point it reports throughput, device
utilization, and p50/p95/p99 latency; the closing summary gives each
mode's *serving headroom* -- the highest load whose p99 stays within
the SLA -- showing how SPRINT's pruning compounds through queueing into
a multiple of the baseline's sustainable traffic.

The run is deterministic under the fixed seed and simulates well over
1000 requests per mode (three patterns x five loads x 400 requests).

Usage::

    python examples/serving_study.py [--fast]
"""

import argparse
import time

from repro.experiments.serving import (
    DEFAULT_LOADS,
    DEFAULT_PATTERNS,
    ServingExperiment,
    format_table,
    max_sla_load,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="fewer requests per point for a quick pass",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    num_requests = 120 if args.fast else 400

    experiment = ServingExperiment(
        model="BERT-B", num_devices=1, max_batch_size=8,
        max_wait_ms=10.0, sla_ms=150.0, seed=args.seed,
    )
    total = num_requests * len(DEFAULT_LOADS) * len(DEFAULT_PATTERNS)
    print(f"Model    : BERT-B on {experiment.config.name}, "
          f"{experiment.num_devices} device(s)")
    print(f"Batching : max size {experiment.max_batch_size}, "
          f"max wait {experiment.max_wait_ms:.0f} ms")
    print(f"Traffic  : {len(DEFAULT_PATTERNS)} patterns x "
          f"{len(DEFAULT_LOADS)} loads x {num_requests} requests "
          f"= {total:,} requests per mode")
    print(f"SLA      : p99 <= {experiment.sla_ms:.0f} ms")
    print()

    start = time.time()
    rows = experiment.run(num_requests=num_requests)
    print(format_table(rows))
    print()

    headroom = max_sla_load(rows)
    base = min(
        load for (_, mode), load in headroom.items() if mode == "baseline"
    )
    sprint = min(
        load for (_, mode), load in headroom.items() if mode == "sprint"
    )
    print(f"Across every arrival pattern, SPRINT sustains >= "
          f"{sprint:.0f} rps at the p99 SLA that caps the baseline at "
          f"{base:.0f} rps ({sprint / max(base, 1e-9):.1f}x headroom).")
    print(f"[{len(rows)} sweep points, "
          f"{total * 3:,} simulated requests, "
          f"{time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
