#!/usr/bin/env python
"""Quickstart: simulate SPRINT vs the baseline on BERT-B.

Runs one attention head of BERT-B (SQUAD statistics: 384 tokens, 74.6%
pruning rate, 46% padding) through the S-SPRINT configuration and the
iso-resource baseline, then prints the headline metrics the paper leads
with: speedup, energy reduction, and data-movement reduction.

Usage::

    python examples/quickstart.py
"""

from repro import ExecutionMode, S_SPRINT, SprintSystem, get_model


def main() -> None:
    spec = get_model("BERT-B")
    system = SprintSystem(S_SPRINT)

    print(f"Model    : {spec.name} ({spec.dataset}, s={spec.seq_len}, "
          f"pruning rate {spec.pruning_rate:.1%}, "
          f"padding {spec.padding_ratio:.0%})")
    print(f"Hardware : {S_SPRINT.name} -- {S_SPRINT.num_corelets} CORELET, "
          f"{S_SPRINT.onchip_cache_kb} KB on-chip K/V buffers")
    print()

    baseline = system.simulate_model(
        spec, ExecutionMode.BASELINE, num_samples=3, seed=0
    )
    sprint = system.simulate_model(
        spec, ExecutionMode.SPRINT, num_samples=3, seed=0
    )

    print(baseline.describe())
    print()
    print(sprint.describe())
    print()
    print(f"speedup                 : {sprint.speedup_vs(baseline):5.2f}x "
          f"(paper: 8.98x for BERT-B / S-SPRINT)")
    print(f"energy reduction        : "
          f"{sprint.energy_reduction_vs(baseline):5.2f}x "
          f"(paper: 22.92x)")
    print(f"data-movement reduction : "
          f"{sprint.data_movement_reduction_vs(baseline):6.1%} "
          f"(paper: 98.3%)")


if __name__ == "__main__":
    main()
