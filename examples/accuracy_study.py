#!/usr/bin/env python
"""Accuracy anatomy: why on-chip recompute matters.

Walks the full accuracy pipeline on the synthetic planted-signal task:

1. software baseline (exact attention);
2. ideal learned runtime pruning (LeOPArd-style);
3. SPRINT's approximate in-memory thresholding WITHOUT recompute;
4. full SPRINT (approximate decisions + exact recompute);
5. the Figure 5 sweep of in-memory score precision;
6. the noise-margin knob of section III-A.

Usage::

    python examples/accuracy_study.py
"""

from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    SprintPolicy,
)
from repro.models.tasks import evaluate_accuracy, make_classification_task

PRUNING_RATE = 0.746  # BERT-B's learned rate


def main() -> None:
    task = make_classification_task(num_samples=48, seq_len=96, seed=21)
    print(f"Synthetic classification task: {task.num_samples} sequences, "
          f"planted signal + near-threshold distractors")
    print()

    scenarios = {
        "software baseline": ExactPolicy(),
        "runtime pruning (ideal)": RuntimePruningPolicy(PRUNING_RATE),
        "SPRINT w/o recompute": SprintPolicy(PRUNING_RATE, recompute=False),
        "SPRINT (full)": SprintPolicy(PRUNING_RATE, recompute=True),
    }
    print("Figure 9 scenarios:")
    for name, policy in scenarios.items():
        acc = evaluate_accuracy(task, policy)
        print(f"  {name:<26} accuracy = {acc:.3f}")
    print()

    print("Figure 5 sweep -- in-memory score precision (with recompute):")
    for bits in range(1, 9):
        policy = SprintPolicy(
            PRUNING_RATE, score_bits=bits, recompute=True
        )
        print(f"  b = {bits}: accuracy = {evaluate_accuracy(task, policy):.3f}")
    print()

    print("Noise-margin knob (section III-A): a negative margin on the "
          "threshold\ntrades pruning rate for robustness:")
    for margin in (0.0, 0.25, 0.5):
        policy = SprintPolicy(
            PRUNING_RATE, noise_sigma=0.1, threshold_margin=margin
        )
        acc = evaluate_accuracy(task, policy)
        print(f"  margin = {margin:.2f}: accuracy = {acc:.3f}")


if __name__ == "__main__":
    main()
