#!/usr/bin/env python
"""Design-space exploration: beyond the paper's three configurations.

The paper evaluates S/M/L-SPRINT; an adopter wants the whole frontier.
This example sweeps CORELET count x on-chip cache on BERT-B, prints the
grid with Pareto-optimal points starred, projects the die area of each
point from the paper's Figure 14 layout, and answers the deployment
question: "best configuration under a 2 mm^2 budget?"

Usage::

    python examples/design_space.py
"""

from repro.core.design_space import (
    best_under_area,
    format_table,
    pareto_frontier,
    sweep,
)


def main() -> None:
    points = sweep(
        "BERT-B",
        corelet_counts=(1, 2, 4, 8),
        cache_sizes_kb=(8, 16, 32, 64),
        num_samples=1,
    )
    print(format_table(points))
    print()

    frontier = pareto_frontier(points)
    print(f"Pareto frontier: {len(frontier)} of {len(points)} points")
    print()

    for budget in (1.0, 2.0, 4.0):
        best = best_under_area(points, budget)
        if best is None:
            print(f"  {budget:.1f} mm^2 budget: nothing fits")
        else:
            print(
                f"  {budget:.1f} mm^2 budget -> {best.num_corelets} "
                f"CORELETs, {best.cache_kb} KB "
                f"({best.area_mm2:.2f} mm^2, EDP {best.edp:.3g})"
            )
    print()
    print("The paper's S-SPRINT (1 CORELET, 16 KB) sits on the frontier "
          "for tight\nbudgets -- exactly its resource-constrained-edge "
          "positioning.")


if __name__ == "__main__":
    main()
