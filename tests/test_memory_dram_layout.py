"""Unit tests for repro.memory.dram and repro.memory.layout."""

import pytest

from repro.memory.dram import Bank, Channel, MemoryDevice
from repro.memory.layout import KVLayout
from repro.memory.timing import DEFAULT_TIMING


class TestBank:
    def test_first_access_is_miss(self):
        bank = Bank(index=0)
        bank.access(row=3, cycle=0, timing=DEFAULT_TIMING)
        assert bank.row_misses == 1
        assert bank.row_hits == 0
        assert bank.open_row == 3

    def test_same_row_hits(self):
        bank = Bank(index=0)
        bank.access(3, 0, DEFAULT_TIMING)
        bank.access(3, 100, DEFAULT_TIMING)
        assert bank.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        bank = Bank(index=0)
        t1 = bank.access(3, 0, DEFAULT_TIMING)
        t2 = bank.access(4, t1, DEFAULT_TIMING)
        hit_cost = DEFAULT_TIMING.command_latency
        from repro.memory.commands import CommandKind
        expected_extra = (
            hit_cost(CommandKind.PRECHARGE) + hit_cost(CommandKind.ACTIVATE)
        )
        assert (t2 - t1) >= expected_extra

    def test_serializes_on_bank(self):
        bank = Bank(index=0)
        t1 = bank.access(3, 0, DEFAULT_TIMING)
        t2 = bank.access(3, 0, DEFAULT_TIMING)  # issued at same cycle
        assert t2 > t1


class TestChannel:
    def test_bus_serialization(self):
        chan = Channel(index=0)
        s1 = chan.reserve_bus(0, 4)
        s2 = chan.reserve_bus(0, 4)
        assert s2 == s1 + 4

    def test_trrd_enforced(self):
        chan = Channel(index=0)
        a1 = chan.note_activate(0, DEFAULT_TIMING)
        a2 = chan.note_activate(0, DEFAULT_TIMING)
        assert a2 - a1 >= DEFAULT_TIMING.t_rrd

    def test_tfaw_enforced(self):
        chan = Channel(index=0)
        times = [chan.note_activate(0, DEFAULT_TIMING) for _ in range(5)]
        assert times[4] - times[0] >= DEFAULT_TIMING.t_faw


class TestMemoryDevice:
    def test_shape(self):
        dev = MemoryDevice(num_channels=4, banks_per_channel=2)
        assert len(dev.channels) == 4
        assert len(dev.channels[0].banks) == 2

    def test_row_hit_rate(self):
        dev = MemoryDevice(num_channels=1, banks_per_channel=1)
        bank = dev.channel(0).bank(0)
        bank.access(0, 0, DEFAULT_TIMING)
        bank.access(0, 100, DEFAULT_TIMING)
        assert dev.row_hit_rate() == pytest.approx(0.5)

    def test_empty_hit_rate(self):
        assert MemoryDevice().row_hit_rate() == 0.0


class TestKVLayout:
    def test_adjacent_tokens_different_channels(self):
        layout = KVLayout(num_channels=16)
        addrs = [layout.address_of(i) for i in range(16)]
        channels = {a.channel for a in addrs}
        assert len(channels) == 16

    def test_channel_wraps(self):
        layout = KVLayout(num_channels=4)
        assert layout.address_of(0).channel == layout.address_of(4).channel

    def test_bank_round_robin_within_channel(self):
        layout = KVLayout(num_channels=2, banks_per_channel=4)
        banks = [layout.address_of(2 * i).bank for i in range(4)]
        assert banks == [0, 1, 2, 3]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            KVLayout().address_of(-1)

    def test_tokens_per_channel(self):
        layout = KVLayout(num_channels=4)
        counts = [layout.tokens_per_channel(10, c) for c in range(4)]
        assert counts == [3, 3, 2, 2]
        assert sum(counts) == 10

    def test_rows_fill_after_columns(self):
        layout = KVLayout(
            num_channels=1, banks_per_channel=1, columns_per_row=4
        )
        addr3 = layout.address_of(3)
        addr4 = layout.address_of(4)
        assert addr3.row == 0 and addr4.row == 1
