"""Additional property-based tests: buffers, frontend, endurance, CLI."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.buffers import SRAMBuffer
from repro.accelerator.softmax_unit import SoftmaxUnit
from repro.experiments.runner import main as runner_main
from repro.memory.commands import MemoryRequest
from repro.memory.frontend import ControllerFrontend
from repro.reram.endurance import EnduranceTracker


class TestSRAMBufferProperties:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=100),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, tokens, cap_vectors):
        buf = SRAMBuffer(
            capacity_bytes=cap_vectors * 64, vector_bytes=64
        )
        for t in tokens:
            buf.insert(t)
            assert buf.occupancy() <= buf.capacity_vectors

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_most_recent_insert_always_resident(self, tokens):
        buf = SRAMBuffer(capacity_bytes=4 * 64, vector_bytes=64)
        for t in tokens:
            buf.insert(t)
            assert buf.contains(t)

    @given(st.lists(st.integers(0, 10), min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_eviction_count_consistent(self, tokens):
        buf = SRAMBuffer(capacity_bytes=2 * 64, vector_bytes=64)
        for t in tokens:
            buf.insert(t)
        unique_inserted = len(set(tokens))
        assert buf.stats.evictions >= max(0, unique_inserted - 2) - len(tokens)
        assert buf.occupancy() <= 2


class TestSoftmaxUnitProperties:
    @given(
        st.lists(
            st.floats(min_value=-20, max_value=20,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=64,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_output_is_distribution(self, scores):
        probs = SoftmaxUnit().normalize(np.array(scores))
        assert np.all(probs >= 0)
        # 8-bit output quantization perturbs the sum slightly.
        assert abs(probs.sum() - 1.0) < 0.05 * max(1, len(scores) ** 0.5)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=32,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_argmax_preserved(self, scores):
        scores = np.array(scores)
        if np.ptp(scores) < 0.5:
            return  # ties under quantization are legitimate
        probs = SoftmaxUnit().normalize(scores)
        assert probs[np.argmax(scores)] == probs.max()


class TestFrontendProperties:
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=60),
        st.sampled_from(["round_robin", "oldest_first"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_issue_conserves_requests(self, clients, policy):
        fe = ControllerFrontend(4, queue_depth=64, policy=policy)
        accepted = 0
        for i, c in enumerate(clients):
            if fe.enqueue(c, MemoryRequest(token_index=i)):
                accepted += 1
        issued = fe.issue_all()
        assert len(issued) == accepted
        assert fe.pending() == 0

    @given(st.lists(st.integers(0, 3), min_size=4, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_oldest_first_is_fifo_globally(self, clients):
        fe = ControllerFrontend(4, queue_depth=64, policy="oldest_first")
        for i, c in enumerate(clients):
            fe.enqueue(c, MemoryRequest(token_index=i))
        issued = fe.issue_all()
        tokens = [r.token_index for _, r in issued]
        assert tokens == sorted(tokens)


class TestEnduranceProperties:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_wear_monotone_in_writes(self, slots):
        tracker = EnduranceTracker(16, endurance_cycles=1000)
        last = 0.0
        for s in slots:
            tracker.record_writes([s])
            wear = tracker.wear_fraction()
            assert wear >= last
            last = wear

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_leveling_never_hurts(self, factor):
        flat = EnduranceTracker(4, endurance_cycles=100, leveling_factor=1)
        leveled = EnduranceTracker(
            4, endurance_cycles=100, leveling_factor=factor
        )
        for t in (flat, leveled):
            t.record_inference()
        assert leveled.wear_fraction() <= flat.wear_fraction()


class TestRunnerCli:
    def test_main_runs_single_fast_experiment(self, capsys):
        rc = runner_main(["fig1", "--fast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_main_fig2_heatmap(self, capsys):
        rc = runner_main(["fig2"])
        assert rc == 0
        assert "Figure 2" in capsys.readouterr().out
