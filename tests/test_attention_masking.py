"""Unit tests for repro.attention.masking."""

import numpy as np
import pytest

from repro.attention.functional import NEG_INFINITY
from repro.attention.masking import (
    apply_padding_mask,
    padding_mask,
    two_dimensional_reduction,
)


class TestPaddingMask:
    def test_shape_and_dtype(self):
        mask = padding_mask(8, 5)
        assert mask.shape == (8, 8)
        assert mask.dtype == bool

    def test_valid_block_true(self):
        mask = padding_mask(8, 5)
        assert mask[:5, :5].all()

    def test_padded_rows_and_cols_false(self):
        mask = padding_mask(8, 5)
        assert not mask[5:, :].any()
        assert not mask[:, 5:].any()

    def test_full_valid(self):
        assert padding_mask(4, 4).all()

    def test_zero_valid(self):
        assert not padding_mask(4, 0).any()

    def test_rejects_bad_valid_len(self):
        with pytest.raises(ValueError):
            padding_mask(4, 5)
        with pytest.raises(ValueError):
            padding_mask(4, -1)


class TestApplyPaddingMask:
    def test_nullifies_masked(self, rng):
        scores = rng.normal(size=(6, 6))
        mask = padding_mask(6, 4)
        out = apply_padding_mask(scores, mask)
        assert np.all(out[4:, :] == NEG_INFINITY)
        assert np.all(out[:, 4:] == NEG_INFINITY)
        np.testing.assert_array_equal(out[:4, :4], scores[:4, :4])

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            apply_padding_mask(rng.normal(size=(4, 4)), padding_mask(5, 3))


class TestTwoDimensionalReduction:
    def test_bert_squad_like_saving(self):
        # 46% padding -> only 54% of rows/cols useful -> ~71% saved.
        queries, keys, saved = two_dimensional_reduction(128, 69)
        assert queries == keys == 69
        assert saved == pytest.approx(1 - (69 / 128) ** 2)

    def test_paper_example(self):
        # Figure 2: 16 useful queries out of 128.
        _, _, saved = two_dimensional_reduction(128, 16)
        assert saved == pytest.approx(1 - (16 * 16) / (128 * 128))

    def test_no_padding_no_saving(self):
        _, _, saved = two_dimensional_reduction(64, 64)
        assert saved == 0.0

    def test_rejects_bad_valid(self):
        with pytest.raises(ValueError):
            two_dimensional_reduction(10, 11)
