"""Failure-injection and robustness tests across the analog stack.

These exercise the degradation *paths*: what happens when analog noise,
cell variation, or threshold drift exceed nominal -- and verify the
system degrades the way the paper's error analysis predicts (graceful
pruning-decision flips near the threshold, recoverable via margin).
"""

import numpy as np
import pytest

from repro.attention.policies import SprintPolicy
from repro.attention.pruning import calibrate_threshold
from repro.models.tasks import evaluate_accuracy, make_classification_task
from repro.reram.cell import MLCCellModel
from repro.reram.noise import OutputNoiseModel
from repro.reram.thresholding import InMemoryThresholdingUnit


def agreement_under(
    keys, queries, threshold, *, variation=0.0, equivalent_bits=20.0, seed=0
):
    """Fraction of pruning decisions matching the exact comparison."""
    unit = InMemoryThresholdingUnit(
        seq_len=keys.shape[0], head_dim=keys.shape[1],
        array_rows=16, array_cols=32,
        cell=MLCCellModel(variation_sigma=variation),
        noise=OutputNoiseModel(equivalent_bits=equivalent_bits),
        seed=seed,
    )
    unit.store_keys(keys)
    exact = (queries @ keys.T < threshold).astype(np.uint8)
    hw = unit.prune_all(queries, threshold)
    return float(np.mean(hw == exact))


@pytest.fixture(scope="module")
def tensors():
    rng = np.random.default_rng(77)
    keys = rng.normal(size=(64, 16))
    queries = rng.normal(size=(12, 16))
    threshold = calibrate_threshold(queries @ keys.T, 0.7)
    return keys, queries, threshold


class TestNoiseDegradation:
    def test_agreement_decreases_with_noise(self, tensors):
        keys, queries, threshold = tensors
        agreements = [
            agreement_under(keys, queries, threshold, equivalent_bits=b)
            for b in (10.0, 5.0, 2.0)
        ]
        # Monotone degradation (allowing tiny sampling wiggle).
        assert agreements[0] >= agreements[1] - 0.02
        assert agreements[1] >= agreements[2] - 0.02

    def test_nominal_noise_keeps_high_agreement(self, tensors):
        keys, queries, threshold = tensors
        # 5-bit-equivalent (the paper's cited measurement) stays usable.
        assert agreement_under(
            keys, queries, threshold, equivalent_bits=5.0
        ) > 0.7

    def test_extreme_noise_still_valid_bits(self, tensors):
        keys, queries, threshold = tensors
        unit = InMemoryThresholdingUnit(
            seq_len=64, head_dim=16, array_rows=16, array_cols=32,
            noise=OutputNoiseModel(equivalent_bits=1.0),
        )
        unit.store_keys(keys)
        bits = unit.prune_query(queries[0], threshold)
        assert set(np.unique(bits)) <= {0, 1}


class TestVariationDegradation:
    def test_agreement_decreases_with_variation(self, tensors):
        keys, queries, threshold = tensors
        low = agreement_under(keys, queries, threshold, variation=0.01)
        high = agreement_under(keys, queries, threshold, variation=0.3)
        assert high <= low + 0.02

    def test_variation_never_crashes(self, tensors):
        keys, queries, threshold = tensors
        for sigma in (0.0, 0.1, 0.5, 1.0):
            agreement_under(keys, queries, threshold, variation=sigma)


class TestThresholdDrift:
    def test_margin_compensates_noise(self):
        """Section III-A: a negative margin restores accuracy under
        heavy analog noise, at the cost of pruning rate."""
        task = make_classification_task(num_samples=24, seq_len=80, seed=31)
        noisy = SprintPolicy(0.8, noise_sigma=0.5, threshold_margin=0.0,
                             recompute=True)
        margined = SprintPolicy(0.8, noise_sigma=0.5, threshold_margin=1.0,
                                recompute=True)
        acc_noisy = evaluate_accuracy(task, noisy)
        acc_margined = evaluate_accuracy(task, margined)
        assert acc_margined >= acc_noisy - 0.05

    def test_margin_lowers_pruning_rate(self, rng):
        scores = rng.normal(size=(48, 48))
        scores[rng.random((48, 48)) < 0.1] += 3.0
        plain = SprintPolicy(0.7, noise_sigma=0.0)
        margined = SprintPolicy(0.7, noise_sigma=0.0, threshold_margin=0.8)
        _, keep_plain = plain.process(scores)
        _, keep_margined = margined.process(scores)
        assert keep_margined.sum() > keep_plain.sum()


class TestAccuracyUnderCompoundFaults:
    def test_compound_noise_and_coarse_bits(self):
        """Worst case: coarse scores AND heavy noise, no recompute --
        accuracy must fall below the clean SPRINT configuration."""
        task = make_classification_task(num_samples=24, seq_len=80, seed=37)
        clean = evaluate_accuracy(
            task, SprintPolicy(0.746, recompute=True, noise_sigma=0.02)
        )
        broken = evaluate_accuracy(
            task,
            SprintPolicy(
                0.746, recompute=False, noise_sigma=0.6, score_bits=2
            ),
        )
        assert broken <= clean

    def test_recompute_rescues_coarse_decisions(self):
        task = make_classification_task(num_samples=24, seq_len=80, seed=41)
        with_rec = evaluate_accuracy(
            task, SprintPolicy(0.746, score_bits=3, recompute=True)
        )
        without = evaluate_accuracy(
            task, SprintPolicy(0.746, score_bits=3, recompute=False)
        )
        assert with_rec >= without - 0.05
