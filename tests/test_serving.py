"""Tests for the serving-traffic subsystem (repro.serving)."""

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    BurstyProcess,
    DynamicBatcher,
    EventKind,
    EventQueue,
    LatencyStats,
    PoissonProcess,
    Request,
    ServiceCostModel,
    ServingSimulator,
    SprintDevice,
    TraceProcess,
    generate_requests,
    summarize,
)
from repro.experiments import serving as serving_experiment
from repro.experiments.serving import (
    ServingExperiment,
    max_sla_load,
    stream_seed,
)
from repro.models.zoo import get_model


def make_sim(mode=ExecutionMode.SPRINT, num_devices=1, max_batch_size=8,
             max_wait_s=0.01, **cost_kwargs):
    cost = ServiceCostModel(S_SPRINT, mode, **cost_kwargs)
    devices = [SprintDevice(i, cost) for i in range(num_devices)]
    return ServingSimulator(
        devices, DynamicBatcher(max_batch_size, max_wait_s)
    )


class TestArrivals:
    def test_poisson_deterministic_under_seed(self):
        p = PoissonProcess(rate_rps=50.0)
        a = generate_requests(p, "BERT-B", count=200, seed=3)
        b = generate_requests(p, "BERT-B", count=200, seed=3)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.valid_len for r in a] == [r.valid_len for r in b]
        c = generate_requests(p, "BERT-B", count=200, seed=4)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in c]

    def test_poisson_mean_rate(self):
        p = PoissonProcess(rate_rps=100.0)
        times = p.arrival_times(5000, np.random.default_rng(0))
        measured = 5000 / times[-1]
        assert abs(measured - 100.0) < 5.0

    def test_bursty_mean_rate_and_monotone_times(self):
        p = BurstyProcess(
            calm_rate_rps=30.0, burst_rate_rps=130.0,
            calm_dwell_s=0.8, burst_dwell_s=0.2,
        )
        times = p.arrival_times(5000, np.random.default_rng(1))
        assert np.all(np.diff(times) >= 0)
        measured = 5000 / times[-1]
        assert abs(measured - p.mean_rate_rps) < 0.15 * p.mean_rate_rps

    def test_trace_replay_cycles_and_scales(self):
        trace = TraceProcess([0.1, 0.2, 0.3], time_scale=2.0)
        times = trace.arrival_times(5, np.random.default_rng(0))
        assert times == pytest.approx([0.2, 0.6, 1.2, 1.4, 1.8])

    def test_trace_from_rate_profile(self):
        trace = TraceProcess.from_rate_profile([10.0, 20.0], 3)
        times = trace.arrival_times(6, np.random.default_rng(0))
        assert times == pytest.approx(
            [0.1, 0.2, 0.3, 0.35, 0.4, 0.45]
        )

    def test_model_mix_draws_all_members(self):
        reqs = generate_requests(
            PoissonProcess(50.0), {"BERT-B": 0.5, "ViT-B": 0.5},
            count=200, seed=0,
        )
        names = {r.spec.name for r in reqs}
        assert names == {"BERT-B", "ViT-B"}

    def test_valid_len_within_model_bounds(self):
        reqs = generate_requests(
            PoissonProcess(50.0), "BERT-B", count=100, seed=0
        )
        spec = get_model("BERT-B")
        for r in reqs:
            assert 2 <= r.valid_len <= spec.seq_len

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate_rps=0.0)
        with pytest.raises(ValueError):
            TraceProcess([])
        with pytest.raises(ValueError):
            generate_requests(PoissonProcess(1.0), "BERT-B", count=0)


class TestEventQueue:
    def test_orders_by_time_then_kind_then_seq(self):
        q = EventQueue()
        q.push(2.0, EventKind.ARRIVAL, "late")
        q.push(1.0, EventKind.BATCH_TIMEOUT, "timeout")
        q.push(1.0, EventKind.ARRIVAL, "first-arrival")
        q.push(1.0, EventKind.DEVICE_DONE, "done")
        q.push(1.0, EventKind.ARRIVAL, "second-arrival")
        order = [q.pop().payload for _ in range(len(q))]
        # Same timestamp: completions, then arrivals (FIFO), then flushes.
        assert order == [
            "done", "first-arrival", "second-arrival", "timeout", "late"
        ]


class TestDynamicBatcher:
    def _request(self, i, t, spec=None):
        return Request(
            request_id=i, arrival_s=t,
            spec=spec or get_model("BERT-B"), valid_len=100,
        )

    def test_size_trigger_seals(self):
        b = DynamicBatcher(max_batch_size=3, max_wait_s=1.0)
        assert b.add(self._request(0, 0.0), 0.0) is None
        assert b.add(self._request(1, 0.1), 0.1) is None
        batch = b.add(self._request(2, 0.2), 0.2)
        assert batch is not None and batch.size == 3
        assert b.pending == 0

    def test_models_never_share_a_batch(self):
        b = DynamicBatcher(max_batch_size=2, max_wait_s=1.0)
        b.add(self._request(0, 0.0), 0.0)
        b.add(self._request(1, 0.0, get_model("ViT-B")), 0.0)
        assert b.pending == 2  # two singleton queues, neither sealed
        batch = b.add(self._request(2, 0.1), 0.1)
        assert batch is not None
        assert {r.request_id for r in batch.requests} == {0, 2}

    def test_flush_due_honors_oldest_wait(self):
        b = DynamicBatcher(max_batch_size=8, max_wait_s=0.5)
        b.add(self._request(0, 0.0), 0.0)
        assert b.flush_due(0.4) == []
        sealed = b.flush_due(0.5)
        assert len(sealed) == 1 and sealed[0].size == 1

    def test_no_request_dropped_or_duplicated(self):
        sim = make_sim(max_batch_size=4, max_wait_s=0.02)
        requests = generate_requests(
            PoissonProcess(80.0), "BERT-B", count=300, seed=7
        )
        result = sim.run(requests)
        served = [rec.request.request_id for rec in result.records]
        assert sorted(served) == list(range(300))
        assert result.completed == 300
        # Conservation also holds batch-wise.
        assert sum(rec.batch_size for rec in result.records) >= 300

    def test_wait_bound_honored(self):
        max_wait = 0.015
        sim = make_sim(max_batch_size=8, max_wait_s=max_wait)
        requests = generate_requests(
            PoissonProcess(120.0), "BERT-B", count=400, seed=11
        )
        result = sim.run(requests)
        for rec in result.records:
            # Time waiting for batch-mates never exceeds the knob (the
            # final flush and size triggers seal strictly earlier).
            assert rec.batching_wait_s <= max_wait + 1e-12
            # And the full lifecycle is causally ordered.
            assert rec.request.arrival_s <= rec.batched_s
            assert rec.batched_s <= rec.service_start_s <= rec.finish_s

    def test_simulator_is_single_use(self):
        # Devices/batcher carry per-run state; silent reuse would
        # corrupt timings, so a second run() must refuse loudly.
        sim = make_sim()
        requests = generate_requests(
            PoissonProcess(40.0), "BERT-B", count=20, seed=0
        )
        sim.run(requests)
        with pytest.raises(RuntimeError):
            sim.run(requests)

    def test_zero_wait_degenerates_to_singletons(self):
        sim = make_sim(max_batch_size=8, max_wait_s=0.0)
        requests = generate_requests(
            PoissonProcess(40.0), "BERT-B", count=50, seed=2
        )
        result = sim.run(requests)
        assert all(rec.batch_size == 1 for rec in result.records)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait_s=-1.0)


class TestDevicesAndCostModel:
    def test_cost_monotone_in_length_and_cached(self):
        cost = ServiceCostModel(
            S_SPRINT, ExecutionMode.SPRINT, len_bucket=64
        )
        spec = get_model("BERT-B")
        short = cost.sample_cost(spec, 64)
        long = cost.sample_cost(spec, 384)
        assert long.cycles > short.cycles
        assert long.energy_pj > short.energy_pj
        entries = cost.cache_entries
        cost.sample_cost(spec, 60)  # same bucket as 64
        assert cost.cache_entries == entries

    def test_sprint_cheaper_than_baseline(self):
        spec = get_model("BERT-B")
        sprint = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
        base = ServiceCostModel(S_SPRINT, ExecutionMode.BASELINE)
        assert (
            sprint.sample_cost(spec, 384).cycles
            < base.sample_cost(spec, 384).cycles
        )

    def test_device_serializes_batches(self):
        cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
        device = SprintDevice(0, cost)
        spec = get_model("BERT-B")
        from repro.serving.requests import Batch

        batch = Batch(0, [Request(0, 0.0, spec, 200)], sealed_s=0.0)
        finish = device.start_batch(batch, 0.0)
        assert finish > 0.0
        with pytest.raises(RuntimeError):
            device.start_batch(batch, finish / 2)
        assert device.is_idle(finish)

    def test_multi_device_cuts_tail_latency(self):
        requests = generate_requests(
            PoissonProcess(60.0), "BERT-B", count=300, seed=5
        )
        one = make_sim(ExecutionMode.BASELINE, num_devices=1).run(requests)
        four = make_sim(ExecutionMode.BASELINE, num_devices=4).run(requests)
        p99_one = np.percentile([r.latency_s for r in one.records], 99)
        p99_four = np.percentile([r.latency_s for r in four.records], 99)
        assert p99_four < p99_one


class TestMetrics:
    def test_latency_stats_percentiles(self):
        stats = LatencyStats.from_samples(np.arange(1, 101) / 100.0)
        assert stats.p50_s == pytest.approx(0.505, abs=1e-9)
        assert stats.max_s == pytest.approx(1.0)
        assert stats.mean_s == pytest.approx(0.505)

    def test_sla_violations_counted(self):
        sim = make_sim(ExecutionMode.BASELINE, max_wait_s=0.005)
        requests = generate_requests(
            PoissonProcess(45.0), "BERT-B", count=200, seed=9
        )
        report = summarize(
            sim.run(requests), "S-SPRINT", "baseline", "poisson",
            offered_rps=45.0, sla_s=0.05,
        )
        assert report.sla_violations > 0
        assert report.sla_violation_rate == pytest.approx(
            report.sla_violations / report.requests
        )
        assert 0.0 < report.utilization <= 1.0

    def test_throughput_matches_span(self):
        sim = make_sim()
        requests = generate_requests(
            PoissonProcess(30.0), "BERT-B", count=100, seed=1
        )
        result = sim.run(requests)
        report = summarize(
            result, "S-SPRINT", "sprint", "poisson", offered_rps=30.0
        )
        assert report.throughput_rps == pytest.approx(
            100 / result.duration_s
        )


#: Golden fixed-seed tail latencies for TestDeterminism (seconds).
GOLDEN_P50_S = 0.02258265599999998
GOLDEN_P99_S = 0.06772420914692485


class TestDeterminism:
    def _run_once(self):
        sim = make_sim(max_batch_size=6, max_wait_s=0.008)
        requests = generate_requests(
            BurstyProcess(40.0, 150.0, 0.5, 0.1), "BERT-B",
            count=400, seed=21,
        )
        result = sim.run(requests)
        lat = np.array([rec.latency_s for rec in result.records])
        return lat

    def test_identical_latencies_across_runs(self):
        a, b = self._run_once(), self._run_once()
        assert np.array_equal(a, b)

    def test_golden_p50_p99_regression(self):
        """Fixed-seed golden values; any scheduler/batcher/cost-model
        behaviour change must be deliberate and re-golden this test."""
        lat = self._run_once()
        p50, p99 = np.percentile(lat, [50.0, 99.0])
        assert p50 == pytest.approx(GOLDEN_P50_S, rel=1e-9)
        assert p99 == pytest.approx(GOLDEN_P99_S, rel=1e-9)


class TestServingExperiment:
    def test_sprint_headroom_exceeds_baseline(self):
        experiment = ServingExperiment(seed=0)
        rows = experiment.run(
            loads=(20.0, 80.0), num_requests=100,
            modes=(ExecutionMode.BASELINE, ExecutionMode.SPRINT),
        )
        headroom = max_sla_load(rows)
        for pattern in ("poisson", "bursty", "trace"):
            assert (
                headroom[(pattern, "sprint")]
                > headroom[(pattern, "baseline")]
            )

    def test_rows_cover_grid(self):
        experiment = ServingExperiment(seed=0)
        rows = experiment.run(
            loads=(30.0,), patterns=("poisson",), num_requests=50,
        )
        assert len(rows) == 3  # three default modes
        assert {r.mode for r in rows} == {
            "baseline", "pruning_only", "sprint"
        }

    def test_stream_seed_stable_and_pattern_distinct(self):
        # A stable hash of the pattern *name*: unknown patterns no
        # longer collide on one shared index-overflow seed.
        patterns = ("poisson", "bursty", "trace", "diurnal", "adversarial")
        seeds = [stream_seed(0, p) for p in patterns]
        assert len(set(seeds)) == len(patterns)
        assert seeds == [stream_seed(0, p) for p in patterns]  # stable
        assert all(s >= 0 for s in seeds)
        # Different experiment seeds decorrelate the same pattern.
        assert stream_seed(1, "poisson") != stream_seed(0, "poisson")

    def test_stream_seed_excludes_mode(self):
        # All modes must face byte-identical traffic at one (pattern,
        # load) point; only the service times may differ.
        experiment = ServingExperiment(seed=3)
        reports = {
            mode: experiment.simulate("bursty", mode, 30.0, 80)
            for mode in (ExecutionMode.BASELINE, ExecutionMode.SPRINT)
        }
        assert (
            reports[ExecutionMode.BASELINE].requests
            == reports[ExecutionMode.SPRINT].requests
        )
        assert (
            reports[ExecutionMode.SPRINT].latency.p99_s
            < reports[ExecutionMode.BASELINE].latency.p99_s
        )

    def test_primed_point_short_circuits_run(self):
        experiment = ServingExperiment(seed=0)
        unit = serving_experiment.plan(
            loads=(30.0,), patterns=("poisson",),
            modes=(ExecutionMode.SPRINT,), num_requests=40,
        )[0]
        real = unit.execute()
        serving_experiment.prime(unit.key, real)
        try:
            rows = experiment.run(
                loads=(30.0,), patterns=("poisson",),
                modes=(ExecutionMode.SPRINT,), num_requests=40,
            )
        finally:
            serving_experiment.clear_primed()
        assert rows[0].p99_ms == pytest.approx(real.latency.p99_s * 1e3)

    def test_units_group_by_mode(self):
        units = serving_experiment.plan(num_requests=10)
        groups = {}
        for unit in units:
            groups.setdefault(unit.group, set()).add(unit.mode)
        # Every shard group carries exactly one mode, so a worker warms
        # exactly one shared cost model.
        assert all(len(modes) == 1 for modes in groups.values())

    def test_unit_key_distinguishes_configs_with_same_name(self):
        import dataclasses

        kwargs = dict(
            loads=(30.0,), patterns=("poisson",),
            modes=(ExecutionMode.SPRINT,), num_requests=10,
        )
        stock = serving_experiment.plan(config=S_SPRINT, **kwargs)[0]
        modified = serving_experiment.plan(
            config=dataclasses.replace(S_SPRINT, num_corelets=2), **kwargs
        )[0]
        # A modified config with an unchanged name must not collide in
        # the unit cache with the stock config's results.
        assert stock.key != modified.key

