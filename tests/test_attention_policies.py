"""Unit tests for repro.attention.policies."""

import numpy as np
import pytest

from repro.attention.functional import softmax
from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    SprintPolicy,
    msb_truncated_scores,
)


@pytest.fixture
def qk(rng):
    q = rng.normal(size=(24, 16))
    k = rng.normal(size=(24, 16))
    scores = (q @ k.T) / 4.0
    return q, k, scores


class TestExactPolicy:
    def test_matches_softmax(self, qk):
        _, _, scores = qk
        probs, keep = ExactPolicy().process(scores)
        np.testing.assert_allclose(probs, softmax(scores, axis=-1))
        assert keep.all()

    def test_padding_mask_respected(self, qk):
        _, _, scores = qk
        mask = np.ones_like(scores, dtype=bool)
        mask[:, -4:] = False
        probs, keep = ExactPolicy().process(scores, mask)
        assert np.all(probs[:, -4:] < 1e-12)
        assert not keep[:, -4:].any()


class TestRuntimePruningPolicy:
    def test_pruning_rate_approx(self, qk):
        _, _, scores = qk
        _, keep = RuntimePruningPolicy(0.6).process(scores)
        rate = 1.0 - keep.mean()
        assert abs(rate - 0.6) < 0.1

    def test_probabilities_normalized(self, qk):
        _, _, scores = qk
        probs, _ = RuntimePruningPolicy(0.5).process(scores)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_kept_entries_use_exact_scores(self, qk):
        _, _, scores = qk
        probs, keep = RuntimePruningPolicy(0.5).process(scores)
        # Renormalized softmax over kept entries only.
        for i in range(scores.shape[0]):
            kept = keep[i]
            expected = np.zeros_like(scores[i])
            e = np.exp(scores[i][kept] - scores[i][kept].max())
            expected[kept] = e / e.sum()
            np.testing.assert_allclose(probs[i], expected, atol=1e-9)


class TestMsbTruncatedScores:
    def test_correlates_with_exact(self, qk):
        q, k, scores = qk
        approx = msb_truncated_scores(q, k, msb_bits=4, scale=0.25)
        corr = np.corrcoef(scores.ravel(), approx.ravel())[0, 1]
        assert corr > 0.95

    def test_truncation_biases_toward_minus_inf(self, qk):
        q, k, _ = qk
        exact8 = msb_truncated_scores(q, k, msb_bits=8, scale=1.0)
        approx4 = msb_truncated_scores(q, k, msb_bits=4, scale=1.0)
        # Arithmetic-shift truncation never increases the operand value,
        # but cross terms can go either way; the error must be nonzero.
        assert not np.allclose(exact8, approx4)

    def test_full_msb_bits_nearly_exact(self, qk):
        q, k, scores = qk
        approx = msb_truncated_scores(q, k, msb_bits=8, scale=0.25)
        # 8-bit quantization only; tight correlation expected.
        corr = np.corrcoef(scores.ravel(), approx.ravel())[0, 1]
        assert corr > 0.999


class TestSprintPolicy:
    def test_recompute_uses_exact_values(self, qk):
        q, k, scores = qk
        policy = SprintPolicy(0.5, recompute=True, noise_sigma=0.0)
        probs, keep = policy.process(scores, q=q, k=k, scale=0.25)
        for i in range(scores.shape[0]):
            kept = keep[i]
            e = np.exp(scores[i][kept] - scores[i][kept].max())
            expected = e / e.sum()
            np.testing.assert_allclose(probs[i][kept], expected, atol=1e-9)

    def test_no_recompute_differs(self, qk):
        q, k, scores = qk
        with_r = SprintPolicy(0.5, recompute=True, noise_sigma=0.0)
        without = SprintPolicy(0.5, recompute=False, noise_sigma=0.0)
        p1, _ = with_r.process(scores, q=q, k=k, scale=0.25)
        p2, _ = without.process(scores, q=q, k=k, scale=0.25)
        assert not np.allclose(p1, p2)

    def test_threshold_margin_reduces_pruning(self, qk):
        q, k, scores = qk
        tight = SprintPolicy(0.7, noise_sigma=0.0)
        margin = SprintPolicy(0.7, noise_sigma=0.0, threshold_margin=0.5)
        _, keep_tight = tight.process(scores, q=q, k=k, scale=0.25)
        _, keep_margin = margin.process(scores, q=q, k=k, scale=0.25)
        assert keep_margin.sum() >= keep_tight.sum()

    def test_score_bits_sweep_changes_mask(self, qk):
        q, k, scores = qk
        fine = SprintPolicy(0.6, score_bits=8, noise_sigma=0.0)
        coarse = SprintPolicy(0.6, score_bits=1, noise_sigma=0.0)
        _, keep_fine = fine.process(scores)
        _, keep_coarse = coarse.process(scores)
        assert not np.array_equal(keep_fine, keep_coarse)

    def test_one_bit_overprunes_heavy_tail(self, small_scores):
        # Real attention scores are heavy-tailed: the range midpoint sits
        # far above the pruning threshold, so 1-bit (endpoint-only)
        # quantization over-prunes aggressively (Figure 5's left cliff).
        coarse = SprintPolicy(0.6, score_bits=1, noise_sigma=0.0)
        exact = SprintPolicy(0.6, score_bits=None, noise_sigma=0.0)
        _, keep_coarse = coarse.process(small_scores)
        _, keep_exact = exact.process(small_scores)
        assert keep_coarse.sum() < keep_exact.sum()

    def test_deterministic_given_seed(self, qk):
        q, k, scores = qk
        p1, _ = SprintPolicy(0.5, seed=9).process(scores, q=q, k=k, scale=0.25)
        p2, _ = SprintPolicy(0.5, seed=9).process(scores, q=q, k=k, scale=0.25)
        np.testing.assert_array_equal(p1, p2)

    def test_decision_bits_alias(self):
        assert SprintPolicy(0.5, score_bits=3).decision_bits == 3
