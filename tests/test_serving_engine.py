"""Equivalence suite: the columnar fast engine vs the reference loop.

The fast serving engine's contract is *exact* equality -- per-request
records bitwise equal to the per-request reference event loop, not
approximately close -- pinned here across arrival patterns, execution
modes, seeds, device counts, and wait bounds.  Plus the vectorized
stream generation's own contract: ``generate_requests`` output is
byte-identical to the historical per-request sampling loop (golden
hashes captured before vectorization).
"""

import hashlib

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.models.zoo import get_model
from repro.serving import (
    BurstyProcess,
    DynamicBatcher,
    PoissonProcess,
    RequestTable,
    ServiceCostModel,
    ServingSimulator,
    SprintDevice,
    TraceProcess,
    generate_request_table,
    generate_requests,
    sample_valid_len,
    simulate_table,
    summarize,
)
from repro.experiments.serving import ServingExperiment

SEEDS = (0, 1, 7)
DEVICE_COUNTS = (1, 2, 4)
WAITS = (0.0, 2e-3)


def make_process(pattern):
    return {
        "poisson": PoissonProcess(rate_rps=120.0),
        "bursty": BurstyProcess(40.0, 150.0, 0.5, 0.1),
        "trace": TraceProcess([0.01, 0.002, 0.005]),
    }[pattern]


@pytest.fixture(scope="module")
def cost_model():
    """One shared (memoized) cost model: both engines must price every
    batch identically, and the matrix reuses the primed buckets."""
    return ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)


def assert_engines_equal(table, cost, num_devices, max_wait_s, max_batch_size=8):
    """Run both engines on one stream; everything must match exactly."""
    fast = simulate_table(
        table,
        cost,
        num_devices=num_devices,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
    ).to_result()
    reference = ServingSimulator(
        [SprintDevice(i, cost) for i in range(num_devices)],
        DynamicBatcher(max_batch_size, max_wait_s),
    ).run(table.to_requests())
    assert len(fast.records) == len(reference.records)
    for a, b in zip(fast.records, reference.records):
        assert a == b  # dataclass equality: every timestamp, exactly
    assert fast.start_s == reference.start_s
    assert fast.end_s == reference.end_s
    assert fast.device_busy_s == reference.device_busy_s
    assert fast.device_energy_pj == reference.device_energy_pj
    assert fast.batches == reference.batches
    assert fast.size_triggered_batches == reference.size_triggered_batches
    assert fast.timeout_triggered_batches == reference.timeout_triggered_batches


class TestEngineEquivalence:
    @pytest.mark.parametrize("pattern", ("poisson", "bursty", "trace"))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
    @pytest.mark.parametrize("max_wait_s", WAITS)
    def test_records_exactly_equal(
        self, cost_model, pattern, seed, num_devices, max_wait_s
    ):
        table = generate_request_table(
            make_process(pattern), "BERT-B", count=250, seed=seed
        )
        cost_model.prime(table.specs[0], table.valid_len)
        assert_engines_equal(table, cost_model, num_devices, max_wait_s)

    @pytest.mark.parametrize(
        "mode", (ExecutionMode.BASELINE, ExecutionMode.PRUNING_ONLY)
    )
    def test_other_modes_equal(self, mode):
        cost = ServiceCostModel(S_SPRINT, mode)
        table = generate_request_table(
            PoissonProcess(90.0), "BERT-B", count=200, seed=3
        )
        cost.prime(table.specs[0], table.valid_len)
        assert_engines_equal(table, cost, 2, 2e-3)

    def test_multi_model_mix_equal(self, cost_model):
        table = generate_request_table(
            PoissonProcess(90.0),
            {"BERT-B": 0.5, "ViT-B": 0.3, "GPT-2-L": 0.2},
            count=300,
            seed=5,
        )
        for idx, spec in enumerate(table.specs):
            cost_model.prime(spec, table.valid_len[table.spec_idx == idx])
        assert_engines_equal(table, cost_model, 2, 2e-3)
        # End-of-stream flush seals several model queues at the same
        # instant; zero wait exercises the per-arrival flush ordering.
        assert_engines_equal(table, cost_model, 1, 10e-3)
        assert_engines_equal(table, cost_model, 2, 0.0)

    def test_repeated_model_in_mix_shares_one_queue(self, cost_model):
        # A pair-list mix may name the same model twice; the reference
        # batcher merges both into one per-name queue, and the fast
        # engine must form the same batches.
        table = generate_request_table(
            PoissonProcess(120.0),
            [("BERT-B", 0.5), ("BERT-B", 0.3), ("ViT-B", 0.2)],
            count=200,
            seed=0,
        )
        assert len(table.specs) == 3  # duplicates kept, stream unchanged
        for idx, spec in enumerate(table.specs):
            cost_model.prime(spec, table.valid_len[table.spec_idx == idx])
        assert_engines_equal(table, cost_model, 2, 2e-3)

    def test_conflicting_same_name_specs_rejected(self):
        import dataclasses

        spec = get_model("BERT-B")
        shrunk = dataclasses.replace(spec, seq_len=128)
        with pytest.raises(ValueError):
            RequestTable(
                specs=[spec, shrunk],
                request_id=np.arange(2),
                arrival_s=np.zeros(2),
                spec_idx=np.arange(2, dtype=np.int64),
                valid_len=np.full(2, 100),
            )

    def test_batch_size_one_seals_by_size(self, cost_model):
        table = generate_request_table(
            PoissonProcess(60.0), "BERT-B", count=80, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        assert_engines_equal(table, cost_model, 1, 0.0, max_batch_size=1)
        assert_engines_equal(table, cost_model, 3, 5e-3, max_batch_size=1)

    def test_columnar_summary_equals_reference_summary(self, cost_model):
        table = generate_request_table(
            BurstyProcess(40.0, 150.0, 0.5, 0.1), "BERT-B", count=300, seed=1
        )
        cost_model.prime(table.specs[0], table.valid_len)
        fast = simulate_table(table, cost_model, num_devices=2)
        reference = ServingSimulator(
            [SprintDevice(i, cost_model) for i in range(2)],
            DynamicBatcher(8, 2e-3),
        ).run(table.to_requests())
        kwargs = dict(
            config="S-SPRINT", mode="sprint", pattern="bursty",
            offered_rps=40.0, sla_s=0.05,
        )
        assert summarize(fast, **kwargs) == summarize(reference, **kwargs)

    def test_experiment_fast_and_reference_reports_identical(self):
        reports = {
            engine: ServingExperiment(seed=2, engine=engine).simulate(
                "poisson", ExecutionMode.SPRINT, 40.0, 150
            )
            for engine in ("fast", "reference")
        }
        assert reports["fast"] == reports["reference"]

    def test_validation(self, cost_model):
        table = generate_request_table(PoissonProcess(10.0), "BERT-B", 10)
        with pytest.raises(ValueError):
            simulate_table(table, cost_model, num_devices=0)
        with pytest.raises(ValueError):
            simulate_table(table, cost_model, max_batch_size=0)
        with pytest.raises(ValueError):
            simulate_table(table, cost_model, max_wait_s=-1.0)
        dup = RequestTable(
            specs=table.specs,
            request_id=np.zeros(3, dtype=np.int64),
            arrival_s=np.arange(3, dtype=np.float64),
            spec_idx=np.zeros(3, dtype=np.int64),
            valid_len=np.full(3, 100, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            simulate_table(dup, cost_model)


#: SHA-256 of the (id, repr(arrival), model, valid_len) stream, captured
#: from the pre-vectorization per-request generation loop.  Any drift in
#: the draw sequence -- process, mix, or length jitter -- breaks these.
GOLDEN_STREAMS = {
    "poisson_s0": "4708cccd361e3479572f9a2d840208bba08bcd027aa1a33dcdda99e5ecd72b3e",
    "poisson_s7": "bf80981b111f8ca5abf93fd2ba74a1ae4394997db1373d8af0a461cb26d76682",
    "bursty_s1": "9d8e3b7b256f5d1555e8ee4425b520d15ac1e71c03193c4a86510ada20b9267c",
    "trace_s0": "ea4a0fd03919c9979db3d0222a1f2940b11054b9a125106ec3f5d813dd12d495",
    "mix_s3": "ced0046942128ba5588be3ee063b5f12d3d90b11f30c9168e6297048d0f3e93a",
}

GOLDEN_CASES = {
    "poisson_s0": (lambda: PoissonProcess(80.0), "BERT-B", 500, 0),
    "poisson_s7": (lambda: PoissonProcess(40.0), "BERT-B", 300, 7),
    "bursty_s1": (lambda: BurstyProcess(40.0, 150.0, 0.5, 0.1), "BERT-B", 400, 1),
    "trace_s0": (lambda: TraceProcess([0.01, 0.02, 0.005]), "BERT-B", 200, 0),
    "mix_s3": (
        lambda: PoissonProcess(60.0),
        {"BERT-B": 0.5, "ViT-B": 0.3, "GPT-2-L": 0.2},
        400,
        3,
    ),
}


class TestVectorizedGeneration:
    @pytest.mark.parametrize("name", sorted(GOLDEN_STREAMS))
    def test_generate_requests_byte_identical_to_pre_vectorization(self, name):
        process, mix, count, seed = GOLDEN_CASES[name]
        digest = hashlib.sha256()
        for r in generate_requests(process(), mix, count=count, seed=seed):
            digest.update(
                f"{r.request_id}:{r.arrival_s!r}:{r.spec.name}:{r.valid_len};".encode()
            )
        assert digest.hexdigest() == GOLDEN_STREAMS[name]

    def test_table_matches_per_request_sampling_loop(self):
        """The vectorized jitter draw consumes the generator exactly
        like one sample_valid_len call per padded request."""
        process = PoissonProcess(70.0)
        mix = {"BERT-B": 0.6, "ViT-B": 0.4}  # ViT pads nothing
        table = generate_request_table(process, mix, count=400, seed=11)
        rng = np.random.default_rng(11)
        specs = table.specs
        times = process.arrival_times(400, rng)
        picks = rng.choice(len(specs), size=400, p=np.array([0.6, 0.4]))
        assert np.array_equal(table.spec_idx, picks)
        assert np.array_equal(table.arrival_s, times)
        for i in range(400):
            assert int(table.valid_len[i]) == sample_valid_len(
                specs[int(picks[i])], rng
            )

    def test_table_round_trips_through_objects(self):
        table = generate_request_table(
            PoissonProcess(50.0), {"BERT-B": 0.5, "GPT-2-L": 0.5}, 200, seed=4
        )
        back = RequestTable.from_requests(table.to_requests())
        assert np.array_equal(back.request_id, table.request_id)
        assert np.array_equal(back.arrival_s, table.arrival_s)
        assert np.array_equal(back.valid_len, table.valid_len)
        # Spec lists may order differently (first occurrence vs mix
        # order); the per-row model assignment must survive either way.
        for i in range(len(table)):
            assert (
                back.specs[int(back.spec_idx[i])].name
                == table.specs[int(table.spec_idx[i])].name
            )

    def test_head_is_stream_prefix(self):
        table = generate_request_table(PoissonProcess(50.0), "BERT-B", 100, 0)
        head = table.head(10)
        assert len(head) == 10
        assert np.array_equal(head.arrival_s, table.arrival_s[:10])

    def test_table_validation(self):
        spec = get_model("BERT-B")
        with pytest.raises(ValueError):
            RequestTable(
                specs=[spec],
                request_id=np.arange(2),
                arrival_s=np.zeros(2),
                spec_idx=np.zeros(2, dtype=np.int64),
                valid_len=np.array([100, spec.seq_len + 1]),
            )
        with pytest.raises(ValueError):
            RequestTable(
                specs=[spec],
                request_id=np.arange(2),
                arrival_s=np.zeros(1),
                spec_idx=np.zeros(2, dtype=np.int64),
                valid_len=np.full(2, 10),
            )
        with pytest.raises(ValueError):
            RequestTable(
                specs=[spec],
                request_id=np.arange(1),
                arrival_s=np.zeros(1),
                spec_idx=np.ones(1, dtype=np.int64),
                valid_len=np.full(1, 10),
            )
