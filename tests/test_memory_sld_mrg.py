"""Unit tests for repro.memory.sld and repro.memory.mrg (Eqs. 4-5)."""

import numpy as np
import pytest

from repro.memory.layout import KVLayout
from repro.memory.mrg import (
    KeyIndexGenerator,
    MemoryRequestGenerator,
    generate_all_requests,
)
from repro.memory.sld import SpatialLocalityDetector


class TestSLD:
    def test_first_query_fetches_everything_unpruned(self):
        sld = SpatialLocalityDetector(8)
        pruning = np.array([0, 1, 0, 1, 0, 1, 1, 1], dtype=np.uint8)
        out = sld.step(pruning)
        assert out.fetch_count == 3
        assert out.reuse_count == 0

    def test_eq4_eq5_semantics(self):
        sld = SpatialLocalityDetector(6)
        p_prev = np.array([0, 0, 1, 1, 0, 1], dtype=np.uint8)
        p_cur = np.array([0, 1, 0, 1, 0, 0], dtype=np.uint8)
        sld.step(p_prev)
        out = sld.step(p_cur)
        # Fetch: unpruned now AND pruned before -> indices 2 and 5.
        np.testing.assert_array_equal(
            out.memory_request_vector, [0, 0, 1, 0, 0, 1]
        )
        # Reuse: unpruned both times -> indices 0 and 4.
        np.testing.assert_array_equal(
            out.spatial_locality_vector, [1, 0, 0, 0, 1, 0]
        )

    def test_fetch_and_reuse_partition_unpruned(self, rng):
        sld = SpatialLocalityDetector(32)
        prev = (rng.random(32) < 0.7).astype(np.uint8)
        cur = (rng.random(32) < 0.7).astype(np.uint8)
        sld.step(prev)
        out = sld.step(cur)
        total = out.fetch_count + out.reuse_count
        assert total == int((cur == 0).sum())

    def test_resident_mask_overrides(self):
        sld = SpatialLocalityDetector(4)
        sld.step(np.array([0, 0, 0, 0], dtype=np.uint8))
        resident = np.array([True, False, False, False])
        out = sld.step(
            np.array([0, 0, 1, 1], dtype=np.uint8), resident=resident
        )
        # Token 1 unpruned before but evicted -> must be fetched.
        np.testing.assert_array_equal(out.memory_request_vector, [0, 1, 0, 0])
        np.testing.assert_array_equal(out.spatial_locality_vector, [1, 0, 0, 0])

    def test_reset(self):
        sld = SpatialLocalityDetector(4)
        sld.step(np.zeros(4, dtype=np.uint8))
        sld.reset()
        out = sld.step(np.zeros(4, dtype=np.uint8))
        assert out.fetch_count == 4

    def test_shape_validation(self):
        sld = SpatialLocalityDetector(4)
        with pytest.raises(ValueError):
            sld.step(np.zeros(5, dtype=np.uint8))


class TestMRG:
    def test_per_channel_partition(self):
        layout = KVLayout(num_channels=4)
        vector = np.ones(16, dtype=np.uint8)
        all_tokens = set()
        for c in range(4):
            mrg = MemoryRequestGenerator(layout, c)
            tokens = {r.token_index for r in mrg.generate(vector)}
            # Each channel only emits its own tokens.
            assert all(t % 4 == c for t in tokens)
            all_tokens |= tokens
        assert all_tokens == set(range(16))

    def test_zero_vector_no_requests(self):
        layout = KVLayout(num_channels=2)
        mrg = MemoryRequestGenerator(layout, 0)
        assert mrg.generate(np.zeros(8, dtype=np.uint8)) == []

    def test_base_register(self):
        layout = KVLayout(num_channels=4)
        mrg = MemoryRequestGenerator(layout, 2)
        assert mrg.base_register == 2

    def test_rejects_bad_channel(self):
        with pytest.raises(ValueError):
            MemoryRequestGenerator(KVLayout(num_channels=2), 2)

    def test_generate_all_sorted_and_complete(self):
        layout = KVLayout(num_channels=3)
        vector = np.zeros(10, dtype=np.uint8)
        vector[[1, 4, 9]] = 1
        reqs = generate_all_requests(layout, vector)
        assert [r.token_index for r in reqs] == [1, 4, 9]

    def test_query_index_propagates(self):
        layout = KVLayout(num_channels=1)
        reqs = generate_all_requests(
            layout, np.ones(3, dtype=np.uint8), query_index=7
        )
        assert all(r.query_index == 7 for r in reqs)


class TestKIG:
    def test_same_microarchitecture_as_mrg(self):
        layout = KVLayout(num_channels=2)
        vector = np.array([1, 0, 1, 0, 1, 0], dtype=np.uint8)
        kig = KeyIndexGenerator(layout, 0)
        assert kig.generate(vector) == [0, 2, 4]

    def test_other_channel(self):
        layout = KVLayout(num_channels=2)
        vector = np.array([0, 1, 0, 1, 0, 1], dtype=np.uint8)
        kig = KeyIndexGenerator(layout, 1)
        assert kig.generate(vector) == [1, 3, 5]
