"""Parity tests for the batched simulation core (repro.core.batched).

The batched workload-level path must be *bit-identical* to the
per-sample path: same counts, same cycles, same per-category energy.
Golden reports captured from the per-sample simulator pin the absolute
numbers; the remaining tests check internal consistency (batching vs
singles, packed vs ranking vs reference SLD sweeps, array vs scalar
energy tallies).
"""

import json
import os

import numpy as np
import pytest

from repro.core.batched import (
    BatchedWorkload,
    _sld_traffic_loop,
    _sld_traffic_packed,
    _sld_traffic_rank,
)
from repro.core.configs import (
    L_SPRINT,
    M_SPRINT,
    PIPELINE_OVERHEAD_CYCLES,
    S_SPRINT,
)
from repro.core.multihead import MultiHeadSimulator
from repro.core.system import ExecutionMode, SprintSystem
from repro.energy.model import EnergyModel
from repro.models.zoo import get_model
from repro.workloads.generator import generate_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_system_reports.json"
)


def _golden_workloads():
    """The exact (system, workload, mode) cases the goldens recorded."""
    spec = get_model("BERT-B")
    wl = generate_workload(
        seq_len=spec.seq_len, pruning_rate=spec.pruning_rate,
        padding_ratio=spec.padding_ratio, num_samples=2,
        locality=spec.locality, causal=spec.causal, seed=1,
    )
    for cfg in (S_SPRINT, M_SPRINT):
        system = SprintSystem(cfg)
        for mode in ExecutionMode:
            yield system, wl, mode
    wl_causal = generate_workload(
        seq_len=128, pruning_rate=0.7, padding_ratio=0.3,
        num_samples=3, causal=True, seed=7,
    )
    system = SprintSystem(L_SPRINT)
    for mode in ExecutionMode:
        yield system, wl_causal, mode
    wl_small = generate_workload(
        seq_len=96, pruning_rate=0.746, padding_ratio=0.2,
        num_samples=3, seed=11,
    )
    yield (
        SprintSystem(S_SPRINT, enable_sld=False), wl_small,
        ExecutionMode.SPRINT,
    )
    yield (
        SprintSystem(L_SPRINT, enable_interleaving=False), wl_small,
        ExecutionMode.SPRINT,
    )


class TestGoldenParity:
    def test_batched_reports_match_per_sample_goldens(self):
        """Exact (==, not approx) equality with the recorded per-sample
        simulator output: cycles, every count, every energy category."""
        with open(GOLDEN_PATH) as f:
            goldens = json.load(f)
        cases = list(_golden_workloads())
        assert len(cases) == len(goldens)
        for (system, workload, mode), golden in zip(cases, goldens):
            report = system.simulate_workload(workload, mode)
            assert report.mode == golden["mode"]
            assert report.samples == golden["samples"]
            assert report.cycles == golden["cycles"]
            assert report.counts == golden["counts"]
            assert report.energy.pj == golden["energy_pj"]


class TestBatchedVsSingles:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_workload_equals_sample_loop(self, mode):
        """One batched pass == N single-sample passes, bit for bit."""
        wl = generate_workload(
            seq_len=80, pruning_rate=0.7, padding_ratio=0.4,
            num_samples=4, seed=13,
        )
        system = SprintSystem(S_SPRINT)
        batched = system.simulate_heads(list(wl), mode)
        singles = [system.simulate_sample(s, mode) for s in wl]
        for b, s in zip(batched, singles):
            assert b.cycles == s.cycles
            assert b.counts == s.counts
            assert b.energy.pj == s.energy.pj

    def test_mixed_seq_len_buckets_preserve_order(self):
        wl_a = generate_workload(48, 0.6, num_samples=2, seed=1)
        wl_b = generate_workload(64, 0.6, num_samples=2, seed=2)
        samples = [
            wl_a.samples[0], wl_b.samples[0],
            wl_a.samples[1], wl_b.samples[1],
        ]
        system = SprintSystem(S_SPRINT)
        batched = system.simulate_heads(samples, ExecutionMode.SPRINT)
        singles = [
            system.simulate_sample(s, ExecutionMode.SPRINT) for s in samples
        ]
        for b, s in zip(batched, singles):
            assert b.cycles == s.cycles and b.counts == s.counts

    def test_slow_exact_system_matches_default(self):
        wl = generate_workload(
            96, 0.746, padding_ratio=0.2, num_samples=3, seed=5
        )
        fast = SprintSystem(S_SPRINT).simulate_workload(
            wl, ExecutionMode.SPRINT
        )
        slow = SprintSystem(S_SPRINT, sld_slow_exact=True).simulate_workload(
            wl, ExecutionMode.SPRINT
        )
        assert fast.cycles == slow.cycles
        assert fast.counts == slow.counts
        assert fast.energy.pj == slow.energy.pj

    def test_simulate_modes_matches_individual_calls(self):
        wl = generate_workload(64, 0.7, num_samples=2, seed=9)
        system = SprintSystem(M_SPRINT)
        modes = (ExecutionMode.BASELINE, ExecutionMode.SPRINT)
        combined = system.simulate_modes(wl, modes, "m")
        for mode in modes:
            solo = system.simulate_workload(wl, mode, "m")
            assert combined[mode.value].cycles == solo.cycles
            assert combined[mode.value].counts == solo.counts

    def test_unknown_mode_raises(self):
        wl = generate_workload(16, 0.5, num_samples=1, seed=0)
        with pytest.raises(ValueError):
            SprintSystem(S_SPRINT).simulate_workload(wl, "sprint")


class TestBatchedWorkload:
    def test_rejects_mixed_seq_len(self):
        a = generate_workload(32, 0.5, num_samples=1, seed=0).samples[0]
        b = generate_workload(48, 0.5, num_samples=1, seed=0).samples[0]
        with pytest.raises(ValueError, match="seq_len"):
            BatchedWorkload.from_samples([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BatchedWorkload.from_samples([])

    def test_stacks_fields(self):
        wl = generate_workload(
            32, 0.5, padding_ratio=0.3, num_samples=3, seed=4
        )
        batch = BatchedWorkload.from_samples(wl.samples)
        assert len(batch) == 3
        assert batch.keep.shape == (3, 32, 32)
        assert batch.valid_len.tolist() == [s.valid_len for s in wl]


class TestSldSweepImplementations:
    """All three SLD paths agree; the loop is the specification."""

    @pytest.mark.parametrize("seed", range(4))
    def test_three_way_agreement(self, seed):
        rng = np.random.default_rng(seed)
        for queries, keys, cap in (
            (40, 40, 9), (61, 33, 16), (33, 61, 100), (28, 28, 3),
        ):
            keep = rng.random((queries, keys)) < rng.uniform(0.1, 0.7)
            loop = _sld_traffic_loop(keep, cap)
            rank = _sld_traffic_rank(keep, cap)
            np.testing.assert_array_equal(loop[0], rank[0])
            np.testing.assert_array_equal(loop[1], rank[1])
            packed = _sld_traffic_packed(keep, cap)
            if packed is not None:
                np.testing.assert_array_equal(loop[0], packed[0])
                np.testing.assert_array_equal(loop[1], packed[1])

    def test_packed_falls_back_when_capacity_exceeds_history(self):
        # 128 queries over 11 keys at huge capacity: the window never
        # fills, so the packed scan punts to the ranking sweep.
        rng = np.random.default_rng(0)
        keep = rng.random((128, 11)) < 0.3
        assert _sld_traffic_packed(keep, 4096) is None
        loop = _sld_traffic_loop(keep, 4096)
        rank = _sld_traffic_rank(keep, 4096)
        np.testing.assert_array_equal(loop[0], rank[0])
        np.testing.assert_array_equal(loop[1], rank[1])

    def test_single_query_and_empty(self):
        one = np.ones((1, 9), dtype=bool)
        for impl in (_sld_traffic_loop, _sld_traffic_rank):
            fetches, reuses = impl(one, 4)
            assert fetches.tolist() == [9] and reuses.tolist() == [0]
        empty = np.zeros((5, 8), dtype=bool)
        for impl in (_sld_traffic_loop, _sld_traffic_rank):
            fetches, reuses = impl(empty, 4)
            assert fetches.sum() == 0 and reuses.sum() == 0


class TestVectorizedEnergyTally:
    def test_array_tally_matches_scalar_loop(self):
        counts = np.array([3, 17, 0, 255], dtype=np.int64)
        batched = EnergyModel(vector_bytes=64)
        batched.count_reram_vector_reads(counts)
        batched.count_qk_dot_products(2 * counts)
        batched.count_inmemory_array_ops(counts)
        batched.count_comparator_ops(counts * counts)
        per_sample = batched.breakdown.split()
        assert len(per_sample) == len(counts)
        for i, n in enumerate(counts):
            scalar = EnergyModel(vector_bytes=64)
            scalar.count_reram_vector_reads(int(n))
            scalar.count_qk_dot_products(2 * int(n))
            scalar.count_inmemory_array_ops(int(n))
            scalar.count_comparator_ops(int(n) * int(n))
            assert per_sample[i].pj == scalar.breakdown.pj

    def test_split_requires_array(self):
        model = EnergyModel()
        model.count_softmax_elements(5)
        with pytest.raises(ValueError):
            model.breakdown.split()

    def test_split_rejects_ragged(self):
        model = EnergyModel()
        model.count_softmax_elements(np.array([1.0, 2.0]))
        model.count_qk_dot_products(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            model.breakdown.split()


class TestSharedConstants:
    def test_pipeline_overhead_single_source(self):
        from repro.core import system

        assert S_SPRINT.pipeline_overhead_cycles == PIPELINE_OVERHEAD_CYCLES
        assert system.PIPELINE_OVERHEAD_CYCLES == PIPELINE_OVERHEAD_CYCLES

    def test_vector_fetch_cycles_array_matches_scalar(self):
        vectors = np.array([0, 1, 15, 16, 17, 400], dtype=np.int64)
        expected = [S_SPRINT.vector_fetch_cycles(int(v)) for v in vectors]
        got = S_SPRINT.vector_fetch_cycles_array(vectors)
        assert got.tolist() == expected


class TestModelReportVectorBytes:
    def test_data_movement_uses_config_vector_bytes(self):
        sim = MultiHeadSimulator(S_SPRINT)
        report = sim.simulate(
            get_model("ViT-B"), ExecutionMode.SPRINT, num_samples=1, seed=2
        )
        assert report.vector_bytes == S_SPRINT.vector_bytes
        assert report.total_data_movement_bytes() == (
            report.total_data_movement_bytes(S_SPRINT.vector_bytes)
        )
        # An explicit override still wins (and scales linearly).
        assert report.total_data_movement_bytes(128) == pytest.approx(
            2.0 * report.total_data_movement_bytes(64)
        )
