"""Unit tests for repro.workloads."""

import numpy as np
import pytest

from repro.attention.locality import measure_adjacent_overlap
from repro.workloads.distributions import (
    calibrated_score_matrix,
    heavy_tailed_scores,
)
from repro.workloads.generator import (
    generate_random_masks,
    generate_workload,
    structured_keep_mask,
)


class TestDistributions:
    def test_heavy_tailed_shape(self, rng):
        scores = heavy_tailed_scores(32, rng=rng)
        assert scores.shape == (32, 32)

    def test_heavy_tail_present(self, rng):
        scores = heavy_tailed_scores(64, rng=rng)
        # Spikes push the right tail well beyond a pure Gaussian.
        assert np.max(scores) > 3 * np.std(scores)

    def test_calibrated_shape(self, rng):
        scores = calibrated_score_matrix(48, 0.7, rng=rng)
        assert scores.shape == (48, 48)

    def test_locality_bounds(self, rng):
        with pytest.raises(ValueError):
            calibrated_score_matrix(16, 0.5, locality=1.5, rng=rng)

    def test_deterministic_with_rng(self):
        a = calibrated_score_matrix(16, 0.5, rng=np.random.default_rng(3))
        b = calibrated_score_matrix(16, 0.5, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestStructuredKeepMask:
    def test_pruning_rate_calibrated(self, rng):
        for rate in (0.5, 0.7, 0.8):
            keep = structured_keep_mask(128, rate, rng=rng)
            measured = 1.0 - keep.mean()
            assert abs(measured - rate) < 0.06

    def test_diagonal_kept(self, rng):
        keep = structured_keep_mask(64, 0.9, rng=rng)
        assert np.all(np.diag(keep))

    def test_causal_upper_triangle_empty(self, rng):
        keep = structured_keep_mask(48, 0.6, causal=True, rng=rng)
        upper = ~np.tril(np.ones((48, 48), dtype=bool))
        assert not keep[upper].any()

    def test_causal_rate_in_lower_triangle(self, rng):
        keep = structured_keep_mask(128, 0.7, causal=True, rng=rng)
        lower = np.tril(np.ones((128, 128), dtype=bool))
        rate = 1.0 - keep[lower].mean()
        assert abs(rate - 0.7) < 0.08

    def test_locality_increases_overlap(self, rng):
        low = structured_keep_mask(
            128, 0.7, locality=0.1, rng=np.random.default_rng(7)
        )
        high = structured_keep_mask(
            128, 0.7, locality=0.9, rng=np.random.default_rng(7)
        )
        assert (
            measure_adjacent_overlap(high) > measure_adjacent_overlap(low)
        )


class TestRandomMasks:
    def test_count_and_shape(self, rng):
        masks = generate_random_masks(32, 0.75, count=3, rng=rng)
        assert len(masks) == 3
        assert masks[0].shape == (32, 32)

    def test_exact_keep_count_per_row(self, rng):
        masks = generate_random_masks(40, 0.75, count=1, rng=rng)
        keep_per_row = masks[0].sum(axis=1)
        assert np.all(keep_per_row == 10)


class TestGenerateWorkload:
    def test_sample_count(self):
        wl = generate_workload(64, 0.7, num_samples=3, seed=0)
        assert len(wl) == 3

    def test_mean_pruning_rate(self):
        wl = generate_workload(128, 0.75, num_samples=3, seed=0)
        assert abs(wl.mean_pruning_rate() - 0.75) < 0.06

    def test_padding_zeroes_tail(self):
        wl = generate_workload(
            64, 0.7, padding_ratio=0.5, num_samples=2, seed=0
        )
        for sample in wl:
            assert not sample.keep_mask[sample.valid_len:, :].any()
            assert not sample.keep_mask[:, sample.valid_len:].any()

    def test_valid_len_tracks_padding(self):
        wl = generate_workload(
            100, 0.7, padding_ratio=0.4, num_samples=4, seed=2
        )
        for sample in wl:
            assert abs(sample.valid_len - 60) <= 12

    def test_no_padding_full_valid(self):
        wl = generate_workload(64, 0.7, num_samples=1, seed=0)
        assert wl.samples[0].valid_len == 64

    def test_causal_samples(self):
        wl = generate_workload(
            64, 0.7, causal=True, num_samples=1, seed=0
        )
        sample = wl.samples[0]
        assert sample.causal
        upper = ~np.tril(np.ones((64, 64), dtype=bool))
        assert not sample.keep_mask[upper].any()

    def test_deterministic(self):
        a = generate_workload(48, 0.6, num_samples=2, seed=9)
        b = generate_workload(48, 0.6, num_samples=2, seed=9)
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.keep_mask, sb.keep_mask)

    def test_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            generate_workload(32, 0.5, padding_ratio=1.0)

    def test_pruning_vectors_convention(self):
        wl = generate_workload(32, 0.5, num_samples=1, seed=0)
        sample = wl.samples[0]
        vectors = sample.pruning_vectors()
        np.testing.assert_array_equal(vectors == 1, ~sample.keep_mask)
