"""Unit tests for repro.reram.thresholding (the in-memory pruning unit)."""

import numpy as np
import pytest

from repro.attention.pruning import calibrate_threshold
from repro.reram.cell import MLCCellModel
from repro.reram.noise import OutputNoiseModel
from repro.reram.thresholding import (
    InMemoryThresholdingUnit,
    T_AX_TH_CYCLES,
)


def ideal_unit(seq_len=32, head_dim=16, **kwargs):
    return InMemoryThresholdingUnit(
        seq_len=seq_len,
        head_dim=head_dim,
        array_rows=kwargs.pop("array_rows", 16),
        array_cols=kwargs.pop("array_cols", 16),
        cell=MLCCellModel(variation_sigma=0.0),
        noise=OutputNoiseModel(equivalent_bits=20.0),
        **kwargs,
    )


class TestConstruction:
    def test_tiling_counts(self):
        unit = InMemoryThresholdingUnit(
            seq_len=300, head_dim=64, array_rows=64, array_cols=128
        )
        assert unit.row_tiles == 1
        assert unit.col_tiles == 3

    def test_row_tiling_for_large_embeddings(self):
        # Section V-A: longer key vectors split across adjacent arrays.
        unit = InMemoryThresholdingUnit(
            seq_len=128, head_dim=256, array_rows=64, array_cols=128
        )
        assert unit.row_tiles == 4

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            InMemoryThresholdingUnit(seq_len=0)

    def test_latency_is_taxth(self):
        assert ideal_unit().latency_cycles == T_AX_TH_CYCLES


class TestPruning:
    def test_requires_store_first(self, rng):
        unit = ideal_unit()
        with pytest.raises(RuntimeError):
            unit.prune_query(rng.normal(size=16), 0.0)

    def test_shape_validation(self, rng):
        unit = ideal_unit()
        unit.store_keys(rng.normal(size=(32, 16)))
        with pytest.raises(ValueError):
            unit.prune_query(rng.normal(size=8), 0.0)
        with pytest.raises(ValueError):
            unit.store_keys(rng.normal(size=(8, 16)))

    def test_agrees_with_exact_thresholding(self, rng):
        """Ideal analog path must recover the digital pruning decisions."""
        keys = rng.normal(size=(32, 16))
        queries = rng.normal(size=(8, 16))
        unit = ideal_unit()
        unit.store_keys(keys)
        scores = queries @ keys.T
        threshold = calibrate_threshold(scores, 0.6)
        agreements = []
        for q, row in zip(queries, scores):
            bits = unit.prune_query(q, threshold, ideal=True)
            exact = (row < threshold).astype(np.uint8)
            agreements.append(np.mean(bits == exact))
        # 4-bit MSB products flip only near-threshold decisions.
        assert np.mean(agreements) > 0.85

    def test_extreme_thresholds(self, rng):
        keys = rng.normal(size=(32, 16))
        unit = ideal_unit()
        unit.store_keys(keys)
        q = rng.normal(size=16)
        assert unit.prune_query(q, 1e9, ideal=True).all()
        assert not unit.prune_query(q, -1e9, ideal=True).any()

    def test_prune_all_shape(self, rng):
        keys = rng.normal(size=(32, 16))
        queries = rng.normal(size=(4, 16))
        unit = ideal_unit()
        unit.store_keys(keys)
        mat = unit.prune_all(queries, 0.0, ideal=True)
        assert mat.shape == (4, 32)
        assert mat.dtype == np.uint8

    def test_stats_accumulate(self, rng):
        unit = ideal_unit(seq_len=32, head_dim=16)
        unit.store_keys(rng.normal(size=(32, 16)))
        unit.prune_query(rng.normal(size=16), 0.0, ideal=True)
        s = unit.stats
        assert s.queries_processed == 1
        assert s.comparator_ops == 32
        assert s.adc_1bit_conversions == 32
        # col_tiles=2 (32 keys / 16 cols), row_tiles=1.
        assert s.inmemory_array_ops == 2

    def test_noisy_path_mostly_agrees(self, rng):
        keys = rng.normal(size=(64, 16))
        unit = InMemoryThresholdingUnit(
            seq_len=64, head_dim=16, array_rows=16, array_cols=32,
            noise=OutputNoiseModel(equivalent_bits=5.0), seed=7,
        )
        unit.store_keys(keys)
        q = rng.normal(size=16)
        scores = keys @ q
        threshold = float(np.quantile(scores, 0.7))
        bits = unit.prune_query(q, threshold)
        exact = (scores < threshold).astype(np.uint8)
        assert np.mean(bits == exact) > 0.7


class TestTransposedKeyRead:
    def test_reads_back_stored_msb(self, rng):
        keys = rng.normal(size=(32, 16))
        unit = ideal_unit()
        unit.store_keys(keys)
        msb = unit.read_key_msb(5)
        assert msb.shape == (16,)
        # MSB codes are signed 4-bit.
        assert msb.max() <= 7 and msb.min() >= -8

    def test_bounds(self, rng):
        unit = ideal_unit()
        unit.store_keys(rng.normal(size=(32, 16)))
        with pytest.raises(IndexError):
            unit.read_key_msb(32)
