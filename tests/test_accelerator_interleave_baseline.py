"""Unit tests for token interleaving and the baseline event model."""

import numpy as np
import pytest

from repro.accelerator.baseline import (
    baseline_compute_cycles,
    baseline_head_traffic,
)
from repro.accelerator.interleave import (
    assign_tokens,
    imbalance_ratio,
    per_query_corelet_counts,
    workload_imbalance,
    worst_case_tokens,
)


class TestAssignTokens:
    def test_interleaved_round_robin(self):
        a = assign_tokens(8, 4, "interleaved")
        np.testing.assert_array_equal(a, [0, 1, 2, 3, 0, 1, 2, 3])

    def test_sequential_blocks(self):
        a = assign_tokens(8, 4, "sequential")
        np.testing.assert_array_equal(a, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_paper_example(self):
        # "SPRINT processes K_{4n+i} in the i-th CORELET" (section VI).
        a = assign_tokens(16, 4, "interleaved")
        for i in range(16):
            assert a[i] == i % 4

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            assign_tokens(8, 2, "zigzag")

    def test_rejects_zero_corelets(self):
        with pytest.raises(ValueError):
            assign_tokens(8, 0)


class TestImbalance:
    def test_ideal_balance_is_one(self):
        counts = np.full((10, 4), 5)
        assert imbalance_ratio(counts) == pytest.approx(1.0)

    def test_skips_empty_queries(self):
        counts = np.zeros((3, 2), dtype=int)
        counts[0] = [4, 4]
        assert imbalance_ratio(counts) == pytest.approx(1.0)

    def test_clustered_mask_interleaving_wins(self):
        # Unpruned indices cluster in one contiguous run.
        keep = np.zeros((16, 64), dtype=bool)
        keep[:, 8:24] = True
        seq = workload_imbalance(keep, 4, "sequential")
        inter = workload_imbalance(keep, 4, "interleaved")
        assert inter < seq
        assert inter == pytest.approx(1.0)

    def test_more_corelets_more_imbalance(self, small_workload):
        sample = small_workload.samples[0]
        keep = sample.keep_mask[: sample.valid_len, : sample.valid_len]
        vals = [
            workload_imbalance(keep, n, "interleaved") for n in (2, 4, 8)
        ]
        assert vals[0] <= vals[-1]

    def test_per_query_counts_sum(self, small_workload):
        sample = small_workload.samples[0]
        keep = sample.keep_mask
        counts = per_query_corelet_counts(keep, 4, "interleaved")
        np.testing.assert_array_equal(counts.sum(axis=1), keep.sum(axis=1))

    def test_worst_case_tokens(self):
        keep = np.zeros((2, 8), dtype=bool)
        keep[0, :4] = True  # interleaved over 2 corelets -> 2 each
        keep[1, ::2] = True  # all on corelet 0 -> worst 4
        worst = worst_case_tokens(keep, 2, "interleaved")
        np.testing.assert_array_equal(worst, [2, 4])


class TestBaselineTraffic:
    def test_full_capacity_only_initial_loads(self):
        t = baseline_head_traffic(seq_len=64, capacity_vectors=64)
        assert t.key_fetches == 64  # initial fill counted once
        assert t.value_fetches == 64
        assert t.qk_dot_products == 64 * 64

    def test_streaming_grows_quadratically(self):
        t = baseline_head_traffic(seq_len=64, capacity_vectors=16)
        assert t.key_fetches == 64 * 48 + 16

    def test_mask_aware_reduces(self):
        dense = baseline_head_traffic(64, 16)
        masked = baseline_head_traffic(64, 16, valid_len=32, mask_aware=True)
        assert masked.key_fetches < dense.key_fetches
        assert masked.qk_dot_products == 32 * 32

    def test_total_vector_fetches(self):
        t = baseline_head_traffic(8, 8)
        assert t.total_vector_fetches == t.key_fetches + t.value_fetches + 8

    def test_validation(self):
        with pytest.raises(ValueError):
            baseline_head_traffic(0, 4)
        with pytest.raises(ValueError):
            baseline_head_traffic(8, 0)


class TestBaselineCycles:
    def test_more_corelets_fewer_cycles(self):
        c1 = baseline_compute_cycles(64, 64, num_corelets=1)
        c4 = baseline_compute_cycles(64, 64, num_corelets=4)
        assert c4 < c1

    def test_mask_aware_fewer_cycles(self):
        dense = baseline_compute_cycles(64, 64, 1)
        masked = baseline_compute_cycles(64, 64, 1, valid_len=32,
                                         mask_aware=True)
        assert masked < dense
