"""Tests for the ablation experiments and the Figure 2 heatmap."""

import pytest

from repro.experiments import ablations, fig2_heatmap


class TestSldAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_sld_ablation(models=("BERT-B", "ViT-B"))

    def test_sld_always_saves_traffic(self, rows):
        for r in rows:
            assert r.traffic_saving >= 1.0

    def test_bert_saves_heavily(self, rows):
        bert = next(r for r in rows if r.model == "BERT-B")
        # Section VI: only ~2.1% of the sequence fetched between
        # adjacent queries -> order-of-magnitude traffic saving.
        assert bert.traffic_saving > 5.0

    def test_vit_saves_less(self, rows):
        bert = next(r for r in rows if r.model == "BERT-B")
        vit = next(r for r in rows if r.model == "ViT-B")
        assert vit.traffic_saving < bert.traffic_saving


class TestInterleavingAblation:
    def test_sequential_never_faster(self):
        rows = ablations.run_interleaving_ablation(models=("BERT-B",))
        for r in rows:
            assert r.slowdown_without_interleaving >= 1.0


class TestMarginAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_margin_ablation(
            margins=(0.0, 0.5), num_samples=16
        )

    def test_margin_reduces_pruning_rate(self, rows):
        assert rows[-1].pruning_rate <= rows[0].pruning_rate

    def test_accuracies_reasonable(self, rows):
        for r in rows:
            assert 0.0 <= r.accuracy <= 1.0


class TestLocalityAblation:
    def test_overlap_increases_with_locality(self):
        rows = ablations.run_locality_ablation(
            localities=(0.2, 0.8), seq_len=192
        )
        assert rows[1].measured_overlap > rows[0].measured_overlap

    def test_energy_benefit_tracks_locality(self):
        rows = ablations.run_locality_ablation(
            localities=(0.2, 0.8), seq_len=192
        )
        assert rows[1].energy_reduction >= rows[0].energy_reduction


class TestAblationRunnerGlue:
    def test_run_and_format(self):
        out = ablations.format_table(
            (
                ablations.run_sld_ablation(models=("ViT-B",)),
                ablations.run_interleaving_ablation(models=("ViT-B",)),
                ablations.run_margin_ablation(margins=(0.0,),
                                              num_samples=8),
                ablations.run_locality_ablation(localities=(0.5,),
                                                seq_len=96),
            )
        )
        assert "Ablation studies" in out


class TestFig2Heatmap:
    @pytest.fixture(scope="class")
    def sample(self):
        return fig2_heatmap.run(seq_len=64, padding_ratio=0.3, seed=1)

    def test_render_contains_all_glyphs(self, sample):
        art = fig2_heatmap.render_mask(sample)
        assert fig2_heatmap.KEPT in art
        assert fig2_heatmap.PRUNED in art
        assert fig2_heatmap.PADDED in art

    def test_padded_band_is_blank(self, sample):
        art = fig2_heatmap.render_mask(sample, max_side=64).splitlines()
        # Rows beyond valid_len are entirely padding glyphs.
        assert set(art[-1]) == {fig2_heatmap.PADDED}

    def test_downsampling(self, sample):
        art = fig2_heatmap.render_mask(sample, max_side=16).splitlines()
        assert len(art) <= 33

    def test_format_table_header(self, sample):
        out = fig2_heatmap.format_table(sample)
        assert "Figure 2" in out
