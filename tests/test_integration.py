"""Integration tests: full pipelines across module boundaries."""

import numpy as np
import pytest

from repro.attention.functional import softmax
from repro.attention.pruning import calibrate_threshold, prune_scores
from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode, SprintSystem
from repro.memory.controller import SprintMemoryController
from repro.models.zoo import get_model
from repro.reram.cell import MLCCellModel
from repro.reram.noise import OutputNoiseModel
from repro.reram.thresholding import InMemoryThresholdingUnit
from repro.accelerator.corelet import Corelet
from repro.workloads.generator import generate_workload


class TestReramToControllerToCorelet:
    """The full SPRINT dataflow on real (small) tensors:

    ReRAM in-memory thresholding -> pruning vectors -> memory controller
    (SLD + scheduling) -> selective fetch -> CORELET recompute -> output
    close to exact pruned attention.
    """

    SEQ, DIM = 48, 16

    @pytest.fixture(scope="class")
    def tensors(self):
        rng = np.random.default_rng(42)
        keys = rng.normal(size=(self.SEQ, self.DIM))
        values = rng.normal(size=(self.SEQ, self.DIM))
        queries = rng.normal(size=(8, self.DIM))
        return queries, keys, values

    def test_end_to_end_dataflow(self, tensors):
        queries, keys, values = tensors
        scores = queries @ keys.T
        threshold = calibrate_threshold(scores, 0.6)

        unit = InMemoryThresholdingUnit(
            seq_len=self.SEQ, head_dim=self.DIM,
            array_rows=16, array_cols=16,
            cell=MLCCellModel(variation_sigma=0.0),
            noise=OutputNoiseModel(equivalent_bits=20.0),
        )
        unit.store_keys(keys)
        controller = SprintMemoryController(
            seq_len=self.SEQ, capacity_vectors=self.SEQ
        )
        corelet = Corelet(0, head_dim=self.DIM, kv_capacity_bytes=8192)

        outputs = []
        total_fetches = 0
        for qi, q in enumerate(queries):
            pruning = unit.prune_query(q, threshold, ideal=True)
            traffic = controller.process_query(pruning, qi)
            total_fetches += len(traffic.fetch_indices)
            for token in traffic.fetch_indices:
                corelet.load_vector(token, keys[token], values[token])
            unpruned = np.nonzero(pruning == 0)[0]
            outputs.append(
                corelet.process_query(q, list(unpruned), scale=1.0)
            )

        # Reference: exact pruned attention with the same threshold.
        for qi, q in enumerate(queries):
            row = scores[qi]
            result = prune_scores(
                row[None, :], threshold, keep_self=False
            )
            ref = result.probabilities[0] @ values
            err = np.abs(outputs[qi] - ref).max()
            scale = max(1.0, np.abs(ref).max())
            assert err < 0.25 * scale, f"query {qi}: err={err}"

        # SLD must have saved fetches: total fetched << queries * unpruned.
        total_unpruned = sum(
            int((unit.prune_all(queries, threshold, ideal=True)[i] == 0).sum())
            for i in range(len(queries))
        )
        assert total_fetches < total_unpruned

    def test_pruning_vectors_consistent_between_unit_and_software(
        self, tensors
    ):
        queries, keys, _ = tensors
        scores = queries @ keys.T
        threshold = calibrate_threshold(scores, 0.5)
        unit = InMemoryThresholdingUnit(
            seq_len=self.SEQ, head_dim=self.DIM,
            array_rows=16, array_cols=16,
            cell=MLCCellModel(variation_sigma=0.0),
            noise=OutputNoiseModel(equivalent_bits=20.0),
        )
        unit.store_keys(keys)
        hw = unit.prune_all(queries, threshold, ideal=True)
        sw = (scores < threshold).astype(np.uint8)
        assert np.mean(hw == sw) > 0.85


class TestWorkloadToSystem:
    def test_reports_consistent_across_seeds(self):
        spec = get_model("BERT-B")
        system = SprintSystem(S_SPRINT)
        r1 = system.simulate_model(spec, ExecutionMode.SPRINT,
                                   num_samples=1, seed=7)
        r2 = system.simulate_model(spec, ExecutionMode.SPRINT,
                                   num_samples=1, seed=7)
        assert r1.cycles == r2.cycles
        assert r1.total_energy_pj == r2.total_energy_pj

    def test_custom_workload_path(self):
        wl = generate_workload(96, 0.7, padding_ratio=0.3,
                               num_samples=2, seed=11)
        system = SprintSystem(S_SPRINT)
        base = system.simulate_workload(wl, ExecutionMode.BASELINE, "custom")
        sprint = system.simulate_workload(wl, ExecutionMode.SPRINT, "custom")
        assert sprint.speedup_vs(base) > 1.0
        assert sprint.energy_reduction_vs(base) > 1.0
        assert sprint.model == "custom"

    def test_all_models_all_modes_run(self):
        system = SprintSystem(S_SPRINT)
        for name in ("ViT-B", "GPT-2-L"):
            spec = get_model(name)
            for mode in ExecutionMode:
                report = system.simulate_model(
                    spec, mode, num_samples=1, seed=1
                )
                assert report.cycles > 0
                assert report.total_energy_pj > 0


class TestAccuracyPipelineSmoke:
    def test_sprint_output_distribution_close_to_exact(self, rng):
        """Recompute makes SPRINT's attention nearly exact row-wise."""
        from repro.attention.policies import SprintPolicy

        q = rng.normal(size=(32, 16)) * 2
        k = rng.normal(size=(32, 16)) * 2
        scores = (q @ k.T) / 4.0
        exact = softmax(scores, axis=-1)
        probs, _ = SprintPolicy(0.5, recompute=True, noise_sigma=0.0).process(
            scores, q=q, k=k, scale=0.25
        )
        # Total variation distance per row stays small: pruned entries
        # carried little mass and kept entries are recomputed exactly.
        tv = 0.5 * np.abs(probs - exact).sum(axis=1)
        assert np.median(tv) < 0.2
