"""Unit tests for repro.core.configs and repro.core.results."""

import pytest

from repro.core.configs import (
    L_SPRINT,
    M_SPRINT,
    S_SPRINT,
    SPRINT_CONFIGS,
    get_config,
)
from repro.core.results import HeadReport, SimulationReport
from repro.energy.model import EnergyBreakdown


class TestTableIConfigs:
    def test_corelet_scaling(self):
        assert S_SPRINT.num_corelets == 1
        assert M_SPRINT.num_corelets == 2
        assert L_SPRINT.num_corelets == 4

    def test_cache_scaling(self):
        assert S_SPRINT.onchip_cache_kb == 16
        assert M_SPRINT.onchip_cache_kb == 32
        assert L_SPRINT.onchip_cache_kb == 64

    def test_sram_banks(self):
        # Table I: 8/16/32 banks.
        assert S_SPRINT.sram_banks == 8
        assert M_SPRINT.sram_banks == 16
        assert L_SPRINT.sram_banks == 32

    def test_query_index_buffers(self):
        assert S_SPRINT.query_buffer_bytes == 64
        assert M_SPRINT.query_buffer_bytes == 128
        assert L_SPRINT.query_buffer_bytes == 256
        assert S_SPRINT.index_buffer_bytes == 512
        assert L_SPRINT.index_buffer_bytes == 2048

    def test_shared_memory_system(self):
        for cfg in (S_SPRINT, M_SPRINT, L_SPRINT):
            assert cfg.channels == 16
            assert cfg.channel_bits == 64
            assert cfg.frequency_ghz == 1.0
            assert cfg.transposable_array == (64, 128)
            assert cfg.mlc_bits == 4

    def test_capacity_vectors(self):
        # 16KB total -> 8KB K buffer -> 128 64-byte vectors.
        assert S_SPRINT.kv_capacity_vectors == 128
        assert M_SPRINT.kv_capacity_vectors == 256
        assert L_SPRINT.kv_capacity_vectors == 512

    def test_fetch_cycles_model(self):
        # One 64B vector over a 64-bit channel = 8 beats; 16 channels
        # move 16 vectors per wave.
        assert S_SPRINT.vector_fetch_cycles(1) == 8
        assert S_SPRINT.vector_fetch_cycles(16) == 8
        assert S_SPRINT.vector_fetch_cycles(17) == 16
        assert S_SPRINT.vector_fetch_cycles(0) == 0

    def test_lookup(self):
        assert get_config("M-SPRINT") is M_SPRINT
        assert get_config("s") is S_SPRINT
        with pytest.raises(KeyError):
            get_config("XL-SPRINT")
        assert set(SPRINT_CONFIGS) == {"S-SPRINT", "M-SPRINT", "L-SPRINT"}


def _report(cycles, pj_read, counts=None):
    bd = EnergyBreakdown()
    bd.add("reram_read", pj_read)
    return SimulationReport(
        model="m", config="c", mode="baseline",
        cycles=cycles, energy=bd, counts=counts or {},
    )


class TestSimulationReport:
    def test_speedup(self):
        base = _report(1000, 10.0)
        fast = _report(100, 10.0)
        assert fast.speedup_vs(base) == pytest.approx(10.0)

    def test_energy_reduction(self):
        base = _report(1, 100.0)
        lean = _report(1, 5.0)
        assert lean.energy_reduction_vs(base) == pytest.approx(20.0)

    def test_data_movement(self):
        r = _report(1, 0.0, counts={"key_fetches": 2.0, "value_fetches": 2.0,
                                    "query_fetches": 1.0})
        assert r.data_movement_bytes(64) == 5 * 64

    def test_data_movement_reduction(self):
        base = _report(1, 0, counts={"key_fetches": 100.0})
        lean = _report(1, 0, counts={"key_fetches": 10.0})
        assert lean.data_movement_reduction_vs(base) == pytest.approx(0.9)

    def test_from_heads_averages(self):
        h1 = HeadReport(mode="sprint", cycles=100,
                        counts={"queries": 10.0})
        h2 = HeadReport(mode="sprint", cycles=300,
                        counts={"queries": 20.0})
        report = SimulationReport.from_heads("m", "c", "sprint", [h1, h2])
        assert report.cycles == 200
        assert report.counts["queries"] == 15.0
        assert report.samples == 2

    def test_from_heads_empty_raises(self):
        with pytest.raises(ValueError):
            SimulationReport.from_heads("m", "c", "sprint", [])

    def test_describe_contains_key_fields(self):
        text = _report(10, 5.0).describe()
        assert "cycles" in text and "energy" in text
