"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attention.functional import softmax
from repro.attention.locality import expected_random_overlap
from repro.attention.pruning import calibrate_threshold, prune_scores
from repro.attention.quantization import (
    combine_msb_lsb,
    quantize_scores,
    split_msb_lsb,
    symmetric_quantize,
)
from repro.core.system import simulate_sld_traffic
from repro.memory.layout import KVLayout
from repro.memory.sld import SpatialLocalityDetector

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def score_matrices(draw, max_side=12):
    side = draw(st.integers(min_value=2, max_value=max_side))
    return draw(
        arrays(np.float64, (side, side), elements=finite_floats)
    )


class TestSoftmaxProperties:
    @given(score_matrices())
    @settings(max_examples=50, deadline=None)
    def test_rows_are_distributions(self, scores):
        p = softmax(scores, axis=-1)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-9)

    @given(score_matrices(), st.floats(min_value=-50, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, scores, shift):
        np.testing.assert_allclose(
            softmax(scores), softmax(scores + shift), atol=1e-9
        )


class TestQuantizationProperties:
    @given(
        arrays(np.float64, st.integers(1, 64), elements=finite_floats),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetric_roundtrip_bound(self, x, bits):
        q = symmetric_quantize(x, bits)
        err = np.abs(q.codes * q.scale - x)
        assert np.all(err <= q.scale / 2 + 1e-9)

    @given(
        arrays(np.int64, st.integers(1, 32),
               elements=st.integers(-128, 127)),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_msb_lsb_roundtrip(self, codes, msb_bits):
        msb, lsb = split_msb_lsb(codes, bits=8, msb_bits=msb_bits)
        np.testing.assert_array_equal(
            combine_msb_lsb(msb, lsb, bits=8, msb_bits=msb_bits), codes
        )

    @given(score_matrices(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_quantize_scores_stays_in_range(self, scores, bits):
        q = quantize_scores(scores, bits)
        assert q.min() >= scores.min() - 1e-9
        assert q.max() <= scores.max() + 1e-9


class TestPruningProperties:
    @given(
        score_matrices(),
        st.floats(min_value=0.05, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_empty_rows_ever(self, scores, rate):
        th = calibrate_threshold(scores, rate)
        result = prune_scores(scores, th, keep_self=False)
        assert result.keep_mask.any(axis=1).all()

    @given(score_matrices(), st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_probability_mass_on_kept_only(self, scores, rate):
        th = calibrate_threshold(scores, rate)
        result = prune_scores(scores, th)
        pruned_mass = result.probabilities[~result.keep_mask].sum()
        assert pruned_mass < 1e-9 * scores.shape[0]

    @given(score_matrices())
    @settings(max_examples=30, deadline=None)
    def test_lower_threshold_keeps_more(self, scores):
        th = calibrate_threshold(scores, 0.5)
        more = prune_scores(scores, th - 1.0, keep_self=False)
        fewer = prune_scores(scores, th + 1.0, keep_self=False)
        assert more.keep_mask.sum() >= fewer.keep_mask.sum()


class TestLocalityProperties:
    @given(st.integers(2, 200), st.data())
    @settings(max_examples=50, deadline=None)
    def test_expected_overlap_bounds(self, seq_len, data):
        unpruned = data.draw(st.integers(0, seq_len))
        e = expected_random_overlap(seq_len, unpruned)
        assert -1e-9 <= e <= unpruned + 1e-9

    @given(st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_full_keep_full_overlap(self, seq_len):
        e = expected_random_overlap(seq_len, seq_len)
        assert abs(e - seq_len) < 1e-6


@st.composite
def keep_masks(draw):
    q = draw(st.integers(2, 10))
    k = draw(st.integers(2, 16))
    return draw(arrays(np.bool_, (q, k)))


class TestSldProperties:
    @given(keep_masks(), st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_fetch_plus_reuse_equals_needed(self, keep, capacity):
        fetches, reuses = simulate_sld_traffic(keep, capacity)
        np.testing.assert_array_equal(
            fetches + reuses, keep.sum(axis=1)
        )

    @given(keep_masks())
    @settings(max_examples=40, deadline=None)
    def test_larger_capacity_never_fetches_more(self, keep):
        small, _ = simulate_sld_traffic(keep, 2)
        large, _ = simulate_sld_traffic(keep, 64)
        assert large.sum() <= small.sum()

    @given(keep_masks())
    @settings(max_examples=40, deadline=None)
    def test_stateless_detector_matches_unlimited_capacity(self, keep):
        # With capacity >= all keys, the SLD engine's Eq. 4/5 outputs
        # match the capacity-aware residency simulation... except that
        # Eq. 4/5 only remember ONE previous query; the residency model
        # remembers everything.  So Eq. 4/5 fetches >= residency fetches.
        sld = SpatialLocalityDetector(keep.shape[1])
        eq_fetches = []
        for row in keep:
            out = sld.step((~row).astype(np.uint8))
            eq_fetches.append(out.fetch_count)
        res_fetches, _ = simulate_sld_traffic(keep, keep.shape[1] + 1)
        assert sum(eq_fetches) >= res_fetches.sum()


class TestLayoutProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=16),
        st.lists(st.integers(0, 5000), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_addresses_unique(self, channels, banks, tokens):
        layout = KVLayout(num_channels=channels, banks_per_channel=banks)
        addrs = {layout.address_of(t) for t in set(tokens)}
        assert len(addrs) == len(set(tokens))

    @given(st.integers(min_value=1, max_value=32), st.integers(0, 10000))
    @settings(max_examples=50, deadline=None)
    def test_channel_is_token_mod_channels(self, channels, token):
        layout = KVLayout(num_channels=channels)
        assert layout.address_of(token).channel == token % channels
