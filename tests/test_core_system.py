"""Unit tests for repro.core.system (the SPRINT simulator)."""

import numpy as np
import pytest

from repro.core.configs import L_SPRINT, M_SPRINT, S_SPRINT
from repro.core.system import (
    ExecutionMode,
    SprintSystem,
    simulate_sld_traffic,
)
from repro.models.zoo import get_model
from repro.workloads.generator import WorkloadSample, generate_workload


class TestSimulateSldTraffic:
    def test_unlimited_capacity_fetches_once(self):
        keep = np.zeros((4, 8), dtype=bool)
        keep[:, :3] = True
        fetches, reuses = simulate_sld_traffic(keep, capacity_vectors=8)
        np.testing.assert_array_equal(fetches, [3, 0, 0, 0])
        np.testing.assert_array_equal(reuses, [0, 3, 3, 3])

    def test_capacity_one_forces_refetch(self):
        keep = np.zeros((3, 8), dtype=bool)
        keep[:, :4] = True
        fetches, _ = simulate_sld_traffic(keep, capacity_vectors=1)
        # Only one vector survives between queries.
        assert fetches[1] >= 3

    def test_disjoint_needs_all_fetch(self):
        keep = np.zeros((2, 8), dtype=bool)
        keep[0, :4] = True
        keep[1, 4:] = True
        fetches, reuses = simulate_sld_traffic(keep, 8)
        np.testing.assert_array_equal(fetches, [4, 4])
        np.testing.assert_array_equal(reuses, [0, 0])

    def test_empty_rows_skip(self):
        keep = np.zeros((3, 8), dtype=bool)
        keep[1, :2] = True
        fetches, reuses = simulate_sld_traffic(keep, 8)
        assert fetches[0] == 0 and fetches[2] == 0
        assert fetches[1] == 2

    def test_totals_conserved(self, small_workload):
        sample = small_workload.samples[0]
        keep = sample.keep_mask[: sample.valid_len, : sample.valid_len]
        fetches, reuses = simulate_sld_traffic(keep, 32)
        np.testing.assert_array_equal(
            fetches + reuses, keep.sum(axis=1)
        )

    def test_capacity_below_single_query_set(self):
        # One query needs more vectors than the whole buffer holds: the
        # buffer can never serve a full repeat, only the survivors.
        keep = np.zeros((3, 12), dtype=bool)
        keep[:, :8] = True
        fetches, reuses = simulate_sld_traffic(keep, capacity_vectors=5)
        assert fetches[0] == 8 and reuses[0] == 0
        # Later queries reuse exactly the 5 resident survivors.
        np.testing.assert_array_equal(fetches[1:], [3, 3])
        np.testing.assert_array_equal(reuses[1:], [5, 5])

    def test_all_pruned_queries(self):
        keep = np.zeros((6, 16), dtype=bool)
        fetches, reuses = simulate_sld_traffic(keep, capacity_vectors=4)
        assert fetches.sum() == 0 and reuses.sum() == 0
        assert fetches.shape == (6,)

    def test_zero_capacity_never_reuses(self):
        keep = np.ones((4, 4), dtype=bool)
        fetches, reuses = simulate_sld_traffic(keep, capacity_vectors=0)
        np.testing.assert_array_equal(fetches, [4, 4, 4, 4])
        assert reuses.sum() == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_vectorized_matches_slow_exact(self, seed):
        """The vectorized residency sweep IS the LRU loop, count-for-count."""
        rng = np.random.default_rng(seed)
        for queries, keys, cap in (
            (37, 53, 11), (64, 64, 16), (96, 96, 200), (50, 23, 1),
        ):
            keep = rng.random((queries, keys)) < rng.uniform(0.05, 0.6)
            slow = simulate_sld_traffic(keep, cap, slow_exact=True)
            fast = simulate_sld_traffic(keep, cap)
            np.testing.assert_array_equal(slow[0], fast[0])
            np.testing.assert_array_equal(slow[1], fast[1])

    @pytest.mark.parametrize("seed", range(3))
    def test_vectorized_matches_slow_exact_calibrated(self, seed):
        from repro.workloads.generator import generate_workload as gen

        wl = gen(96, 0.746, padding_ratio=0.3, num_samples=2, seed=seed)
        for sample in wl:
            keep = sample.keep_mask[: sample.valid_len, : sample.valid_len]
            for cap in (7, 32, 64, 4096):
                slow = simulate_sld_traffic(keep, cap, slow_exact=True)
                fast = simulate_sld_traffic(keep, cap)
                np.testing.assert_array_equal(slow[0], fast[0])
                np.testing.assert_array_equal(slow[1], fast[1])


@pytest.fixture(scope="module")
def bert_reports():
    spec = get_model("BERT-B")
    system = SprintSystem(S_SPRINT)
    return {
        mode: system.simulate_model(spec, mode, num_samples=2, seed=1)
        for mode in ExecutionMode
    }


class TestModes:
    def test_mode_ordering_cycles(self, bert_reports):
        b = bert_reports
        assert (
            b[ExecutionMode.SPRINT].cycles
            < b[ExecutionMode.PRUNING_ONLY].cycles
            < b[ExecutionMode.BASELINE].cycles
        )
        assert (
            b[ExecutionMode.MASK_ONLY].cycles
            < b[ExecutionMode.BASELINE].cycles
        )

    def test_mode_ordering_energy(self, bert_reports):
        b = bert_reports
        assert (
            b[ExecutionMode.SPRINT].total_energy_pj
            < b[ExecutionMode.PRUNING_ONLY].total_energy_pj
            < b[ExecutionMode.BASELINE].total_energy_pj
        )

    def test_mode_ordering_traffic(self, bert_reports):
        b = bert_reports
        assert (
            b[ExecutionMode.SPRINT].data_movement_bytes()
            < b[ExecutionMode.MASK_ONLY].data_movement_bytes()
            < b[ExecutionMode.BASELINE].data_movement_bytes()
        )

    def test_baseline_memory_dominated(self, bert_reports):
        # Figure 1/13: with 16KB for S=384, memory dominates baseline.
        frac = bert_reports[ExecutionMode.BASELINE].energy.memory_fraction()
        assert frac > 0.4

    def test_sprint_has_inmemory_events(self, bert_reports):
        counts = bert_reports[ExecutionMode.SPRINT].counts
        assert counts["inmemory_array_ops"] > 0
        assert counts["comparator_ops"] > 0

    def test_baseline_no_inmemory_events(self, bert_reports):
        counts = bert_reports[ExecutionMode.BASELINE].counts
        assert "inmemory_array_ops" not in counts

    def test_pruning_only_full_qk(self, bert_reports):
        counts = bert_reports[ExecutionMode.PRUNING_ONLY].counts
        s = get_model("BERT-B").seq_len
        assert counts["qk_dot_products"] == s * s

    def test_sprint_qk_matches_unpruned(self, bert_reports):
        counts = bert_reports[ExecutionMode.SPRINT].counts
        assert counts["qk_dot_products"] == counts["unpruned_total"]

    def test_key_value_fetch_symmetry_sprint(self, bert_reports):
        # Pruning vectors are identical for keys and values (section III).
        counts = bert_reports[ExecutionMode.SPRINT].counts
        assert counts["key_fetches"] == counts["value_fetches"]


class TestConfigScaling:
    def test_bigger_cache_less_traffic(self):
        spec = get_model("BERT-B")
        traffic = {}
        for cfg in (S_SPRINT, M_SPRINT, L_SPRINT):
            rep = SprintSystem(cfg).simulate_model(
                spec, ExecutionMode.SPRINT, num_samples=1, seed=2
            )
            traffic[cfg.name] = rep.data_movement_bytes()
        assert (
            traffic["L-SPRINT"] <= traffic["M-SPRINT"] <= traffic["S-SPRINT"]
        )

    def test_more_corelets_fewer_cycles_baseline(self):
        spec = get_model("BERT-B")
        cycles = {}
        for cfg in (S_SPRINT, L_SPRINT):
            rep = SprintSystem(cfg).simulate_model(
                spec, ExecutionMode.BASELINE, num_samples=1, seed=2
            )
            cycles[cfg.name] = rep.cycles
        assert cycles["L-SPRINT"] < cycles["S-SPRINT"]

    def test_speedup_in_paper_ballpark(self):
        spec = get_model("BERT-B")
        system = SprintSystem(S_SPRINT)
        base = system.simulate_model(
            spec, ExecutionMode.BASELINE, num_samples=1, seed=3
        )
        sprint = system.simulate_model(
            spec, ExecutionMode.SPRINT, num_samples=1, seed=3
        )
        speedup = sprint.speedup_vs(base)
        # Paper: 8.98x for BERT-B / S-SPRINT; accept the right regime.
        assert 5.0 < speedup < 25.0

    def test_energy_reduction_in_paper_ballpark(self):
        spec = get_model("BERT-B")
        system = SprintSystem(S_SPRINT)
        base = system.simulate_model(
            spec, ExecutionMode.BASELINE, num_samples=1, seed=3
        )
        sprint = system.simulate_model(
            spec, ExecutionMode.SPRINT, num_samples=1, seed=3
        )
        red = sprint.energy_reduction_vs(base)
        # Paper: 22.9x for BERT-B / S-SPRINT.
        assert 10.0 < red < 50.0


class TestCausalAndPadding:
    def test_causal_mask_only_halves_work(self):
        sample = WorkloadSample(
            keep_mask=np.tril(np.ones((64, 64), dtype=bool)),
            valid_len=64, seq_len=64, causal=True,
        )
        system = SprintSystem(S_SPRINT)
        dense = system.simulate_sample(sample, ExecutionMode.BASELINE)
        masked = system.simulate_sample(sample, ExecutionMode.MASK_ONLY)
        ratio = masked.counts["qk_dot_products"] / dense.counts[
            "qk_dot_products"
        ]
        assert ratio == pytest.approx(0.5, abs=0.02)

    def test_padded_sample_sprint_skips_padding(self):
        wl = generate_workload(
            64, 0.7, padding_ratio=0.5, num_samples=1, seed=4
        )
        sample = wl.samples[0]
        system = SprintSystem(S_SPRINT)
        rep = system.simulate_sample(sample, ExecutionMode.SPRINT)
        assert rep.counts["queries"] == sample.valid_len

    def test_vit_benefits_least(self):
        system = SprintSystem(S_SPRINT)
        reductions = {}
        for name in ("ViT-B", "BERT-B"):
            spec = get_model(name)
            base = system.simulate_model(
                spec, ExecutionMode.BASELINE, num_samples=1, seed=5
            )
            sprint = system.simulate_model(
                spec, ExecutionMode.SPRINT, num_samples=1, seed=5
            )
            reductions[name] = sprint.energy_reduction_vs(base)
        assert reductions["ViT-B"] < reductions["BERT-B"]
