"""Unit tests for repro.attention.quantization."""

import numpy as np
import pytest

from repro.attention.quantization import (
    combine_msb_lsb,
    dequantize,
    quantize_scores,
    split_msb_lsb,
    symmetric_quantize,
)


class TestSymmetricQuantize:
    def test_roundtrip_error_bounded(self, rng):
        x = rng.normal(size=100)
        q = symmetric_quantize(x, bits=8)
        err = np.abs(dequantize(q) - x)
        assert np.max(err) <= q.scale / 2 + 1e-12

    def test_zero_exact(self):
        q = symmetric_quantize(np.array([0.0, 1.0, -1.0]), bits=8)
        assert q.codes[0] == 0

    def test_codes_in_range(self, rng):
        x = rng.normal(size=1000) * 10
        for bits in (2, 4, 8):
            q = symmetric_quantize(x, bits=bits)
            assert q.codes.max() <= 2 ** (bits - 1) - 1
            assert q.codes.min() >= -(2 ** (bits - 1))

    def test_one_bit_sign_only(self):
        q = symmetric_quantize(np.array([-3.0, 0.0, 2.0]), bits=1)
        assert list(q.codes) == [-1, 0, 1]

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            symmetric_quantize(np.ones(3), bits=0)

    def test_all_zero_input(self):
        q = symmetric_quantize(np.zeros(5), bits=4)
        assert np.all(q.codes == 0)
        np.testing.assert_allclose(dequantize(q), 0.0)

    def test_level_count(self):
        q = symmetric_quantize(np.ones(2), bits=4)
        assert q.level_count == 16


class TestMsbLsbSplit:
    def test_roundtrip_all_int8(self):
        codes = np.arange(-128, 128)
        msb, lsb = split_msb_lsb(codes, bits=8, msb_bits=4)
        np.testing.assert_array_equal(
            combine_msb_lsb(msb, lsb, bits=8, msb_bits=4), codes
        )

    def test_msb_range(self):
        codes = np.arange(-128, 128)
        msb, _ = split_msb_lsb(codes, bits=8, msb_bits=4)
        assert msb.max() <= 7
        assert msb.min() >= -8

    def test_lsb_unsigned(self):
        codes = np.arange(-128, 128)
        _, lsb = split_msb_lsb(codes)
        assert lsb.min() >= 0
        assert lsb.max() <= 15

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            split_msb_lsb(np.array([200]), bits=8, msb_bits=4)

    def test_rejects_bad_msb_bits(self):
        with pytest.raises(ValueError):
            split_msb_lsb(np.array([1]), bits=8, msb_bits=8)

    def test_nonstandard_split(self):
        codes = np.arange(-8, 8)
        msb, lsb = split_msb_lsb(codes, bits=4, msb_bits=2)
        np.testing.assert_array_equal(
            combine_msb_lsb(msb, lsb, bits=4, msb_bits=2), codes
        )


class TestQuantizeScores:
    def test_preserves_range_ends(self, small_scores):
        q = quantize_scores(small_scores, bits=4)
        assert np.isclose(q.max(), small_scores.max())
        assert np.isclose(q.min(), small_scores.min())

    def test_error_bounded_by_half_step(self, small_scores):
        for bits in (3, 5, 8):
            q = quantize_scores(small_scores, bits=bits)
            step = (small_scores.max() - small_scores.min()) / (2 ** bits - 1)
            assert np.max(np.abs(q - small_scores)) <= step / 2 + 1e-12

    def test_one_bit_collapses_to_endpoints(self, small_scores):
        q = quantize_scores(small_scores, bits=1)
        uniq = np.unique(q)
        assert len(uniq) <= 2

    def test_monotone_precision_improvement(self, small_scores):
        errors = [
            np.mean(np.abs(quantize_scores(small_scores, bits=b) - small_scores))
            for b in range(1, 9)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_high_bits_near_exact(self, small_scores):
        q = quantize_scores(small_scores, bits=16)
        np.testing.assert_allclose(q, small_scores, atol=1e-3)

    def test_constant_input(self):
        x = np.full((4, 4), 2.5)
        np.testing.assert_array_equal(quantize_scores(x, 4), x)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            quantize_scores(np.ones((2, 2)), bits=0)
