"""Unit tests for repro.attention.locality (Eq. 1 and overlap metrics)."""

import numpy as np
import pytest

from repro.attention.locality import (
    expected_random_overlap,
    measure_adjacent_overlap,
    measure_overlap_series,
    overlap_probability,
    overlap_ratio_vs_random,
)


class TestOverlapProbability:
    def test_sums_to_one(self):
        s, m = 40, 10
        total = sum(overlap_probability(s, m, l) for l in range(0, m + 1))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_full_overlap_when_all_unpruned(self):
        assert overlap_probability(10, 10, 10) == pytest.approx(1.0)

    def test_zero_prob_impossible_overlap(self):
        # Two 8-of-10 subsets must share at least 6 elements.
        assert overlap_probability(10, 8, 3) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_unpruned(self):
        with pytest.raises(ValueError):
            overlap_probability(10, 11, 2)


class TestExpectedRandomOverlap:
    def test_matches_closed_form(self):
        # Hypergeometric mean: E[L] = M^2 / S.
        for s, m in ((64, 16), (128, 32), (50, 13)):
            assert expected_random_overlap(s, m) == pytest.approx(
                m * m / s, rel=1e-9
            )

    def test_zero_unpruned(self):
        assert expected_random_overlap(32, 0) == 0.0

    def test_all_unpruned(self):
        assert expected_random_overlap(16, 16) == pytest.approx(16.0)


class TestMeasureAdjacentOverlap:
    def test_identical_rows_full_overlap(self):
        keep = np.zeros((4, 16), dtype=bool)
        keep[:, :5] = True
        assert measure_adjacent_overlap(keep) == pytest.approx(1.0)

    def test_disjoint_rows_zero_overlap(self):
        keep = np.zeros((2, 8), dtype=bool)
        keep[0, :4] = True
        keep[1, 4:] = True
        assert measure_adjacent_overlap(keep) == 0.0

    def test_random_matches_theory(self, rng):
        s, m = 128, 32
        keep = np.zeros((200, s), dtype=bool)
        for i in range(200):
            keep[i, rng.choice(s, m, replace=False)] = True
        observed = measure_adjacent_overlap(keep)
        expected = expected_random_overlap(s, m) / m
        assert observed == pytest.approx(expected, abs=0.03)

    def test_single_row(self):
        keep = np.ones((1, 8), dtype=bool)
        assert measure_adjacent_overlap(keep) == 0.0

    def test_skips_empty_rows(self):
        keep = np.zeros((3, 8), dtype=bool)
        keep[0, :4] = True
        keep[2, :4] = True  # row 1 empty
        val = measure_adjacent_overlap(keep)
        assert 0.0 <= val <= 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            measure_adjacent_overlap(np.ones(8, dtype=bool))

    def test_series_length(self, rng):
        keep = rng.random((10, 16)) < 0.3
        assert measure_overlap_series(keep).shape == (9,)


class TestOverlapRatio:
    def test_structured_beats_random(self, small_workload):
        sample = small_workload.samples[0]
        keep = sample.keep_mask[: sample.valid_len, : sample.valid_len]
        ratio = overlap_ratio_vs_random(keep)
        assert ratio > 1.5  # paper reports 2-3x

    def test_random_near_one(self, rng):
        s, m = 128, 32
        keep = np.zeros((100, s), dtype=bool)
        for i in range(100):
            keep[i, rng.choice(s, m, replace=False)] = True
        assert overlap_ratio_vs_random(keep) == pytest.approx(1.0, abs=0.15)

    def test_empty_mask(self):
        assert overlap_ratio_vs_random(np.zeros((4, 8), dtype=bool)) == 0.0
