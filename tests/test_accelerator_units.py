"""Unit tests for QK-PU, V-PU, buffers, and the CORELET."""

import numpy as np
import pytest

from repro.accelerator.buffers import IndexBuffer, SRAMBuffer
from repro.accelerator.corelet import Corelet
from repro.accelerator.qkpu import QKProcessingUnit
from repro.accelerator.vpu import VProcessingUnit


class TestQKPU:
    def test_dot_exact(self, rng):
        pu = QKProcessingUnit()
        q = rng.integers(-128, 128, size=64)
        k = rng.integers(-128, 128, size=64)
        assert pu.dot(q, k) == int(q @ k)

    def test_cycles_per_key(self):
        pu = QKProcessingUnit(taps=64)
        assert pu.cycles_per_key(64) == 1
        assert pu.cycles_per_key(128) == 2
        assert pu.cycles_per_key(65) == 2

    def test_batch_matches_loop(self, rng):
        pu = QKProcessingUnit()
        q = rng.integers(-8, 8, size=16)
        k = rng.integers(-8, 8, size=(5, 16))
        np.testing.assert_array_equal(pu.dot_batch(q, k), k @ q)

    def test_stats(self, rng):
        pu = QKProcessingUnit()
        pu.dot_batch(rng.integers(-8, 8, 64), rng.integers(-8, 8, (3, 64)))
        assert pu.stats.dot_products == 3
        assert pu.stats.macs == 3 * 64
        assert pu.stats.cycles == 3

    def test_shape_validation(self, rng):
        pu = QKProcessingUnit()
        with pytest.raises(ValueError):
            pu.dot(np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            pu.dot_batch(np.ones(4), np.ones((2, 5)))


class TestVPU:
    def test_weighted_sum_exact(self, rng):
        vpu = VProcessingUnit()
        p = rng.random(5)
        v = rng.normal(size=(5, 8))
        np.testing.assert_allclose(vpu.weighted_sum(p, v), p @ v)

    def test_stats(self, rng):
        vpu = VProcessingUnit()
        vpu.weighted_sum(rng.random(4), rng.normal(size=(4, 64)))
        assert vpu.stats.weighted_rows == 4
        assert vpu.stats.macs == 4 * 64

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            VProcessingUnit().weighted_sum(np.ones(3), np.ones((4, 8)))


class TestSRAMBuffer:
    def test_capacity_vectors(self):
        buf = SRAMBuffer(capacity_bytes=1024, vector_bytes=64)
        assert buf.capacity_vectors == 16

    def test_insert_touch(self):
        buf = SRAMBuffer(1024, 64)
        buf.insert(3)
        assert buf.contains(3)
        assert buf.touch(3)
        assert not buf.touch(4)

    def test_lru_eviction(self):
        buf = SRAMBuffer(128, 64)  # holds 2 vectors
        buf.insert(0)
        buf.insert(1)
        buf.touch(0)  # 1 becomes LRU
        evicted = buf.insert(2)
        assert evicted == 1
        assert buf.contains(0) and buf.contains(2)

    def test_no_eviction_reinsert(self):
        buf = SRAMBuffer(128, 64)
        buf.insert(0)
        buf.insert(0)
        assert buf.stats.evictions == 0

    def test_stall_cycles_accumulate(self):
        # Section VI: no double-buffering -> short stall per arrival.
        buf = SRAMBuffer(1024, 64)
        for i in range(5):
            buf.insert(i)
        assert buf.stats.stall_cycles == 5

    def test_resident_mask(self):
        buf = SRAMBuffer(1024, 64)
        buf.insert(2)
        mask = buf.resident_mask(4)
        np.testing.assert_array_equal(mask, [False, False, True, False])

    def test_flush(self):
        buf = SRAMBuffer(1024, 64)
        buf.insert(1)
        buf.flush()
        assert buf.occupancy() == 0

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            SRAMBuffer(capacity_bytes=32, vector_bytes=64)


class TestIndexBuffer:
    def test_fifo_order_when_all_available(self):
        buf = IndexBuffer(16)
        buf.load([3, 1, 4])
        order = [buf.next_available(lambda t: True) for _ in range(3)]
        assert order == [3, 1, 4]

    def test_rotating_pointer_bypasses_misses(self):
        # Section VI: a rotating pointer skips unavailable keys.
        buf = IndexBuffer(16)
        buf.load([0, 1, 2])
        available = {0, 2}
        first = buf.next_available(lambda t: t in available)
        second = buf.next_available(lambda t: t in available)
        assert [first, second] == [0, 2]
        # Index 1 arrives later and is then served.
        available.add(1)
        assert buf.next_available(lambda t: t in available) == 1

    def test_none_when_empty_or_stalled(self):
        buf = IndexBuffer(4)
        assert buf.next_available(lambda t: True) is None
        buf.load([5])
        assert buf.next_available(lambda t: False) is None
        assert buf.pending() == [5]

    def test_capacity_enforced(self):
        buf = IndexBuffer(2)
        with pytest.raises(ValueError):
            buf.load([1, 2, 3])


class TestCorelet:
    @pytest.fixture
    def corelet(self):
        return Corelet(corelet_id=0, head_dim=16, kv_capacity_bytes=1024)

    def test_process_query_matches_reference(self, corelet, rng):
        keys = rng.normal(size=(8, 16))
        values = rng.normal(size=(8, 16))
        for i in range(8):
            corelet.load_vector(i, keys[i], values[i])
        q = rng.normal(size=16)
        out = corelet.process_query(q, list(range(8)))
        scores = (keys @ q) / 4.0
        e = np.exp(scores - scores.max())
        ref = (e / e.sum()) @ values
        # LUT softmax quantization leaves a small error.
        assert np.max(np.abs(out - ref)) < 0.1 * max(1.0, np.abs(ref).max())

    def test_misses_are_bypassed(self, corelet, rng):
        corelet.load_vector(0, rng.normal(size=16), rng.normal(size=16))
        out = corelet.process_query(rng.normal(size=16), [0, 5])
        assert corelet.stats.miss_bypasses == 1
        assert out.shape == (16,)

    def test_empty_query_returns_zero(self, corelet, rng):
        out = corelet.process_query(rng.normal(size=16), [])
        np.testing.assert_array_equal(out, np.zeros(16))

    def test_eviction_drops_data(self, rng):
        corelet = Corelet(0, head_dim=16, kv_capacity_bytes=32)  # 2 vectors
        for i in range(3):
            corelet.load_vector(i, rng.normal(size=16), rng.normal(size=16))
        assert len(corelet.resident_tokens()) == 2

    def test_stats_accumulate(self, corelet, rng):
        for i in range(4):
            corelet.load_vector(i, rng.normal(size=16), rng.normal(size=16))
        corelet.process_query(rng.normal(size=16), [0, 1, 2, 3])
        assert corelet.stats.queries == 1
        assert corelet.stats.keys_scored == 4
        assert corelet.stats.compute_cycles > 0

    def test_query_shape_validated(self, corelet):
        with pytest.raises(ValueError):
            corelet.process_query(np.zeros(8), [0])
