"""Tests for the observability layer (:mod:`repro.obs`).

Covers the ISSUE-6 acceptance surface: the StreamingHistogram quantile
error bound vs ``np.percentile`` across seeds and distributions, merge
associativity (shard sketches fold into exactly the concatenated
population's sketch), Chrome-trace JSON schema validity plus
byte-identical traces across runs *and* across the two serving
engines, tracing/telemetry being inert by default (bitwise-unchanged
results), the NaN-degenerate empty ``LatencyStats``, the
``describe()`` queue-wait line, the sketch-mode ``summarize`` path,
and the runner's ``--metrics-out`` run manifest (schema version,
unit-cache accounting, determinism modulo the single wall field).
"""

import json
import math
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.experiments import registry
from repro.experiments.runner import main
from repro.obs import (
    MANIFEST_SCHEMA,
    Counter,
    Gauge,
    RunTelemetry,
    StreamingHistogram,
    TraceConfig,
    TraceRecorder,
    set_telemetry,
)
from repro.obs import telemetry as telemetry_mod
from repro.serving import (
    DynamicBatcher,
    LatencyStats,
    PoissonProcess,
    ServiceCostModel,
    ServingSimulator,
    SprintDevice,
    generate_request_table,
    simulate_table,
    summarize,
)


@pytest.fixture(scope="module")
def cost_model():
    return ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)


@pytest.fixture(scope="module")
def stream(cost_model):
    table = generate_request_table(
        PoissonProcess(150.0), "BERT-B", count=300, seed=2
    )
    cost_model.prime(table.specs[0], table.valid_len)
    return table


# ----------------------------------------------------------------------
# streaming metrics
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("hits")
        assert c.inc() == 1
        assert c.inc(4) == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("workers")
        g.set(4)
        g.set(2)
        assert g.value == 2

    def test_counter_increment_by_zero_is_a_noop(self):
        # The fault-mode stream fold increments the retried-completed
        # counter by the chunk's retry count, which is routinely zero.
        c = Counter("retried_completed")
        assert c.inc(0) == 0
        c.inc(3)
        assert c.inc(0) == 3


def _distributions(seed):
    rng = np.random.default_rng(seed)
    return {
        "lognormal": rng.lognormal(-5.0, 1.5, 20_000),
        "exponential": rng.exponential(0.02, 20_000),
        "uniform": rng.uniform(0.0, 0.3, 20_000),
        "bimodal": np.concatenate(
            [rng.normal(0.002, 2e-4, 10_000), rng.normal(0.15, 0.01, 10_000)]
        ).clip(min=0.0),
    }


class TestStreamingHistogram:
    @pytest.mark.parametrize("seed", (0, 1, 7))
    def test_quantile_within_documented_bound(self, seed):
        """The documented contract: quantile(q) is within
        rel_error_bound (relative) of the exact order statistic at the
        same rank (np.percentile with method='higher'), or within
        min_value absolutely for sub-resolution values."""
        for name, samples in _distributions(seed).items():
            sketch = StreamingHistogram()
            sketch.add_many(samples)
            for q in (50.0, 90.0, 95.0, 99.0, 99.9):
                est = sketch.quantile(q)
                exact = float(np.percentile(samples, q, method="higher"))
                err = abs(est - exact)
                bound = max(
                    sketch.rel_error_bound * exact, sketch.min_value
                )
                assert err <= bound, (name, q, est, exact)

    def test_mean_max_min_count_exact(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(0.01, 5000)
        sketch = StreamingHistogram()
        sketch.add_many(samples)
        assert sketch.count == 5000
        assert sketch.max == samples.max()
        assert sketch.min == samples.min()
        assert sketch.mean == pytest.approx(samples.mean(), rel=1e-12)

    def test_merge_equals_sketch_of_concatenation(self):
        """Merge associativity: per-shard sketches folded together have
        exactly the concatenated population's bucket counts (and hence
        identical quantiles), in any merge order."""
        rng = np.random.default_rng(11)
        samples = rng.lognormal(-4.0, 1.0, 30_000)
        shards = np.array_split(samples, 4)
        sketches = []
        for shard in shards:
            s = StreamingHistogram()
            s.add_many(shard)
            sketches.append(s)

        left = StreamingHistogram()
        for s in sketches:
            left.merge(s)
        right = StreamingHistogram()
        for s in reversed(sketches):
            right.merge(s)
        whole = StreamingHistogram()
        whole.add_many(samples)

        for merged in (left, right):
            assert np.array_equal(merged.bucket_counts, whole.bucket_counts)
            assert merged.count == whole.count
            assert merged.max == whole.max
            assert merged.min == whole.min
            assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
            for q in (50.0, 95.0, 99.0):
                assert merged.quantile(q) == whole.quantile(q)

    def test_merge_with_empty_histogram_changes_nothing(self):
        # The per-chunk retry-latency sketch is often empty (no retried
        # completions in a chunk); folding it into the running sketch
        # must leave every statistic bitwise unchanged -- and merging
        # *into* an empty sketch must equal the non-empty side.
        rng = np.random.default_rng(5)
        samples = rng.exponential(0.02, 2000)
        full = StreamingHistogram()
        full.add_many(samples)
        before = (
            full.bucket_counts.copy(),
            full.count,
            full.max,
            full.min,
            full.mean,
        )
        full.merge(StreamingHistogram())
        assert np.array_equal(full.bucket_counts, before[0])
        assert full.count == before[1]
        assert full.max == before[2]
        assert full.min == before[3]
        assert full.mean == before[4]

        other = StreamingHistogram()
        other.add_many(samples)
        empty = StreamingHistogram()
        empty.merge(other)
        assert np.array_equal(empty.bucket_counts, other.bucket_counts)
        assert empty.count == other.count
        assert empty.max == other.max
        assert empty.min == other.min
        # Two empties merged stay empty (NaN stats preserved).
        both = StreamingHistogram()
        both.merge(StreamingHistogram())
        assert both.count == 0
        assert math.isnan(both.quantile(99.0))

    def test_merge_rejects_mismatched_layout(self):
        a = StreamingHistogram()
        b = StreamingHistogram(buckets_per_decade=32)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_zeros_and_overflow_handled(self):
        sketch = StreamingHistogram(min_value=1e-6, max_value=1.0)
        sketch.add_many(np.array([0.0, 0.0, 5e-7, 0.5, 3.0, 7.0]))
        assert sketch.count == 6
        assert sketch.quantile(0.0) == 0.0  # underflow -> exact min
        assert sketch.quantile(100.0) == 7.0  # overflow -> exact max

    def test_empty_and_invalid(self):
        sketch = StreamingHistogram()
        assert math.isnan(sketch.quantile(99.0))
        assert math.isnan(sketch.mean)
        assert math.isnan(sketch.max)
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add_many(np.array([0.1, float("nan")]))
        with pytest.raises(ValueError):
            sketch.add(float("inf"))
        with pytest.raises(ValueError):
            sketch.quantile(101.0)
        with pytest.raises(ValueError):
            StreamingHistogram(min_value=0.0)


# ----------------------------------------------------------------------
# metrics integration: NaN degenerate stats, describe(), sketch path
# ----------------------------------------------------------------------
class TestLatencyStatsDegenerate:
    def test_empty_population_yields_nan_stats(self):
        stats = LatencyStats.from_samples([])
        for field in ("mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
            assert math.isnan(getattr(stats, field))

    def test_empty_sketch_yields_nan_stats(self):
        stats = LatencyStats.from_sketch(StreamingHistogram())
        assert math.isnan(stats.p99_s)

    def test_nan_p99_never_meets_sla(self, stream, cost_model):
        report = summarize(
            simulate_table(stream, cost_model), "S-SPRINT", "sprint",
            "poisson", 150.0, sla_s=0.1,
        )
        degenerate = type(report)(
            **{**report.__dict__, "latency": LatencyStats.from_samples([])}
        )
        assert not degenerate.meets_sla()


class TestReportDescribe:
    def test_describe_prints_queue_wait_line(self, stream, cost_model):
        report = summarize(
            simulate_table(stream, cost_model), "S-SPRINT", "sprint",
            "poisson", 150.0, sla_s=0.1,
        )
        text = report.describe()
        assert "queue wait p50/p99" in text
        assert f"{report.queue_wait.p99_s * 1e3:,.2f}" in text


class TestSketchSummarize:
    def test_sketch_report_within_bound_of_exact(self, stream, cost_model):
        result = simulate_table(stream, cost_model, num_devices=2)
        kwargs = dict(
            config="S-SPRINT", mode="sprint", pattern="poisson",
            offered_rps=150.0, sla_s=0.1,
        )
        exact = summarize(result, **kwargs)
        sketch = summarize(result, exact=False, **kwargs)
        bound = StreamingHistogram().rel_error_bound
        for stats_exact, stats_sketch, column in (
            (exact.latency, sketch.latency, result.latency_s),
            (exact.queue_wait, sketch.queue_wait, result.queue_wait_s),
        ):
            # mean/max exact; percentiles within the documented bound
            # of the 'higher' order statistic.
            assert stats_sketch.mean_s == pytest.approx(
                stats_exact.mean_s, rel=1e-12
            )
            assert stats_sketch.max_s == stats_exact.max_s
            for q, got in (
                (50.0, stats_sketch.p50_s),
                (95.0, stats_sketch.p95_s),
                (99.0, stats_sketch.p99_s),
            ):
                anchor = float(np.percentile(column, q, method="higher"))
                assert abs(got - anchor) <= max(anchor * bound, 1e-7)
        # Everything that is not a percentile is identical.
        assert sketch.requests == exact.requests
        assert sketch.throughput_rps == exact.throughput_rps
        assert sketch.utilization == exact.utilization
        assert sketch.energy_uj == exact.energy_uj
        assert sketch.sla_violations == exact.sla_violations
        assert sketch.mean_batch_size == exact.mean_batch_size


# ----------------------------------------------------------------------
# sim-time tracing
# ----------------------------------------------------------------------
def _validate_chrome_trace(payload):
    assert isinstance(payload["traceEvents"], list)
    assert payload["traceEvents"], "trace must not be empty"
    for event in payload["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "M")
        if event["ph"] == "X":
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["cat"] in ("request", "batch")


class TestTraceConfig:
    def test_head_and_stride_sampling(self):
        config = TraceConfig(head=4, stride=10)
        wanted = [i for i in range(25) if config.wants(i)]
        assert wanted == [0, 1, 2, 3, 10, 20]
        assert np.array_equal(
            config.mask(np.arange(25)),
            np.isin(np.arange(25), wanted),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(head=-1)
        with pytest.raises(ValueError):
            TraceConfig(stride=-2)


class TestTracing:
    def test_tracing_does_not_change_results(self, stream, cost_model):
        recorder = TraceRecorder(TraceConfig(head=50))
        traced = simulate_table(
            stream, cost_model, num_devices=2, recorder=recorder
        )
        plain = simulate_table(stream, cost_model, num_devices=2)
        assert np.array_equal(traced.finish_s, plain.finish_s)
        assert np.array_equal(traced.device_id, plain.device_id)
        assert traced.device_busy_s == plain.device_busy_s
        assert recorder.sampled_requests == 50

    def test_identical_runs_write_byte_identical_traces(
        self, stream, cost_model, tmp_path
    ):
        paths = []
        for run in range(2):
            recorder = TraceRecorder(TraceConfig(head=64, stride=37))
            simulate_table(
                stream, cost_model, num_devices=2, recorder=recorder
            )
            paths.append(recorder.write(tmp_path / f"run{run}.json"))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_fast_and_reference_traces_byte_identical(
        self, stream, cost_model, tmp_path
    ):
        """Spans are derived from the bitwise-equal lifecycle records,
        so the two engines must emit byte-identical trace files."""
        fast = TraceRecorder(TraceConfig(head=64, stride=37))
        simulate_table(stream, cost_model, num_devices=2, recorder=fast)
        reference = TraceRecorder(TraceConfig(head=64, stride=37))
        ServingSimulator(
            [SprintDevice(i, cost_model) for i in range(2)],
            DynamicBatcher(8, 2e-3),
            reference,
        ).run(stream.to_requests())
        fast_path = fast.write(tmp_path / "fast.json")
        reference_path = reference.write(tmp_path / "reference.json")
        assert fast_path.read_bytes() == reference_path.read_bytes()

    def test_chrome_trace_schema(self, stream, cost_model, tmp_path):
        recorder = TraceRecorder(TraceConfig(head=32))
        simulate_table(stream, cost_model, recorder=recorder)
        path = recorder.write(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        _validate_chrome_trace(payload)
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        request_spans = [e for e in spans if e["cat"] == "request"]
        # Three lifecycle spans (queue/dispatch/compute) per sampled
        # request, and every sampled id is below the head.
        assert len(request_spans) == 3 * recorder.sampled_requests
        assert {e["name"] for e in request_spans} == {
            "queue", "dispatch", "compute",
        }
        assert all(e["tid"] < 32 for e in request_spans)
        assert [e for e in spans if e["cat"] == "batch"]

    def test_request_span_timestamps_are_sim_time(self, cost_model):
        table = generate_request_table(
            PoissonProcess(100.0), "BERT-B", count=20, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        recorder = TraceRecorder(TraceConfig(head=20))
        result = simulate_table(table, cost_model, recorder=recorder)
        payload = recorder.to_chrome_trace()
        queue = {
            e["tid"]: e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "queue"
        }
        for i, rid in enumerate(result.table.request_id):
            span = queue[int(rid)]
            assert span["ts"] == float(result.table.arrival_s[i]) * 1e6
            assert span["dur"] == pytest.approx(
                (result.batched_s[i] - result.table.arrival_s[i]) * 1e6
            )


# ----------------------------------------------------------------------
# runtime telemetry and the run manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ObsUnit:
    point: int

    @property
    def key(self):
        return ("obsplan", self.point)

    @property
    def group(self):
        return ("obsplan",)

    def execute(self):
        return float(self.point * 2)


@dataclass(frozen=True)
class _ObsRow:
    label: str
    value: float


_OBS_PRIMED = {}


def _obs_module():
    def run(points=(1, 2, 3)):
        rows = []
        for p in points:
            result = _OBS_PRIMED.get(("obsplan", p))
            if result is None:
                result = _ObsUnit(p).execute()
            rows.append(_ObsRow(str(p), result))
        return rows

    return SimpleNamespace(
        run=run,
        format_table=lambda rows: ", ".join(
            f"{r.label}={r.value}" for r in rows
        ),
        plan=lambda points=(1, 2, 3): [_ObsUnit(p) for p in points],
        prime=lambda key, result: _OBS_PRIMED.__setitem__(
            tuple(key), result
        ),
        clear_primed=_OBS_PRIMED.clear,
    )


@pytest.fixture()
def obs_registry(monkeypatch):
    monkeypatch.setitem(registry.EXPERIMENTS, "obsplan", ({}, _obs_module()))


class TestRunTelemetry:
    def test_counters_events_and_manifest_shape(self):
        tele = RunTelemetry(jobs=2, fast=True)
        tele.count("units.executed", 5)
        tele.gauge("shard_size", 7)
        tele.event("shard", group="('obsplan',)", units=5)
        tele.record_experiment("serving", seconds=1.25, cached=False)
        tele.record_experiment("fig11", seconds=0.0, error="Boom: bad")
        manifest = tele.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["kind"] == "sprint-run-manifest"
        assert manifest["workers"] == 2
        assert manifest["counters"]["units.executed"] == 5
        # Core accounting keys are always present, even untouched.
        assert manifest["counters"]["unit_cache.hits"] == 0
        assert manifest["counters"]["unit_cache.misses"] == 0
        assert manifest["counters"]["experiments.failed"] == 1
        assert manifest["experiments"]["serving"] == {
            "ok": True, "cached": False, "error": None,
        }
        assert manifest["experiments"]["fig11"]["error"] == "Boom: bad"
        assert manifest["wall"]["experiment_s"]["serving"] == 1.25
        assert isinstance(manifest["code_version"], str)
        json.dumps(manifest)  # JSON-safe throughout

    def test_helpers_are_noops_when_inactive(self, capsys):
        assert telemetry_mod.get_telemetry() is None
        telemetry_mod.count("units.executed")
        telemetry_mod.event("shard", units=1)
        telemetry_mod.warn("fallback engaged")
        assert "warning: fallback engaged" in capsys.readouterr().err

    def test_warn_records_event_and_echoes_stderr(self, capsys):
        tele = RunTelemetry()
        set_telemetry(tele)
        try:
            telemetry_mod.warn("shard failed", source="test")
        finally:
            set_telemetry(None)
        assert "warning: shard failed" in capsys.readouterr().err
        assert tele.events == [
            {"kind": "warning", "message": "shard failed", "source": "test"}
        ]


class TestRunnerManifest:
    def _run(self, argv):
        assert main(argv) == 0

    def test_manifest_records_unit_cache_accounting(
        self, obs_registry, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        self._run(
            ["obsplan", "--cache-dir", str(cache), "--metrics-out", str(cold)]
        )
        manifest = json.loads(cold.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["counters"]["units.planned"] == 3
        assert manifest["counters"]["units.executed"] == 3
        assert manifest["counters"]["unit_cache.misses"] == 3
        assert manifest["experiments"]["obsplan"]["ok"] is True

        # Drop the whole-artifact entries so the warm run exercises the
        # unit granularity: every point must replay from the unit cache.
        for artifact in cache.glob("*.json"):
            artifact.unlink()
        self._run(
            ["obsplan", "--cache-dir", str(cache), "--metrics-out", str(warm)]
        )
        manifest = json.loads(warm.read_text())
        assert manifest["counters"]["unit_cache.hits"] == 3
        assert manifest["counters"]["units.replayed"] == 3
        assert manifest["counters"]["units.executed"] == 0

    def test_manifest_byte_identical_modulo_wall(
        self, obs_registry, tmp_path, capsys
    ):
        payloads = []
        for run in range(2):
            out = tmp_path / f"m{run}.json"
            self._run(["obsplan", "--metrics-out", str(out)])
            payload = json.loads(out.read_text())
            assert set(payload) > {"schema", "wall", "counters"}
            del payload["wall"]  # the single wall-clock field
            payloads.append(json.dumps(payload, sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_telemetry_cleared_after_run(self, obs_registry, tmp_path, capsys):
        self._run(["obsplan", "--metrics-out", str(tmp_path / "m.json")])
        assert telemetry_mod.get_telemetry() is None

    def test_trace_out_writes_serving_traces(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        self._run(
            [
                "serving", "--fast",
                "--trace-out", str(trace_dir),
                "--trace-head", "32",
                "--metrics-out", str(tmp_path / "m.json"),
            ]
        )
        traces = sorted(trace_dir.glob("serving-*.json"))
        assert traces, "serving sweep must emit per-point trace files"
        for path in traces:
            _validate_chrome_trace(json.loads(path.read_text()))
