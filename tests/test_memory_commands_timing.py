"""Unit tests for repro.memory.commands and repro.memory.timing."""

import pytest

from repro.memory.commands import CommandKind, MemoryCommand, MemoryRequest
from repro.memory.timing import DEFAULT_TIMING, TimingParameters


class TestCommandKind:
    def test_new_commands_exist(self):
        assert CommandKind.COPY_Q.value == "CopyQ"
        assert CommandKind.READ_P.value == "ReadP"

    def test_copyq_does_not_touch_row(self):
        # CopyQ targets an isolated buffer (section V-C).
        assert not CommandKind.COPY_Q.touches_row()

    def test_readp_touches_row(self):
        # ReadP goes through the bank row buffers.
        assert CommandKind.READ_P.touches_row()

    def test_standard_commands_touch_rows(self):
        for kind in (CommandKind.ACTIVATE, CommandKind.PRECHARGE,
                     CommandKind.READ, CommandKind.WRITE):
            assert kind.touches_row()


class TestMemoryRequest:
    def test_defaults(self):
        r = MemoryRequest(token_index=5)
        assert not r.is_write
        assert r.kind_hint is None

    def test_frozen(self):
        r = MemoryRequest(token_index=1)
        with pytest.raises(Exception):
            r.token_index = 2


class TestTimingParameters:
    def test_copyq_skips_rcd_rp(self):
        t = DEFAULT_TIMING
        # CopyQ pays only tCL (isolated buffer, bus occupancy).
        assert t.command_latency(CommandKind.COPY_Q) == t.t_cl

    def test_readp_follows_read_timing(self):
        t = DEFAULT_TIMING
        assert (
            t.command_latency(CommandKind.READ_P)
            == t.command_latency(CommandKind.READ)
        )

    def test_reram_read_derating(self):
        t = TimingParameters(reram_read_multiplier=1.6)
        base = TimingParameters(reram_read_multiplier=1.0)
        assert (
            t.command_latency(CommandKind.READ)
            > base.command_latency(CommandKind.READ)
        )

    def test_taxth_under_8(self):
        # Paper: circuit simulations show tAxTh < 8 cycles.
        assert DEFAULT_TIMING.t_axth <= 8

    def test_bus_occupancy(self):
        t = DEFAULT_TIMING
        assert t.bus_occupancy(CommandKind.READ) == t.t_burst
        assert t.bus_occupancy(CommandKind.COPY_Q) == t.t_burst
        assert t.bus_occupancy(CommandKind.ACTIVATE) == 0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.command_latency("bogus")

    def test_command_str(self):
        cmd = MemoryCommand(kind=CommandKind.READ, channel=1, bank=2, row=3)
        assert "RD" in str(cmd)
