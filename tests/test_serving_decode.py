"""Generative decode serving: equivalence, goldens, and metrics.

Four contracts pinned here:

1. **Golden decode streams** -- the 4-phase generative draw order
   (arrivals, picks, jitter, output lengths) is hash-pinned, and the
   columnar decode engine's output columns on a golden stream are
   hash-pinned too: any drift in generation or engine semantics breaks
   a digest.
2. **Columnar vs reference, bitwise** -- the fast decode engine
   (:func:`repro.serving.decode.simulate_decode_table`) must equal the
   :class:`~repro.serving.scheduler.GenerativeServingSimulator`
   reference loop exactly, across patterns x seeds x device counts x
   wait bounds, including mixed prefill/decode queues and
   duplicate-name spec lists -- and the chunked stream driver must
   equal the whole-table run at any chunk size.
3. **Degeneration** -- with every ``output_len == 1`` the generative
   machinery reduces exactly to the prefill-only engines (same floats,
   same batches).
4. **Per-token metrics** -- TTFT/TBT invariants on the result columns,
   and :func:`~repro.serving.metrics.summarize_stream`'s sketch
   percentiles within the documented relative error bound of the exact
   whole-table report on decode traffic.
"""

import hashlib

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    BurstyProcess,
    ContinuousBatcher,
    DynamicBatcher,
    GenerativeServingSimulator,
    PoissonProcess,
    Request,
    RequestStream,
    RequestTable,
    ServiceCostModel,
    ServingSimulator,
    SprintDevice,
    StepItem,
    TraceProcess,
    generate_request_table,
    generate_requests,
    sample_output_lens,
    simulate_decode_table,
    simulate_stream,
    simulate_table,
    summarize,
    summarize_stream,
)
from repro.serving.decode import simulate_decode_stream

SEEDS = (0, 1, 7)
DEVICE_COUNTS = (1, 2, 4)
WAITS = (0.0, 2e-3)
MIX = {"BERT-B": 0.6, "GPT-2-L": 0.4}


def make_process(pattern):
    return {
        "poisson": PoissonProcess(rate_rps=120.0),
        "bursty": BurstyProcess(40.0, 150.0, 0.5, 0.1),
        "trace": TraceProcess([0.01, 0.002, 0.005]),
    }[pattern]


@pytest.fixture(scope="module")
def cost_model():
    """One shared memoized cost model across the equivalence matrix."""
    return ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)


def assert_generative_equal(table, cost, num_devices, max_wait_s,
                            max_batch_size=8):
    """Run fast + reference on one generative stream; exact equality."""
    fast = simulate_decode_table(
        table,
        cost,
        num_devices=num_devices,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
    ).to_result()
    reference = GenerativeServingSimulator(
        [SprintDevice(i, cost) for i in range(num_devices)],
        ContinuousBatcher(max_batch_size, max_wait_s),
    ).run(table.to_requests())
    assert len(fast.records) == len(reference.records)
    for a, b in zip(fast.records, reference.records):
        assert a == b  # dataclass equality: every timestamp, exactly
    for field in (
        "start_s", "end_s", "device_busy_s", "device_energy_pj",
        "batches", "prefill_batches", "decode_batches",
        "size_triggered_batches", "timeout_triggered_batches",
        "total_tokens",
    ):
        assert getattr(fast, field) == getattr(reference, field), field


class TestDecodeEquivalence:
    @pytest.mark.parametrize("pattern", ("poisson", "bursty", "trace"))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
    @pytest.mark.parametrize("max_wait_s", WAITS)
    def test_records_exactly_equal(
        self, cost_model, pattern, seed, num_devices, max_wait_s
    ):
        table = generate_request_table(
            make_process(pattern), MIX, count=100, seed=seed,
            mean_output_tokens=8.0,
        )
        for idx, spec in enumerate(table.specs):
            cost_model.prime(spec, table.valid_len[table.spec_idx == idx])
        assert_generative_equal(table, cost_model, num_devices, max_wait_s)

    def test_other_modes_equal(self):
        for mode in (ExecutionMode.BASELINE, ExecutionMode.PRUNING_ONLY):
            cost = ServiceCostModel(S_SPRINT, mode)
            table = generate_request_table(
                PoissonProcess(90.0), "BERT-B", count=120, seed=3,
                mean_output_tokens=16.0,
            )
            assert_generative_equal(table, cost, 2, 2e-3)

    def test_repeated_model_in_mix_shares_one_queue(self, cost_model):
        # The reference batcher keys step queues on (model *name*,
        # phase); a pair-list mix naming the same model twice must not
        # split the fast engine's queues.
        table = generate_request_table(
            PoissonProcess(120.0),
            [("BERT-B", 0.5), ("BERT-B", 0.3), ("GPT-2-L", 0.2)],
            count=150,
            seed=0,
            mean_output_tokens=6.0,
        )
        assert len(table.specs) == 3
        assert_generative_equal(table, cost_model, 2, 2e-3)

    def test_single_step_batches(self, cost_model):
        # max_batch_size=1 seals every step on admission.
        table = generate_request_table(
            PoissonProcess(60.0), "BERT-B", count=60, seed=2,
            mean_output_tokens=4.0,
        )
        assert_generative_equal(
            table, cost_model, 2, 2e-3, max_batch_size=1
        )

    def test_simulate_table_routes_generative(self, cost_model):
        table = generate_request_table(
            PoissonProcess(90.0), "BERT-B", count=80, seed=4,
            mean_output_tokens=8.0,
        )
        routed = simulate_table(table, cost_model, num_devices=2)
        direct = simulate_decode_table(table, cost_model, num_devices=2)
        assert np.array_equal(routed.finish_s, direct.finish_s)
        assert np.array_equal(routed.first_token_s, direct.first_token_s)
        assert routed.total_tokens == direct.total_tokens


class TestDegeneration:
    def test_output_len_one_reduces_to_prefill_engines(self, cost_model):
        """output_len == 1 everywhere: the generative loop IS the
        legacy loop -- same batches, same floats, on both paths."""
        table = generate_request_table(
            PoissonProcess(120.0), {"BERT-B": 0.6, "ViT-B": 0.4},
            count=150, seed=3,
        )
        legacy_ref = ServingSimulator(
            [SprintDevice(i, cost_model) for i in range(2)],
            DynamicBatcher(),
        ).run(table.to_requests())
        gen_ref = GenerativeServingSimulator(
            [SprintDevice(i, cost_model) for i in range(2)],
            ContinuousBatcher(),
        ).run(table.to_requests())
        for lrec, grec in zip(legacy_ref.records, gen_ref.records):
            assert lrec.batched_s == grec.prefill_batched_s
            assert lrec.service_start_s == grec.prefill_start_s
            assert lrec.finish_s == grec.first_token_s == grec.finish_s
            assert lrec.device_id == grec.prefill_device_id
            assert lrec.batch_size == grec.prefill_batch_size
            assert grec.decode_slots == 0
        assert legacy_ref.device_busy_s == gen_ref.device_busy_s
        assert legacy_ref.device_energy_pj == gen_ref.device_energy_pj
        assert legacy_ref.batches == gen_ref.batches
        assert gen_ref.decode_batches == 0

        legacy_fast = simulate_table(table, cost_model, num_devices=2)
        gen_fast = simulate_decode_table(table, cost_model, num_devices=2)
        assert np.array_equal(legacy_fast.finish_s, gen_fast.finish_s)
        assert np.array_equal(
            legacy_fast.batched_s, gen_fast.prefill_batched_s
        )
        assert np.array_equal(
            legacy_fast.service_start_s, gen_fast.prefill_start_s
        )
        assert np.array_equal(
            legacy_fast.device_id, gen_fast.prefill_device_id
        )
        assert legacy_fast.device_busy_s == gen_fast.device_busy_s

    def test_zero_padding_model_caps_output_at_one(self):
        # ViT-B has no padding headroom: valid_len == seq_len, so the
        # geometric draw clips every output to a single token.
        table = generate_request_table(
            PoissonProcess(60.0), "ViT-B", count=100, seed=0,
            mean_output_tokens=32.0,
        )
        assert table.output_len is not None
        assert np.all(table.output_len == 1)


class TestChunkedDecodeStream:
    @pytest.mark.parametrize("chunk_size", (1, 7, 64, 1000))
    def test_stream_equals_whole_table(self, cost_model, chunk_size):
        stream = RequestStream(
            process=PoissonProcess(130.0),
            mix=MIX,
            count=300,
            seed=5,
            chunk_size=chunk_size,
            mean_output_tokens=10.0,
        )
        whole = simulate_decode_table(
            stream.materialize(), cost_model, num_devices=2
        )
        got = {}

        def sink(c):
            for name in (
                "request_id", "arrival_s", "spec_idx", "valid_len",
                "output_len", "prefill_batched_s", "prefill_start_s",
                "first_token_s", "finish_s", "prefill_batch_size",
                "prefill_device_id", "decode_slots",
            ):
                got.setdefault(name, []).append(getattr(c, name))

        res = simulate_stream(
            stream.chunks(), cost_model, num_devices=2, sink=sink
        )
        cols = {k: np.concatenate(v) for k, v in got.items()}
        order = np.argsort(cols["request_id"], kind="stable")
        worder = np.argsort(whole.request_id, kind="stable")
        for name, col in cols.items():
            assert np.array_equal(
                col[order], getattr(whole, name)[worder]
            ), name
        for field in (
            "completed", "start_s", "end_s", "device_busy_s",
            "device_energy_pj", "batches", "prefill_batches",
            "decode_batches", "size_triggered_batches",
            "timeout_triggered_batches", "total_tokens",
        ):
            assert getattr(res, field) == getattr(whole, field), field

    def test_out_of_order_chunks_rejected(self, cost_model):
        table = generate_request_table(
            PoissonProcess(60.0), "BERT-B", count=40, seed=0,
            mean_output_tokens=4.0,
        )
        half = len(table) // 2
        with pytest.raises(ValueError, match="ordered"):
            simulate_decode_stream(
                [table.slice(half, len(table)), table.slice(0, half)],
                cost_model,
            )

    def test_empty_stream_rejected(self, cost_model):
        with pytest.raises(ValueError, match="empty"):
            simulate_decode_stream([], cost_model)


class TestPerTokenMetrics:
    def test_lifecycle_invariants(self, cost_model):
        table = generate_request_table(
            PoissonProcess(100.0), MIX, count=200, seed=1,
            mean_output_tokens=12.0,
        )
        res = simulate_decode_table(table, cost_model, num_devices=2)
        # Lifecycle ordering: arrival <= sealed <= started < first
        # token <= finish, per request.
        assert np.all(res.prefill_batched_s >= res.arrival_s)
        assert np.all(res.prefill_start_s >= res.prefill_batched_s)
        assert np.all(res.first_token_s > res.prefill_start_s)
        assert np.all(res.finish_s >= res.first_token_s)
        assert np.all(res.ttft_s > 0)
        assert np.all(res.latency_s >= res.ttft_s)
        # Single-token requests finish at their first token and have
        # no decode gaps; multi-token requests decode strictly after.
        single = res.output_len == 1
        assert np.array_equal(
            res.finish_s[single], res.first_token_s[single]
        )
        assert np.all(np.isnan(res.tbt_s[single]))
        multi = ~single
        assert np.all(res.finish_s[multi] > res.first_token_s[multi])
        assert np.all(res.tbt_s[multi] > 0)
        assert np.all(res.decode_slots[single] == 0)
        # Each decode step contributes >= 1 slot (its own occupancy).
        assert np.all(
            res.decode_slots[multi] >= res.output_len[multi] - 1
        )
        assert res.total_tokens == int(res.output_len.sum())

    def test_summarize_generative_fields(self, cost_model):
        table = generate_request_table(
            PoissonProcess(100.0), "BERT-B", count=150, seed=2,
            mean_output_tokens=8.0,
        )
        res = simulate_decode_table(table, cost_model, num_devices=2)
        report = summarize(res, "S", "sprint", "poisson", 100.0)
        ref_report = summarize(
            GenerativeServingSimulator(
                [SprintDevice(i, cost_model) for i in range(2)],
                ContinuousBatcher(),
            ).run(table.to_requests()),
            "S", "sprint", "poisson", 100.0,
        )
        assert report == ref_report  # both paths, one report
        assert report.generative
        assert report.total_tokens == res.total_tokens
        assert report.tokens_per_s > report.throughput_rps
        assert report.ttft.p99_s <= report.latency.p99_s
        assert "TTFT" in report.describe()
        # Prefill-only reports keep the legacy shape untouched.
        legacy = summarize(
            simulate_table(
                generate_request_table(
                    PoissonProcess(100.0), "BERT-B", count=100, seed=2
                ),
                cost_model,
            ),
            "S", "sprint", "poisson", 100.0,
        )
        assert not legacy.generative
        assert legacy.ttft is None and legacy.total_tokens == 0

    def test_summarize_stream_sketch_bounds(self, cost_model):
        stream = RequestStream(
            process=PoissonProcess(110.0),
            mix=MIX,
            count=400,
            seed=9,
            chunk_size=64,
            mean_output_tokens=8.0,
        )
        res = simulate_decode_table(
            stream.materialize(), cost_model, num_devices=2
        )
        exact = summarize(res, "S", "sprint", "poisson", 110.0, sla_s=0.5)
        sketched = summarize_stream(
            stream, cost_model, "S", "sprint", "poisson", 110.0,
            sla_s=0.5, num_devices=2,
        )
        # Exact aggregates are identical (same underlying run).
        assert sketched.requests == exact.requests
        assert sketched.duration_s == exact.duration_s
        assert sketched.energy_uj == exact.energy_uj
        assert sketched.total_tokens == exact.total_tokens
        assert sketched.sla_violations == exact.sla_violations
        assert sketched.mean_batch_size == exact.mean_batch_size
        # Percentiles within the sketch's documented bound of the
        # exact order statistic (same contract test_obs.py pins).
        from repro.obs.streaming import StreamingHistogram

        sk = StreamingHistogram()
        columns = {
            "latency": res.latency_s,
            "queue_wait": res.queue_wait_s,
            "ttft": res.ttft_s,
            "tbt": res.tbt_s[np.isfinite(res.tbt_s)],
        }
        for pop, col in columns.items():
            for q, attr in ((50, "p50_s"), (95, "p95_s"), (99, "p99_s")):
                order_stat = float(np.percentile(col, q, method="higher"))
                got = getattr(getattr(sketched, pop), attr)
                tol = max(sk.rel_error_bound * order_stat, sk.min_value)
                assert abs(got - order_stat) <= tol, (pop, q)
            assert getattr(sketched, pop).max_s == float(col.max())
            assert getattr(sketched, pop).mean_s == pytest.approx(
                float(col.mean()), rel=1e-12
            )


class TestValidation:
    def test_output_len_bounds(self):
        spec = generate_request_table(
            PoissonProcess(60.0), "BERT-B", count=1, seed=0
        ).specs[0]
        with pytest.raises(ValueError, match="output_len"):
            Request(
                request_id=0, arrival_s=0.0, spec=spec,
                valid_len=100, output_len=0,
            )
        with pytest.raises(ValueError, match="seq_len"):
            Request(
                request_id=0, arrival_s=0.0, spec=spec,
                valid_len=spec.seq_len, output_len=2,
            )

    def test_mean_output_tokens_below_one_rejected(self):
        with pytest.raises(ValueError, match="mean_output_tokens"):
            generate_request_table(
                PoissonProcess(60.0), "BERT-B", count=10, seed=0,
                mean_output_tokens=0.5,
            )

    def test_generative_table_routes_to_decode_shard(self, cost_model):
        """simulate_table_sharded no longer rejects generative tables:
        it routes to simulate_decode_table_sharded, bitwise equal to
        the serial decode run."""
        from repro.runtime.pool import simulate_table_sharded

        table = generate_request_table(
            PoissonProcess(60.0), {"BERT-B": 0.5, "ViT-B": 0.5},
            count=40, seed=0, mean_output_tokens=4.0,
        )
        serial = simulate_decode_table(table, cost_model, num_devices=2)
        sharded = simulate_table_sharded(
            table, cost_model, jobs=2, num_devices=2
        )
        assert np.array_equal(serial.finish_s, sharded.finish_s)
        assert np.array_equal(serial.first_token_s, sharded.first_token_s)
        assert serial.to_result().records == sharded.to_result().records

    def test_prefill_only_table_rejects_decode_shard(self, cost_model):
        from repro.runtime.pool import simulate_decode_table_sharded

        table = generate_request_table(
            PoissonProcess(60.0), "BERT-B", count=20, seed=0,
        )
        with pytest.raises(ValueError, match="output_len"):
            simulate_decode_table_sharded(table, cost_model, jobs=2)

    def test_sample_output_lens_chunk_split_bitwise(self):
        rng = np.random.default_rng(0)
        u = rng.uniform(size=1000)
        cap = np.full(1000, 50, dtype=np.int64)
        whole = sample_output_lens(u, 12.0, cap)
        parts = np.concatenate(
            [
                sample_output_lens(u[i : i + 137], 12.0, cap[i : i + 137])
                for i in range(0, 1000, 137)
            ]
        )
        assert np.array_equal(whole, parts)
        assert whole.min() >= 1 and whole.max() <= 50
        # Degenerate mean: every draw is exactly one token.
        assert np.all(sample_output_lens(u, 1.0, cap) == 1)


#: SHA-256 of (id, repr(arrival), model, valid_len, output_len) streams:
#: the 4-phase generative draw order, pinned.  Any drift in arrivals,
#: picks, jitter, or the geometric output draw breaks these.
GOLDEN_GENERATIVE_STREAMS = {
    "gen_poisson_s0": "bfddd81d1643ec296e99a192937ce52f6919a3a437e511c471eb1a4609626a3d",
    "gen_bursty_s1": "28ffadda8968c938f2046129bb76811698b8ce31778602d5132e84fc3a5661c0",
    "gen_mix_s7": "128bf175f39f479c2a3265820bf34ef6ad00448ac9da1baa09b3b0aa2787c06b",
}

GOLDEN_GENERATIVE_CASES = {
    "gen_poisson_s0": (
        lambda: PoissonProcess(90.0), MIX, 300, 0, 8.0
    ),
    "gen_bursty_s1": (
        lambda: BurstyProcess(40.0, 150.0, 0.5, 0.1), "BERT-B", 250, 1,
        16.0,
    ),
    "gen_mix_s7": (
        lambda: PoissonProcess(60.0),
        {"BERT-B": 0.5, "ViT-B": 0.3, "GPT-2-L": 0.2},
        400,
        7,
        4.0,
    ),
}

#: SHA-256 over the decode engine's outcome columns on the golden
#: generative streams at 2 devices -- pins the engine's semantics end
#: to end (and, via the equivalence suite, the reference loop's).
#: gen_poisson_s0 predates the macro-stepping core (PR 8) and must
#: never move; the other two pin the macro-step paths (bursty traffic
#: drains isolated full-batch runs, the 3-model mix exercises
#: per-queue cost vectors + pending-queue bounds).
GOLDEN_DECODE_RUNS = {
    "gen_poisson_s0": (
        "0df86488c8717077cc4d001df86148e13cba81bf5f7ee9b64496add1befa9b41"
    ),
    "gen_bursty_s1": (
        "8668492ec76b52c9722aa24565ba57ebf15233ed3d60a0c5c48d2a1de7f69000"
    ),
    "gen_mix_s7": (
        "57c27e345b085f0df5cbb9ea077de62e7e2834c86cc22dee614393b40ca246d6"
    ),
}
GOLDEN_DECODE_RUN = GOLDEN_DECODE_RUNS["gen_poisson_s0"]


class TestGoldenDecodeStreams:
    @pytest.mark.parametrize("name", sorted(GOLDEN_GENERATIVE_STREAMS))
    def test_generative_stream_hash_pinned(self, name):
        process, mix, count, seed, mean_out = GOLDEN_GENERATIVE_CASES[name]
        digest = hashlib.sha256()
        for r in generate_requests(
            process(), mix, count=count, seed=seed,
            mean_output_tokens=mean_out,
        ):
            digest.update(
                f"{r.request_id}:{r.arrival_s!r}:{r.spec.name}:"
                f"{r.valid_len}:{r.output_len};".encode()
            )
        assert digest.hexdigest() == GOLDEN_GENERATIVE_STREAMS[name]

    def test_chunked_stream_matches_whole_table(self):
        process, mix, count, seed, mean_out = GOLDEN_GENERATIVE_CASES[
            "gen_poisson_s0"
        ]
        whole = generate_request_table(
            process(), mix, count=count, seed=seed,
            mean_output_tokens=mean_out,
        )
        for chunk_size in (1, 37, 512):
            stream = RequestStream(
                process=process(), mix=mix, count=count, seed=seed,
                chunk_size=chunk_size, mean_output_tokens=mean_out,
            )
            got = stream.materialize()
            for col in (
                "request_id", "arrival_s", "spec_idx", "valid_len",
                "output_len",
            ):
                assert np.array_equal(
                    getattr(got, col), getattr(whole, col)
                ), (chunk_size, col)

    @pytest.mark.parametrize("name", sorted(GOLDEN_DECODE_RUNS))
    def test_decode_run_hash_pinned(self, name, cost_model):
        process, mix, count, seed, mean_out = GOLDEN_GENERATIVE_CASES[name]
        table = generate_request_table(
            process(), mix, count=count, seed=seed,
            mean_output_tokens=mean_out,
        )
        res = simulate_decode_table(table, cost_model, num_devices=2)
        digest = hashlib.sha256()
        for col in (
            "prefill_batched_s", "prefill_start_s", "first_token_s",
            "finish_s", "prefill_batch_size", "prefill_device_id",
            "decode_slots",
        ):
            digest.update(getattr(res, col).tobytes())
        assert digest.hexdigest() == GOLDEN_DECODE_RUNS[name]


# ----------------------------------------------------------------------
# Parallel decode paths: threads and process shards are byte-identical
# ----------------------------------------------------------------------
class TestDecodeParallelEquivalence:
    """Mirrors the prefill matrix in tests/test_serving_stream.py:
    phase-1 parallelism (threaded or process-sharded cost-vector
    construction) must not move a single bit of the event loop's
    output at any worker count."""

    COLS = (
        "prefill_batched_s", "prefill_start_s", "first_token_s",
        "finish_s", "prefill_batch_size", "prefill_device_id",
        "decode_slots",
    )

    @pytest.mark.parametrize("threads", (1, 2, 4))
    def test_threaded_simulate_decode_table(self, threads, cost_model):
        table = generate_request_table(
            make_process("bursty"),
            {"BERT-B": 0.5, "ViT-B": 0.3, "GPT-2-L": 0.2},
            count=600,
            seed=8,
            mean_output_tokens=12.0,
        )
        base = simulate_decode_table(table, cost_model, num_devices=2)
        out = simulate_decode_table(
            table, cost_model, num_devices=2, threads=threads
        )
        for col in self.COLS:
            assert np.array_equal(
                getattr(out, col), getattr(base, col)
            ), col
        assert out.device_busy_s == base.device_busy_s
        assert out.device_energy_pj == base.device_energy_pj
        assert out.batches == base.batches

    @pytest.mark.parametrize("threads", (1, 2, 4))
    def test_threaded_simulate_decode_stream(self, threads, cost_model):
        stream = RequestStream(
            process=PoissonProcess(130.0),
            mix=MIX,
            count=400,
            seed=9,
            chunk_size=64,
            mean_output_tokens=6.0,
        )
        base = simulate_decode_table(
            stream.materialize(), cost_model, num_devices=2
        )
        finish = []
        res = simulate_decode_stream(
            stream.chunks(),
            cost_model,
            num_devices=2,
            threads=threads,
            sink=lambda c: finish.append(c.finish_s),
        )
        got = np.concatenate(finish)
        assert np.array_equal(np.sort(got), np.sort(base.finish_s))
        assert res.device_busy_s == base.device_busy_s
        assert res.total_tokens == base.total_tokens

    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_sharded_simulate_decode_table(self, jobs, cost_model):
        from repro.runtime.pool import simulate_decode_table_sharded

        table = generate_request_table(
            make_process("trace"),
            {"BERT-B": 0.5, "ViT-B": 0.3, "GPT-2-L": 0.2},
            count=500,
            seed=5,
            mean_output_tokens=9.0,
        )
        base = simulate_decode_table(table, cost_model, num_devices=2)
        out = simulate_decode_table_sharded(
            table, cost_model, jobs=jobs, num_devices=2
        )
        for col in self.COLS:
            assert np.array_equal(
                getattr(out, col), getattr(base, col)
            ), col
        assert out.device_busy_s == base.device_busy_s
        assert out.device_energy_pj == base.device_energy_pj
        assert out.batches == base.batches
        assert out.to_result().records == base.to_result().records


# ----------------------------------------------------------------------
# decode-phase tracing: spans from both engines, bitwise-neutral
# ----------------------------------------------------------------------
class TestDecodeTracing:
    def _table(self):
        return generate_request_table(
            PoissonProcess(90.0), MIX, count=120, seed=3,
            mean_output_tokens=8.0,
        )

    def test_tracing_does_not_change_results(self, cost_model):
        from repro.obs.trace import TraceConfig, TraceRecorder

        table = self._table()
        recorder = TraceRecorder(TraceConfig(head=60))
        traced = simulate_decode_table(
            table, cost_model, num_devices=2, recorder=recorder
        )
        plain = simulate_decode_table(table, cost_model, num_devices=2)
        assert np.array_equal(traced.finish_s, plain.finish_s)
        assert np.array_equal(traced.first_token_s, plain.first_token_s)
        assert traced.device_busy_s == plain.device_busy_s
        assert recorder.sampled_requests == 60
        assert recorder.sampled_decode_phases > 0

    def test_traces_byte_identical_across_engines(self, cost_model, tmp_path):
        from repro.obs.trace import TraceConfig, TraceRecorder

        table = self._table()
        fast = TraceRecorder(TraceConfig(head=48, stride=13))
        simulate_decode_table(
            table, cost_model, num_devices=2, recorder=fast
        )
        reference = TraceRecorder(TraceConfig(head=48, stride=13))
        GenerativeServingSimulator(
            [SprintDevice(i, cost_model) for i in range(2)],
            ContinuousBatcher(8, 2e-3),
            recorder=reference,
        ).run(table.to_requests())
        fast_path = fast.write(tmp_path / "fast.json")
        reference_path = reference.write(tmp_path / "reference.json")
        assert fast_path.read_bytes() == reference_path.read_bytes()

    def test_decode_spans_cover_the_decode_phase(self, cost_model):
        import json

        from repro.obs.trace import TraceConfig, TraceRecorder

        table = self._table()
        recorder = TraceRecorder(TraceConfig(head=0, stride=1))
        out = simulate_decode_table(
            table, cost_model, num_devices=2, recorder=recorder
        )
        payload = json.loads(
            json.dumps(recorder.to_chrome_trace())
        )  # round-trip: the export must be JSON-clean
        decode = {
            e["tid"]: e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "decode"
        }
        generative = out.output_len > 1
        assert len(decode) == int(generative.sum())
        for i in np.flatnonzero(generative):
            span = decode[int(out.request_id[i])]
            assert span["ts"] == float(out.first_token_s[i]) * 1e6
            assert span["dur"] == pytest.approx(
                (out.finish_s[i] - out.first_token_s[i]) * 1e6
            )
            assert span["args"]["tokens"] == int(out.output_len[i]) - 1
        # Prefill-only rows contribute no decode span.
        assert not set(decode) & set(
            out.request_id[~generative].tolist()
        )
