"""Unit tests for repro.attention.pruning."""

import numpy as np
import pytest

from repro.attention.functional import NEG_INFINITY
from repro.attention.pruning import (
    calibrate_threshold,
    prune_scores,
    runtime_prune,
)


class TestCalibrateThreshold:
    def test_hits_target_rate(self, small_scores):
        for rate in (0.3, 0.5, 0.75, 0.9):
            th = calibrate_threshold(small_scores, rate)
            measured = np.mean(small_scores < th)
            assert abs(measured - rate) < 0.05

    def test_ignores_masked_entries(self, small_scores):
        masked = small_scores.copy()
        masked[:, :10] = NEG_INFINITY
        th_masked = calibrate_threshold(masked, 0.5)
        th_clean = calibrate_threshold(small_scores[:, 10:], 0.5)
        assert np.isclose(th_masked, th_clean)

    def test_rejects_bad_rate(self, small_scores):
        with pytest.raises(ValueError):
            calibrate_threshold(small_scores, 1.0)
        with pytest.raises(ValueError):
            calibrate_threshold(small_scores, -0.1)

    def test_rejects_all_masked(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.full((4, 4), NEG_INFINITY), 0.5)


class TestPruneScores:
    def test_keep_mask_matches_threshold(self, small_scores):
        th = calibrate_threshold(small_scores, 0.6)
        result = prune_scores(small_scores, th, keep_self=False)
        expected = small_scores >= th
        # Rows that would be empty get their max back; exclude them.
        nonempty = expected.any(axis=1)
        np.testing.assert_array_equal(
            result.keep_mask[nonempty], expected[nonempty]
        )

    def test_pruned_entries_nullified(self, small_scores):
        th = calibrate_threshold(small_scores, 0.7)
        result = prune_scores(small_scores, th)
        assert np.all(result.scores[~result.keep_mask] == NEG_INFINITY)

    def test_probabilities_zero_on_pruned(self, small_scores):
        th = calibrate_threshold(small_scores, 0.7)
        result = prune_scores(small_scores, th)
        assert np.all(result.probabilities[~result.keep_mask] < 1e-12)

    def test_rows_never_empty(self, small_scores):
        result = prune_scores(small_scores, 1e9, keep_self=False)
        assert result.keep_mask.any(axis=1).all()

    def test_keep_self_preserves_diagonal(self, small_scores):
        th = calibrate_threshold(small_scores, 0.9)
        result = prune_scores(small_scores, th, keep_self=True)
        assert np.all(np.diag(result.keep_mask))

    def test_decision_scores_decouple(self, small_scores, rng):
        th = calibrate_threshold(small_scores, 0.5)
        noisy = small_scores + rng.normal(0, 0.5, small_scores.shape)
        result = prune_scores(
            small_scores, th, decision_scores=noisy, keep_self=False
        )
        # Kept values come from the exact scores even when decisions
        # come from the noisy ones.
        kept = result.keep_mask
        np.testing.assert_array_equal(
            result.scores[kept], small_scores[kept]
        )

    def test_decision_shape_mismatch(self, small_scores):
        with pytest.raises(ValueError):
            prune_scores(small_scores, 0.0,
                         decision_scores=small_scores[:4])

    def test_pruning_rate_property(self, small_scores):
        th = calibrate_threshold(small_scores, 0.6)
        result = prune_scores(small_scores, th, keep_self=False)
        assert 0.5 <= result.pruning_rate <= 0.7

    def test_pruning_vectors_convention(self, small_scores):
        th = calibrate_threshold(small_scores, 0.5)
        result = prune_scores(small_scores, th)
        vectors = result.pruning_vectors()
        # '1' -> pruned per the paper's memory-controller convention.
        np.testing.assert_array_equal(vectors == 1, ~result.keep_mask)

    def test_unpruned_counts(self, small_scores):
        th = calibrate_threshold(small_scores, 0.5)
        result = prune_scores(small_scores, th)
        np.testing.assert_array_equal(
            result.unpruned_counts(), result.keep_mask.sum(axis=1)
        )


class TestRuntimePrune:
    def test_reaches_target_rate(self, small_scores):
        result = runtime_prune(small_scores, 0.7, keep_self=False)
        assert abs(result.pruning_rate - 0.7) < 0.08

    def test_quantized_decisions_change_mask(self, small_scores):
        exact = runtime_prune(small_scores, 0.7, keep_self=False)
        coarse = runtime_prune(
            small_scores, 0.7, decision_bits=2, keep_self=False
        )
        assert not np.array_equal(exact.keep_mask, coarse.keep_mask)

    def test_noise_changes_mask(self, small_scores, rng):
        exact = runtime_prune(small_scores, 0.7, keep_self=False)
        noisy = runtime_prune(
            small_scores, 0.7, noise_sigma=0.5, rng=rng, keep_self=False
        )
        assert not np.array_equal(exact.keep_mask, noisy.keep_mask)

    def test_fine_quantization_preserves_mask(self, small_scores):
        exact = runtime_prune(small_scores, 0.7, keep_self=False)
        fine = runtime_prune(
            small_scores, 0.7, decision_bits=12, keep_self=False
        )
        agreement = np.mean(exact.keep_mask == fine.keep_mask)
        assert agreement > 0.98
