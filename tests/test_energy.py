"""Unit tests for repro.energy (constants, model, area metrics)."""

import pytest

from repro.energy.area import (
    PRIOR_WORK,
    AcceleratorMetrics,
    dennard_scale_energy,
)
from repro.energy.constants import TABLE_II
from repro.energy.model import CATEGORIES, EnergyBreakdown, EnergyModel


class TestTableII:
    def test_paper_values(self):
        assert TABLE_II.dot_product_64tap_pj == pytest.approx(192.56)
        assert TABLE_II.kv_buffer_access_pj == pytest.approx(256.0)
        assert TABLE_II.softmax_element_pj == pytest.approx(89.8)
        assert TABLE_II.comparator_128col_pj == pytest.approx(5.34)
        assert TABLE_II.inmemory_array_op_pj == pytest.approx(833.6)
        assert TABLE_II.reram_read_512b_pj == pytest.approx(1587.2)
        assert TABLE_II.reram_write_512b_pj == pytest.approx(12492.8)

    def test_per_bit_consistency(self):
        # 3.1 pJ/bit read, 24.4 pJ/bit write (section VII).
        assert TABLE_II.reram_read_per_bit_pj == pytest.approx(3.1)
        assert TABLE_II.reram_write_per_bit_pj == pytest.approx(24.4)

    def test_comparator_column_consistency(self):
        # 128 comparators at 41 fJ each ~ 5.34 pJ (rounding in paper).
        assert 128 * TABLE_II.comparator_single_pj == pytest.approx(
            TABLE_II.comparator_128col_pj, rel=0.02
        )

    def test_vector_read_energy(self):
        # One d=64-byte vector is a 512-bit access.
        assert TABLE_II.reram_read_vector_pj(64) == pytest.approx(1587.2)
        assert TABLE_II.reram_write_vector_pj(64) == pytest.approx(12492.8)

    def test_write_read_ratio(self):
        # ReRAM writes are ~7.9x more expensive than reads.
        ratio = TABLE_II.reram_write_512b_pj / TABLE_II.reram_read_512b_pj
        assert ratio == pytest.approx(24.4 / 3.1, rel=1e-6)


class TestEnergyBreakdown:
    def test_categories_complete(self):
        bd = EnergyBreakdown()
        assert set(bd.pj) == set(CATEGORIES)

    def test_add_and_total(self):
        bd = EnergyBreakdown()
        bd.add("qkpu", 100.0)
        bd.add("reram_read", 50.0)
        assert bd.total_pj == 150.0
        assert bd.total_joules == pytest.approx(150e-12)

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            EnergyBreakdown().add("gpu", 1.0)

    def test_fractions(self):
        bd = EnergyBreakdown()
        bd.add("reram_read", 30.0)
        bd.add("reram_write", 30.0)
        bd.add("qkpu", 40.0)
        assert bd.memory_fraction() == pytest.approx(0.6)
        assert bd.read_fraction() == pytest.approx(0.3)
        assert bd.fraction("qkpu") == pytest.approx(0.4)

    def test_empty_fractions_zero(self):
        assert EnergyBreakdown().memory_fraction() == 0.0

    def test_scaled_and_merged(self):
        a = EnergyBreakdown()
        a.add("vpu", 10.0)
        b = a.scaled(2.0)
        assert b.pj["vpu"] == 20.0
        c = a.merged(b)
        assert c.pj["vpu"] == 30.0


class TestEnergyModel:
    def test_event_accounting(self):
        model = EnergyModel(vector_bytes=64)
        model.count_reram_vector_reads(10)
        model.count_reram_vector_writes(1)
        model.count_qk_dot_products(100)
        model.count_softmax_elements(100)
        model.count_v_mac_rows(100)
        model.count_inmemory_array_ops(2)
        model.count_comparator_ops(128)
        bd = model.breakdown
        assert bd.pj["reram_read"] == pytest.approx(10 * 1587.2)
        assert bd.pj["reram_write"] == pytest.approx(12492.8)
        assert bd.pj["qkpu"] == pytest.approx(100 * 192.56)
        assert bd.pj["softmax"] == pytest.approx(100 * 89.8)
        assert bd.pj["inmemory_pruning"] == pytest.approx(
            2 * 833.6 + 128 * 0.041
        )

    def test_buffer_traffic_scales_with_vector(self):
        small = EnergyModel(vector_bytes=32)
        big = EnergyModel(vector_bytes=64)
        small.count_buffer_vector_reads(1)
        big.count_buffer_vector_reads(1)
        assert big.breakdown.pj["onchip_read"] == pytest.approx(
            2 * small.breakdown.pj["onchip_read"]
        )


class TestAreaMetrics:
    def test_prior_work_rows(self):
        assert set(PRIOR_WORK) == {"A3", "SpAtten", "LeOPArd", "M-SPRINT"}
        assert PRIOR_WORK["M-SPRINT"].gops_per_s == pytest.approx(1816.2)

    def test_table3_column_consistency(self):
        # GOPs/s/J/mm2 column == GOPs/J / area.  A3 and M-SPRINT match
        # within rounding; the paper's SpAtten/LeOPArd entries deviate
        # further (their exact derivation is not stated), so only the
        # tight rows are asserted.
        for name in ("A3", "M-SPRINT"):
            row = PRIOR_WORK[name]
            derived = row.gops_per_j / row.area_mm2
            assert derived == pytest.approx(row.gops_per_s_j_mm2, rel=0.05)

    def test_metrics_derivations(self):
        m = AcceleratorMetrics(ops=2e12, seconds=1.0, joules=1.0,
                               area_mm2=2.0)
        assert m.gops_per_s == pytest.approx(2000.0)
        assert m.gops_per_j == pytest.approx(2000.0)
        assert m.gops_per_s_mm2 == pytest.approx(1000.0)
        assert m.gops_per_s_j_mm2 == pytest.approx(1000.0)

    def test_zero_guards(self):
        m = AcceleratorMetrics(ops=1.0, seconds=0.0, joules=0.0, area_mm2=0.0)
        assert m.gops_per_s == 0.0
        assert m.gops_per_j == 0.0
        assert m.gops_per_s_mm2 == 0.0
        assert m.gops_per_s_j_mm2 == 0.0

    def test_dennard_scaling(self):
        # 65 nm -> 40 nm shrinks energy by (40/65)^3.
        scaled = dennard_scale_energy(1.0, 65, 40)
        assert scaled == pytest.approx((40 / 65) ** 3)
        with pytest.raises(ValueError):
            dennard_scale_energy(1.0, 0, 40)
