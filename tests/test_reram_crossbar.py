"""Unit tests for repro.reram.crossbar and repro.reram.transposable."""

import numpy as np
import pytest

from repro.reram.cell import MLCCellModel
from repro.reram.crossbar import CrossbarArray
from repro.reram.noise import OutputNoiseModel
from repro.reram.transposable import TransposableArray


def ideal_array(rows=8, cols=8, seed=0):
    return CrossbarArray(
        rows=rows, cols=cols,
        cell=MLCCellModel(variation_sigma=0.0),
        noise=OutputNoiseModel(equivalent_bits=20.0),
        seed=seed,
    )


class TestCrossbarArray:
    def test_vmm_matches_matmul_ideal(self, rng):
        arr = ideal_array()
        codes = rng.integers(-8, 8, size=(8, 8))
        arr.program(codes, ideal=True)
        v = rng.integers(-8, 8, size=8).astype(float)
        out = arr.vmm(v, ideal=True)
        np.testing.assert_allclose(out, v @ codes, atol=1e-9)

    def test_partial_program_pads_with_zero(self, rng):
        arr = ideal_array(rows=8, cols=8)
        codes = rng.integers(-8, 8, size=(4, 3))
        arr.program(codes, ideal=True)
        v = np.ones(4)
        out = arr.vmm(v, ideal=True)
        np.testing.assert_allclose(out[3:], 0.0, atol=1e-9)

    def test_vmm_requires_program(self):
        arr = ideal_array()
        with pytest.raises(RuntimeError):
            arr.vmm(np.ones(8))

    def test_rejects_oversize_codes(self):
        arr = ideal_array(rows=4, cols=4)
        with pytest.raises(ValueError):
            arr.program(np.zeros((5, 4), dtype=int))

    def test_rejects_code_overflow(self):
        arr = ideal_array()
        with pytest.raises(ValueError):
            arr.program(np.full((2, 2), 8))  # 4-bit signed max is 7

    def test_rejects_oversize_input(self):
        arr = ideal_array(rows=4)
        arr.program(np.zeros((4, 4), dtype=int))
        with pytest.raises(ValueError):
            arr.vmm(np.ones(5))

    def test_noise_perturbs_output(self, rng):
        arr = CrossbarArray(
            rows=16, cols=16,
            cell=MLCCellModel(variation_sigma=0.0),
            noise=OutputNoiseModel(equivalent_bits=5.0),
            seed=1,
        )
        codes = rng.integers(-8, 8, size=(16, 16))
        arr.program(codes, ideal=True)
        v = rng.integers(-8, 8, size=16).astype(float)
        exact = v @ codes
        noisy = arr.vmm(v)
        assert not np.allclose(noisy, exact)
        # but close: 5-bit-equivalent noise on the output range
        rel = np.abs(noisy - exact).max() / max(np.abs(exact).max(), 1)
        assert rel < 0.5

    def test_variation_perturbs_weights(self, rng):
        arr = CrossbarArray(
            rows=8, cols=8,
            cell=MLCCellModel(variation_sigma=0.1),
            noise=OutputNoiseModel(equivalent_bits=20.0),
            seed=2,
        )
        codes = rng.integers(1, 8, size=(8, 8))
        arr.program(codes)
        v = np.ones(8)
        out = arr.vmm(v, ideal=True)
        assert not np.allclose(out, v @ codes)

    def test_stats_counting(self, rng):
        arr = ideal_array()
        codes = rng.integers(-8, 8, size=(8, 8))
        arr.program(codes)
        arr.vmm(np.ones(8))
        arr.vmm(np.ones(8))
        assert arr.stats.programs == 64
        assert arr.stats.vmm_ops == 2
        assert arr.stats.analog_macs == 2 * 64

    def test_stored_codes_roundtrip(self, rng):
        arr = ideal_array()
        codes = rng.integers(-8, 8, size=(8, 8))
        arr.program(codes)
        np.testing.assert_array_equal(arr.stored_codes(), codes)


class TestTransposableArray:
    def test_transposed_read_returns_column(self, rng):
        arr = TransposableArray(
            rows=8, cols=8, cell=MLCCellModel(variation_sigma=0.0), seed=0
        )
        codes = rng.integers(-8, 8, size=(8, 8))
        arr.program(codes)
        for col in (0, 3, 7):
            np.testing.assert_array_equal(
                arr.transposed_read(col), codes[:, col]
            )
        assert arr.stats.transposed_reads == 3

    def test_transposed_read_bounds(self):
        arr = TransposableArray(rows=4, cols=4)
        arr.program(np.zeros((4, 4), dtype=int))
        with pytest.raises(IndexError):
            arr.transposed_read(4)

    def test_threshold_vmm_prunes_below(self, rng):
        arr = TransposableArray(
            rows=8, cols=8,
            cell=MLCCellModel(variation_sigma=0.0),
            noise=OutputNoiseModel(equivalent_bits=20.0),
            seed=0,
        )
        codes = rng.integers(-8, 8, size=(8, 8))
        arr.program(codes, ideal=True)
        v = rng.integers(-8, 8, size=8).astype(float)
        exact = v @ codes
        threshold = float(np.median(exact))
        bits = arr.threshold_vmm(v, threshold, ideal=True)
        np.testing.assert_array_equal(bits, (exact < threshold).astype(np.uint8))

    def test_threshold_vmm_active_cols(self, rng):
        arr = TransposableArray(rows=8, cols=8, seed=0)
        arr.program(rng.integers(-8, 8, size=(8, 8)))
        bits = arr.threshold_vmm(np.ones(8), 0.0, active_cols=5)
        assert bits.shape == (5,)

    def test_threshold_vmm_counts_converters(self, rng):
        arr = TransposableArray(rows=8, cols=8, seed=0)
        arr.program(rng.integers(-8, 8, size=(8, 8)))
        arr.threshold_vmm(np.ones(8), 0.0)
        assert arr.comparator.comparisons == 8
        assert arr.pruning_adc.conversions == 8
        assert arr.dac.conversions == 8
