"""Unit tests for repro.memory.scheduler and repro.memory.controller."""

import numpy as np
import pytest

from repro.memory.commands import CommandKind, MemoryRequest
from repro.memory.controller import SprintMemoryController
from repro.memory.dram import MemoryDevice
from repro.memory.layout import KVLayout
from repro.memory.scheduler import CommandScheduler
from repro.memory.timing import DEFAULT_TIMING


def make_scheduler(num_channels=4, banks=4):
    layout = KVLayout(num_channels=num_channels, banks_per_channel=banks)
    device = MemoryDevice(num_channels=num_channels, banks_per_channel=banks)
    return CommandScheduler(device=device, layout=layout)


class TestCommandScheduler:
    def test_schedules_reads(self):
        sched = make_scheduler()
        reqs = [MemoryRequest(token_index=i) for i in range(8)]
        done = sched.schedule_requests(reqs)
        assert done > 0
        kinds = [c.kind for c in sched.issued]
        assert all(k == CommandKind.READ for k in kinds)
        assert len(sched.issued) == 8

    def test_parallel_channels_faster_than_serial(self):
        wide = make_scheduler(num_channels=8)
        narrow = make_scheduler(num_channels=1)
        reqs = [MemoryRequest(token_index=i) for i in range(16)]
        assert wide.schedule_requests(reqs) < narrow.schedule_requests(reqs)

    def test_row_locality_speeds_up(self):
        # Same bank, same row repeatedly vs alternating rows.
        layout = KVLayout(
            num_channels=1, banks_per_channel=1, columns_per_row=128
        )
        device = MemoryDevice(num_channels=1, banks_per_channel=1)
        sched = CommandScheduler(device=device, layout=layout)
        same_row = [MemoryRequest(token_index=i) for i in range(4)]
        t_same = sched.schedule_requests(same_row)

        layout2 = KVLayout(
            num_channels=1, banks_per_channel=1, columns_per_row=1
        )
        device2 = MemoryDevice(num_channels=1, banks_per_channel=1)
        sched2 = CommandScheduler(device=device2, layout=layout2)
        diff_rows = [MemoryRequest(token_index=i) for i in range(4)]
        t_diff = sched2.schedule_requests(diff_rows)
        assert t_same < t_diff

    def test_thresholding_sequence(self):
        sched = make_scheduler()
        done = sched.schedule_thresholding(channel=0, bank=0)
        kinds = [c.kind for c in sched.issued]
        assert CommandKind.COPY_Q in kinds
        assert CommandKind.READ_P in kinds
        # CopyQ precedes ReadP.
        assert kinds.index(CommandKind.COPY_Q) < kinds.index(CommandKind.READ_P)
        assert done >= DEFAULT_TIMING.t_axth

    def test_taxth_gap_between_copyq_and_readp(self):
        sched = make_scheduler()
        sched.schedule_thresholding(channel=0, bank=0)
        copyq = next(
            c for c in sched.issued if c.kind == CommandKind.COPY_Q
        )
        readp = next(
            c for c in sched.issued if c.kind == CommandKind.READ_P
        )
        gap = readp.issue_cycle - copyq.issue_cycle
        assert gap >= DEFAULT_TIMING.t_axth

    def test_start_compute_flag_on_last_copyq(self):
        sched = make_scheduler()
        sched.schedule_thresholding(channel=0, bank=0, copyq_bursts=3)
        copyqs = [c for c in sched.issued if c.kind == CommandKind.COPY_Q]
        assert [c.start_compute for c in copyqs] == [False, False, True]

    def test_compute_blocks_bank_reads(self):
        sched = make_scheduler(num_channels=1, banks=1)
        sched.schedule_thresholding(channel=0, bank=0)
        done = sched.schedule_requests([MemoryRequest(token_index=0)])
        # The read cannot complete before the in-flight thresholding.
        assert done >= DEFAULT_TIMING.t_axth


class TestSprintMemoryController:
    def test_first_query_fetches_all_unpruned(self):
        ctrl = SprintMemoryController(seq_len=16, capacity_vectors=16)
        pruning = np.zeros(16, dtype=np.uint8)
        pruning[8:] = 1
        traffic = ctrl.process_query(pruning)
        assert len(traffic.fetch_indices) == 8
        assert len(traffic.reuse_indices) == 0

    def test_second_query_reuses_overlap(self):
        ctrl = SprintMemoryController(seq_len=16, capacity_vectors=16)
        p1 = np.zeros(16, dtype=np.uint8)
        p1[8:] = 1
        ctrl.process_query(p1)
        p2 = np.zeros(16, dtype=np.uint8)
        p2[:4] = 1  # unpruned: 4..15; resident: 0..7 -> reuse 4..7
        traffic = ctrl.process_query(p2)
        np.testing.assert_array_equal(traffic.reuse_indices, [4, 5, 6, 7])
        np.testing.assert_array_equal(
            traffic.fetch_indices, np.arange(8, 16)
        )

    def test_capacity_eviction(self):
        ctrl = SprintMemoryController(seq_len=16, capacity_vectors=4)
        ctrl.process_query(np.zeros(16, dtype=np.uint8))
        assert ctrl.resident_mask().sum() <= 4
        assert ctrl.stats.evictions > 0

    def test_no_sld_fetches_everything(self):
        with_sld = SprintMemoryController(16, 16, enable_sld=True)
        without = SprintMemoryController(16, 16, enable_sld=False)
        pruning = np.zeros(16, dtype=np.uint8)
        for ctrl in (with_sld, without):
            ctrl.process_query(pruning)
            ctrl.process_query(pruning)
        assert without.stats.vectors_fetched == 32
        assert with_sld.stats.vectors_fetched == 16
        assert with_sld.stats.reuse_fraction == pytest.approx(0.5)

    def test_copyq_readp_issued_per_query(self):
        ctrl = SprintMemoryController(seq_len=16, capacity_vectors=8)
        ctrl.process_query(np.ones(16, dtype=np.uint8))
        assert ctrl.stats.copyq_commands == ctrl.layout.num_channels
        assert ctrl.stats.readp_commands >= ctrl.layout.num_channels

    def test_latency_positive_and_accumulates(self):
        ctrl = SprintMemoryController(seq_len=32, capacity_vectors=8)
        t = ctrl.process_query(np.zeros(32, dtype=np.uint8))
        assert t.latency_cycles > 0
        assert ctrl.stats.total_latency_cycles >= t.latency_cycles

    def test_reset_residency(self):
        ctrl = SprintMemoryController(seq_len=8, capacity_vectors=8)
        ctrl.process_query(np.zeros(8, dtype=np.uint8))
        ctrl.reset_residency()
        assert ctrl.resident_mask().sum() == 0

    def test_rejects_bad_vector(self):
        ctrl = SprintMemoryController(seq_len=8, capacity_vectors=4)
        with pytest.raises(ValueError):
            ctrl.process_query(np.zeros(9, dtype=np.uint8))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SprintMemoryController(seq_len=8, capacity_vectors=0)
