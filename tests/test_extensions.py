"""Tests for the extension modules: multihead roll-up, design-space
exploration, ReRAM endurance, controller frontend, and the co-sim engine."""

import numpy as np
import pytest

from repro.accelerator.engine import SprintEngine
from repro.core.configs import M_SPRINT
from repro.core.design_space import (
    DesignPoint,
    best_under_area,
    estimate_area_mm2,
    make_config,
    pareto_frontier,
    sweep,
)
from repro.core.multihead import MultiHeadSimulator
from repro.memory.commands import MemoryRequest
from repro.memory.frontend import ControllerFrontend
from repro.models.zoo import get_model
from repro.reram.endurance import EnduranceTracker


class TestMultiHeadSimulator:
    @pytest.fixture(scope="class")
    def reports(self):
        sim = MultiHeadSimulator(M_SPRINT)
        spec = get_model("ViT-B")
        return spec, sim.compare(spec, num_samples=1, seed=1)

    def test_total_scales_with_heads_and_layers(self, reports):
        spec, r = reports
        sprint = r["sprint"]
        assert sprint.total_energy_pj == pytest.approx(
            sprint.per_head.total_energy_pj * spec.num_heads
            * spec.num_layers
        )

    def test_head_parallelism_reduces_cycles(self, reports):
        spec, r = reports
        sprint = r["sprint"]
        waves = -(-spec.num_heads // M_SPRINT.num_corelets)
        assert sprint.total_cycles == pytest.approx(
            sprint.per_head.cycles * waves * spec.num_layers
        )

    def test_model_level_speedup_positive(self, reports):
        _, r = reports
        assert r["sprint"].speedup_vs(r["baseline"]) > 1.0
        assert r["sprint"].energy_reduction_vs(r["baseline"]) > 1.0

    def test_data_movement_rollup(self, reports):
        spec, r = reports
        sprint = r["sprint"]
        assert sprint.total_data_movement_bytes() == pytest.approx(
            sprint.per_head.data_movement_bytes() * spec.num_heads
            * spec.num_layers
        )


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep(
            "ViT-B", corelet_counts=(1, 2), cache_sizes_kb=(8, 16),
            num_samples=1,
        )

    def test_grid_size(self, points):
        assert len(points) == 4

    def test_area_model_monotone(self):
        assert estimate_area_mm2(2, 16) > estimate_area_mm2(1, 16)
        assert estimate_area_mm2(1, 32) > estimate_area_mm2(1, 16)
        with pytest.raises(ValueError):
            estimate_area_mm2(0, 16)

    def test_area_anchored_to_figure14(self):
        # S-SPRINT point (1 CORELET, 16 KB) should sit near the paper's
        # 1.18 x 0.8 mm2 layout (plus the ~6% ReRAM overhead).
        area = estimate_area_mm2(1, 16)
        assert 0.9 <= area <= 1.1

    def test_pareto_frontier_nonempty_and_sorted(self, points):
        frontier = pareto_frontier(points)
        assert frontier
        cycles = [p.cycles for p in frontier]
        assert cycles == sorted(cycles)

    def test_frontier_members_not_dominated(self, points):
        frontier = pareto_frontier(points)
        for p in frontier:
            assert not any(q.dominates(p) for q in points)

    def test_best_under_area(self, points):
        generous = best_under_area(points, area_budget_mm2=100.0)
        assert generous is not None
        assert best_under_area(points, area_budget_mm2=0.01) is None

    def test_dominance_semantics(self):
        a = DesignPoint(1, 8, cycles=10, energy_pj=10, area_mm2=1)
        b = DesignPoint(1, 8, cycles=20, energy_pj=20, area_mm2=2)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_make_config_scales_units(self):
        cfg = make_config(4, 32)
        assert cfg.num_corelets == 4
        assert cfg.num_qkpu == 4
        assert cfg.onchip_cache_kb == 32


class TestEnduranceTracker:
    def test_record_and_wear(self):
        tracker = EnduranceTracker(num_slots=8, endurance_cycles=100)
        tracker.record_inference()
        assert tracker.max_writes == 1
        assert tracker.wear_fraction() == pytest.approx(0.01)

    def test_valid_len_limits_writes(self):
        tracker = EnduranceTracker(num_slots=8)
        tracker.record_inference(valid_len=4)
        assert tracker.total_writes == 4

    def test_leveling_extends_lifetime(self):
        flat = EnduranceTracker(8, endurance_cycles=100, leveling_factor=1)
        leveled = EnduranceTracker(8, endurance_cycles=100, leveling_factor=4)
        for t in (flat, leveled):
            t.record_inference()
        assert leveled.wear_fraction() < flat.wear_fraction()
        assert leveled.remaining_inferences() > flat.remaining_inferences()

    def test_lifetime_years(self):
        tracker = EnduranceTracker(8, endurance_cycles=1e7)
        years = tracker.lifetime_years(inferences_per_second=100)
        # 1e7 writes at 100/s ~ 1.16 days.
        assert 0.001 < years < 0.01
        with pytest.raises(ValueError):
            tracker.lifetime_years(0)

    def test_hottest_slots(self):
        tracker = EnduranceTracker(8)
        tracker.record_writes([3], count=5)
        tracker.record_writes([1], count=2)
        hottest = tracker.hottest_slots(top=2)
        assert list(hottest)[0] == 3

    def test_untouched_tracker_infinite_life(self):
        assert EnduranceTracker(4).remaining_inferences() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            EnduranceTracker(0)
        with pytest.raises(ValueError):
            EnduranceTracker(4, leveling_factor=0)
        tracker = EnduranceTracker(4)
        with pytest.raises(ValueError):
            tracker.record_writes([0], count=-1)


class TestControllerFrontend:
    def test_round_robin_is_fair(self):
        fe = ControllerFrontend(num_clients=2, queue_depth=8)
        for i in range(4):
            fe.enqueue(0, MemoryRequest(token_index=i))
            fe.enqueue(1, MemoryRequest(token_index=100 + i))
        order = [client for client, _ in fe.issue_all()]
        assert order == [0, 1, 0, 1, 0, 1, 0, 1]
        assert fe.stats.fairness() == pytest.approx(1.0)

    def test_oldest_first_order(self):
        fe = ControllerFrontend(2, policy="oldest_first")
        fe.enqueue(1, MemoryRequest(token_index=0))
        fe.enqueue(0, MemoryRequest(token_index=1))
        issued = fe.issue_all()
        assert [c for c, _ in issued] == [1, 0]

    def test_queue_depth_enforced(self):
        fe = ControllerFrontend(1, queue_depth=2)
        assert fe.enqueue(0, MemoryRequest(token_index=0))
        assert fe.enqueue(0, MemoryRequest(token_index=1))
        assert not fe.enqueue(0, MemoryRequest(token_index=2))
        assert fe.stats.rejected_full == 1

    def test_issue_empty_returns_none(self):
        assert ControllerFrontend(2).issue() is None

    def test_round_robin_skips_empty_queues(self):
        fe = ControllerFrontend(3)
        fe.enqueue(2, MemoryRequest(token_index=7))
        client, request = fe.issue()
        assert client == 2
        assert request.token_index == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerFrontend(0)
        with pytest.raises(ValueError):
            ControllerFrontend(1, queue_depth=0)
        with pytest.raises(ValueError):
            ControllerFrontend(1, policy="lottery")
        fe = ControllerFrontend(2)
        with pytest.raises(IndexError):
            fe.enqueue(5, MemoryRequest(token_index=0))


class TestSprintEngine:
    SEQ, DIM = 32, 16

    @pytest.fixture(scope="class")
    def engine_and_tensors(self):
        rng = np.random.default_rng(8)
        keys = rng.normal(size=(self.SEQ, self.DIM))
        values = rng.normal(size=(self.SEQ, self.DIM))
        queries = rng.normal(size=(6, self.DIM))
        engine = SprintEngine(
            seq_len=self.SEQ, head_dim=self.DIM, num_corelets=1,
            kv_capacity_vectors=self.SEQ, pruning_rate=0.6,
            ideal_analog=True,
        )
        engine.load(keys, values, calibration_queries=queries)
        return engine, queries, keys, values

    def test_requires_load(self):
        engine = SprintEngine(seq_len=8, head_dim=4)
        with pytest.raises(RuntimeError):
            engine.process_query(np.zeros(4))

    def test_output_shape(self, engine_and_tensors):
        engine, queries, _, _ = engine_and_tensors
        out = engine.process_all(queries)
        assert out.shape == (6, self.DIM)
        assert np.all(np.isfinite(out))

    def test_tracks_reuse(self, engine_and_tensors):
        engine, _, _, _ = engine_and_tensors
        # After several queries the SLD reuse must be substantial for
        # structured-but-random scores with a 60% pruning rate.
        assert engine.stats.queries >= 6
        assert engine.stats.vectors_reused >= 0
        assert engine.stats.keys_recomputed > 0

    def test_output_close_to_exact_pruned_attention(self):
        """The digital datapath matches functional attention tightly.

        Reference: :func:`repro.attention.functional.softmax` over the
        keys the in-memory thresholding actually kept.  With the exact
        cross-CORELET log-sum-exp merge the only residual error is the
        8-bit operand quantization and the two-LUT exponent -- well
        under 2% (the old token-count-weighted merge needed 30%).
        """
        from repro.attention.functional import softmax

        rng = np.random.default_rng(15)
        keys = rng.normal(size=(24, 8))
        values = rng.normal(size=(24, 8))
        queries = rng.normal(size=(4, 8))
        engine = SprintEngine(
            seq_len=24, head_dim=8, num_corelets=1,
            kv_capacity_vectors=24, pruning_rate=0.5, ideal_analog=True,
        )
        engine.load(keys, values, calibration_queries=queries)
        scale = 1.0 / np.sqrt(8)
        for q in queries:
            pruning = engine.thresholding.prune_query(
                q, engine._threshold, ideal=True
            )
            kept = pruning == 0
            out = engine.process_query(q)
            probs = softmax((keys[kept] @ q)[None, :] * scale, axis=-1)
            ref = probs[0] @ values[kept]
            err = np.abs(out - ref).max()
            assert err < 0.02 * max(1.0, np.abs(ref).max())

    def test_multi_corelet_runs(self):
        rng = np.random.default_rng(3)
        engine = SprintEngine(
            seq_len=16, head_dim=8, num_corelets=2,
            kv_capacity_vectors=16, pruning_rate=0.5, ideal_analog=True,
        )
        keys = rng.normal(size=(16, 8))
        engine.load(keys, rng.normal(size=(16, 8)))
        out = engine.process_query(rng.normal(size=8))
        assert out.shape == (8,)

    def test_compute_cycles_charges_per_query_increment(self):
        """The engine stat must sum per-query deltas, not re-add the
        corelets' cumulative counters every query (quadratic blowup)."""
        rng = np.random.default_rng(5)
        engine = SprintEngine(
            seq_len=16, head_dim=8, num_corelets=2,
            kv_capacity_vectors=16, pruning_rate=0.5, ideal_analog=True,
        )
        engine.load(rng.normal(size=(16, 8)), rng.normal(size=(16, 8)))
        for q in rng.normal(size=(5, 8)):
            engine.process_query(q)
        lifetime_worst = max(
            c.stats.compute_cycles for c in engine.corelets
        )
        assert 0 < engine.stats.compute_cycles
        # Summed per-query worst-cases can exceed any single corelet's
        # total, but never the sum of all corelets' totals -- and the
        # old cumulative re-add blows past both within a few queries.
        assert engine.stats.compute_cycles <= sum(
            c.stats.compute_cycles for c in engine.corelets
        )
        assert engine.stats.compute_cycles >= lifetime_worst

    def test_merge_invariant_under_corelet_count(self):
        """The exact LSE merge makes the output (nearly) independent of
        how tokens spread across CORELETs; only the per-subset 8-bit
        quantization scales differ."""

        def run(num_corelets, seed=3, seq=32, dim=16):
            rng = np.random.default_rng(seed)
            keys = rng.normal(size=(seq, dim))
            values = rng.normal(size=(seq, dim))
            queries = rng.normal(size=(6, dim))
            engine = SprintEngine(
                seq_len=seq, head_dim=dim, num_corelets=num_corelets,
                kv_capacity_vectors=seq, pruning_rate=0.5,
                ideal_analog=True, seed=seed,
            )
            engine.load(keys, values, calibration_queries=queries)
            return engine.process_all(queries)

        single = run(1)
        for num_corelets in (2, 4):
            split = run(num_corelets)
            assert np.abs(single - split).max() < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            SprintEngine(seq_len=8, head_dim=4, num_corelets=0)
        engine = SprintEngine(seq_len=8, head_dim=4)
        with pytest.raises(ValueError):
            engine.load(np.zeros((4, 4)), np.zeros((8, 4)))
