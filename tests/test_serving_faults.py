"""Fault-injection suite: equivalence, conservation, and validation.

The fault layer's contract mirrors the engines' own: the columnar
fault core is *exactly* equal -- per-request records, drop records,
retry events, device accounting -- to the fault-threaded reference
event loops, across arrival patterns, seeds, fleet sizes, outage
traces, and retry/deadline policies.  On top of that sit conservation
properties every fault run must satisfy (``completed + dropped ==
total``, busy time bounded by uptime), byte-identity of fault traces
across engines, and the no-faults guarantee: an empty schedule changes
nothing, and the fault-free fast path is never perturbed.
"""

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.obs.trace import TraceConfig, TraceRecorder
from repro.serving import (
    BurstyProcess,
    ContinuousBatcher,
    DynamicBatcher,
    FaultSchedule,
    GenerativeServingSimulator,
    PoissonProcess,
    RetryPolicy,
    ServiceCostModel,
    ServingSimulator,
    SprintDevice,
    TraceProcess,
    generate_request_table,
    simulate_faulty_stream,
    simulate_faulty_table,
    simulate_table,
    summarize,
    summarize_stream,
)

SEEDS = (0, 1, 7)
DEVICE_COUNTS = (1, 2, 4)


def make_process(pattern):
    return {
        "poisson": PoissonProcess(rate_rps=120.0),
        "bursty": BurstyProcess(40.0, 150.0, 0.5, 0.1),
        "trace": TraceProcess([0.01, 0.002, 0.005]),
    }[pattern]


def make_schedule(kind, num_devices, seed=0):
    """One outage schedule per test axis: seeded renewal or fixed."""
    if kind == "exponential":
        return FaultSchedule.exponential(
            num_devices, mtbf_s=0.08, mttr_s=0.04, horizon_s=4.0, seed=seed
        )
    if kind == "fixed":
        # Rapid staggered flapping: the up-gaps between outages are
        # shorter than a typical batch service time, so dispatches keep
        # landing on doomed devices and the retry machinery engages.
        return FaultSchedule.from_intervals(
            [
                [
                    (t + 0.004 * d, t + 0.015 + 0.004 * d)
                    for t in np.arange(0.12, 1.4, 0.017)
                ]
                for d in range(num_devices)
            ]
        )
    raise KeyError(kind)


@pytest.fixture(scope="module")
def cost_model():
    """One shared (memoized) cost model; the matrix reuses its buckets."""
    return ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)


def run_reference(table, cost, faults, retry, num_devices, max_wait_s,
                  max_batch_size=8, recorder=None):
    devices = [SprintDevice(i, cost) for i in range(num_devices)]
    if table.output_len is not None:
        sim = GenerativeServingSimulator(
            devices,
            ContinuousBatcher(max_batch_size, max_wait_s),
            recorder,
            faults=faults,
            retry=retry,
        )
    else:
        sim = ServingSimulator(
            devices,
            DynamicBatcher(max_batch_size, max_wait_s),
            recorder,
            faults=faults,
            retry=retry,
        )
    return sim.run(table.to_requests())


def assert_fault_runs_equal(table, cost, faults, retry, num_devices,
                            max_wait_s, max_batch_size=8):
    """Run the fault core and the reference loop; everything must match."""
    fast = simulate_faulty_table(
        table,
        cost,
        faults,
        retry=retry,
        num_devices=num_devices,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
    ).to_result()
    ref = run_reference(
        table, cost, faults, retry, num_devices, max_wait_s, max_batch_size
    )
    assert len(fast.records) == len(ref.records)
    for a, b in zip(fast.records, ref.records):
        assert a == b  # dataclass equality: every timestamp, exactly
    assert len(fast.dropped) == len(ref.dropped)
    for a, b in zip(fast.dropped, ref.dropped):
        assert a == b
    assert fast.start_s == ref.start_s
    assert fast.end_s == ref.end_s
    assert fast.device_busy_s == ref.device_busy_s
    assert fast.device_energy_pj == ref.device_energy_pj
    assert fast.device_downtime_s == ref.device_downtime_s
    assert fast.batches == ref.batches
    assert fast.size_triggered_batches == ref.size_triggered_batches
    assert fast.timeout_triggered_batches == ref.timeout_triggered_batches
    assert fast.retries == ref.retries
    assert fast.failed_batches == ref.failed_batches
    assert fast.wasted_energy_pj == ref.wasted_energy_pj
    assert fast.retry_events == ref.retry_events
    if table.output_len is not None:
        assert fast.total_tokens == ref.total_tokens
        assert fast.prefill_batches == ref.prefill_batches
        assert fast.decode_batches == ref.decode_batches
    return fast, ref


# ----------------------------------------------------------------------
# reference-vs-columnar bitwise matrix under fault schedules
# ----------------------------------------------------------------------
class TestFaultEquivalence:
    @pytest.mark.parametrize("pattern", ("poisson", "bursty", "trace"))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
    @pytest.mark.parametrize("kind", ("exponential", "fixed"))
    def test_prefill_matrix(self, cost_model, pattern, seed, num_devices, kind):
        table = generate_request_table(
            make_process(pattern), "BERT-B", count=200, seed=seed
        )
        cost_model.prime(table.specs[0], table.valid_len)
        assert_fault_runs_equal(
            table,
            cost_model,
            make_schedule(kind, num_devices, seed=seed),
            RetryPolicy(),
            num_devices,
            2e-3,
        )

    @pytest.mark.parametrize("pattern", ("poisson", "bursty"))
    @pytest.mark.parametrize("num_devices", (1, 2))
    @pytest.mark.parametrize("kind", ("exponential", "fixed"))
    def test_generative_matrix(self, cost_model, pattern, num_devices, kind):
        table = generate_request_table(
            make_process(pattern),
            "BERT-B",
            count=150,
            seed=1,
            mean_output_tokens=4.0,
        )
        cost_model.prime(table.specs[0], table.valid_len)
        fast, _ = assert_fault_runs_equal(
            table,
            cost_model,
            make_schedule(kind, num_devices, seed=1),
            RetryPolicy(),
            num_devices,
            2e-3,
        )
        assert fast.failed_batches > 0  # the schedule actually bit

    @pytest.mark.parametrize("max_wait_s", (0.0, 2e-3))
    def test_zero_wait_and_no_retry_policy(self, cost_model, max_wait_s):
        # retry=None means the default policy in both engines.
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=200, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        assert_fault_runs_equal(
            table, cost_model, make_schedule("fixed", 2), None, 2, max_wait_s
        )

    def test_deadline_drops_equal(self, cost_model):
        table = generate_request_table(
            PoissonProcess(120.0),
            "BERT-B",
            count=200,
            seed=0,
            deadline_range_s=(0.02, 0.2),
        )
        cost_model.prime(table.specs[0], table.valid_len)
        fast, _ = assert_fault_runs_equal(
            table,
            cost_model,
            FaultSchedule.from_intervals(
                [
                    [(t, t + 0.02) for t in np.arange(0.2, 1.2, 0.021)],
                    [(0.3, 0.9)],
                ]
            ),
            RetryPolicy(max_attempts=8, backoff_base_s=0.05),
            2,
            2e-3,
        )
        reasons = {d.reason for d in fast.dropped}
        assert "deadline" in reasons

    def test_retry_budget_exhaustion_drops(self, cost_model):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=200, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        fast, _ = assert_fault_runs_equal(
            table,
            cost_model,
            # Flapping outages with up-gaps shorter than a batch: a
            # retried dispatch keeps landing on a doomed device until
            # its attempt budget runs out.
            FaultSchedule.from_intervals(
                [[(t, t + 0.02) for t in np.arange(0.2, 1.2, 0.021)]]
            ),
            RetryPolicy(max_attempts=2, backoff_base_s=1e-4),
            1,
            2e-3,
        )
        assert any(d.reason == "retries" for d in fast.dropped)

    def test_stranded_fleet_drops_everything_queued(self, cost_model):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=120, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        fast, _ = assert_fault_runs_equal(
            table,
            cost_model,
            FaultSchedule.from_intervals(
                [[(0.1, np.inf)], [(0.1, np.inf)]]
            ),
            RetryPolicy(),
            2,
            2e-3,
        )
        assert fast.dropped and all(
            d.reason == "stranded" for d in fast.dropped
        )
        assert len(fast.records) + len(fast.dropped) == 120

    def test_empty_schedule_equals_fault_free_run(self, cost_model):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=200, seed=3
        )
        cost_model.prime(table.specs[0], table.valid_len)
        plain = simulate_table(
            table, cost_model, num_devices=2, max_wait_s=2e-3
        ).to_result()
        faulted = simulate_faulty_table(
            table,
            cost_model,
            FaultSchedule.none(2),
            num_devices=2,
            max_wait_s=2e-3,
        ).to_result()
        assert faulted.records == plain.records
        assert faulted.device_busy_s == plain.device_busy_s
        assert faulted.device_energy_pj == plain.device_energy_pj
        assert faulted.batches == plain.batches
        assert not faulted.dropped
        assert faulted.retries == 0 and faulted.failed_batches == 0
        assert faulted.device_downtime_s == [0.0, 0.0]

    def test_faults_kwarg_off_is_untouched_fast_path(self, cost_model):
        # simulate_table(faults=None) must stay byte-for-byte today's
        # golden fast path: identical result object, no fault fields.
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=200, seed=3
        )
        cost_model.prime(table.specs[0], table.valid_len)
        plain = simulate_table(table, cost_model, num_devices=2)
        routed = simulate_table(table, cost_model, num_devices=2, faults=None)
        assert type(routed) is type(plain)
        assert routed.to_result() == plain.to_result()


# ----------------------------------------------------------------------
# conservation properties: every fault run, any schedule
# ----------------------------------------------------------------------
class TestConservation:
    @pytest.mark.parametrize("pattern", ("poisson", "bursty", "trace"))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_devices", DEVICE_COUNTS)
    def test_fault_run_invariants(self, cost_model, pattern, seed, num_devices):
        table = generate_request_table(
            make_process(pattern), "BERT-B", count=200, seed=seed
        )
        cost_model.prime(table.specs[0], table.valid_len)
        faults = make_schedule("exponential", num_devices, seed=seed)
        result = simulate_faulty_table(
            table,
            cost_model,
            faults,
            retry=RetryPolicy(),
            num_devices=num_devices,
            max_wait_s=2e-3,
        ).to_result()
        # Every request is accounted for exactly once.
        assert len(result.records) + len(result.dropped) == len(table)
        assert result.retries >= 0
        assert result.failed_batches >= 0
        assert result.wasted_energy_pj >= 0.0
        # A completed request that ever lost a batch carries attempts
        # >= 2; drop records carry their (started) lost attempts.
        for rec in result.records:
            assert rec.attempts >= 1
        retried_ids = {rid for rid, _, _, _ in result.retry_events}
        for rec in result.records:
            if rec.request.request_id in retried_ids:
                assert rec.attempts >= 2
        for d in result.dropped:
            assert d.attempts >= 0
            assert d.reason in ("retries", "deadline", "stranded")
        # Per device: busy time never exceeds uptime within the span.
        span = result.end_s - result.start_s
        for dev in range(num_devices):
            downtime = faults.downtime_within(
                dev, result.start_s, result.end_s
            )
            assert result.device_busy_s[dev] <= span - downtime + 1e-9
            assert result.device_downtime_s[dev] == pytest.approx(downtime)

    def test_summarize_conservation_and_engine_agreement(self, cost_model):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=200, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        faults = make_schedule("exponential", 2)
        kwargs = dict(
            config=S_SPRINT.name,
            mode="sprint",
            pattern="poisson",
            offered_rps=120.0,
            sla_s=0.1,
        )
        fast = summarize(
            simulate_faulty_table(
                table, cost_model, faults, num_devices=2, max_wait_s=2e-3
            ),
            **kwargs,
        )
        ref = summarize(
            run_reference(table, cost_model, faults, None, 2, 2e-3), **kwargs
        )
        assert fast == ref  # dataclass equality across all fault fields
        assert fast.faulted
        assert fast.requests + fast.dropped_requests == len(table)
        assert fast.offered_requests == len(table)
        assert sum(fast.dropped_by_reason.values()) == fast.dropped_requests
        assert 0.0 <= fast.availability <= 1.0
        assert fast.goodput_rps <= fast.offered_rps * 1.5  # sanity scale
        assert "availability" in fast.describe()


# ----------------------------------------------------------------------
# chunked fault-mode stream == whole-table fault run
# ----------------------------------------------------------------------
class TestFaultStream:
    @pytest.mark.parametrize("chunk_size", (1, 7, 50, 200))
    @pytest.mark.parametrize("generative", (False, True))
    def test_chunk_sizes_match_table(self, cost_model, chunk_size, generative):
        table = generate_request_table(
            PoissonProcess(120.0),
            "BERT-B",
            count=200,
            seed=0,
            mean_output_tokens=4.0 if generative else None,
        )
        cost_model.prime(table.specs[0], table.valid_len)
        faults = make_schedule("exponential", 2)
        whole = simulate_faulty_table(
            table, cost_model, faults, num_devices=2, max_wait_s=2e-3
        )
        chunks = [
            table.slice(lo, min(lo + chunk_size, len(table)))
            for lo in range(0, len(table), chunk_size)
        ]
        collected = []
        streamed = simulate_faulty_stream(
            chunks,
            cost_model,
            faults,
            num_devices=2,
            max_wait_s=2e-3,
            sink=collected.append,
        )
        assert streamed.offered == len(table)
        assert streamed.completed == int(whole.completed_count)
        assert streamed.dropped == int(whole.dropped_count)
        assert streamed.start_s == whole.start_s
        assert streamed.end_s == whole.end_s
        assert streamed.device_busy_s == list(whole.device_busy_s)
        assert streamed.device_energy_pj == list(whole.device_energy_pj)
        assert streamed.device_downtime_s == list(whole.device_downtime_s)
        assert streamed.batches == whole.batches
        assert streamed.retries == whole.retries
        assert streamed.failed_batches == whole.failed_batches
        assert streamed.wasted_energy_pj == whole.wasted_energy_pj
        assert streamed.total_tokens == whole.total_tokens
        # Sink chunks carry every completed request exactly once, with
        # the same attempts column the table run recorded.
        ids = np.concatenate([c.request_id for c in collected])
        attempts = np.concatenate([c.attempts for c in collected])
        mask = whole.completed
        by_id = dict(zip(ids.tolist(), attempts.tolist()))
        table_ids = whole.table.request_id[mask]
        assert sorted(ids.tolist()) == sorted(table_ids.tolist())
        for rid, att in zip(table_ids, whole.attempts[mask]):
            assert by_id[int(rid)] == int(att)

    def test_summarize_stream_matches_exact_fault_summary(self, cost_model):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=300, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        faults = make_schedule("exponential", 2)
        kwargs = dict(
            config=S_SPRINT.name,
            mode="sprint",
            pattern="poisson",
            offered_rps=120.0,
            sla_s=0.1,
            num_devices=2,
            max_wait_s=2e-3,
        )
        chunks = [
            table.slice(lo, min(lo + 64, len(table)))
            for lo in range(0, len(table), 64)
        ]
        streamed = summarize_stream(chunks, cost_model, faults=faults, **kwargs)
        exact = summarize(
            simulate_faulty_table(
                table, cost_model, faults, num_devices=2, max_wait_s=2e-3
            ),
            config=S_SPRINT.name,
            mode="sprint",
            pattern="poisson",
            offered_rps=120.0,
            sla_s=0.1,
        )
        assert streamed.faulted and exact.faulted
        assert streamed.requests == exact.requests
        assert streamed.dropped_requests == exact.dropped_requests
        assert streamed.dropped_by_reason == exact.dropped_by_reason
        assert streamed.retries == exact.retries
        assert streamed.retried_completed == exact.retried_completed
        assert streamed.failed_batches == exact.failed_batches
        assert streamed.wasted_energy_uj == exact.wasted_energy_uj
        assert streamed.availability == exact.availability
        assert streamed.throughput_rps == exact.throughput_rps
        # Sketch-bounded percentiles: within the documented 1% bound.
        assert streamed.latency.p99_s == pytest.approx(
            exact.latency.p99_s, rel=0.02
        )


# ----------------------------------------------------------------------
# fault traces: byte-identical across engines
# ----------------------------------------------------------------------
class TestFaultTraces:
    def test_fast_and_reference_fault_traces_byte_identical(
        self, cost_model, tmp_path
    ):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=200, seed=0
        )
        cost_model.prime(table.specs[0], table.valid_len)
        faults = make_schedule("exponential", 2)
        config = TraceConfig(head=0, stride=1)  # record everything
        fast_rec = TraceRecorder(config)
        simulate_faulty_table(
            table,
            cost_model,
            faults,
            num_devices=2,
            max_wait_s=2e-3,
            recorder=fast_rec,
        )
        ref_rec = TraceRecorder(config)
        run_reference(
            table, cost_model, faults, None, 2, 2e-3, recorder=ref_rec
        )
        fast_path = fast_rec.write(tmp_path / "fast.json")
        ref_path = ref_rec.write(tmp_path / "reference.json")
        assert fast_rec.recorded_outages > 0
        assert fast_rec.sampled_retries > 0
        assert fast_path.read_bytes() == ref_path.read_bytes()


# ----------------------------------------------------------------------
# deadline sampling: a fifth draw phase, order-preserving
# ----------------------------------------------------------------------
class TestDeadlineSampling:
    def test_deadline_phase_preserves_earlier_columns(self):
        base = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=300, seed=0,
            mean_output_tokens=4.0,
        )
        with_dl = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=300, seed=0,
            mean_output_tokens=4.0, deadline_range_s=(0.05, 0.5),
        )
        # The deadline draw happens strictly after every other phase,
        # so adding it leaves the established columns byte-identical.
        assert base.arrival_s.tobytes() == with_dl.arrival_s.tobytes()
        assert base.request_id.tobytes() == with_dl.request_id.tobytes()
        assert base.spec_idx.tobytes() == with_dl.spec_idx.tobytes()
        assert base.valid_len.tobytes() == with_dl.valid_len.tobytes()
        assert base.output_len.tobytes() == with_dl.output_len.tobytes()
        assert base.deadline_s is None
        assert with_dl.deadline_s is not None
        assert np.all(with_dl.deadline_s >= 0.05)
        assert np.all(with_dl.deadline_s <= 0.5)

    def test_deadline_range_validation(self):
        with pytest.raises(ValueError, match="deadline_range_s"):
            generate_request_table(
                PoissonProcess(120.0), "BERT-B", count=10, seed=0,
                deadline_range_s=(0.0, 0.5),
            )
        with pytest.raises(ValueError, match="deadline_range_s"):
            generate_request_table(
                PoissonProcess(120.0), "BERT-B", count=10, seed=0,
                deadline_range_s=(0.5, 0.1),
            )

    def test_deadlines_survive_round_trips(self):
        table = generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=50, seed=0,
            deadline_range_s=(0.05, 0.5),
        )
        requests = table.to_requests()
        assert all(r.deadline_s is not None for r in requests)
        part = table.slice(10, 20)
        assert part.deadline_s is not None
        assert part.deadline_s.tolist() == table.deadline_s[10:20].tolist()


# ----------------------------------------------------------------------
# entry-point validation (satellite: input hardening)
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.fixture()
    def table(self):
        return generate_request_table(
            PoissonProcess(120.0), "BERT-B", count=20, seed=0
        )

    def test_empty_table_rejected(self, cost_model, table):
        empty = type(table)(
            specs=table.specs,
            request_id=np.empty(0, dtype=np.int64),
            arrival_s=np.empty(0, dtype=np.float64),
            spec_idx=np.empty(0, dtype=np.int64),
            valid_len=np.empty(0, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="empty"):
            simulate_table(empty, cost_model)
        with pytest.raises(ValueError, match="empty"):
            simulate_faulty_table(empty, cost_model, FaultSchedule.none(1))

    def test_bad_device_count_rejected(self, cost_model, table):
        with pytest.raises(ValueError, match="device"):
            simulate_table(table, cost_model, num_devices=0)
        with pytest.raises(ValueError, match="device"):
            simulate_faulty_table(
                table, cost_model, FaultSchedule.none(1), num_devices=0
            )
        with pytest.raises(ValueError, match="device"):
            FaultSchedule.none(0)

    def test_negative_wait_rejected(self, cost_model, table):
        with pytest.raises(ValueError, match="max_wait_s"):
            simulate_table(table, cost_model, max_wait_s=-1e-3)
        with pytest.raises(ValueError, match="max_wait_s"):
            simulate_faulty_table(
                table, cost_model, FaultSchedule.none(1), max_wait_s=-1e-3
            )

    def test_negative_load_rejected(self):
        from repro.experiments.serving import make_process as mk

        with pytest.raises(ValueError, match="rate_rps"):
            mk("poisson", -5.0)
        with pytest.raises(ValueError, match="rate_rps"):
            PoissonProcess(rate_rps=-1.0)

    def test_retry_without_faults_rejected(self, cost_model, table):
        with pytest.raises(ValueError, match="retry"):
            simulate_table(table, cost_model, retry=RetryPolicy())

    def test_schedule_fleet_mismatch_rejected(self, cost_model, table):
        with pytest.raises(ValueError, match="fleet"):
            simulate_faulty_table(
                table, cost_model, FaultSchedule.none(3), num_devices=2
            )

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)

    def test_request_deadline_validation(self, table):
        from repro.serving import Request

        spec = table.specs[0]
        with pytest.raises(ValueError, match="deadline"):
            Request(
                request_id=0, arrival_s=0.0, spec=spec, valid_len=16,
                deadline_s=0.0,
            )

    def test_resilience_experiment_validation(self):
        from repro.experiments.resilience import ResilienceExperiment

        with pytest.raises(ValueError, match="engine"):
            ResilienceExperiment(engine="warp")
        with pytest.raises(ValueError, match="load"):
            ResilienceExperiment(load=-3.0)
        with pytest.raises(ValueError, match="mttr"):
            ResilienceExperiment(mttr_s=0.0)
        with pytest.raises(ValueError, match="deadline"):
            ResilienceExperiment(
                engine="stream", deadline_range_s=(0.1, 0.2)
            )
        with pytest.raises(KeyError, match="policy"):
            ResilienceExperiment().simulate(1.0, 1, "nope", 10)
