"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.configs import M_SPRINT, S_SPRINT
from repro.workloads.generator import generate_workload


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_scores(rng):
    """A 32x32 heavy-ish-tailed score matrix."""
    scores = rng.normal(0.0, 1.0, size=(32, 32))
    scores[rng.random((32, 32)) < 0.1] += 3.0
    return scores


@pytest.fixture
def small_workload():
    """A fast 64-token workload at 70% pruning, 25% padding."""
    return generate_workload(
        seq_len=64, pruning_rate=0.7, padding_ratio=0.25,
        num_samples=2, seed=5,
    )


@pytest.fixture
def s_config():
    return S_SPRINT


@pytest.fixture
def m_config():
    return M_SPRINT
