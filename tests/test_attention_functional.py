"""Unit tests for repro.attention.functional."""

import numpy as np
import pytest

from repro.attention.functional import (
    NEG_INFINITY,
    attention_probabilities,
    multi_head_attention,
    scaled_dot_product_attention,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(8, 16))
        p = softmax(x, axis=-1)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-12)

    def test_matches_reference(self):
        x = np.array([1.0, 2.0, 3.0])
        expected = np.exp(x) / np.exp(x).sum()
        np.testing.assert_allclose(softmax(x), expected)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_large_values_no_overflow(self):
        x = np.array([1e4, 1e4 - 1.0])
        p = softmax(x)
        assert np.all(np.isfinite(p))
        assert p[0] > p[1]

    def test_fully_masked_row_is_uniform(self):
        x = np.full((1, 5), NEG_INFINITY)
        p = softmax(x, axis=-1)
        np.testing.assert_allclose(p, 0.2)

    def test_axis_zero(self, rng):
        x = rng.normal(size=(3, 4))
        p = softmax(x, axis=0)
        np.testing.assert_allclose(p.sum(axis=0), 1.0)


class TestAttentionProbabilities:
    def test_shapes(self, rng):
        q = rng.normal(size=(10, 8))
        k = rng.normal(size=(10, 8))
        scores, probs = attention_probabilities(q, k)
        assert scores.shape == (10, 10)
        assert probs.shape == (10, 10)

    def test_default_scale(self, rng):
        q = rng.normal(size=(4, 16))
        k = rng.normal(size=(4, 16))
        scores, _ = attention_probabilities(q, k)
        np.testing.assert_allclose(scores, (q @ k.T) / 4.0)

    def test_explicit_scale(self, rng):
        q = rng.normal(size=(4, 16))
        k = rng.normal(size=(4, 16))
        scores, _ = attention_probabilities(q, k, scale=1.0)
        np.testing.assert_allclose(scores, q @ k.T)

    def test_mask_nullifies(self, rng):
        q = rng.normal(size=(4, 8))
        k = rng.normal(size=(4, 8))
        mask = np.ones((4, 4), dtype=bool)
        mask[:, 2] = False
        scores, probs = attention_probabilities(q, k, mask=mask)
        assert np.all(scores[:, 2] == NEG_INFINITY)
        np.testing.assert_allclose(probs[:, 2], 0.0, atol=1e-12)

    def test_rejects_rank_mismatch(self, rng):
        with pytest.raises(ValueError):
            attention_probabilities(rng.normal(size=(4, 8)),
                                    rng.normal(size=(4, 9)))

    def test_rejects_rank3(self, rng):
        with pytest.raises(ValueError):
            attention_probabilities(rng.normal(size=(2, 4, 8)),
                                    rng.normal(size=(2, 4, 8)))


class TestScaledDotProductAttention:
    def test_identity_on_onehot(self):
        # With a one-hot dominant score, attention returns that value row.
        q = np.eye(3) * 100.0
        k = np.eye(3)
        v = np.arange(9.0).reshape(3, 3)
        out = scaled_dot_product_attention(q, k, v, scale=1.0)
        np.testing.assert_allclose(out, v, atol=1e-10)

    def test_uniform_when_scores_equal(self, rng):
        q = np.zeros((2, 4))
        k = rng.normal(size=(5, 4))
        v = rng.normal(size=(5, 4))
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out[0], v.mean(axis=0))

    def test_output_in_value_convex_hull(self, rng):
        q = rng.normal(size=(6, 8))
        k = rng.normal(size=(6, 8))
        v = rng.normal(size=(6, 8))
        out = scaled_dot_product_attention(q, k, v)
        assert out.min() >= v.min() - 1e-9
        assert out.max() <= v.max() + 1e-9


class TestMultiHeadAttention:
    def test_shapes_and_finiteness(self, rng):
        s, e, h = 12, 32, 4
        x = rng.normal(size=(s, e))
        w = lambda: rng.normal(size=(e, e)) * 0.1
        out = multi_head_attention(x, w(), w(), w(), w(), num_heads=h)
        assert out.shape == (s, e)
        assert np.all(np.isfinite(out))

    def test_rejects_bad_head_count(self, rng):
        s, e = 4, 30
        x = rng.normal(size=(s, e))
        w = rng.normal(size=(e, e))
        with pytest.raises(ValueError):
            multi_head_attention(x, w, w, w, w, num_heads=4)

    def test_single_head_equals_sdpa(self, rng):
        s, e = 6, 8
        x = rng.normal(size=(s, e))
        eye = np.eye(e)
        out = multi_head_attention(x, eye, eye, eye, eye, num_heads=1)
        expected = scaled_dot_product_attention(x, x, x)
        np.testing.assert_allclose(out, expected)
