"""Tests for the parallel experiment runtime and the runner CLI.

Covers the ISSUE-3/ISSUE-4 acceptance surface: registry protocol
conformance, the WorkUnit protocol (plan/prime/clear_primed, unit
dedup, unit-granularity caching), CLI subset selection and error
paths, ``--fast`` kwargs plumbing, ResultCache hit/miss semantics
(same key replays, changed config re-runs, edited kwargs replay
unchanged points), artifact serialization, and jobs-count
independence of the artifact bytes.
"""

import dataclasses
import json
import multiprocessing as mp
import time
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.experiments import registry, serving, sweep
from repro.experiments.runner import EXPERIMENTS, main, run_structured
from repro.runtime import (
    Artifact,
    ExperimentPool,
    ResultCache,
    cache_key,
    code_version,
    supports_units,
    to_jsonable,
    unit_cache_key,
)

HAVE_FORK = "fork" in mp.get_all_start_methods()


@dataclass(frozen=True)
class _Row:
    label: str
    value: float


def _fake_module(calls):
    """A registry-shaped module that records its run kwargs."""

    def run(**kwargs):
        calls.append(dict(kwargs))
        return [_Row("n", float(kwargs.get("num_samples", 0)))]

    def format_table(rows):
        return "Fake table: " + ", ".join(f"{r.label}={r.value}" for r in rows)

    return SimpleNamespace(run=run, format_table=format_table)


@pytest.fixture()
def fake_registry(monkeypatch):
    calls = []
    monkeypatch.setitem(
        registry.EXPERIMENTS, "fake", ({"num_samples": 3}, _fake_module(calls))
    )
    return calls


# ----------------------------------------------------------------------
# registry protocol
# ----------------------------------------------------------------------
class TestRegistry:
    def test_modules_satisfy_protocol(self):
        for name, (fast_kwargs, module) in EXPERIMENTS.items():
            assert isinstance(module, registry.ExperimentModule), name
            assert callable(module.run) and callable(module.format_table)
            assert isinstance(fast_kwargs, dict)

    def test_resolve_fast_vs_full(self):
        fast_kwargs, module = registry.resolve("fig5", fast=True)
        assert fast_kwargs == {"num_samples": 16}
        full_kwargs, same_module = registry.resolve("fig5", fast=False)
        assert full_kwargs == {} and same_module is module

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            registry.resolve("fig99")

    def test_planned_experiments_declare_units(self):
        for name in (
            "fig10", "fig11", "fig12", "fig13", "ffn", "table3",
            "serving", "sensitivity", "ablations",
        ):
            _, module = EXPERIMENTS[name]
            assert supports_units(module), name
            assert isinstance(module, registry.ShardableExperiment), name
            units = module.plan(**EXPERIMENTS[name][0])
            assert units, name
            keys = [unit.key for unit in units]
            assert len(set(keys)) == len(keys), f"{name}: duplicate keys"
            for unit in units:
                assert isinstance(hash(unit.key), int)
                assert isinstance(hash(unit.group), int)
                assert callable(unit.execute)

    def test_grid_units_match_sweep_cells(self):
        _, module = EXPERIMENTS["fig11"]
        units = module.plan(num_samples=1)
        assert [u.key for u in units] == sweep.cells(
            sweep.ALL_MODELS, sweep.ALL_CONFIGS, module.MODES, 1, 1
        )

    def test_unplanned_experiments_do_not_support_units(self):
        for name in ("fig1", "fig3"):
            _, module = EXPERIMENTS[name]
            assert not supports_units(module), name

    def test_ablation_units_cover_every_row(self):
        from repro.experiments import ablations

        units = ablations.plan()
        by_study = {}
        for unit in units:
            by_study.setdefault(unit.study, []).append(unit)
        assert len(by_study["sld"]) == len(ablations.SLD_MODELS)
        assert len(by_study["interleaving"]) == len(
            ablations.INTERLEAVING_MODELS
        )
        assert len(by_study["margin"]) == len(ablations.DEFAULT_MARGINS)
        assert len(by_study["locality"]) == len(ablations.DEFAULT_LOCALITIES)
        # A primed run must replay unit results instead of recomputing:
        # execute one margin unit out-of-band, prime a sentinel row under
        # its key, and see run_margin_ablation surface the sentinel.
        unit = by_study["margin"][0]
        sentinel = ablations.MarginAblationRow(
            margin=unit.value, pruning_rate=0.5, accuracy=0.5
        )
        ablations.prime(unit.key, sentinel)
        try:
            assert ablations.run_margin_ablation()[0] is sentinel
        finally:
            ablations.clear_primed()


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_to_jsonable_conversions(self):
        row = _Row("x", 1.5)
        out = to_jsonable(
            {
                "row": row,
                "tup": (1, 2),
                "arr": np.array([True, False]),
                "scalar": np.float64(2.5),
            }
        )
        assert out == {
            "row": {"label": "x", "value": 1.5},
            "tup": [1, 2],
            "arr": [True, False],
            "scalar": 2.5,
        }

    def test_to_jsonable_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_round_trip(self, tmp_path):
        artifact = Artifact(
            name="fake",
            kwargs={"num_samples": 3},
            code_version=code_version(),
            cache_key="abc",
            rows=[{"label": "n", "value": 3.0}],
            table="Fake table",
        )
        path = artifact.write(tmp_path)
        assert path == tmp_path / "fake.json"
        assert Artifact.from_json(path.read_text()) == artifact
        assert json.loads(artifact.to_json())["schema"] == 1

    def test_run_structured_real_experiment(self):
        artifact = run_structured("fig3", fast=True)
        assert artifact.name == "fig3"
        assert artifact.kwargs == {"num_samples": 1}
        assert "Figure 3" in artifact.table
        assert artifact.rows and "model" in artifact.rows[0]
        # The artifact JSON is self-contained and parseable.
        json.loads(artifact.to_json())


# ----------------------------------------------------------------------
# content-addressed cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_key_stable_and_config_sensitive(self):
        same = cache_key("x", {"config": S_SPRINT})
        assert same == cache_key("x", {"config": S_SPRINT})
        changed = dataclasses.replace(S_SPRINT, num_corelets=99)
        assert cache_key("x", {"config": changed}) != same
        assert cache_key("y", {"config": S_SPRINT}) != same
        assert cache_key("x", {"config": S_SPRINT}, version="v2") != same

    def test_same_key_replays(self, tmp_path, fake_registry):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        first = pool.run(["fake"], fast=True)["fake"]
        assert not first.cached and len(fake_registry) == 1
        second = pool.run(["fake"], fast=True)["fake"]
        assert second.cached and len(fake_registry) == 1
        assert second.artifact == first.artifact

    def test_changed_config_reruns(self, tmp_path, fake_registry):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        pool.run(["fake"], fast=True)
        # Different resolved kwargs -> different content address.
        pool.run(["fake"], fast=False)
        assert len(fake_registry) == 2
        assert cache.hits == 0 and cache.misses == 2

    @pytest.mark.parametrize("corrupt", ["{not json", "null", "[]", '"x"'])
    def test_corrupt_entry_is_miss(self, tmp_path, fake_registry, corrupt):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        artifact = pool.run(["fake"], fast=True)["fake"].artifact
        cache.path(artifact.cache_key).write_text(corrupt)
        rerun = pool.run(["fake"], fast=True)["fake"]
        assert not rerun.cached and len(fake_registry) == 2


# ----------------------------------------------------------------------
# sweep priming
# ----------------------------------------------------------------------
class TestSweepPriming:
    def test_primed_cell_short_circuits(self):
        key = ("BERT-B", "S-SPRINT", "sprint", 1, 1)
        sentinel = object()
        sweep.prime(key, sentinel)
        try:
            assert sweep.simulate(*key) is sentinel
        finally:
            sweep.clear_primed()

    def test_cells_enumerate_grid(self):
        from repro.core.system import ExecutionMode

        cells = sweep.cells(("BERT-B",), (S_SPRINT,), (ExecutionMode.SPRINT,), 2, 7)
        assert cells == [("BERT-B", "S-SPRINT", "sprint", 2, 7)]


# ----------------------------------------------------------------------
# work units: planning, priming, unit-granularity caching
# ----------------------------------------------------------------------
def _fake_planned_module(executed):
    """A WorkUnit-protocol module whose run() aggregates primed points.

    ``executed`` logs every point actually simulated (in-process), so
    tests can assert which points a warm rerun recomputed.
    """
    primed = {}

    def _compute(point):
        executed.append(point)
        return point * 10.0

    def _make_unit(point):
        return SimpleNamespace(
            key=("fake-unit", point),
            group=("fake", point % 2),
            execute=lambda point=point: _compute(point),
        )

    def plan(points=(1, 2)):
        return [_make_unit(p) for p in points]

    def run(points=(1, 2)):
        rows = []
        for p in points:
            result = primed.get(("fake-unit", p))
            if result is None:
                result = _compute(p)
            rows.append(_Row(str(p), result))
        return rows

    def format_table(rows):
        return "Fake units: " + ", ".join(f"{r.label}={r.value}" for r in rows)

    def prime(key, result):
        primed[tuple(key)] = result

    def clear_primed():
        primed.clear()

    return SimpleNamespace(
        run=run,
        format_table=format_table,
        plan=plan,
        prime=prime,
        clear_primed=clear_primed,
    )


class TestUnitCache:
    def test_unit_cache_key_point_and_version_sensitive(self):
        same = unit_cache_key(("serving", "BERT-B", 20.0))
        assert same == unit_cache_key(("serving", "BERT-B", 20.0))
        assert unit_cache_key(("serving", "BERT-B", 40.0)) != same
        assert unit_cache_key(("serving", "BERT-B", 20.0), version="v2") != same

    def test_edited_kwargs_replay_unchanged_points(self, tmp_path, monkeypatch):
        executed = []
        module = _fake_planned_module(executed)
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        monkeypatch.setitem(
            registry.EXPERIMENTS, "fakeplan", ({"points": (1, 2)}, module)
        )
        first = pool.run(["fakeplan"], fast=True)["fakeplan"]
        assert first.ok and sorted(executed) == [1, 2]
        assert cache.unit_misses == 2 and cache.unit_hits == 0

        # Editing the point list must only simulate the new point.
        monkeypatch.setitem(
            registry.EXPERIMENTS, "fakeplan", ({"points": (1, 2, 3)}, module)
        )
        executed.clear()
        second = pool.run(["fakeplan"], fast=True)["fakeplan"]
        assert second.ok and executed == [3]
        assert cache.unit_hits == 2
        assert [r["value"] for r in second.artifact.rows] == [10.0, 20.0, 30.0]
        # Priming stayed scoped to the pool run.
        assert module.run(points=(1,))[0].value == 10.0 and executed[-1] == 1

    def test_corrupt_unit_entry_is_miss(self, tmp_path, monkeypatch):
        executed = []
        module = _fake_planned_module(executed)
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        monkeypatch.setitem(
            registry.EXPERIMENTS, "fakeplan", ({"points": (1,)}, module)
        )
        pool.run(["fakeplan"], fast=True)
        key = unit_cache_key(("fake-unit", 1))
        cache.unit_path(key).write_text("{not a pickle")
        executed.clear()
        monkeypatch.setitem(
            registry.EXPERIMENTS, "fakeplan", ({"points": (1, 2)}, module)
        )
        rerun = pool.run(["fakeplan"], fast=True)["fakeplan"]
        assert rerun.ok and sorted(executed) == [1, 2]

    def test_serving_unit_cache_only_simulates_new_loads(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        base_kwargs = {
            "loads": (20.0, 80.0),
            "patterns": ("poisson",),
            "num_requests": 30,
        }
        monkeypatch.setitem(
            registry.EXPERIMENTS, "serving", (dict(base_kwargs), serving)
        )
        assert pool.run(["serving"], fast=True)["serving"].ok
        assert cache.unit_misses == 6  # 3 modes x 2 loads

        simulated = []
        original = serving.ServingExperiment.simulate

        def counting(self, pattern, mode, load, num_requests):
            simulated.append((pattern, mode.value, load))
            return original(self, pattern, mode, load, num_requests)

        monkeypatch.setattr(serving.ServingExperiment, "simulate", counting)
        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "serving",
            ({**base_kwargs, "loads": (20.0, 80.0, 40.0)}, serving),
        )
        warm = pool.run(["serving"], fast=True)["serving"]
        assert warm.ok
        assert cache.unit_hits == 6
        assert {load for _, _, load in simulated} == {40.0}
        # The incremental artifact matches a cold run of the same kwargs.
        monkeypatch.setattr(serving.ServingExperiment, "simulate", original)
        cold = ExperimentPool(jobs=1).run(["serving"], fast=True)["serving"]
        assert cold.artifact.to_json() == warm.artifact.to_json()

    def test_sensitivity_unit_cache_only_simulates_new_rates(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import sensitivity

        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        base_kwargs = {"rates": (0.5, 0.75), "seq_lens": (128,)}
        monkeypatch.setitem(
            registry.EXPERIMENTS, "sensitivity", (dict(base_kwargs), sensitivity)
        )
        assert pool.run(["sensitivity"], fast=True)["sensitivity"].ok
        assert cache.unit_misses == 3  # 2 rates + 1 seq_len

        executed = []
        original = sensitivity.SensitivityUnit.execute

        def counting(self):
            executed.append((self.kind, self.value))
            return original(self)

        monkeypatch.setattr(sensitivity.SensitivityUnit, "execute", counting)
        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "sensitivity",
            ({**base_kwargs, "rates": (0.5, 0.75, 0.9)}, sensitivity),
        )
        warm = pool.run(["sensitivity"], fast=True)["sensitivity"]
        assert warm.ok
        assert cache.unit_hits == 3
        assert executed == [("pruning_rate", 0.9)]


# ----------------------------------------------------------------------
# pool: parallel equivalence and failure isolation
# ----------------------------------------------------------------------
class TestExperimentPool:
    def test_jobs_do_not_change_artifact_bytes(self):
        names = ["fig3", "fig11", "table3"]
        serial = ExperimentPool(jobs=1).run(names, fast=True)
        parallel = ExperimentPool(jobs=2).run(names, fast=True)
        for name in names:
            assert serial[name].ok and parallel[name].ok
            assert serial[name].artifact.to_json() == parallel[name].artifact.to_json()

    def test_serving_jobs_do_not_change_artifact_bytes(self):
        serial = ExperimentPool(jobs=1).run(["serving"], fast=True)
        parallel = ExperimentPool(jobs=4).run(["serving"], fast=True)
        assert serial["serving"].ok and parallel["serving"].ok
        assert (
            serial["serving"].artifact.to_json()
            == parallel["serving"].artifact.to_json()
        )
        assert not serving._PRIMED

    def test_sensitivity_jobs_do_not_change_artifact_bytes(self, monkeypatch):
        from repro.experiments import sensitivity

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "sensitivity",
            ({"rates": (0.5, 0.9), "seq_lens": (128, 256)}, sensitivity),
        )
        serial = ExperimentPool(jobs=1).run(["sensitivity"], fast=True)
        parallel = ExperimentPool(jobs=2).run(["sensitivity"], fast=True)
        assert serial["sensitivity"].ok and parallel["sensitivity"].ok
        assert (
            serial["sensitivity"].artifact.to_json()
            == parallel["sensitivity"].artifact.to_json()
        )
        assert not sensitivity._PRIMED

    @pytest.mark.skipif(not HAVE_FORK, reason="fake modules need fork")
    def test_failed_standalone_future_reports_elapsed(self, monkeypatch):
        def slow_boom(**kwargs):
            time.sleep(0.05)
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "slowboom",
            ({}, SimpleNamespace(run=slow_boom, format_table=str)),
        )
        calls = []
        monkeypatch.setitem(registry.EXPERIMENTS, "fake", ({}, _fake_module(calls)))
        outcomes = ExperimentPool(jobs=2).run(["slowboom", "fake"])
        assert not outcomes["slowboom"].ok
        assert "injected failure" in outcomes["slowboom"].error
        # The failure's wall time is tracked, not recorded as 0.0.
        assert outcomes["slowboom"].seconds >= 0.05
        assert outcomes["fake"].ok

    def test_single_grid_experiment_still_shards(self):
        # One pending grid-backed experiment must take the worker path
        # (cells sharded) and still match the serial bytes; priming is
        # scoped to the run.
        serial = ExperimentPool(jobs=1).run(["table3"], fast=True)
        parallel = ExperimentPool(jobs=2).run(["table3"], fast=True)
        assert parallel["table3"].ok
        assert (
            serial["table3"].artifact.to_json()
            == parallel["table3"].artifact.to_json()
        )
        assert not sweep._PRIMED

    def test_failure_isolated_from_batch(self, monkeypatch):
        def boom(**kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "boom",
            ({}, SimpleNamespace(run=boom, format_table=str)),
        )
        calls = []
        monkeypatch.setitem(registry.EXPERIMENTS, "fake", ({}, _fake_module(calls)))
        outcomes = ExperimentPool(jobs=1).run(["boom", "fake"])
        assert not outcomes["boom"].ok
        assert "injected failure" in outcomes["boom"].error
        assert outcomes["fake"].ok and len(calls) == 1

    def test_unknown_name_raises_before_work(self):
        with pytest.raises(KeyError):
            ExperimentPool(jobs=1).run(["fig3", "fig99"])


# ----------------------------------------------------------------------
# runner CLI
# ----------------------------------------------------------------------
class TestRunnerCli:
    def test_subset_selection(self, tmp_path, capsys):
        rc = main(["fig3", "fig8", "--fast", "--json-out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8" in out
        for name in ("fig3", "fig8"):
            payload = json.loads((tmp_path / f"{name}.json").read_text())
            assert payload["name"] == name and payload["rows"]
        assert not (tmp_path / "fig1.json").exists()

    def test_unknown_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--jobs", "0"])
        assert excinfo.value.code == 2

    def test_fast_kwargs_plumbing(self, fake_registry, capsys):
        assert main(["fake", "--fast"]) == 0
        assert fake_registry[-1] == {"num_samples": 3}
        assert main(["fake"]) == 0
        assert fake_registry[-1] == {}
        assert "Fake table" in capsys.readouterr().out

    def test_failure_returns_nonzero(self, monkeypatch, capsys):
        def boom(**kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "boom",
            ({}, SimpleNamespace(run=boom, format_table=str)),
        )
        calls = []
        monkeypatch.setitem(registry.EXPERIMENTS, "fake", ({}, _fake_module(calls)))
        rc = main(["boom", "fake"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "boom FAILED" in captured.out
        # The batch kept going past the failure.
        assert "Fake table" in captured.out
        assert "1/2 experiment(s) failed" in captured.err

    def test_cache_dir_flag_replays(self, tmp_path, fake_registry, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fake", "--cache-dir", str(cache_dir)]) == 0
        assert main(["fake", "--cache-dir", str(cache_dir)]) == 0
        assert len(fake_registry) == 1
        assert "done (cache)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# streaming unit cache: a killed --jobs run resumes where it stopped
# ----------------------------------------------------------------------
#: Driver for the kill/resume test.  Runs a planned experiment whose
#: units are slow enough to kill mid-run; every execute() touches a
#: marker file, so the rerun's marker count reveals which units were
#: actually re-simulated versus replayed from the streamed cache.
_RESUME_DRIVER = """
import pathlib
import sys
import time
from dataclasses import dataclass
from types import SimpleNamespace

from repro.experiments import registry
from repro.runtime import ExperimentPool, ResultCache

MARKS = pathlib.Path(sys.argv[1])
CACHE_DIR = sys.argv[2]
POINTS = tuple(range(6))
PRIMED = {}


@dataclass(frozen=True)
class SlowUnit:
    point: int

    @property
    def key(self):
        return ("slowplan", self.point)

    @property
    def group(self):
        return ("slowplan", self.point % 2)

    def execute(self):
        (MARKS / f"exec_{self.point}").touch()
        time.sleep(0.3)
        return self.point * 10.0


@dataclass(frozen=True)
class Row:
    label: str
    value: float


def run(points=POINTS):
    rows = []
    for p in points:
        result = PRIMED.get(("slowplan", p))
        if result is None:
            result = SlowUnit(p).execute()
        rows.append(Row(str(p), result))
    return rows


module = SimpleNamespace(
    run=run,
    format_table=lambda rows: ", ".join(f"{r.label}={r.value}" for r in rows),
    plan=lambda points=POINTS: [SlowUnit(p) for p in points],
    prime=lambda key, result: PRIMED.__setitem__(tuple(key), result),
    clear_primed=PRIMED.clear,
)
registry.EXPERIMENTS["slowplan"] = ({}, module)
pool = ExperimentPool(jobs=2, cache=ResultCache(CACHE_DIR))
outcome = pool.run(["slowplan"])["slowplan"]
assert outcome.ok, outcome.error
"""


@pytest.mark.skipif(not HAVE_FORK, reason="worker pickling needs fork")
class TestStreamingUnitCache:
    def _spawn(self, tmp_path, marks):
        import os
        import subprocess
        import sys
        from pathlib import Path

        marks.mkdir(exist_ok=True)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable,
            "-c",
            _RESUME_DRIVER,
            str(marks),
            str(tmp_path / "cache"),
        ]
        return subprocess.Popen(cmd, env=env)

    def test_killed_jobs_run_resumes_from_landed_units(self, tmp_path):
        import os
        import signal

        marks = tmp_path / "marks"
        units_dir = tmp_path / "cache" / "units"
        proc = self._spawn(tmp_path, marks)
        try:
            # Wait until at least two unit results landed in the cache
            # (streamed by the workers while the run is in flight).
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if units_dir.exists() and len(list(units_dir.glob("*.pkl"))) >= 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            landed = len(list(units_dir.glob("*.pkl"))) if units_dir.exists() else 0
            assert landed >= 1, "no unit result streamed into the cache"
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        # No torn entries: everything that landed is a whole pickle.
        # (A stray *.tmp-* file is fine -- a SIGKILL mid-write leaves
        # one behind by design; only the atomic rename publishes.)
        import pickle

        landed = 0
        for entry in units_dir.glob("*.pkl"):
            pickle.loads(entry.read_bytes())
            landed += 1

        # Rerun to completion: the landed units replay from the cache,
        # only the missing ones execute.
        for mark in marks.iterdir():
            mark.unlink()
        rerun = self._spawn(tmp_path, marks)
        assert rerun.wait(timeout=120) == 0
        re_executed = len(list(marks.iterdir()))
        assert re_executed <= 6 - landed
        assert len(list(units_dir.glob("*.pkl"))) == 6


# ----------------------------------------------------------------------
# kill/resume for planned decode units: generative sims stream too
# ----------------------------------------------------------------------
#: Same shape as ``_RESUME_DRIVER``, but every unit is a real generative
#: decode simulation (cold cost model + ``simulate_decode_table``), so
#: the kill lands mid-simulation and the rerun proves decode units
#: replay from the streamed cache like any other WorkUnit.
_DECODE_RESUME_DRIVER = """
import pathlib
import sys
import time
from dataclasses import dataclass
from types import SimpleNamespace

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.experiments import registry
from repro.runtime import ExperimentPool, ResultCache
from repro.serving import (
    PoissonProcess, ServiceCostModel, generate_request_table,
)
from repro.serving.decode import simulate_decode_table

MARKS = pathlib.Path(sys.argv[1])
CACHE_DIR = sys.argv[2]
SEEDS = tuple(range(6))
PRIMED = {}


@dataclass(frozen=True)
class DecodeUnit:
    seed: int

    @property
    def key(self):
        return ("decodeplan", self.seed)

    @property
    def group(self):
        return ("decodeplan", self.seed % 2)

    def execute(self):
        (MARKS / f"exec_{self.seed}").touch()
        time.sleep(0.25)
        cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
        table = generate_request_table(
            PoissonProcess(150.0), "BERT-B", count=40, seed=self.seed,
            mean_output_tokens=6.0,
        )
        out = simulate_decode_table(table, cost, num_devices=2)
        return float(out.finish_s.sum())


@dataclass(frozen=True)
class Row:
    label: str
    value: float


def run(seeds=SEEDS):
    rows = []
    for s in seeds:
        result = PRIMED.get(("decodeplan", s))
        if result is None:
            result = DecodeUnit(s).execute()
        rows.append(Row(str(s), result))
    return rows


module = SimpleNamespace(
    run=run,
    format_table=lambda rows: ", ".join(f"{r.label}={r.value}" for r in rows),
    plan=lambda seeds=SEEDS: [DecodeUnit(s) for s in seeds],
    prime=lambda key, result: PRIMED.__setitem__(tuple(key), result),
    clear_primed=PRIMED.clear,
)
registry.EXPERIMENTS["decodeplan"] = ({}, module)
pool = ExperimentPool(jobs=2, cache=ResultCache(CACHE_DIR))
outcome = pool.run(["decodeplan"])["decodeplan"]
assert outcome.ok, outcome.error
"""


@pytest.mark.skipif(not HAVE_FORK, reason="worker pickling needs fork")
class TestDecodeUnitResume:
    def _spawn(self, tmp_path, marks):
        import os
        import subprocess
        import sys
        from pathlib import Path

        marks.mkdir(exist_ok=True)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable,
            "-c",
            _DECODE_RESUME_DRIVER,
            str(marks),
            str(tmp_path / "cache"),
        ]
        return subprocess.Popen(cmd, env=env)

    def test_killed_decode_run_resumes_from_landed_units(self, tmp_path):
        import os
        import pickle
        import signal

        marks = tmp_path / "marks"
        units_dir = tmp_path / "cache" / "units"
        proc = self._spawn(tmp_path, marks)
        try:
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if units_dir.exists() and len(list(units_dir.glob("*.pkl"))) >= 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            landed = len(list(units_dir.glob("*.pkl"))) if units_dir.exists() else 0
            assert landed >= 1, "no decode unit streamed into the cache"
        finally:
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        landed = 0
        for entry in units_dir.glob("*.pkl"):
            pickle.loads(entry.read_bytes())  # no torn pickles
            landed += 1

        for mark in marks.iterdir():
            mark.unlink()
        rerun = self._spawn(tmp_path, marks)
        assert rerun.wait(timeout=180) == 0
        re_executed = len(list(marks.iterdir()))
        assert re_executed <= 6 - landed
        assert len(list(units_dir.glob("*.pkl"))) == 6


# ----------------------------------------------------------------------
# bounded shard retry: a SIGKILLed worker does not sink the run
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _KamikazeUnit:
    """A unit that SIGKILLs its worker on first execution.

    The sentinel file marks the attempt: absent -> suicide (simulating
    an OOM-killed worker mid-shard), present -> compute normally.  Only
    ``point == 0`` is armed so the retry (and any in-parent fallback)
    can always complete.
    """

    point: int
    sentinel: str

    @property
    def key(self):
        return ("killplan", self.point, self.sentinel)

    @property
    def group(self):
        # One group: the whole shard dies with the worker, exercising
        # retry of a multi-unit shard.
        return ("killplan",)

    def execute(self):
        import os
        import pathlib
        import signal

        mark = pathlib.Path(self.sentinel)
        if self.point == 0 and not mark.exists():
            mark.touch()
            os.kill(os.getpid(), signal.SIGKILL)
        return float(self.point) * 2.0


@pytest.mark.skipif(not HAVE_FORK, reason="worker pickling needs fork")
class TestShardRetry:
    def _register(self, monkeypatch, sentinel):
        units = [_KamikazeUnit(p, str(sentinel)) for p in range(3)]
        primed = {}

        def run():
            rows = []
            for unit in units:
                result = primed.get(unit.key)
                if result is None:
                    result = unit.execute()
                rows.append(_Row(str(unit.point), result))
            return rows

        module = SimpleNamespace(
            run=run,
            format_table=lambda rows: ", ".join(
                f"{r.label}={r.value}" for r in rows
            ),
            plan=lambda: list(units),
            prime=lambda key, result: primed.__setitem__(tuple(key), result),
            clear_primed=primed.clear,
        )
        monkeypatch.setitem(registry.EXPERIMENTS, "killplan", ({}, module))
        return primed

    def test_sigkilled_worker_retries_and_completes(
        self, monkeypatch, tmp_path
    ):
        from repro.obs import telemetry as tele_mod
        from repro.obs.telemetry import RunTelemetry

        self._register(monkeypatch, tmp_path / "armed")
        tele = RunTelemetry(jobs=2)
        tele_mod.set_telemetry(tele)
        try:
            outcome = ExperimentPool(jobs=2).run(["killplan"])["killplan"]
        finally:
            tele_mod.set_telemetry(None)
        assert outcome.ok, outcome.error
        rows = {r["label"]: r["value"] for r in outcome.artifact.rows}
        assert rows == {"0": 0.0, "1": 2.0, "2": 4.0}
        # The crash was observed and the retry actually ran.
        assert tele.counters["units.shard_retries"].value >= 1
        kinds = [e["kind"] for e in tele.events]
        assert "shard_retry" in kinds
        warns = [e for e in tele.events if e["kind"] == "warning"]
        assert any("shard" in w["message"] for w in warns)

    def test_exhausted_retries_fall_back_to_serial(
        self, monkeypatch, tmp_path
    ):
        # With a zero retry budget the shard is abandoned, but the
        # aggregation path still re-simulates in-parent (the sentinel
        # now exists, so the in-process execute() completes).
        from repro.obs import telemetry as tele_mod
        from repro.obs.telemetry import RunTelemetry

        self._register(monkeypatch, tmp_path / "armed")
        tele = RunTelemetry(jobs=2)
        tele_mod.set_telemetry(tele)
        try:
            pool = ExperimentPool(jobs=2, shard_retries=0)
            outcome = pool.run(["killplan"])["killplan"]
        finally:
            tele_mod.set_telemetry(None)
        assert outcome.ok, outcome.error
        rows = {r["label"]: r["value"] for r in outcome.artifact.rows}
        assert rows == {"0": 0.0, "1": 2.0, "2": 4.0}
        retries = tele.counters.get("units.shard_retries")
        assert retries is None or retries.value == 0
        warns = [e for e in tele.events if e["kind"] == "warning"]
        assert any("exhausted" in w["message"] for w in warns)
