"""Tests for the parallel experiment runtime and the runner CLI.

Covers the ISSUE-3 acceptance surface: registry protocol conformance,
CLI subset selection and error paths, ``--fast`` kwargs plumbing,
ResultCache hit/miss semantics (same key replays, changed config
re-runs), artifact serialization, and jobs-count independence of the
artifact bytes.
"""

import dataclasses
import json
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.experiments import registry, sweep
from repro.experiments.runner import EXPERIMENTS, main, run_structured
from repro.runtime import (
    Artifact,
    ExperimentPool,
    ResultCache,
    cache_key,
    code_version,
    to_jsonable,
)


@dataclass(frozen=True)
class _Row:
    label: str
    value: float


def _fake_module(calls):
    """A registry-shaped module that records its run kwargs."""

    def run(**kwargs):
        calls.append(dict(kwargs))
        return [_Row("n", float(kwargs.get("num_samples", 0)))]

    def format_table(rows):
        return "Fake table: " + ", ".join(f"{r.label}={r.value}" for r in rows)

    return SimpleNamespace(run=run, format_table=format_table)


@pytest.fixture()
def fake_registry(monkeypatch):
    calls = []
    monkeypatch.setitem(
        registry.EXPERIMENTS, "fake", ({"num_samples": 3}, _fake_module(calls))
    )
    return calls


# ----------------------------------------------------------------------
# registry protocol
# ----------------------------------------------------------------------
class TestRegistry:
    def test_modules_satisfy_protocol(self):
        for name, (fast_kwargs, module) in EXPERIMENTS.items():
            assert isinstance(module, registry.ExperimentModule), name
            assert callable(module.run) and callable(module.format_table)
            assert isinstance(fast_kwargs, dict)

    def test_resolve_fast_vs_full(self):
        fast_kwargs, module = registry.resolve("fig5", fast=True)
        assert fast_kwargs == {"num_samples": 16}
        full_kwargs, same_module = registry.resolve("fig5", fast=False)
        assert full_kwargs == {} and same_module is module

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            registry.resolve("fig99")

    def test_grid_consumers_declare_cells(self):
        for name in ("fig10", "fig11", "fig12", "fig13", "ffn", "table3"):
            _, module = EXPERIMENTS[name]
            cells = module.grid_cells(num_samples=1)
            assert cells, name
            for cell in cells:
                model, config, mode, samples, seed = cell
                assert samples == 1 and isinstance(model, str)


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_to_jsonable_conversions(self):
        row = _Row("x", 1.5)
        out = to_jsonable(
            {
                "row": row,
                "tup": (1, 2),
                "arr": np.array([True, False]),
                "scalar": np.float64(2.5),
            }
        )
        assert out == {
            "row": {"label": "x", "value": 1.5},
            "tup": [1, 2],
            "arr": [True, False],
            "scalar": 2.5,
        }

    def test_to_jsonable_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_round_trip(self, tmp_path):
        artifact = Artifact(
            name="fake",
            kwargs={"num_samples": 3},
            code_version=code_version(),
            cache_key="abc",
            rows=[{"label": "n", "value": 3.0}],
            table="Fake table",
        )
        path = artifact.write(tmp_path)
        assert path == tmp_path / "fake.json"
        assert Artifact.from_json(path.read_text()) == artifact
        assert json.loads(artifact.to_json())["schema"] == 1

    def test_run_structured_real_experiment(self):
        artifact = run_structured("fig3", fast=True)
        assert artifact.name == "fig3"
        assert artifact.kwargs == {"num_samples": 1}
        assert "Figure 3" in artifact.table
        assert artifact.rows and "model" in artifact.rows[0]
        # The artifact JSON is self-contained and parseable.
        json.loads(artifact.to_json())


# ----------------------------------------------------------------------
# content-addressed cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_key_stable_and_config_sensitive(self):
        same = cache_key("x", {"config": S_SPRINT})
        assert same == cache_key("x", {"config": S_SPRINT})
        changed = dataclasses.replace(S_SPRINT, num_corelets=99)
        assert cache_key("x", {"config": changed}) != same
        assert cache_key("y", {"config": S_SPRINT}) != same
        assert cache_key("x", {"config": S_SPRINT}, version="v2") != same

    def test_same_key_replays(self, tmp_path, fake_registry):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        first = pool.run(["fake"], fast=True)["fake"]
        assert not first.cached and len(fake_registry) == 1
        second = pool.run(["fake"], fast=True)["fake"]
        assert second.cached and len(fake_registry) == 1
        assert second.artifact == first.artifact

    def test_changed_config_reruns(self, tmp_path, fake_registry):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        pool.run(["fake"], fast=True)
        # Different resolved kwargs -> different content address.
        pool.run(["fake"], fast=False)
        assert len(fake_registry) == 2
        assert cache.hits == 0 and cache.misses == 2

    @pytest.mark.parametrize("corrupt", ["{not json", "null", "[]", '"x"'])
    def test_corrupt_entry_is_miss(self, tmp_path, fake_registry, corrupt):
        cache = ResultCache(tmp_path)
        pool = ExperimentPool(jobs=1, cache=cache)
        artifact = pool.run(["fake"], fast=True)["fake"].artifact
        cache.path(artifact.cache_key).write_text(corrupt)
        rerun = pool.run(["fake"], fast=True)["fake"]
        assert not rerun.cached and len(fake_registry) == 2


# ----------------------------------------------------------------------
# sweep priming
# ----------------------------------------------------------------------
class TestSweepPriming:
    def test_primed_cell_short_circuits(self):
        key = ("BERT-B", "S-SPRINT", "sprint", 1, 1)
        sentinel = object()
        sweep.prime(key, sentinel)
        try:
            assert sweep.simulate(*key) is sentinel
        finally:
            sweep.clear_primed()

    def test_cells_enumerate_grid(self):
        from repro.core.system import ExecutionMode

        cells = sweep.cells(("BERT-B",), (S_SPRINT,), (ExecutionMode.SPRINT,), 2, 7)
        assert cells == [("BERT-B", "S-SPRINT", "sprint", 2, 7)]


# ----------------------------------------------------------------------
# pool: parallel equivalence and failure isolation
# ----------------------------------------------------------------------
class TestExperimentPool:
    def test_jobs_do_not_change_artifact_bytes(self):
        names = ["fig3", "fig11", "table3"]
        serial = ExperimentPool(jobs=1).run(names, fast=True)
        parallel = ExperimentPool(jobs=2).run(names, fast=True)
        for name in names:
            assert serial[name].ok and parallel[name].ok
            assert serial[name].artifact.to_json() == parallel[name].artifact.to_json()

    def test_single_grid_experiment_still_shards(self):
        # One pending grid-backed experiment must take the worker path
        # (cells sharded) and still match the serial bytes; priming is
        # scoped to the run.
        serial = ExperimentPool(jobs=1).run(["table3"], fast=True)
        parallel = ExperimentPool(jobs=2).run(["table3"], fast=True)
        assert parallel["table3"].ok
        assert (
            serial["table3"].artifact.to_json()
            == parallel["table3"].artifact.to_json()
        )
        assert not sweep._PRIMED

    def test_failure_isolated_from_batch(self, monkeypatch):
        def boom(**kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "boom",
            ({}, SimpleNamespace(run=boom, format_table=str)),
        )
        calls = []
        monkeypatch.setitem(registry.EXPERIMENTS, "fake", ({}, _fake_module(calls)))
        outcomes = ExperimentPool(jobs=1).run(["boom", "fake"])
        assert not outcomes["boom"].ok
        assert "injected failure" in outcomes["boom"].error
        assert outcomes["fake"].ok and len(calls) == 1

    def test_unknown_name_raises_before_work(self):
        with pytest.raises(KeyError):
            ExperimentPool(jobs=1).run(["fig3", "fig99"])


# ----------------------------------------------------------------------
# runner CLI
# ----------------------------------------------------------------------
class TestRunnerCli:
    def test_subset_selection(self, tmp_path, capsys):
        rc = main(["fig3", "fig8", "--fast", "--json-out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8" in out
        for name in ("fig3", "fig8"):
            payload = json.loads((tmp_path / f"{name}.json").read_text())
            assert payload["name"] == name and payload["rows"]
        assert not (tmp_path / "fig1.json").exists()

    def test_unknown_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--jobs", "0"])
        assert excinfo.value.code == 2

    def test_fast_kwargs_plumbing(self, fake_registry, capsys):
        assert main(["fake", "--fast"]) == 0
        assert fake_registry[-1] == {"num_samples": 3}
        assert main(["fake"]) == 0
        assert fake_registry[-1] == {}
        assert "Fake table" in capsys.readouterr().out

    def test_failure_returns_nonzero(self, monkeypatch, capsys):
        def boom(**kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "boom",
            ({}, SimpleNamespace(run=boom, format_table=str)),
        )
        calls = []
        monkeypatch.setitem(registry.EXPERIMENTS, "fake", ({}, _fake_module(calls)))
        rc = main(["boom", "fake"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "boom FAILED" in captured.out
        # The batch kept going past the failure.
        assert "Fake table" in captured.out
        assert "1/2 experiment(s) failed" in captured.err

    def test_cache_dir_flag_replays(self, tmp_path, fake_registry, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["fake", "--cache-dir", str(cache_dir)]) == 0
        assert main(["fake", "--cache-dir", str(cache_dir)]) == 0
        assert len(fake_registry) == 1
        assert "done (cache)" in capsys.readouterr().out
