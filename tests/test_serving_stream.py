"""Out-of-core serving equivalence suite.

The chunked path's contract is the same *exact* equality the fast
engine pins against the reference loop, extended to streaming:

* :class:`RequestStream` chunks concatenate bitwise equal to one
  whole-stream ``generate_request_table`` call, at every chunk size;
* :func:`simulate_stream` reproduces :func:`simulate_table` bitwise --
  every per-request column, device fold, and batch counter -- at every
  chunk size, device count, wait bound, and thread count, including
  chunk boundaries that split an unsealed batch;
* the threaded phase-1 and the shared-memory sharded paths are
  byte-identical to serial at every ``threads`` / ``jobs`` count;
* :func:`summarize_stream` matches the exact whole-table ``summarize``
  on every exact field, and within the sketch's documented relative
  error bound on percentiles.
"""

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.experiments.serving import ServingExperiment
from repro.obs.streaming import StreamingHistogram
from repro.runtime.pool import simulate_table_sharded
from repro.serving import (
    BurstyProcess,
    PoissonProcess,
    RequestStream,
    TraceProcess,
    generate_request_table,
    shared_cost_model,
    simulate_stream,
    simulate_table,
    summarize,
    summarize_stream,
)

PATTERNS = ("poisson", "bursty", "trace")
CHUNK_SIZES = (1, 7, 1000, 10_000)
MIX = {"BERT-B": 2.0, "BERT-L": 1.0, "ViT-B": 1.0, "ALBERT-XL": 0.5}


def make_process(pattern):
    return {
        "poisson": PoissonProcess(rate_rps=120.0),
        "bursty": BurstyProcess(40.0, 150.0, 0.5, 0.1),
        "trace": TraceProcess([0.01, 0.002, 0.005]),
    }[pattern]


@pytest.fixture(scope="module")
def cost_model():
    return shared_cost_model(S_SPRINT, ExecutionMode.SPRINT)


def table_chunks(table, size):
    """Slice a (sorted) table into consecutive chunks of ``size`` rows."""
    return [
        table.slice(lo, min(lo + size, len(table)))
        for lo in range(0, len(table), size)
    ]


def assert_tables_equal(a, b):
    assert [s.name for s in a.specs] == [s.name for s in b.specs]
    assert np.array_equal(a.request_id, b.request_id)
    assert np.array_equal(a.arrival_s, b.arrival_s)
    assert np.array_equal(a.spec_idx, b.spec_idx)
    assert np.array_equal(a.valid_len, b.valid_len)


def run_stream(chunks, cost, **kwargs):
    """simulate_stream with a collecting sink -> (result, sorted columns)."""
    collected = []
    result = simulate_stream(chunks, cost, sink=collected.append, **kwargs)
    cols = {
        name: np.concatenate([getattr(c, name) for c in collected])
        for name in (
            "request_id",
            "arrival_s",
            "spec_idx",
            "valid_len",
            "batched_s",
            "service_start_s",
            "finish_s",
            "batch_size",
            "device_id",
        )
    }
    order = np.lexsort((cols["request_id"], cols["arrival_s"]))
    return result, {name: col[order] for name, col in cols.items()}


def assert_stream_matches_table(chunks, table, cost, **kwargs):
    whole = simulate_table(table, cost, **kwargs)
    result, cols = run_stream(chunks, cost, **kwargs)
    assert result.completed == whole.completed
    assert np.array_equal(cols["request_id"], whole.table.request_id)
    assert np.array_equal(cols["arrival_s"], whole.table.arrival_s)
    assert np.array_equal(cols["spec_idx"], whole.table.spec_idx)
    assert np.array_equal(cols["valid_len"], whole.table.valid_len)
    assert np.array_equal(cols["batched_s"], whole.batched_s)
    assert np.array_equal(cols["service_start_s"], whole.service_start_s)
    assert np.array_equal(cols["finish_s"], whole.finish_s)
    assert np.array_equal(cols["batch_size"], whole.batch_size)
    assert np.array_equal(cols["device_id"], whole.device_id)
    assert result.start_s == whole.start_s
    assert result.end_s == whole.end_s
    assert result.device_busy_s == whole.device_busy_s
    assert result.device_energy_pj == whole.device_energy_pj
    assert result.batches == whole.batches
    assert result.size_triggered_batches == whole.size_triggered_batches
    assert result.timeout_triggered_batches == whole.timeout_triggered_batches


# ----------------------------------------------------------------------
# RequestStream: chunked generation bitwise equals the whole-stream call
# ----------------------------------------------------------------------
class TestRequestStreamBitwise:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_chunks_concatenate_to_whole_table(self, pattern, chunk_size):
        process = make_process(pattern)
        whole = generate_request_table(process, MIX, count=3000, seed=11)
        stream = RequestStream(
            process, MIX, count=3000, seed=11, chunk_size=chunk_size
        )
        assert_tables_equal(stream.materialize(), whole)

    @pytest.mark.parametrize("seed", (0, 3, 9))
    @pytest.mark.parametrize(
        "mix", ("BERT-B", {"GPT-2-L": 1.0, "Synth-1": 3.0})
    )
    def test_mixes_and_seeds(self, seed, mix):
        process = PoissonProcess(rate_rps=250.0)
        whole = generate_request_table(process, mix, count=777, seed=seed)
        stream = RequestStream(
            process, mix, count=777, seed=seed, chunk_size=100
        )
        assert_tables_equal(stream.materialize(), whole)

    def test_start_id_offset(self):
        stream = RequestStream(
            PoissonProcess(50.0), "BERT-B", count=10, start_id=400
        )
        table = stream.materialize()
        assert np.array_equal(
            table.request_id, 400 + np.arange(10, dtype=np.int64)
        )

    def test_reiterable(self):
        stream = RequestStream(
            BurstyProcess(40.0, 150.0, 0.5, 0.1),
            MIX,
            count=500,
            seed=2,
            chunk_size=64,
        )
        assert_tables_equal(stream.materialize(), stream.materialize())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RequestStream(PoissonProcess(50.0), "BERT-B", count=0)
        with pytest.raises(ValueError):
            RequestStream(
                PoissonProcess(50.0), "BERT-B", count=5, chunk_size=0
            )


# ----------------------------------------------------------------------
# simulate_stream: bitwise equal to simulate_table at every chunking
# ----------------------------------------------------------------------
class TestStreamDriverBitwise:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_chunk_sizes_and_patterns(self, pattern, chunk_size, cost_model):
        table = generate_request_table(
            make_process(pattern), MIX, count=1500, seed=4
        )
        assert_stream_matches_table(
            table_chunks(table, chunk_size), table, cost_model
        )

    @pytest.mark.parametrize("num_devices", (1, 2, 4))
    @pytest.mark.parametrize("max_wait_s", (0.0, 2e-3))
    def test_devices_and_waits(self, num_devices, max_wait_s, cost_model):
        # chunk_size=7 guarantees many boundaries land mid-batch: an
        # unsealed tail (and, with max_wait > 0, a not-yet-expired
        # timeout batch) must carry across the boundary unchanged.
        table = generate_request_table(
            make_process("bursty"), MIX, count=900, seed=6
        )
        assert_stream_matches_table(
            table_chunks(table, 7),
            table,
            cost_model,
            num_devices=num_devices,
            max_wait_s=max_wait_s,
        )

    def test_request_stream_end_to_end(self, cost_model):
        # The generator path (never materialized by the driver) equals
        # the whole-table run on the materialized equivalent.
        stream = RequestStream(
            PoissonProcess(200.0), MIX, count=2000, seed=13, chunk_size=333
        )
        assert_stream_matches_table(
            stream, stream.materialize(), cost_model, num_devices=2
        )

    def test_rejects_out_of_order_chunks(self, cost_model):
        table = generate_request_table(
            PoissonProcess(100.0), "BERT-B", count=100, seed=0
        )
        chunks = table_chunks(table, 50)
        with pytest.raises(ValueError):
            simulate_stream([chunks[1], chunks[0]], cost_model)

    def test_rejects_spec_mismatch(self, cost_model):
        a = generate_request_table(
            PoissonProcess(100.0), "BERT-B", count=50, seed=0
        )
        b = generate_request_table(
            PoissonProcess(100.0), "BERT-L", count=50, seed=0
        )
        b = type(b)(
            specs=b.specs,
            request_id=b.request_id + 100,
            arrival_s=b.arrival_s + float(a.arrival_s[-1]) + 1.0,
            spec_idx=b.spec_idx,
            valid_len=b.valid_len,
        )
        with pytest.raises(ValueError):
            simulate_stream([a, b], cost_model)

    def test_rejects_empty_stream(self, cost_model):
        with pytest.raises(ValueError):
            simulate_stream([], cost_model)


# ----------------------------------------------------------------------
# Parallel paths: threads and process shards are byte-identical
# ----------------------------------------------------------------------
class TestParallelEquivalence:
    @pytest.mark.parametrize("threads", (1, 2, 4))
    def test_threaded_simulate_table(self, threads, cost_model):
        table = generate_request_table(
            make_process("bursty"), MIX, count=2000, seed=8
        )
        base = simulate_table(table, cost_model, num_devices=2)
        out = simulate_table(
            table, cost_model, num_devices=2, threads=threads
        )
        assert np.array_equal(out.finish_s, base.finish_s)
        assert np.array_equal(out.batched_s, base.batched_s)
        assert np.array_equal(out.device_id, base.device_id)
        assert out.device_busy_s == base.device_busy_s
        assert out.device_energy_pj == base.device_energy_pj

    @pytest.mark.parametrize("threads", (1, 2, 4))
    def test_threaded_simulate_stream(self, threads, cost_model):
        table = generate_request_table(
            make_process("poisson"), MIX, count=1500, seed=8
        )
        assert_stream_matches_table(
            table_chunks(table, 250), table, cost_model, threads=threads
        )

    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_sharded_simulate_table(self, jobs, cost_model):
        table = generate_request_table(
            make_process("trace"), MIX, count=1200, seed=5
        )
        base = simulate_table(table, cost_model, num_devices=2)
        out = simulate_table_sharded(
            table, cost_model, jobs=jobs, num_devices=2
        )
        assert np.array_equal(out.finish_s, base.finish_s)
        assert np.array_equal(out.batched_s, base.batched_s)
        assert np.array_equal(out.service_start_s, base.service_start_s)
        assert np.array_equal(out.device_id, base.device_id)
        assert out.device_busy_s == base.device_busy_s
        assert out.device_energy_pj == base.device_energy_pj
        assert out.batches == base.batches


# ----------------------------------------------------------------------
# summarize_stream: exact aggregates, sketch-bounded percentiles
# ----------------------------------------------------------------------
class TestSummarizeStream:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_matches_exact_summary(self, pattern, cost_model):
        table = generate_request_table(
            make_process(pattern), MIX, count=2500, seed=3
        )
        exact = summarize(
            simulate_table(table, cost_model),
            config=S_SPRINT.name,
            mode="sprint",
            pattern=pattern,
            offered_rps=120.0,
            sla_s=0.05,
        )
        streamed = summarize_stream(
            table_chunks(table, 400),
            cost_model,
            config=S_SPRINT.name,
            mode="sprint",
            pattern=pattern,
            offered_rps=120.0,
            sla_s=0.05,
        )
        assert streamed.requests == exact.requests
        assert streamed.duration_s == exact.duration_s
        assert streamed.throughput_rps == exact.throughput_rps
        assert streamed.utilization == exact.utilization
        assert streamed.energy_uj == exact.energy_uj
        assert streamed.sla_violations == exact.sla_violations
        assert streamed.mean_batch_size == pytest.approx(
            exact.mean_batch_size, rel=1e-12
        )
        bound = StreamingHistogram().rel_error_bound
        for attr in ("p50_s", "p95_s", "p99_s"):
            assert getattr(streamed.latency, attr) == pytest.approx(
                getattr(exact.latency, attr), rel=bound
            )
            assert getattr(streamed.queue_wait, attr) == pytest.approx(
                getattr(exact.queue_wait, attr), rel=bound
            )
        assert streamed.latency.max_s == exact.latency.max_s
        assert streamed.latency.mean_s == pytest.approx(
            exact.latency.mean_s, rel=1e-9
        )

    def test_stream_engine_experiment_point(self):
        fast = ServingExperiment(engine="fast")
        stream = ServingExperiment(engine="stream")
        mode = ExecutionMode.SPRINT
        a = fast.simulate("poisson", mode, 40.0, 1000)
        b = stream.simulate("poisson", mode, 40.0, 1000)
        assert b.requests == a.requests
        assert b.duration_s == a.duration_s
        assert b.throughput_rps == a.throughput_rps
        assert b.utilization == a.utilization
        assert b.energy_uj == a.energy_uj
        assert b.sla_violations == a.sla_violations

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            ServingExperiment(engine="chunky")


# ----------------------------------------------------------------------
# RequestTable.head / slice (satellite S6)
# ----------------------------------------------------------------------
class TestTableSlicing:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_request_table(
            PoissonProcess(100.0), MIX, count=50, seed=1
        )

    def test_head_validates_count(self, table):
        with pytest.raises(ValueError):
            table.head(51)
        assert len(table.head(50)) == 50

    def test_slice_bounds(self, table):
        with pytest.raises(ValueError):
            table.slice(-1, 10)
        with pytest.raises(ValueError):
            table.slice(10, 10)
        with pytest.raises(ValueError):
            table.slice(10, 51)

    def test_slice_copies(self, table):
        part = table.slice(10, 20)
        assert len(part) == 10
        assert np.array_equal(part.request_id, table.request_id[10:20])
        part.arrival_s[0] = -1.0
        assert table.arrival_s[10] != -1.0

    def test_head_equals_slice_prefix(self, table):
        assert_tables_equal(table.head(10), table.slice(0, 10))
