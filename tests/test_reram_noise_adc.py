"""Unit tests for repro.reram.noise and repro.reram.adc."""

import numpy as np
import pytest

from repro.reram.adc import ADC, AnalogComparator, DAC
from repro.reram.noise import OutputNoiseModel


class TestOutputNoiseModel:
    def test_sigma_matches_enob_formula(self):
        model = OutputNoiseModel(equivalent_bits=5.0)
        fs = 10.0
        assert model.sigma(fs) == pytest.approx(fs / (32 * np.sqrt(12)))

    def test_more_bits_less_noise(self):
        assert OutputNoiseModel(6).sigma(1.0) < OutputNoiseModel(5).sigma(1.0)

    def test_apply_statistics(self, rng):
        model = OutputNoiseModel(equivalent_bits=5.0)
        values = np.zeros(20000)
        noisy = model.apply(values, full_scale=1.0, rng=rng)
        assert np.std(noisy) == pytest.approx(model.sigma(1.0), rel=0.05)

    def test_zero_full_scale_identity(self):
        model = OutputNoiseModel()
        values = np.zeros(5)
        np.testing.assert_array_equal(model.apply(values, full_scale=0.0),
                                      values)

    def test_negative_full_scale_rejected(self):
        with pytest.raises(ValueError):
            OutputNoiseModel().sigma(-1.0)


class TestDAC:
    def test_conversion_linear(self):
        dac = DAC(bits=4, v_ref=1.0)
        volts = dac.convert(np.array([0, 15]))
        np.testing.assert_allclose(volts, [0.0, 1.0])

    def test_counts_conversions(self):
        dac = DAC(bits=4)
        dac.convert(np.arange(8))
        assert dac.conversions == 8

    def test_rejects_out_of_range(self):
        dac = DAC(bits=4)
        with pytest.raises(ValueError):
            dac.convert(np.array([16]))


class TestADC:
    def test_one_bit_threshold(self):
        adc = ADC(bits=1, v_ref=1.0)
        out = adc.convert(np.array([0.1, 0.9]))
        np.testing.assert_array_equal(out, [0, 1])

    def test_five_bit_levels(self):
        adc = ADC(bits=5, v_ref=1.0)
        out = adc.convert(np.linspace(0, 1, 32))
        assert out.min() == 0
        assert out.max() == 31

    def test_clipping(self):
        adc = ADC(bits=3, v_ref=1.0)
        out = adc.convert(np.array([-0.5, 1.5]))
        np.testing.assert_array_equal(out, [0, 7])

    def test_relative_power_scaling(self):
        # The paper's motivation: 5-bit ADC >> 1-bit comparator cost.
        assert ADC(bits=5).relative_power() / ADC(bits=1).relative_power() > 20

    def test_counts_conversions(self):
        adc = ADC(bits=1)
        adc.convert(np.zeros(128))
        assert adc.conversions == 128


class TestAnalogComparator:
    def test_prune_convention(self):
        comp = AnalogComparator()
        bits = comp.compare(np.array([0.1, 0.9, 0.4]), v_threshold=0.5)
        # '1' -> pruned (strictly below threshold).
        np.testing.assert_array_equal(bits, [1, 0, 1])

    def test_counts(self):
        comp = AnalogComparator()
        comp.compare(np.zeros(64), 0.0)
        assert comp.comparisons == 64

    def test_dtype(self):
        comp = AnalogComparator()
        bits = comp.compare(np.array([1.0]), 0.0)
        assert bits.dtype == np.uint8
