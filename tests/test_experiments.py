"""Tests for the experiment modules: structure and paper-shape claims.

Each experiment runs with reduced sample counts and is checked against
the qualitative claims of the corresponding paper figure (who wins, in
which direction, roughly by how much) -- not against absolute numbers.
"""

import numpy as np
import pytest

from repro.core.configs import M_SPRINT, S_SPRINT
from repro.experiments import (
    ffn_end_to_end,
    fig1_memory_energy,
    fig3_overlap,
    fig8_imbalance,
    fig10_data_movement,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    table3_comparison,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

FAST_MODELS = ("BERT-B", "ViT-B", "GPT-2-L")
FAST_CONFIGS = (S_SPRINT, M_SPRINT)


class TestFig1:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig1_memory_energy.run(
            seq_lengths=(64, 256), fractions=(0.2, 0.6, 1.0)
        )

    def test_memory_dominates_at_20pct(self, rows):
        # Paper Figure 1: >60% at 20% capacity for the longer sequences
        # (the S=32 point sits near 51% in the paper's own data).
        at20 = [r for r in rows if r.capacity_fraction == 0.2]
        assert all(r.memory_energy_fraction > 0.5 for r in at20)
        longest = max(at20, key=lambda r: r.seq_len)
        assert longest.memory_energy_fraction > 0.6

    def test_monotone_decrease_with_capacity(self, rows):
        for s in (64, 256):
            series = [
                r.memory_energy_fraction
                for r in rows
                if r.seq_len == s
            ]
            assert series == sorted(series, reverse=True)

    def test_small_at_full_capacity(self, rows):
        full = [r for r in rows if r.capacity_fraction == 1.0]
        assert all(r.memory_energy_fraction < 0.35 for r in full)

    def test_format_table(self, rows):
        text = fig1_memory_energy.format_table(rows)
        assert "Figure 1" in text and "S=64" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig3_overlap.run(models=("BERT-B", "ViT-B"), num_samples=1)

    def test_real_exceeds_random(self, rows):
        for r in rows:
            assert r.real_overlap > r.random_overlap

    def test_bert_ratio_2_to_3x(self, rows):
        bert = next(r for r in rows if r.model == "BERT-B")
        assert 2.0 <= bert.ratio_vs_random <= 3.5

    def test_random_matches_eq1_theory(self, rows):
        for r in rows:
            assert r.random_overlap == pytest.approx(
                r.theoretical_overlap, abs=0.05
            )

    def test_vit_less_locality(self, rows):
        bert = next(r for r in rows if r.model == "BERT-B")
        vit = next(r for r in rows if r.model == "ViT-B")
        assert vit.ratio_vs_random < bert.ratio_vs_random

    def test_format_table(self, rows):
        assert "Figure 3" in fig3_overlap.format_table(rows)


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig8_imbalance.run(
            models=("BERT-B", "GPT-2-L"), corelet_counts=(2, 8),
            num_samples=1,
        )

    def test_interleaving_beats_sequential(self, rows):
        for r in rows:
            assert r.interleaved_imbalance <= r.sequential_imbalance

    def test_imbalance_at_least_one(self, rows):
        for r in rows:
            assert r.interleaved_imbalance >= 1.0

    def test_more_corelets_harder_to_balance(self, rows):
        for model in ("BERT-B", "GPT-2-L"):
            sel = sorted(
                (r for r in rows if r.model == model),
                key=lambda r: r.num_corelets,
            )
            assert (
                sel[0].interleaved_imbalance <= sel[1].interleaved_imbalance
            )


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10_data_movement.run(
            models=FAST_MODELS, configs=FAST_CONFIGS, num_samples=1
        )

    def test_sprint_beats_mask_only(self, rows):
        for r in rows:
            assert r.sprint_reduction >= r.mask_only_reduction - 1e-9

    def test_sprint_reduction_above_90pct(self, rows):
        bert = [r for r in rows if r.model == "BERT-B"]
        assert all(r.sprint_reduction > 0.9 for r in bert)

    def test_averages_structure(self, rows):
        avg = fig10_data_movement.average_reductions(rows)
        assert set(avg) == {"S-SPRINT", "M-SPRINT"}


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig11_speedup.run(
            models=FAST_MODELS, configs=FAST_CONFIGS, num_samples=1
        )

    def test_all_speedups_above_one(self, rows):
        for r in rows:
            assert r.speedup > 1.0
            assert r.pruning_only_speedup > 1.0

    def test_sprint_beats_pruning_only(self, rows):
        for r in rows:
            assert r.speedup > r.pruning_only_speedup

    def test_vit_minimum(self, rows):
        by_model = {}
        for r in rows:
            by_model.setdefault(r.model, []).append(r.speedup)
        means = {m: np.mean(v) for m, v in by_model.items()}
        assert means["ViT-B"] == min(means.values())

    def test_geomean_in_paper_regime(self, rows):
        g = fig11_speedup.geomeans(rows)
        for config in g:
            assert 2.0 < g[config]["sprint"] < 20.0


class TestFig12:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig12_energy.run(
            models=FAST_MODELS, configs=FAST_CONFIGS, num_samples=1
        )

    def test_all_reductions_above_one(self, rows):
        for r in rows:
            assert r.energy_reduction > 1.0

    def test_vit_minimum(self, rows):
        by_model = {}
        for r in rows:
            by_model.setdefault(r.model, []).append(r.energy_reduction)
        means = {m: np.mean(v) for m, v in by_model.items()}
        assert means["ViT-B"] == min(means.values())

    def test_s_beats_l_for_bert(self):
        from repro.core.configs import L_SPRINT

        rows = fig12_energy.run(
            models=("BERT-B",), configs=(S_SPRINT, L_SPRINT), num_samples=1
        )
        s = next(r for r in rows if r.config == "S-SPRINT")
        l = next(r for r in rows if r.config == "L-SPRINT")
        # Paper: the benefit increases as on-chip resources get scarcer.
        assert s.energy_reduction > l.energy_reduction

    def test_synth_inverts_ordering(self):
        from repro.core.configs import L_SPRINT

        rows = fig12_energy.run(
            models=("Synth-1",), configs=(S_SPRINT, L_SPRINT), num_samples=1
        )
        s = next(r for r in rows if r.config == "S-SPRINT")
        l = next(r for r in rows if r.config == "L-SPRINT")
        # Paper: for Synth models L-SPRINT gains *more* than S-SPRINT.
        assert l.energy_reduction > s.energy_reduction


class TestFig13:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig13_breakdown.run(models=FAST_MODELS, num_samples=1)

    def test_baseline_fractions_sum_to_one(self, rows):
        for r in rows:
            if r.scenario == "baseline":
                assert r.total_fraction == pytest.approx(1.0)

    def test_pruning_only_around_2x(self, rows):
        savings = fig13_breakdown.savings_by_model(rows)
        assert 1.5 < savings["BERT-B"]["pruning_only"] < 2.5
        # ViT saves least (low pruning rate, no padding, less locality).
        assert savings["ViT-B"]["pruning_only"] < savings["BERT-B"]["pruning_only"]

    def test_sprint_writes_dominate(self, rows):
        sprint_bert = next(
            r for r in rows
            if r.model == "BERT-B" and r.scenario == "sprint"
        )
        fr = sprint_bert.fractions
        assert fr["reram_write"] == max(fr.values())

    def test_inmemory_overhead_small(self, rows):
        for r in rows:
            if r.scenario == "sprint":
                assert r.fractions["inmemory_pruning"] < 0.05 * r.total_fraction + 1e-9

    def test_baseline_read_share_high_for_bert(self, rows):
        bert = next(
            r for r in rows
            if r.model == "BERT-B" and r.scenario == "baseline"
        )
        assert bert.fractions["reram_read"] > 0.4


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_comparison.run(models=FAST_MODELS, num_samples=1)

    def test_contains_all_designs(self, rows):
        names = {r.name.split(" ")[0] for r in rows}
        assert {"A3", "SpAtten", "LeOPArd", "M-SPRINT"} <= names

    def test_msprint_best_throughput(self, rows):
        msprint = next(r for r in rows if r.simulated)
        others = [r.gops_per_s for r in rows if not r.simulated]
        assert msprint.gops_per_s > max(others)

    def test_msprint_best_area_efficiency(self, rows):
        msprint = next(r for r in rows if r.simulated)
        others = [r.gops_per_s_mm2 for r in rows if not r.simulated]
        assert msprint.gops_per_s_mm2 > max(others)

    def test_a3_beats_on_gops_per_j(self, rows):
        # A3 omits memory cost and uses 40 nm: it wins raw GOPs/J.
        msprint = next(r for r in rows if r.simulated)
        a3 = next(r for r in rows if r.name == "A3")
        assert a3.gops_per_j > msprint.gops_per_j

    def test_dennard_scaling_closes_gap(self, rows):
        scaled = table3_comparison.dennard_scaled_gops_per_j(rows, to_nm=40)
        msprint = next(iter(scaled.values()))
        raw = next(r for r in rows if r.simulated).gops_per_j
        assert msprint > raw


class TestFfn:
    @pytest.fixture(scope="class")
    def rows(self):
        return ffn_end_to_end.run(
            models=("BERT-B", "ViT-B"), num_samples=1
        )

    def test_end_to_end_smaller_than_attention_only(self, rows):
        for r in rows:
            assert r.end_to_end_speedup < r.attention_speedup

    def test_vit_near_unity(self, rows):
        vit = next(r for r in rows if r.model == "ViT-B")
        assert vit.end_to_end_speedup < 1.5
        assert vit.ffn_speedup == pytest.approx(1.0)

    def test_bert_meaningful_benefit(self, rows):
        bert = next(r for r in rows if r.model == "BERT-B")
        assert bert.end_to_end_speedup > 1.5
        assert bert.end_to_end_energy_saving > 1.5


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig5", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "ffn", "table3", "ablations",
            "sensitivity", "serving", "decode", "resilience",
        }

    def test_run_experiment_fast(self):
        out = run_experiment("fig1", fast=True)
        assert "Figure 1" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
