"""Tests for reram.mapping, attention.heads, and models.projection."""

import numpy as np
import pytest

from repro.attention.heads import MultiHeadRuntime
from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    SprintPolicy,
)
from repro.models.projection import (
    FeedForward,
    LinearLayer,
    QKVProjection,
)
from repro.reram.mapping import (
    BankAllocator,
    BankType,
    MatrixKind,
)


class TestBankAllocator:
    def test_kmsb_goes_to_transposable(self):
        alloc = BankAllocator()
        region = alloc.allocate(MatrixKind.KEY_MSB, 128)
        assert region.bank_type == BankType.TRANSPOSABLE

    def test_others_go_to_standard(self):
        alloc = BankAllocator()
        for kind in (MatrixKind.QUERY, MatrixKind.KEY_LSB, MatrixKind.VALUE):
            assert alloc.allocate(kind, 8).bank_type == BankType.STANDARD

    def test_regions_do_not_overlap(self):
        alloc = BankAllocator()
        a = alloc.allocate(MatrixKind.QUERY, 64)
        b = alloc.allocate(MatrixKind.VALUE, 64)
        assert a.end_column <= b.start_column

    def test_head_allocation_bundle(self):
        alloc = BankAllocator()
        regions = alloc.allocate_attention_head(seq_len=384)
        assert set(regions) == {"Q", "K_MSB", "K_LSB", "V"}
        assert regions["K_MSB"].bank_type == BankType.TRANSPOSABLE
        assert all(r.num_vectors == 384 for r in regions.values())

    def test_capacity_exhaustion(self):
        alloc = BankAllocator(transposable_capacity_vectors=100)
        alloc.allocate(MatrixKind.KEY_MSB, 100)
        with pytest.raises(MemoryError):
            alloc.allocate(MatrixKind.KEY_MSB, 1)

    def test_utilization_and_free(self):
        alloc = BankAllocator(standard_capacity_vectors=100)
        alloc.allocate(MatrixKind.QUERY, 25)
        assert alloc.utilization(BankType.STANDARD) == pytest.approx(0.25)
        assert alloc.free_vectors(BankType.STANDARD) == 75

    def test_reset(self):
        alloc = BankAllocator()
        alloc.allocate_attention_head(64)
        alloc.reset()
        assert not alloc.regions()
        assert alloc.utilization(BankType.STANDARD) == 0.0

    def test_region_filtering(self):
        alloc = BankAllocator()
        alloc.allocate(MatrixKind.QUERY, 8)
        alloc.allocate(MatrixKind.VALUE, 8)
        assert len(alloc.regions(MatrixKind.QUERY)) == 1
        assert len(alloc.regions()) == 2

    def test_total_bytes(self):
        alloc = BankAllocator(vector_bytes=64)
        region = alloc.allocate(MatrixKind.VALUE, 10)
        assert region.total_bytes == 640

    def test_rejects_empty_allocation(self):
        with pytest.raises(ValueError):
            BankAllocator().allocate(MatrixKind.QUERY, 0)


class TestMultiHeadRuntime:
    @pytest.fixture(scope="class")
    def qkv(self):
        rng = np.random.default_rng(5)
        shape = (40, 32)  # 4 heads x d=8
        return (
            rng.normal(size=shape) * 2,
            rng.normal(size=shape) * 2,
            rng.normal(size=shape),
        )

    def test_exact_policy_matches_reference(self, qkv):
        q, k, v = qkv
        runtime = MultiHeadRuntime(4, ExactPolicy())
        result = runtime.run(q, k, v)
        np.testing.assert_allclose(
            result.outputs, runtime._exact(q, k, v, None), atol=1e-9
        )

    def test_head_stats_collected(self, qkv):
        q, k, v = qkv
        runtime = MultiHeadRuntime(4, RuntimePruningPolicy(0.6))
        result = runtime.run(q, k, v)
        assert len(result.head_stats) == 4
        assert 0.4 < result.mean_pruning_rate() < 0.8
        assert 0.0 <= result.mean_overlap() <= 1.0

    def test_padding_mask_respected(self, qkv):
        q, k, v = qkv
        valid = np.zeros(40, dtype=bool)
        valid[:24] = True
        mask = np.outer(valid, valid)
        runtime = MultiHeadRuntime(4, RuntimePruningPolicy(0.5))
        result = runtime.run(q, k, v, padding_mask=mask)
        assert result.outputs.shape == q.shape

    def test_policy_deviation_ordering(self, qkv):
        q, k, v = qkv
        runtime = MultiHeadRuntime(4)
        deviations = runtime.compare_policies(
            q, k, v,
            [
                ExactPolicy(),
                SprintPolicy(0.6, recompute=True, noise_sigma=0.0),
                SprintPolicy(0.6, recompute=False, noise_sigma=0.0),
            ],
        )
        assert deviations[0] == pytest.approx(0.0, abs=1e-12)
        assert deviations[1] > 0.0

    def test_shape_validation(self, qkv):
        q, k, v = qkv
        runtime = MultiHeadRuntime(4)
        with pytest.raises(ValueError):
            runtime.run(q, k[:10], v)
        with pytest.raises(ValueError):
            MultiHeadRuntime(0)
        with pytest.raises(ValueError):
            MultiHeadRuntime(7).run(q, k, v)  # 32 not divisible by 7


class TestLinearLayer:
    def test_float_forward(self, rng):
        w = rng.normal(size=(8, 4))
        layer = LinearLayer(w)
        x = rng.normal(size=(3, 8))
        np.testing.assert_allclose(layer.forward(x), x @ w)

    def test_quantized_close_to_float(self, rng):
        w = rng.normal(size=(16, 16))
        layer = LinearLayer(w)
        x = rng.normal(size=(4, 16))
        err = layer.quantization_error(x)
        # int8 x int8 keeps relative error small.
        assert err < 0.1 * np.abs(layer.forward(x)).max()

    def test_bias_applied(self, rng):
        w = np.zeros((4, 2))
        layer = LinearLayer(w, bias=np.array([1.0, -1.0]))
        out = layer.forward(np.ones((1, 4)))
        np.testing.assert_allclose(out, [[1.0, -1.0]])

    def test_stats_counting(self, rng):
        layer = LinearLayer(rng.normal(size=(64, 64)))
        layer.forward(rng.normal(size=(2, 64)))
        assert layer.stats.macs == 2 * 64 * 64
        assert layer.stats.dot_products_64tap == 2 * 64

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LinearLayer(rng.normal(size=(4,)))
        with pytest.raises(ValueError):
            LinearLayer(rng.normal(size=(4, 2)), bias=np.zeros(3))


class TestQKVProjection:
    def test_shapes(self, rng):
        proj = QKVProjection.random(embed_dim=32, seed=1)
        x = rng.normal(size=(10, 32))
        q, k, v = proj.forward(x)
        assert q.shape == k.shape == v.shape == (10, 32)

    def test_quantized_path(self, rng):
        proj = QKVProjection.random(embed_dim=32, seed=1)
        x = rng.normal(size=(4, 32))
        qf, _, _ = proj.forward(x)
        qq, _, _ = proj.forward(x, quantized=True)
        assert np.abs(qf - qq).max() < 0.2 * max(1.0, np.abs(qf).max())

    def test_total_stats(self, rng):
        proj = QKVProjection.random(embed_dim=16, seed=2)
        proj.forward(rng.normal(size=(2, 16)))
        assert proj.total_stats().macs == 3 * 2 * 16 * 16


class TestFeedForward:
    def test_forward_shapes(self, rng):
        ffn = FeedForward(embed_dim=16, seed=3)
        x = rng.normal(size=(5, 16))
        assert ffn.forward(x).shape == (5, 16)

    def test_relu_nonlinearity(self):
        ffn = FeedForward(embed_dim=4, seed=3)
        x = np.zeros((1, 4))
        out_zero = ffn.forward(x)
        # With zero input, the ReLU output is zero -> output is bias only.
        np.testing.assert_allclose(out_zero, ffn.down.bias[None, :])

    def test_macs_per_token(self):
        ffn = FeedForward(embed_dim=8)
        assert ffn.macs_per_token() == 8 * 32 + 32 * 8

    def test_quantized_path_close(self, rng):
        ffn = FeedForward(embed_dim=16, seed=4)
        x = rng.normal(size=(3, 16))
        f = ffn.forward(x)
        q = ffn.forward(x, quantized=True)
        assert np.abs(f - q).max() < 0.3 * max(1.0, np.abs(f).max())
