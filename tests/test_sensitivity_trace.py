"""Tests for the sensitivity sweeps and the trace recorder."""

import numpy as np
import pytest

from repro.core.configs import S_SPRINT
from repro.core.trace import TraceRecorder
from repro.experiments import sensitivity
from repro.workloads.generator import generate_workload


class TestPruningRateSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return sensitivity.run_pruning_rate_sweep(
            rates=(0.3, 0.6, 0.9), seq_len=192
        )

    def test_speedup_increases_with_pruning(self, rows):
        speedups = [r.speedup for r in rows]
        assert speedups == sorted(speedups)

    def test_energy_increases_with_pruning(self, rows):
        energy = [r.energy_reduction for r in rows]
        assert energy == sorted(energy)

    def test_unpruned_decreases(self, rows):
        unpruned = [r.unpruned_per_query for r in rows]
        assert unpruned == sorted(unpruned, reverse=True)

    def test_all_beneficial(self, rows):
        for r in rows:
            assert r.speedup > 1.0
            assert r.energy_reduction > 1.0


class TestSequenceLengthSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return sensitivity.run_sequence_length_sweep(
            seq_lens=(128, 512, 2048)
        )

    def test_coverage_shrinks(self, rows):
        coverage = [r.coverage for r in rows]
        assert coverage == sorted(coverage, reverse=True)

    def test_long_sequences_benefit_more_in_traffic(self, rows):
        # Once capacity is a sliver, SPRINT's traffic advantage grows.
        assert rows[-1].data_movement_reduction >= rows[0].data_movement_reduction - 0.05

    def test_speedup_positive_everywhere(self, rows):
        for r in rows:
            assert r.speedup > 1.0

    def test_format_table(self, rows):
        text = sensitivity.format_tables(
            sensitivity.run_pruning_rate_sweep(rates=(0.5,), seq_len=128),
            rows,
        )
        assert "Sensitivity sweeps" in text


class TestTraceRecorder:
    @pytest.fixture(scope="class")
    def recorder(self):
        workload = generate_workload(
            192, 0.75, padding_ratio=0.2, num_samples=1, seed=6
        )
        return TraceRecorder.trace_sprint(workload.samples[0], S_SPRINT)

    def test_one_event_per_valid_query(self, recorder):
        assert len(recorder.events) > 0
        queries = [e.query for e in recorder.events]
        assert queries == list(range(len(queries)))

    def test_totals_match_components(self, recorder):
        for e in recorder.events:
            assert e.latency_cycles == max(
                e.compute_cycles, e.memory_cycles
            )
            assert e.fetched + e.reused == e.unpruned

    def test_bound_labels(self, recorder):
        bounds = recorder.bound_fractions()
        assert bounds["compute"] + bounds["memory"] == pytest.approx(1.0)

    def test_reuse_fraction_high_for_structured(self, recorder):
        # Structured workloads reuse most unpruned keys (Figure 3).
        assert recorder.reuse_fraction() > 0.5

    def test_first_query_among_fetch_heaviest(self, recorder):
        # Cold start: query 0 must fetch everything it needs.
        worst = max(recorder.events, key=lambda e: e.fetched)
        assert worst.query < 10

    def test_burstiness_positive(self, recorder):
        assert recorder.fetch_burstiness() > 0.5

    def test_csv_roundtrip(self, recorder):
        csv_text = recorder.to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == len(recorder.events) + 1
        assert lines[0].startswith("query,")

    def test_summary_fields(self, recorder):
        text = recorder.summary()
        assert "queries" in text and "reuse" in text

    def test_worst_queries_sorted(self, recorder):
        worst = recorder.worst_queries(3)
        latencies = [e.latency_cycles for e in worst]
        assert latencies == sorted(latencies, reverse=True)

    def test_empty_recorder(self):
        empty = TraceRecorder()
        assert empty.total_cycles == 0
        assert empty.fetch_burstiness() == 0.0
        assert empty.reuse_fraction() == 0.0
