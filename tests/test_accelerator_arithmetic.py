"""Unit tests for repro.accelerator.arithmetic and softmax unit."""

import numpy as np
import pytest

from repro.accelerator.arithmetic import (
    ATTENTION_FORMAT,
    PROB_FORMAT,
    SCORE_FORMAT,
    FixedPointFormat,
    build_exponent_luts,
    lut_exponential,
    saturating_mac,
)
from repro.accelerator.softmax_unit import SoftmaxUnit


class TestFixedPointFormat:
    def test_paper_formats(self):
        # Section VI: 12-bit softmax inputs, 8-bit probs, 16-bit values.
        assert SCORE_FORMAT.total_bits == 12
        assert PROB_FORMAT.total_bits == 8
        assert ATTENTION_FORMAT.total_bits == 16

    def test_quantize_roundtrip(self, rng):
        fmt = FixedPointFormat(12, 6)
        x = rng.uniform(-10, 10, size=100)
        codes = fmt.quantize(x)
        back = fmt.to_real(codes)
        assert np.max(np.abs(back - x)) <= 1.0 / fmt.scale

    def test_saturation(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.quantize(np.array([1000.0]))[0] == 127
        assert fmt.quantize(np.array([-1000.0]))[0] == -128

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            FixedPointFormat(8, 8)
        with pytest.raises(ValueError):
            FixedPointFormat(1, 0)


class TestSaturatingMac:
    def test_basic(self):
        assert saturating_mac(10, 3, 4) == 22

    def test_saturates_high(self):
        hi = 2 ** 16 - 1
        assert saturating_mac(hi, 127, 127, total_bits=17) == hi

    def test_saturates_low(self):
        lo = -(2 ** 16)
        assert saturating_mac(lo, -127, 127, total_bits=17) == lo


class TestLutExponential:
    def test_tables_are_64_entries(self):
        hi, lo, lo_bits = build_exponent_luts()
        assert len(hi) == 64
        assert len(lo) == 64
        assert lo_bits == 6

    def test_matches_exp_for_nonpositive(self):
        x = np.linspace(-10, 0, 200)
        codes = SCORE_FORMAT.quantize(x)
        approx = lut_exponential(codes)
        exact = np.exp(SCORE_FORMAT.to_real(codes))
        np.testing.assert_allclose(approx, exact, rtol=1e-6)

    def test_zero_maps_to_one(self):
        assert lut_exponential(np.array([0]))[0] == pytest.approx(1.0)

    def test_monotone(self):
        codes = SCORE_FORMAT.quantize(np.linspace(-5, 0, 50))
        vals = lut_exponential(codes)
        assert np.all(np.diff(vals) >= 0)


class TestSoftmaxUnit:
    def test_matches_float_softmax(self, rng):
        unit = SoftmaxUnit()
        scores = rng.normal(size=40)
        probs = unit.normalize(scores)
        exact = np.exp(scores - scores.max())
        exact = exact / exact.sum()
        # 8-bit output quantization bounds the error.
        assert np.max(np.abs(probs - exact)) < 2.0 / PROB_FORMAT.scale

    def test_stats_counting(self, rng):
        unit = SoftmaxUnit()
        unit.normalize(rng.normal(size=10))
        assert unit.stats.rows == 1
        assert unit.stats.lut_accesses == 20
        assert unit.stats.multiplies == 10
        assert unit.stats.divides == 10

    def test_empty_input(self):
        unit = SoftmaxUnit()
        out = unit.normalize(np.array([]))
        assert out.size == 0

    def test_cycles_model(self):
        unit = SoftmaxUnit(dividers=2)
        assert unit.cycles(0) == 0
        assert unit.cycles(10) == 10 + 5

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            SoftmaxUnit().normalize(rng.normal(size=(2, 3)))

    def test_single_element(self):
        probs = SoftmaxUnit().normalize(np.array([3.0]))
        assert probs[0] == pytest.approx(1.0, abs=1e-2)
