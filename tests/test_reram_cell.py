"""Unit tests for repro.reram.cell."""

import numpy as np
import pytest

from repro.reram.cell import MLCCellModel


class TestMLCCellModel:
    def test_level_count(self):
        assert MLCCellModel(bits_per_cell=4).level_count == 16
        assert MLCCellModel(bits_per_cell=1).level_count == 2

    def test_level_conductances_monotone(self):
        cell = MLCCellModel()
        levels = cell.level_conductances()
        assert len(levels) == 16
        assert np.all(np.diff(levels) > 0)
        assert levels[0] == cell.g_min
        assert levels[-1] == cell.g_max

    def test_ideal_program_exact(self):
        cell = MLCCellModel(variation_sigma=0.0)
        codes = np.arange(16)
        conduct = cell.program(codes, ideal=True)
        np.testing.assert_allclose(conduct, cell.level_conductances())

    def test_variation_perturbs(self, rng):
        cell = MLCCellModel(variation_sigma=0.05)
        codes = np.full(100, 8)
        conduct = cell.program(codes, rng=rng)
        assert np.std(conduct) > 0

    def test_variation_clipped_to_range(self, rng):
        cell = MLCCellModel(variation_sigma=0.5)
        conduct = cell.program(np.arange(16), rng=rng)
        assert np.all(conduct >= cell.g_min)
        assert np.all(conduct <= cell.g_max)

    def test_rejects_out_of_range_codes(self):
        cell = MLCCellModel(bits_per_cell=4)
        with pytest.raises(ValueError):
            cell.program(np.array([16]))
        with pytest.raises(ValueError):
            cell.program(np.array([-1]))

    def test_read_level_roundtrip_ideal(self):
        cell = MLCCellModel(variation_sigma=0.0)
        codes = np.arange(16)
        conduct = cell.program(codes, ideal=True)
        np.testing.assert_array_equal(cell.read_level(conduct), codes)

    def test_read_level_robust_to_small_variation(self, rng):
        cell = MLCCellModel(variation_sigma=0.01)
        codes = np.arange(16)
        conduct = cell.program(codes, rng=rng)
        recovered = cell.read_level(conduct)
        # 4 bits/cell is the paper's robustness sweet spot: small
        # variation rarely crosses a level boundary.
        assert np.mean(recovered == codes) >= 0.75

    def test_more_bits_less_robust(self, rng):
        """More bits/cell -> tighter levels -> more read errors (paper III)."""
        errors = {}
        for bits in (2, 4, 6):
            cell = MLCCellModel(bits_per_cell=bits, variation_sigma=0.05)
            codes = np.arange(cell.level_count)
            reps = np.tile(codes, 50)
            conduct = cell.program(reps, rng=np.random.default_rng(0))
            errors[bits] = float(np.mean(cell.read_level(conduct) != reps))
        assert errors[2] <= errors[4] <= errors[6]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MLCCellModel(bits_per_cell=0)
        with pytest.raises(ValueError):
            MLCCellModel(g_min=1.0, g_max=0.5)
