"""Unit tests for repro.models (zoo, transformer, tasks)."""

import numpy as np
import pytest

from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    SprintPolicy,
)
from repro.models.tasks import (
    evaluate_accuracy,
    evaluate_perplexity,
    make_classification_task,
    make_lm_task,
)
from repro.models.transformer import TransformerClassifier, TransformerConfig
from repro.models.zoo import MODEL_ZOO, get_model, list_models


class TestZoo:
    def test_all_eight_models(self):
        assert len(MODEL_ZOO) == 8
        assert set(list_models()) == set(MODEL_ZOO)

    def test_paper_pruning_rates(self):
        assert get_model("BERT-B").pruning_rate == pytest.approx(0.746)
        assert get_model("BERT-L").pruning_rate == pytest.approx(0.755)
        assert get_model("ALBERT-XL").pruning_rate == pytest.approx(0.651)
        assert get_model("ALBERT-XXL").pruning_rate == pytest.approx(0.731)
        assert get_model("ViT-B").pruning_rate == pytest.approx(0.644)
        assert get_model("GPT-2-L").pruning_rate == pytest.approx(0.739)

    def test_sequence_lengths(self):
        assert get_model("ViT-B").seq_len == 197
        assert get_model("BERT-B").seq_len == 384
        assert get_model("GPT-2-L").seq_len == 1024
        assert get_model("Synth-1").seq_len == 2048
        assert get_model("Synth-2").seq_len == 4096

    def test_head_dim_is_64(self):
        for spec in MODEL_ZOO.values():
            assert spec.head_dim == 64, spec.name

    def test_gpt2_is_causal_generative(self):
        spec = get_model("GPT-2-L")
        assert spec.causal
        assert spec.is_generative

    def test_synth_padding(self):
        for name in ("Synth-1", "Synth-2"):
            spec = get_model(name)
            assert spec.padding_ratio == pytest.approx(0.5)
            assert spec.pruning_rate == pytest.approx(0.75)

    def test_valid_len(self):
        spec = get_model("BERT-B")
        assert spec.valid_len == round(384 * 0.54)

    def test_case_insensitive_lookup(self):
        assert get_model("bert-b").name == "BERT-B"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("T5-XXL")


class TestTransformer:
    @pytest.fixture(scope="class")
    def model(self):
        return TransformerClassifier(
            TransformerConfig(seq_len=32, num_classes=3, seed=0)
        )

    def test_forward_shape(self, model, rng):
        x = rng.normal(size=(32, 64))
        logits = model.forward(x)
        assert logits.shape == (3,)

    def test_features_include_bias(self, model, rng):
        x = rng.normal(size=(32, 64))
        feats = model.features(x)
        assert feats.shape == (65,)
        assert feats[-1] == 1.0

    def test_predict_in_range(self, model, rng):
        x = rng.normal(size=(32, 64))
        assert model.predict(x) in (0, 1, 2)

    def test_class_probabilities_normalized(self, model, rng):
        x = rng.normal(size=(32, 64))
        probs = model.class_probabilities(x)
        assert probs.sum() == pytest.approx(1.0)

    def test_score_matrices_shapes(self, model, rng):
        x = rng.normal(size=(32, 64))
        mats = model.score_matrices(x, 0)
        assert len(mats) == model.config.num_heads
        assert mats[0].shape == (32, 32)

    def test_score_matrices_bad_layer(self, model, rng):
        x = rng.normal(size=(32, 64))
        with pytest.raises(IndexError):
            model.score_matrices(x, 99)

    def test_head_dim_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(embed_dim=30, num_heads=4).head_dim

    def test_fit_readout_improves_training_fit(self, rng):
        config = TransformerConfig(seq_len=24, num_classes=2, seed=1)
        model = TransformerClassifier(config)
        inputs = [rng.normal(size=(24, 64)) for _ in range(20)]
        labels = rng.integers(0, 2, size=20)
        valid = [24] * 20
        model.fit_readout(inputs, labels, valid)
        preds = [model.predict(x, valid_len=24) for x in inputs]
        acc = np.mean(np.array(preds) == labels)
        assert acc >= 0.6  # fits noise better than chance

    def test_policy_changes_output(self, model, rng):
        x = rng.normal(size=(32, 64)) * 3
        exact = model.forward(x, ExactPolicy())
        pruned = model.forward(x, RuntimePruningPolicy(0.9))
        assert not np.allclose(exact, pruned)


class TestTasks:
    @pytest.fixture(scope="class")
    def task(self):
        return make_classification_task(num_samples=24, seq_len=64, seed=3)

    def test_baseline_accuracy_high(self, task):
        acc = evaluate_accuracy(task, ExactPolicy())
        assert acc >= 0.8

    def test_sprint_near_baseline(self, task):
        base = evaluate_accuracy(task, ExactPolicy())
        sprint = evaluate_accuracy(task, SprintPolicy(0.7, recompute=True))
        assert abs(base - sprint) <= 0.1

    def test_one_bit_scores_degrade(self, task):
        base = evaluate_accuracy(task, ExactPolicy())
        coarse = evaluate_accuracy(
            task, SprintPolicy(0.7, score_bits=1, recompute=True)
        )
        assert coarse < base

    def test_task_metadata(self, task):
        assert task.kind == "classification"
        assert task.num_samples == 24
        assert len(task.valid_lens) == 24

    def test_lm_task_perplexity_ordering(self):
        lm = make_lm_task(num_samples=12, seq_len=64, seed=5)
        base = evaluate_perplexity(lm, ExactPolicy())
        coarse = evaluate_perplexity(
            lm, SprintPolicy(0.74, score_bits=1, recompute=False)
        )
        assert base >= 1.0
        assert coarse >= base * 0.95  # coarse never meaningfully better

    def test_lm_task_kind(self):
        lm = make_lm_task(num_samples=4, seq_len=48, seed=5)
        assert lm.kind == "lm"

    def test_padded_tail_zero(self, task):
        for x, vl in zip(task.inputs, task.valid_lens):
            assert np.all(x[vl:] == 0.0)
