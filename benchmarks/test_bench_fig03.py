"""Benchmark: regenerate Figure 3 (overlap vs random / Eq. 1)."""

from repro.experiments import fig3_overlap


def test_bench_fig3(benchmark, bench_samples):
    rows = benchmark(
        fig3_overlap.run,
        models=("BERT-B", "ViT-B", "ALBERT-XXL"),
        num_samples=bench_samples,
    )
    for r in rows:
        assert r.real_overlap > r.random_overlap
    bert = next(r for r in rows if r.model == "BERT-B")
    assert bert.ratio_vs_random > 2.0  # the paper's 2-3x gap
    print()
    print(fig3_overlap.format_table(rows))
