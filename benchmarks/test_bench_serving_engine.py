"""Benchmark: columnar fast engine vs per-request reference loop.

The acceptance bar for the columnar serving fast path: on a
200k-request Poisson stream the batch-granular engine must deliver at
least 10x the request throughput of the per-request reference event
loop (timed on a 20k-request prefix of the same stream -- it is the
slow side by construction).  The measured ratio is appended to
``benchmarks/BENCH_serving_engine.json`` so the performance trajectory
is recorded run over run.

The strict gate (and the JSON append) only arm under
``SPRINT_BENCH_GATE`` -- tier-1 collects this file too, and a loaded
shared runner must not fail correctness CI on a timing fluctuation.
Ungated runs use a relaxed sanity floor, further relaxed on starved
(<2 CPU) containers where the host timeshares everything.
"""

import json
import os
import time

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    DynamicBatcher,
    PoissonProcess,
    ServiceCostModel,
    ServingSimulator,
    SprintDevice,
    generate_request_table,
    simulate_table,
)

NUM_REQUESTS = 200_000
#: The reference loop is timed on a prefix (same arrival regime).
REFERENCE_REQUESTS = 20_000
RATE_RPS = 2000.0
MAX_BATCH_SIZE = 8
MAX_WAIT_S = 2e-3
BENCH_JSON = os.path.join(
    os.path.dirname(__file__), "BENCH_serving_engine.json"
)
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
GATE_FLOOR = 10.0
CPUS = os.cpu_count() or 1
#: Outside the gated job (or on a starved timeshared container, where
#: the measured ratio only records), still catch catastrophic
#: regressions.
SANITY_FLOOR = 4.0 if CPUS >= 2 else 2.0


@pytest.fixture(scope="module")
def stream():
    table = generate_request_table(
        PoissonProcess(RATE_RPS), "BERT-B", count=NUM_REQUESTS, seed=0
    )
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    # Both paths share one primed cost model: the cycle model's cost is
    # excluded from the ratio, which times the simulation loops only.
    cost.prime(table.specs[0], table.valid_len)
    return table, cost


def _run_reference(table, cost):
    return ServingSimulator(
        [SprintDevice(0, cost)], DynamicBatcher(MAX_BATCH_SIZE, MAX_WAIT_S)
    ).run(table.to_requests())


def test_bench_fast_engine_throughput(benchmark, stream):
    """Wall-clock of one fast-path pass over the full 200k stream."""
    table, cost = stream
    result = benchmark(
        lambda: simulate_table(
            table, cost, max_batch_size=MAX_BATCH_SIZE, max_wait_s=MAX_WAIT_S
        )
    )
    assert result.completed == NUM_REQUESTS


def test_bench_fast_vs_reference_throughput(stream):
    """Fast >= 10x reference request throughput; record the trajectory."""
    table, cost = stream
    prefix = table.head(REFERENCE_REQUESTS)

    # Warm both paths, and hold the fast path to its equivalence
    # contract on the measured stream's prefix: identical records are a
    # precondition for a meaningful ratio.
    warm_fast = simulate_table(
        prefix, cost, max_batch_size=MAX_BATCH_SIZE, max_wait_s=MAX_WAIT_S
    ).to_result()
    warm_reference = _run_reference(prefix, cost)
    assert warm_fast.records == warm_reference.records

    start = time.perf_counter()
    fast = simulate_table(
        table, cost, max_batch_size=MAX_BATCH_SIZE, max_wait_s=MAX_WAIT_S
    )
    fast_s = time.perf_counter() - start
    assert fast.completed == NUM_REQUESTS

    start = time.perf_counter()
    reference = _run_reference(prefix, cost)
    reference_s = time.perf_counter() - start
    assert reference.completed == REFERENCE_REQUESTS

    fast_rps = NUM_REQUESTS / fast_s
    reference_rps = REFERENCE_REQUESTS / reference_s
    speedup = fast_rps / reference_rps

    if GATE_ARMED:
        entry = {
            "benchmark": "serving_engine_fast_vs_reference",
            "config": S_SPRINT.name,
            "mode": ExecutionMode.SPRINT.value,
            "pattern": "poisson",
            "num_requests": NUM_REQUESTS,
            "reference_requests": REFERENCE_REQUESTS,
            "fast_s": round(fast_s, 4),
            "reference_s": round(reference_s, 4),
            "fast_requests_per_s": round(fast_rps, 1),
            "reference_requests_per_s": round(reference_rps, 1),
            "speedup": round(speedup, 2),
            "recorded_unix": int(time.time()),
        }
        history = []
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as f:
                history = json.load(f)
        history.append(entry)
        with open(BENCH_JSON, "w") as f:
            json.dump(history, f, indent=1)
            f.write("\n")

    # Like the shard benchmark's cpu guard: the strict floor needs a
    # runner with real cores; a loaded 1-CPU container records the
    # ratio but only rejects a pathological regression.
    floor = GATE_FLOOR if GATE_ARMED and CPUS >= 2 else SANITY_FLOOR
    assert speedup >= floor, (
        f"fast engine only {speedup:.1f}x the reference loop "
        f"({fast_rps:,.0f} vs {reference_rps:,.0f} requests/s; "
        f"gate floor {floor}x)"
    )
