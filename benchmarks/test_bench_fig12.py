"""Benchmark: regenerate Figure 12 (energy reduction)."""

from repro.experiments import fig12_energy


def test_bench_fig12(benchmark, bench_samples):
    rows = benchmark(fig12_energy.run, num_samples=bench_samples)
    g = fig12_energy.geomeans(rows)
    # Paper: 19.56/16.82/12.03x with S > M > L ordering.
    assert g["S-SPRINT"] > g["M-SPRINT"] > g["L-SPRINT"]
    assert 8.0 < g["L-SPRINT"] and g["S-SPRINT"] < 30.0
    # Synth models invert the ordering (L benefits most).
    synth = {
        r.config: r.energy_reduction
        for r in rows if r.model == "Synth-1"
    }
    assert synth["L-SPRINT"] > synth["S-SPRINT"]
    print()
    print(fig12_energy.format_table(rows))
