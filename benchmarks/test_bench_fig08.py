"""Benchmark: regenerate Figure 8 (CORELET imbalance)."""

from repro.experiments import fig8_imbalance


def test_bench_fig8(benchmark, bench_samples):
    rows = benchmark(
        fig8_imbalance.run,
        models=("BERT-B", "ViT-B", "GPT-2-L"),
        corelet_counts=(2, 4, 8, 16),
        num_samples=bench_samples,
    )
    for r in rows:
        assert r.interleaved_imbalance <= r.sequential_imbalance
    print()
    print(fig8_imbalance.format_table(rows))
