"""Benchmark: regenerate Table III (comparison with prior work)."""

from repro.experiments import table3_comparison


def test_bench_table3(benchmark, bench_samples):
    rows = benchmark(table3_comparison.run, num_samples=bench_samples)
    msprint = next(r for r in rows if r.simulated)
    prior = {r.name: r for r in rows if not r.simulated}
    # Paper: M-SPRINT wins GOPs/s (3.5x over A3, 3.2x over LeOPArd,
    # 5.0x over SpAtten) and GOPs/s/mm2, loses raw GOPs/J to A3.
    assert msprint.gops_per_s > prior["A3"].gops_per_s
    assert msprint.gops_per_s > prior["LeOPArd"].gops_per_s
    assert msprint.gops_per_s_mm2 > prior["A3"].gops_per_s_mm2
    assert prior["A3"].gops_per_j > msprint.gops_per_j
    assert msprint.gops_per_j > prior["LeOPArd"].gops_per_j
    print()
    print(table3_comparison.format_table(rows))
