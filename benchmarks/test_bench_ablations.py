"""Benchmark: the design-choice ablations DESIGN.md calls out."""

from repro.experiments import ablations


def test_bench_sld_ablation(benchmark):
    rows = benchmark.pedantic(
        ablations.run_sld_ablation,
        kwargs=dict(models=("BERT-B", "ViT-B", "GPT-2-L")),
        iterations=1, rounds=1,
    )
    for r in rows:
        assert r.traffic_saving >= 1.0
    print()
    for r in rows:
        print(f"SLD ablation {r.model}: {r.traffic_saving:.2f}x traffic "
              f"saving from locality reuse")


def test_bench_interleaving_ablation(benchmark):
    rows = benchmark.pedantic(
        ablations.run_interleaving_ablation,
        kwargs=dict(models=("BERT-B", "GPT-2-L")),
        iterations=1, rounds=1,
    )
    for r in rows:
        assert r.slowdown_without_interleaving >= 1.0
    print()
    for r in rows:
        print(f"interleaving ablation {r.model}: sequential mapping "
              f"{r.slowdown_without_interleaving:.2f}x slower")


def test_bench_locality_ablation(benchmark):
    rows = benchmark.pedantic(
        ablations.run_locality_ablation,
        kwargs=dict(localities=(0.2, 0.5, 0.8), seq_len=256),
        iterations=1, rounds=1,
    )
    assert rows[-1].energy_reduction >= rows[0].energy_reduction
    print()
    for r in rows:
        print(f"locality={r.locality:.1f}: overlap {r.measured_overlap:.1%},"
              f" energy reduction {r.energy_reduction:.2f}x")
