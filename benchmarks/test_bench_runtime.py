"""Benchmark: process-sharded experiment runtime vs the serial walk.

The acceptance bar for the parallel runtime: the full ``--fast``
experiment suite at ``--jobs 4`` must finish at least 1.8x faster than
the same suite at ``--jobs 1``, measured end to end through the real
CLI (fresh interpreter per run, so no warm in-process caches flatter
either side).  The measured ratio is appended to
``benchmarks/BENCH_runtime.json`` so the trajectory is recorded run
over run.

The whole test sits behind ``SPRINT_BENCH_GATE``: it launches two
multi-second subprocess runs and asserts on wall-clock, which has no
place in the correctness matrix (tier-1 collects this file too).
Jobs-count *equivalence* is covered untimed by
``tests/test_runtime.py`` and by the CI ``full-experiments`` artifact
diff.  The wall-clock floor additionally needs real cores, so it only
arms on ``os.cpu_count() >= 4`` — a 1-CPU container timeshares the
workers, and the honest expectation there is ~1x (recorded, not
gated).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "BENCH_runtime.json"
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
JOBS = 4
GATE_FLOOR = 1.8
#: With fewer than 4 CPUs the workers timeshare; record the ratio but
#: only reject a pathological orchestration-overhead regression.
SANITY_FLOOR = 0.3
CPUS = os.cpu_count() or 1


def _run_cli(jobs: int, json_out: Path) -> float:
    """Wall-clock seconds of one fresh-interpreter full-suite CLI run."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments.runner",
        "--fast",
        "--jobs",
        str(jobs),
        "--json-out",
        str(json_out),
    ]
    start = time.perf_counter()
    subprocess.run(cmd, check=True, env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL)
    return time.perf_counter() - start


@pytest.mark.skipif(not GATE_ARMED, reason="wall-clock gate; set SPRINT_BENCH_GATE=1")
def test_bench_parallel_vs_serial_runtime(tmp_path):
    """--jobs 4 >= 1.8x --jobs 1 on >=4 CPUs; artifacts identical."""
    serial_s = _run_cli(1, tmp_path / "serial")
    parallel_s = _run_cli(JOBS, tmp_path / "parallel")

    # Identical artifacts are a precondition for a meaningful ratio.
    serial_artifacts = sorted((tmp_path / "serial").glob("*.json"))
    assert serial_artifacts
    for path in serial_artifacts:
        twin = tmp_path / "parallel" / path.name
        assert path.read_bytes() == twin.read_bytes(), path.name

    speedup = serial_s / parallel_s

    entry = {
        "benchmark": "experiment_suite_fast",
        "jobs": JOBS,
        "cpus": CPUS,
        "experiments": len(serial_artifacts),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "recorded_unix": int(time.time()),
    }
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=1) + "\n")

    floor = GATE_FLOOR if CPUS >= JOBS else SANITY_FLOOR
    assert speedup >= floor, (
        f"--jobs {JOBS} only {speedup:.2f}x over --jobs 1 "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s on {CPUS} CPUs; "
        f"gate floor {floor}x)"
    )
