"""Benchmark: regenerate Figure 1 (memory-energy share sweep)."""

from repro.experiments import fig1_memory_energy


def test_bench_fig1(benchmark):
    rows = benchmark(
        fig1_memory_energy.run,
        seq_lengths=(32, 64, 128, 256, 512, 1024, 2048, 4096),
        fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
    )
    assert len(rows) == 40
    at20 = [r for r in rows if r.capacity_fraction == 0.2]
    # Paper headline: memory dominates (>60% avg) at 20% capacity.
    avg = sum(r.memory_energy_fraction for r in at20) / len(at20)
    assert avg > 0.55
    print()
    print(fig1_memory_energy.format_table(rows))
