"""Benchmark: the sharded serving sweep vs the serial walk.

The acceptance bar for serving on the WorkUnit protocol: a heavy
(pattern, mode, load) sweep at ``--jobs 4`` must finish at least 1.8x
faster than the same sweep at ``--jobs 1``, measured end to end
through :class:`~repro.runtime.pool.ExperimentPool` in a fresh
interpreter per run (so no warm cost-model caches flatter either
side).  The sweep is the registry's ``serving`` experiment with its
request count raised until the simulation dominates start-up — the
regime the ROADMAP's "multi-minute full-load sweeps" item is about.
The count is sized for the columnar fast engine (the sweep's default
path since it landed): at the old 5k-request streams the engine
finishes points faster than workers warm up, so the sharding benchmark
now drives 150k-request streams per point.
The measured ratio is appended to
``benchmarks/BENCH_serving_shard.json`` so the trajectory is recorded
run over run.

The whole test sits behind ``SPRINT_BENCH_GATE``: it launches two
multi-second subprocess runs and asserts on wall-clock, which has no
place in the correctness matrix (tier-1 collects this file too).
Jobs-count *equivalence* is covered untimed by
``tests/test_runtime.py`` and by the CI ``full-experiments`` serving
diff.  The wall-clock floor additionally needs real cores, so it only
arms on ``os.cpu_count() >= 4`` — a 1-CPU container timeshares the
workers, and the honest expectation there is ~1x (recorded, not
gated).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "BENCH_serving_shard.json"
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
JOBS = 4
GATE_FLOOR = 1.8
#: With fewer than 4 CPUs the workers timeshare; record the ratio but
#: only reject a pathological orchestration-overhead regression.
SANITY_FLOOR = 0.3
CPUS = os.cpu_count() or 1
NUM_REQUESTS = 150_000

#: Fresh-interpreter driver: the registry's serving experiment with the
#: request count raised so per-point event loops dominate start-up.
_DRIVER = """
import sys
from repro.experiments import registry, serving
from repro.runtime import ExperimentPool

jobs, num_requests, out_path = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
registry.EXPERIMENTS["serving"] = ({"num_requests": num_requests}, serving)
outcome = ExperimentPool(jobs=jobs).run(["serving"], fast=True)["serving"]
assert outcome.ok, outcome.error
with open(out_path, "w") as fh:
    fh.write(outcome.artifact.to_json())
"""


def _run_sweep(jobs: int, out_path: Path) -> float:
    """Wall-clock seconds of one fresh-interpreter heavy serving sweep."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-c", _DRIVER, str(jobs), str(NUM_REQUESTS), str(out_path)]
    start = time.perf_counter()
    subprocess.run(cmd, check=True, env=env, cwd=REPO_ROOT)
    return time.perf_counter() - start


@pytest.mark.skipif(not GATE_ARMED, reason="wall-clock gate; set SPRINT_BENCH_GATE=1")
def test_bench_sharded_vs_serial_serving_sweep(tmp_path):
    """--jobs 4 >= 1.8x --jobs 1 on >=4 CPUs; artifacts identical."""
    serial_s = _run_sweep(1, tmp_path / "serial.json")
    parallel_s = _run_sweep(JOBS, tmp_path / "parallel.json")

    # Identical artifacts are a precondition for a meaningful ratio.
    serial_bytes = (tmp_path / "serial.json").read_bytes()
    assert serial_bytes == (tmp_path / "parallel.json").read_bytes()
    assert json.loads(serial_bytes)["rows"]

    speedup = serial_s / parallel_s

    entry = {
        "benchmark": "serving_sweep_sharded",
        "jobs": JOBS,
        "cpus": CPUS,
        "num_requests": NUM_REQUESTS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "recorded_unix": int(time.time()),
    }
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=1) + "\n")

    floor = GATE_FLOOR if CPUS >= JOBS else SANITY_FLOOR
    assert speedup >= floor, (
        f"--jobs {JOBS} only {speedup:.2f}x over --jobs 1 "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s on {CPUS} CPUs; "
        f"gate floor {floor}x)"
    )
