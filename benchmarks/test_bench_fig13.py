"""Benchmark: regenerate Figure 13 (M-SPRINT energy breakdown)."""

from repro.experiments import fig13_breakdown


def test_bench_fig13(benchmark, bench_samples):
    rows = benchmark(fig13_breakdown.run, num_samples=bench_samples)
    savings = fig13_breakdown.savings_by_model(rows)
    # Paper: pruning-only ~1.9-2.0x (ViT 1.4x); SPRINT ~17-31x.
    assert 1.7 < savings["BERT-B"]["pruning_only"] < 2.2
    assert savings["ViT-B"]["pruning_only"] < 1.6
    assert savings["BERT-B"]["sprint"] > 10.0
    # Baseline spends ~47.8% on ReRAM reads (except ViT).
    bert_base = next(
        r for r in rows
        if r.model == "BERT-B" and r.scenario == "baseline"
    )
    assert 0.4 < bert_base.fractions["reram_read"] < 0.7
    print()
    print(fig13_breakdown.format_table(rows))
