"""Benchmark: batched vs per-sample workload-simulation throughput.

The acceptance bar for the batched simulation core: at seq_len 512 with
a 64-sample workload, one batched ``simulate_workload`` pass must
deliver at least 5x the throughput of the historical per-sample path
(sample-by-sample simulation with the query-by-query ``slow_exact`` LRU
walk).  The measured ratio is appended to ``benchmarks/BENCH_system.json``
so the performance trajectory is recorded run over run.
"""

import json
import os
import time

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode, SprintSystem
from repro.workloads.generator import generate_workload

SEQ_LEN = 512
NUM_SAMPLES = 64
#: The per-sample reference is timed on a subset (same mask
#: distribution) because it is the slow side by construction.
REFERENCE_SAMPLES = 8
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_system.json")
#: The strict >=5x wall-clock gate (and the BENCH_system.json append)
#: only arm under the dedicated benchmark job: tier-1 collects this
#: file too, and a loaded shared runner must not fail correctness CI
#: on a timing fluctuation or dirty the committed trajectory file.
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
#: Outside the gated job, still catch catastrophic regressions.
SANITY_FLOOR = 2.0


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        seq_len=SEQ_LEN,
        pruning_rate=0.746,
        padding_ratio=0.2,
        num_samples=NUM_SAMPLES,
        seed=3,
    )


def test_bench_batched_workload(benchmark, workload):
    """Wall-clock of one batched SPRINT pass over the full workload."""
    system = SprintSystem(S_SPRINT)
    report = benchmark(
        lambda: system.simulate_workload(workload, ExecutionMode.SPRINT)
    )
    assert report.samples == NUM_SAMPLES


def test_bench_batched_vs_per_sample_throughput(workload):
    """Batched >= 5x per-sample throughput; record the trajectory."""
    batched_system = SprintSystem(S_SPRINT)
    per_sample_system = SprintSystem(S_SPRINT, sld_slow_exact=True)
    samples = list(workload)

    # Warm both paths (mask generation, allocator, import costs).
    batched_system.simulate_workload(workload, ExecutionMode.SPRINT)
    per_sample_system.simulate_sample(samples[0], ExecutionMode.SPRINT)

    start = time.perf_counter()
    batched = batched_system.simulate_workload(
        workload, ExecutionMode.SPRINT
    )
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    singles = [
        per_sample_system.simulate_sample(s, ExecutionMode.SPRINT)
        for s in samples[:REFERENCE_SAMPLES]
    ]
    per_sample_s = time.perf_counter() - start

    # Identical results are a precondition for a meaningful ratio.
    assert batched.cycles == pytest.approx(
        sum(h.cycles for h in singles) / len(singles), rel=0.25
    )

    batched_throughput = NUM_SAMPLES / batched_s
    per_sample_throughput = REFERENCE_SAMPLES / per_sample_s
    speedup = batched_throughput / per_sample_throughput

    if GATE_ARMED:
        entry = {
            "benchmark": "simulate_workload",
            "config": S_SPRINT.name,
            "mode": ExecutionMode.SPRINT.value,
            "seq_len": SEQ_LEN,
            "num_samples": NUM_SAMPLES,
            "batched_s": round(batched_s, 6),
            "per_sample_s_per_sample": round(
                per_sample_s / REFERENCE_SAMPLES, 6
            ),
            "batched_samples_per_s": round(batched_throughput, 2),
            "per_sample_samples_per_s": round(per_sample_throughput, 2),
            "speedup": round(speedup, 2),
            "recorded_unix": int(time.time()),
        }
        history = []
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as f:
                history = json.load(f)
        history.append(entry)
        with open(BENCH_JSON, "w") as f:
            json.dump(history, f, indent=1)

    floor = 5.0 if GATE_ARMED else SANITY_FLOOR
    assert speedup >= floor, (
        f"batched throughput only {speedup:.1f}x the per-sample path "
        f"({batched_throughput:.1f} vs {per_sample_throughput:.1f} "
        f"samples/s; gate floor {floor}x)"
    )
