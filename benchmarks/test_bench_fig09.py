"""Benchmark: regenerate Figure 9 (accuracy under the four scenarios)."""

from repro.experiments import fig9_accuracy


def test_bench_fig9(benchmark):
    rows = benchmark.pedantic(
        fig9_accuracy.run,
        kwargs=dict(num_samples=32, seq_len=96),
        iterations=1, rounds=1,
    )
    acc_rows = [r for r in rows if r.metric == "accuracy"]
    # SPRINT stays close to baseline (paper: 0.36% average degradation).
    avg = fig9_accuracy.average_degradation(rows)
    assert abs(avg) < 0.06
    # Removing recompute is never better than SPRINT on average.
    no_rec = sum(r.sprint_no_recompute for r in acc_rows)
    with_rec = sum(r.sprint for r in acc_rows)
    assert no_rec <= with_rec + 0.05 * len(acc_rows)
    print()
    print(fig9_accuracy.format_table(rows))
