"""Benchmark: columnar decode engine vs generative reference loop.

The acceptance bar for the generative (continuous-batching) fast path:
on a 30k-request Poisson decode stream (mean 8 output tokens, so
~240k token-steps) the columnar engine must deliver at least 5x the
token throughput of the :class:`GenerativeServingSimulator` reference
event loop (timed on a 4k-request prefix of the same stream -- it is
the slow side by construction).  The bar is lower than the prefill
engine's 10x because the decode engine is itself event-driven: every
token re-enters the scheduler, so the win comes from the record layout
and the reduced timeout traffic, not from batch-granular vectorized
sweeps.  The measured ratio is appended to
``benchmarks/BENCH_decode.json`` so the trajectory is recorded run
over run.

The strict gate (and the JSON append) only arm under
``SPRINT_BENCH_GATE`` -- tier-1 collects this file too, and a loaded
shared runner must not fail correctness CI on a timing fluctuation.
Ungated runs use a relaxed sanity floor, further relaxed on starved
(<2 CPU) containers where the host timeshares everything.
"""

import json
import os
import time

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    ContinuousBatcher,
    GenerativeServingSimulator,
    PoissonProcess,
    ServiceCostModel,
    SprintDevice,
    generate_request_table,
    simulate_decode_table,
)

NUM_REQUESTS = 30_000
#: The reference loop is timed on a prefix (same arrival regime).
REFERENCE_REQUESTS = 4_000
RATE_RPS = 400.0
MEAN_OUTPUT_TOKENS = 8.0
MAX_BATCH_SIZE = 8
MAX_WAIT_S = 2e-3
NUM_DEVICES = 2
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_decode.json")
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
GATE_FLOOR = 5.0
CPUS = os.cpu_count() or 1
#: Outside the gated job (or on a starved timeshared container, where
#: the measured ratio only records), still catch catastrophic
#: regressions.
SANITY_FLOOR = 2.0 if CPUS >= 2 else 1.5


@pytest.fixture(scope="module")
def stream():
    table = generate_request_table(
        PoissonProcess(RATE_RPS),
        "BERT-B",
        count=NUM_REQUESTS,
        seed=0,
        mean_output_tokens=MEAN_OUTPUT_TOKENS,
    )
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    # Both paths share one primed cost model: the cycle model's cost is
    # excluded from the ratio, which times the scheduling loops only.
    cost.prime(table.specs[0], table.valid_len)
    return table, cost


def _run_reference(table, cost):
    return GenerativeServingSimulator(
        [SprintDevice(i, cost) for i in range(NUM_DEVICES)],
        ContinuousBatcher(MAX_BATCH_SIZE, MAX_WAIT_S),
    ).run(table.to_requests())


def test_bench_decode_engine(benchmark, stream):
    """Wall-clock of one fast-path pass over the full decode stream."""
    table, cost = stream
    result = benchmark(
        lambda: simulate_decode_table(
            table,
            cost,
            num_devices=NUM_DEVICES,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait_s=MAX_WAIT_S,
        )
    )
    assert result.completed == NUM_REQUESTS


def test_bench_decode_fast_vs_reference(stream):
    """Fast >= 5x reference token throughput; record the trajectory."""
    table, cost = stream
    prefix = table.head(REFERENCE_REQUESTS)

    # Warm both paths, and hold the fast path to its equivalence
    # contract on the measured stream's prefix: identical records are a
    # precondition for a meaningful ratio.
    warm_fast = simulate_decode_table(
        prefix,
        cost,
        num_devices=NUM_DEVICES,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_s=MAX_WAIT_S,
    ).to_result()
    warm_reference = _run_reference(prefix, cost)
    assert warm_fast.records == warm_reference.records

    start = time.perf_counter()
    fast = simulate_decode_table(
        table,
        cost,
        num_devices=NUM_DEVICES,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_s=MAX_WAIT_S,
    )
    fast_s = time.perf_counter() - start
    assert fast.completed == NUM_REQUESTS

    start = time.perf_counter()
    reference = _run_reference(prefix, cost)
    reference_s = time.perf_counter() - start
    assert reference.completed == REFERENCE_REQUESTS

    fast_tps = fast.total_tokens / fast_s
    reference_tps = reference.total_tokens / reference_s
    speedup = fast_tps / reference_tps

    if GATE_ARMED:
        entry = {
            "benchmark": "decode_engine_fast_vs_reference",
            "config": S_SPRINT.name,
            "mode": ExecutionMode.SPRINT.value,
            "pattern": "poisson",
            "num_requests": NUM_REQUESTS,
            "reference_requests": REFERENCE_REQUESTS,
            "mean_output_tokens": MEAN_OUTPUT_TOKENS,
            "num_devices": NUM_DEVICES,
            "fast_s": round(fast_s, 4),
            "reference_s": round(reference_s, 4),
            "fast_tokens_per_s": round(fast_tps, 1),
            "reference_tokens_per_s": round(reference_tps, 1),
            "speedup": round(speedup, 2),
            "recorded_unix": int(time.time()),
        }
        history = []
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as f:
                history = json.load(f)
        history.append(entry)
        with open(BENCH_JSON, "w") as f:
            json.dump(history, f, indent=1)
            f.write("\n")

    # Like the other engine gates: the strict floor needs a runner with
    # real cores; a loaded 1-CPU container records the ratio but only
    # rejects a pathological regression.
    floor = GATE_FLOOR if GATE_ARMED and CPUS >= 2 else SANITY_FLOOR
    assert speedup >= floor, (
        f"decode engine only {speedup:.1f}x the reference loop "
        f"({fast_tps:,.0f} vs {reference_tps:,.0f} tokens/s; "
        f"gate floor {floor}x)"
    )
