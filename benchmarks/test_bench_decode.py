"""Benchmark: macro-stepping decode engine vs generative reference loop.

The acceptance bar for the generative (continuous-batching) fast path:
on a decode-heavy Poisson stream (12k requests, mean 64 output tokens,
so ~770k token-steps) the columnar engine must deliver at least 12x
the token throughput of the :class:`GenerativeServingSimulator`
reference event loop (timed on a 1.2k-request prefix of the same
stream -- it is the slow side by construction).  The bar rose from the
first decode engine's 5x when macro-stepping landed: between
batch-composition events a running batch's membership is fixed, so the
engine advances whole runs of consecutive decode steps as one scalar
chain over prebuilt per-queue cost vectors instead of bouncing every
token through the heap.  The regime is decode-heavy on purpose --
that is where macro runs get long; the old short-output regime (mean
8 tokens) exercises the heap boundary more than the macro core and
sits near 5x by construction.  The measured ratio is appended to
``benchmarks/BENCH_decode.json`` so the trajectory is recorded run
over run.

Two parallel-decode wall-clock benches ride along, mirroring
``test_bench_serving_shard.py``: a fresh-interpreter ``jobs=4``
process-shard run (cold cost models, six-model mix, so per-queue
cost-vector construction dominates and shards across cores) must beat
the serial run by 1.8x on a >=4-CPU runner, and a ``threads=4`` run
records its ratio (phase-1 threading only wins what the cycle model
releases of the GIL, so it is recorded and sanity-checked, not
hard-gated).

The strict gates (and the JSON appends) only arm under
``SPRINT_BENCH_GATE`` -- tier-1 collects this file too, and a loaded
shared runner must not fail correctness CI on a timing fluctuation.
Ungated runs use a relaxed sanity floor, further relaxed on starved
(<2 CPU) containers where the host timeshares everything.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    ContinuousBatcher,
    GenerativeServingSimulator,
    PoissonProcess,
    ServiceCostModel,
    SprintDevice,
    generate_request_table,
    simulate_decode_table,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
NUM_REQUESTS = 12_000
#: The reference loop is timed on a prefix (same arrival regime).
REFERENCE_REQUESTS = 1_200
RATE_RPS = 20.0
MEAN_OUTPUT_TOKENS = 64.0
MAX_BATCH_SIZE = 8
MAX_WAIT_S = 2e-3
NUM_DEVICES = 2
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_decode.json")
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
GATE_FLOOR = 12.0
CPUS = os.cpu_count() or 1
#: Outside the gated job (or on a starved timeshared container, where
#: the measured ratio only records), still catch catastrophic
#: regressions.
SANITY_FLOOR = 3.0 if CPUS >= 2 else 2.0

#: Parallel phase-1 benches: shard floor matches the serving sweep's.
PARALLEL_JOBS = 4
SHARD_GATE_FLOOR = 1.8
#: Timeshared workers on a small container honestly sit near (or
#: below) 1x; record the ratio, reject only pathological overhead.
PARALLEL_SANITY_FLOOR = 0.3
#: Sized so cold per-queue cost-vector construction dominates the
#: event loop (~90% of the serial run): six queues, long contexts.
SHARD_REQUESTS = 4_000


def _append_history(entry):
    history = []
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            history = json.load(f)
    history.append(entry)
    with open(BENCH_JSON, "w") as f:
        json.dump(history, f, indent=1)
        f.write("\n")


@pytest.fixture(scope="module")
def stream():
    table = generate_request_table(
        PoissonProcess(RATE_RPS),
        "BERT-B",
        count=NUM_REQUESTS,
        seed=0,
        mean_output_tokens=MEAN_OUTPUT_TOKENS,
    )
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    # Both paths share one primed cost model: the cycle model's cost is
    # excluded from the ratio, which times the scheduling loops only.
    cost.prime(table.specs[0], table.valid_len)
    return table, cost


def _run_reference(table, cost):
    return GenerativeServingSimulator(
        [SprintDevice(i, cost) for i in range(NUM_DEVICES)],
        ContinuousBatcher(MAX_BATCH_SIZE, MAX_WAIT_S),
    ).run(table.to_requests())


def test_bench_decode_engine(benchmark, stream):
    """Wall-clock of one fast-path pass over the full decode stream."""
    table, cost = stream
    result = benchmark(
        lambda: simulate_decode_table(
            table,
            cost,
            num_devices=NUM_DEVICES,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait_s=MAX_WAIT_S,
        )
    )
    assert result.completed == NUM_REQUESTS


def test_bench_decode_fast_vs_reference(stream):
    """Fast >= 12x reference token throughput; record the trajectory."""
    table, cost = stream
    prefix = table.head(REFERENCE_REQUESTS)

    # Warm both paths, and hold the fast path to its equivalence
    # contract on the measured stream's prefix: identical records are a
    # precondition for a meaningful ratio.
    warm_fast = simulate_decode_table(
        prefix,
        cost,
        num_devices=NUM_DEVICES,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_s=MAX_WAIT_S,
    ).to_result()
    warm_reference = _run_reference(prefix, cost)
    assert warm_fast.records == warm_reference.records

    start = time.perf_counter()
    fast = simulate_decode_table(
        table,
        cost,
        num_devices=NUM_DEVICES,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_s=MAX_WAIT_S,
    )
    fast_s = time.perf_counter() - start
    assert fast.completed == NUM_REQUESTS

    start = time.perf_counter()
    reference = _run_reference(prefix, cost)
    reference_s = time.perf_counter() - start
    assert reference.completed == REFERENCE_REQUESTS

    fast_tps = fast.total_tokens / fast_s
    reference_tps = reference.total_tokens / reference_s
    speedup = fast_tps / reference_tps

    if GATE_ARMED:
        _append_history(
            {
                "benchmark": "decode_engine_fast_vs_reference",
                "config": S_SPRINT.name,
                "mode": ExecutionMode.SPRINT.value,
                "pattern": "poisson",
                "num_requests": NUM_REQUESTS,
                "reference_requests": REFERENCE_REQUESTS,
                "mean_output_tokens": MEAN_OUTPUT_TOKENS,
                "num_devices": NUM_DEVICES,
                "fast_s": round(fast_s, 4),
                "reference_s": round(reference_s, 4),
                "fast_tokens_per_s": round(fast_tps, 1),
                "reference_tokens_per_s": round(reference_tps, 1),
                "speedup": round(speedup, 2),
                "recorded_unix": int(time.time()),
            }
        )

    # Like the other engine gates: the strict floor needs a runner with
    # real cores; a loaded 1-CPU container records the ratio but only
    # rejects a pathological regression.
    floor = GATE_FLOOR if GATE_ARMED and CPUS >= 2 else SANITY_FLOOR
    assert speedup >= floor, (
        f"decode engine only {speedup:.1f}x the reference loop "
        f"({fast_tps:,.0f} vs {reference_tps:,.0f} tokens/s; "
        f"gate floor {floor}x)"
    )


#: Fresh-interpreter driver for the parallel phase-1 benches: a cold
#: cost model and a six-model mix, so per-queue cost-vector
#: construction dominates the run (no warm caches flatter either
#: side).  ``mode`` picks process shards or threads; the run's own
#: wall-clock and a result digest line are written for the parent.
_PARALLEL_DRIVER = """
import sys
import time

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.runtime.pool import simulate_decode_table_sharded
from repro.serving import (
    PoissonProcess, ServiceCostModel, generate_request_table,
    simulate_decode_table,
)

mode, workers, num_requests, out_path = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
)
mix = {"BERT-B": 0.2, "BERT-L": 0.15, "ALBERT-XL": 0.15, "ViT-B": 0.2,
       "GPT-2-L": 0.15, "ALBERT-XXL": 0.15}
table = generate_request_table(
    PoissonProcess(30.0), mix, count=num_requests, seed=0,
    mean_output_tokens=48.0,
)
cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
start = time.perf_counter()
if mode == "shards":
    out = simulate_decode_table_sharded(
        table, cost, jobs=workers, num_devices=2
    )
else:
    out = simulate_decode_table(
        table, cost, threads=workers, num_devices=2
    )
elapsed = time.perf_counter() - start
digest = f"{out.finish_s.sum()!r} {out.device_busy_s!r} {out.total_tokens}"
with open(out_path, "w") as fh:
    fh.write(f"{elapsed!r}\\n{digest}\\n")
"""


def _run_parallel_decode(mode: str, workers: int, out_path: Path):
    """One fresh-interpreter decode run; (wall-clock s, result digest)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-c",
        _PARALLEL_DRIVER,
        mode,
        str(workers),
        str(SHARD_REQUESTS),
        str(out_path),
    ]
    subprocess.run(cmd, check=True, env=env, cwd=REPO_ROOT)
    elapsed_line, digest = out_path.read_text().splitlines()
    return float(elapsed_line), digest


@pytest.mark.skipif(not GATE_ARMED, reason="wall-clock gate; set SPRINT_BENCH_GATE=1")
@pytest.mark.parametrize(
    "mode,gate_floor",
    [
        ("shards", SHARD_GATE_FLOOR),
        # Threads only win what the cycle model releases of the GIL:
        # recorded and sanity-checked, never hard-gated.
        ("threads", PARALLEL_SANITY_FLOOR),
    ],
)
def test_bench_decode_parallel_vs_serial(tmp_path, mode, gate_floor):
    """jobs=4 shards >= 1.8x serial on >=4 CPUs; results identical."""
    serial_s, serial_digest = _run_parallel_decode(
        mode, 1, tmp_path / "serial.txt"
    )
    parallel_s, parallel_digest = _run_parallel_decode(
        mode, PARALLEL_JOBS, tmp_path / "parallel.txt"
    )

    # Identical results are a precondition for a meaningful ratio.
    assert parallel_digest == serial_digest

    speedup = serial_s / parallel_s
    _append_history(
        {
            "benchmark": f"decode_parallel_{mode}",
            "workers": PARALLEL_JOBS,
            "cpus": CPUS,
            "num_requests": SHARD_REQUESTS,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 2),
            "recorded_unix": int(time.time()),
        }
    )

    floor = gate_floor if CPUS >= PARALLEL_JOBS else PARALLEL_SANITY_FLOOR
    assert speedup >= floor, (
        f"decode {mode} x{PARALLEL_JOBS} only {speedup:.2f}x over serial "
        f"({parallel_s:.1f}s vs {serial_s:.1f}s on {CPUS} CPUs; "
        f"gate floor {floor}x)"
    )
