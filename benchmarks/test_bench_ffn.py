"""Benchmark: regenerate the end-to-end (attention + FFN) study."""

from repro.experiments import ffn_end_to_end


def test_bench_ffn(benchmark, bench_samples):
    rows = benchmark(ffn_end_to_end.run, num_samples=bench_samples)
    by_model = {r.model: r for r in rows}
    # Paper: BERT-B 2.2x/1.8x, ViT-B ~1.1x/1.0x, Synth-2 7.7x/4.7x.
    assert 1.5 < by_model["BERT-B"].end_to_end_energy_saving < 4.0
    assert 1.3 < by_model["BERT-B"].end_to_end_speedup < 3.5
    assert by_model["ViT-B"].end_to_end_speedup < 1.5
    assert by_model["Synth-2"].end_to_end_speedup > 3.0
    print()
    print(ffn_end_to_end.format_table(rows))
