"""Benchmark: sketch-mode ``summarize`` overhead on the columnar engine.

The acceptance bar for the O(1)-memory observability path: on a
200k-request Poisson stream, the ``simulate_table`` + ``summarize``
pipeline with the streaming tail-latency sketch (``exact=False``) must
cost no more than 10% over the exact ``np.percentile`` pipeline.  The
measured overhead is appended to ``benchmarks/BENCH_obs.json`` so the
trajectory is recorded run over run.

The strict gate (and the JSON append) only arm under
``SPRINT_BENCH_GATE`` -- tier-1 collects this file too, and a loaded
shared runner must not fail correctness CI on a timing fluctuation.
Ungated runs use a relaxed sanity ceiling, further relaxed on starved
(<2 CPU) containers where the host timeshares everything.
"""

import json
import os
import time

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    PoissonProcess,
    ServiceCostModel,
    generate_request_table,
    simulate_table,
    summarize,
)

NUM_REQUESTS = 200_000
RATE_RPS = 2000.0
REPEATS = 3
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_obs.json")
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
#: Gated ceiling: sketch pipeline <= 1.10x the exact pipeline.
GATE_CEILING = 1.10
CPUS = os.cpu_count() or 1
#: Outside the gated job (or on a starved timeshared container), still
#: catch a pathological slowdown in the sketch path.
SANITY_CEILING = 1.5 if CPUS >= 2 else 2.0


@pytest.fixture(scope="module")
def stream():
    table = generate_request_table(
        PoissonProcess(RATE_RPS), "BERT-B", count=NUM_REQUESTS, seed=0
    )
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    cost.prime(table.specs[0], table.valid_len)
    return table, cost


def _pipeline(table, cost, exact):
    result = simulate_table(table, cost)
    return summarize(
        result,
        config=S_SPRINT.name,
        mode=ExecutionMode.SPRINT.value,
        pattern="poisson",
        offered_rps=RATE_RPS,
        sla_s=0.1,
        exact=exact,
    )


def test_bench_sketch_summarize(benchmark, stream):
    """Wall-clock of one sketch-mode pipeline over the 200k stream."""
    table, cost = stream
    report = benchmark(lambda: _pipeline(table, cost, exact=False))
    assert report.requests == NUM_REQUESTS


def test_bench_sketch_vs_exact_overhead(stream):
    """Sketch pipeline <= 10% over exact; record the trajectory."""
    table, cost = stream

    # Warm both paths and hold the sketch to its accuracy contract on
    # the measured stream: a cheap-but-wrong percentile is no win.
    warm_exact = _pipeline(table, cost, exact=True)
    warm_sketch = _pipeline(table, cost, exact=False)
    bound = warm_exact.latency.p99_s * 0.01 + 1e-7
    assert abs(warm_sketch.latency.p99_s - warm_exact.latency.p99_s) <= bound

    # Best-of-N on each side, alternating so drifting machine load
    # penalises both pipelines alike.
    exact_s = sketch_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _pipeline(table, cost, exact=True)
        exact_s = min(exact_s, time.perf_counter() - start)
        start = time.perf_counter()
        _pipeline(table, cost, exact=False)
        sketch_s = min(sketch_s, time.perf_counter() - start)
    overhead = sketch_s / exact_s

    if GATE_ARMED:
        entry = {
            "benchmark": "obs_sketch_vs_exact_summarize",
            "config": S_SPRINT.name,
            "mode": ExecutionMode.SPRINT.value,
            "pattern": "poisson",
            "num_requests": NUM_REQUESTS,
            "exact_s": round(exact_s, 4),
            "sketch_s": round(sketch_s, 4),
            "overhead": round(overhead, 3),
            "recorded_unix": int(time.time()),
        }
        history = []
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as f:
                history = json.load(f)
        history.append(entry)
        with open(BENCH_JSON, "w") as f:
            json.dump(history, f, indent=1)
            f.write("\n")

    ceiling = GATE_CEILING if GATE_ARMED and CPUS >= 2 else SANITY_CEILING
    assert overhead <= ceiling, (
        f"sketch-mode summarize pipeline is {overhead:.2f}x the exact "
        f"pipeline ({sketch_s:.3f}s vs {exact_s:.3f}s; ceiling {ceiling}x)"
    )
