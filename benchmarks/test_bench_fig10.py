"""Benchmark: regenerate Figure 10 (data-movement reduction)."""

from repro.experiments import fig10_data_movement


def test_bench_fig10(benchmark, bench_samples):
    rows = benchmark(
        fig10_data_movement.run, num_samples=bench_samples
    )
    avg = fig10_data_movement.average_reductions(rows)
    # Paper: 94.9/98.5/98.9% average SPRINT reduction for S/M/L.
    assert avg["S-SPRINT"]["sprint"] > 0.90
    assert avg["L-SPRINT"]["sprint"] >= avg["S-SPRINT"]["sprint"] - 0.02
    # Mask-only always below the full SPRINT reduction.
    for cfg in avg:
        assert avg[cfg]["mask_only"] <= avg[cfg]["sprint"]
    print()
    print(fig10_data_movement.format_table(rows))
