"""Benchmark-suite configuration.

Each ``test_bench_*`` file regenerates one paper figure/table through
pytest-benchmark: the benchmarked callable *is* the experiment, and the
printed table (via ``--benchmark-verbose`` or the module's ``run``)
carries the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture(scope="session")
def bench_samples():
    """Sample count shared by the performance benches (kept small so a
    full bench pass stays in minutes)."""
    return 1
