"""Benchmark: regenerate Figure 11 (speedup + pruning-only ablation)."""

from repro.experiments import fig11_speedup


def test_bench_fig11(benchmark, bench_samples):
    rows = benchmark(fig11_speedup.run, num_samples=bench_samples)
    g = fig11_speedup.geomeans(rows)
    # Paper: 7.49/7.36/7.13x geomean, S >= M >= L ordering.
    assert g["S-SPRINT"]["sprint"] >= g["M-SPRINT"]["sprint"]
    assert g["M-SPRINT"]["sprint"] >= g["L-SPRINT"]["sprint"]
    for cfg in g:
        assert 4.0 < g[cfg]["sprint"] < 16.0
        # Ablation: pruning-only is far weaker (paper 1.7-1.8x).
        assert g[cfg]["pruning_only"] < g[cfg]["sprint"] / 2
    # ViT-B is the minimum-benefit model (paper: 2.7-2.8x).
    vit = [r.speedup for r in rows if r.model == "ViT-B"]
    assert all(v < 4.0 for v in vit)
    print()
    print(fig11_speedup.format_table(rows))
