"""Benchmark: out-of-core chunked serving and threaded sharding.

Three acceptance bars for the 10^8-request serving path, each appended
to ``benchmarks/BENCH_parallel.json`` so the trajectory is recorded
run over run (every entry carries ``cpu_count`` and, when a bar cannot
arm on the runner, the skip reason):

* **throughput** -- driving one pre-generated 200k-request stream
  through :func:`~repro.serving.engine.simulate_stream` in chunks must
  sustain at least 0.9x the whole-table :func:`simulate_table`
  request throughput on a single core (the frontier bookkeeping must
  stay in the noise; in practice chunking *wins* on cache locality).
  The fully out-of-core end-to-end time (chunked generation included)
  is recorded informationally.
* **memory** -- a 10^7-request run must fit under a 256 MB peak-RSS
  budget chunked, while the whole-table run demonstrably exceeds it
  (measured ~1.5 GB): each side runs in a fresh subprocess reporting
  its own ``ru_maxrss``.
* **threads** -- phase-1 batch formation across a 4-queue mix at
  ``threads=4`` must beat serial by >= 1.8x.  Wall-clock parallel
  speedup needs real cores, so the floor only arms on
  ``os.cpu_count() >= 4``; starved containers record the skip reason
  instead of a meaningless ratio.

The strict gates (and the JSON appends) only arm under
``SPRINT_BENCH_GATE`` -- tier-1 collects this file too, and a loaded
shared runner must not fail correctness CI on a timing fluctuation.
Chunked-vs-whole *equivalence* is covered untimed (and exhaustively)
by ``tests/test_serving_stream.py``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    PoissonProcess,
    RequestStream,
    generate_request_table,
    shared_cost_model,
    simulate_stream,
    simulate_table,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "benchmarks" / "BENCH_parallel.json"
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
CPUS = os.cpu_count() or 1

NUM_REQUESTS = 200_000
RATE_RPS = 2000.0
CHUNK_SIZE = 65_536

MEMORY_REQUESTS = 10_000_000
#: Peak-RSS budget (MB) for the 10^7-request run: the chunked path
#: holds ~60 MB at any stream length; the whole-table run peaks around
#: 1.5 GB (10 columns x 8 bytes x 10^7 plus sort/batch intermediates).
MEMORY_BUDGET_MB = 256

THREADS = 4
THREAD_GATE_FLOOR = 1.8
THREAD_MIX = {"BERT-B": 2.0, "BERT-L": 1.0, "ViT-B": 1.0, "ALBERT-XL": 0.5}

CHUNKED_GATE_FLOOR = 0.9
#: Outside the gate (or timeshared), still catch a pathological
#: frontier-bookkeeping regression.
CHUNKED_SANITY_FLOOR = 0.4


def _append(entry: dict) -> None:
    entry = {**entry, "cpu_count": CPUS, "recorded_unix": int(time.time())}
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=1) + "\n")


#: Fresh-subprocess probes: each side of the memory bar measures its
#: own peak RSS (``ru_maxrss``, KB on Linux) with nothing else resident.
_MEM_DRIVER_WHOLE = """
import json, resource, sys
from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (PoissonProcess, generate_request_table,
                           shared_cost_model, simulate_table)
n = int(sys.argv[1])
table = generate_request_table(
    PoissonProcess(2000.0), "BERT-B", count=n, seed=0)
cost = shared_cost_model(S_SPRINT, ExecutionMode.SPRINT)
cost.prime(table.specs[0], table.valid_len)
result = simulate_table(table, cost)
assert result.completed == n
print(json.dumps(
    {"ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss}))
"""

_MEM_DRIVER_CHUNKED = """
import json, resource, sys
from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (PoissonProcess, RequestStream,
                           shared_cost_model, simulate_stream)
n = int(sys.argv[1])
stream = RequestStream(PoissonProcess(2000.0), "BERT-B", count=n, seed=0)
cost = shared_cost_model(S_SPRINT, ExecutionMode.SPRINT)
result = simulate_stream(stream, cost)
assert result.completed == n
print(json.dumps(
    {"ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss}))
"""


def _measure_subprocess_mb(driver: str, n: int) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, "-c", driver, str(n)],
        check=True, env=env, cwd=REPO_ROOT, capture_output=True, text=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])["ru_maxrss_kb"] / 1024.0


def test_bench_chunked_vs_whole_throughput():
    """simulate_stream >= 0.9x simulate_table request throughput."""
    table = generate_request_table(
        PoissonProcess(RATE_RPS), "BERT-B", count=NUM_REQUESTS, seed=0
    )
    cost = shared_cost_model(S_SPRINT, ExecutionMode.SPRINT)
    cost.prime(table.specs[0], table.valid_len)
    chunks = [
        table.slice(lo, min(lo + CHUNK_SIZE, NUM_REQUESTS))
        for lo in range(0, NUM_REQUESTS, CHUNK_SIZE)
    ]

    # Warm both drivers, then time one pass each over identical rows.
    simulate_table(table.head(CHUNK_SIZE), cost)
    simulate_stream(chunks[:1], cost)

    start = time.perf_counter()
    whole = simulate_table(table, cost)
    whole_s = time.perf_counter() - start
    assert whole.completed == NUM_REQUESTS

    start = time.perf_counter()
    chunked = simulate_stream(chunks, cost)
    chunked_s = time.perf_counter() - start
    assert chunked.completed == NUM_REQUESTS
    assert chunked.end_s == whole.end_s

    # Informational: fully out-of-core, generation included.
    stream = RequestStream(
        PoissonProcess(RATE_RPS), "BERT-B", count=NUM_REQUESTS, seed=0,
        chunk_size=CHUNK_SIZE,
    )
    start = time.perf_counter()
    end_to_end = simulate_stream(stream, cost)
    end_to_end_s = time.perf_counter() - start
    assert end_to_end.completed == NUM_REQUESTS

    ratio = whole_s / chunked_s
    if GATE_ARMED:
        _append({
            "benchmark": "chunked_vs_whole_throughput",
            "num_requests": NUM_REQUESTS,
            "chunk_size": CHUNK_SIZE,
            "whole_s": round(whole_s, 4),
            "chunked_s": round(chunked_s, 4),
            "end_to_end_s": round(end_to_end_s, 4),
            "chunked_over_whole": round(ratio, 3),
        })
    floor = CHUNKED_GATE_FLOOR if GATE_ARMED else CHUNKED_SANITY_FLOOR
    assert ratio >= floor, (
        f"chunked driver only {ratio:.2f}x whole-table throughput "
        f"({chunked_s:.2f}s vs {whole_s:.2f}s; gate floor {floor}x)"
    )


@pytest.mark.skipif(
    not GATE_ARMED,
    reason="two 10^7-request subprocess runs; set SPRINT_BENCH_GATE=1",
)
def test_bench_out_of_core_memory():
    """10^7 requests: chunked fits the RSS budget, whole-table busts it."""
    chunked_mb = _measure_subprocess_mb(_MEM_DRIVER_CHUNKED, MEMORY_REQUESTS)
    whole_mb = _measure_subprocess_mb(_MEM_DRIVER_WHOLE, MEMORY_REQUESTS)
    _append({
        "benchmark": "out_of_core_memory",
        "num_requests": MEMORY_REQUESTS,
        "budget_mb": MEMORY_BUDGET_MB,
        "chunked_peak_mb": round(chunked_mb, 1),
        "whole_peak_mb": round(whole_mb, 1),
    })
    assert chunked_mb <= MEMORY_BUDGET_MB, (
        f"chunked 10^7 run peaked at {chunked_mb:.0f} MB "
        f"(budget {MEMORY_BUDGET_MB} MB)"
    )
    assert whole_mb > MEMORY_BUDGET_MB, (
        f"whole-table 10^7 run peaked at only {whole_mb:.0f} MB -- the "
        f"budget no longer separates the paths; tighten it"
    )


@pytest.mark.skipif(
    not GATE_ARMED, reason="wall-clock gate; set SPRINT_BENCH_GATE=1"
)
def test_bench_threaded_batch_formation():
    """threads=4 phase 1 >= 1.8x serial on >= 4 CPUs."""
    if CPUS < THREADS:
        _append({
            "benchmark": "threaded_batch_formation",
            "threads": THREADS,
            "skipped": (
                f"needs >= {THREADS} CPUs for a wall-clock floor; "
                f"runner has {CPUS}"
            ),
        })
        pytest.skip(f"threaded floor needs >= {THREADS} CPUs (have {CPUS})")

    table = generate_request_table(
        PoissonProcess(RATE_RPS), THREAD_MIX, count=NUM_REQUESTS, seed=0
    )
    cost = shared_cost_model(S_SPRINT, ExecutionMode.SPRINT)
    cost.prime(table.specs[0], table.valid_len)
    base = simulate_table(table, cost)  # warm + serial reference

    start = time.perf_counter()
    serial = simulate_table(table, cost, threads=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    threaded = simulate_table(table, cost, threads=THREADS)
    threaded_s = time.perf_counter() - start

    # Byte-identical results are a precondition for a meaningful ratio.
    import numpy as np

    assert np.array_equal(threaded.finish_s, base.finish_s)
    assert threaded.device_busy_s == base.device_busy_s

    speedup = serial_s / threaded_s
    _append({
        "benchmark": "threaded_batch_formation",
        "threads": THREADS,
        "num_requests": NUM_REQUESTS,
        "serial_s": round(serial_s, 4),
        "threaded_s": round(threaded_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= THREAD_GATE_FLOOR, (
        f"threads={THREADS} only {speedup:.2f}x serial "
        f"({threaded_s:.2f}s vs {serial_s:.2f}s on {CPUS} CPUs; "
        f"gate floor {THREAD_GATE_FLOOR}x)"
    )
