"""Benchmark: the fault layer must not tax fault-free serving.

The acceptance bar for fault injection: on a 200k-request Poisson
stream, ``simulate_table`` called with ``faults=None`` (the default
every existing caller hits) must stay within 10% of the direct
fast-path call -- threading the fault machinery through the engines
cannot slow the no-fault path.  The measured ratio is appended to
``benchmarks/BENCH_faults.json``, alongside an informational timing of
the fault core running an *empty* schedule (bitwise-equal results;
allowed to be slower since it is a different, event-driven engine).

The strict gate (and the JSON append) only arm under
``SPRINT_BENCH_GATE`` -- tier-1 collects this file too, and a loaded
shared runner must not fail correctness CI on a timing fluctuation.
Ungated runs use a relaxed sanity ceiling, further relaxed on starved
(<2 CPU) containers where the host timeshares everything.
"""

import json
import os
import time

import pytest

from repro.core.configs import S_SPRINT
from repro.core.system import ExecutionMode
from repro.serving import (
    FaultSchedule,
    PoissonProcess,
    ServiceCostModel,
    generate_request_table,
    simulate_faulty_table,
    simulate_table,
)

NUM_REQUESTS = 200_000
RATE_RPS = 2000.0
REPEATS = 3
BENCH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_faults.json")
GATE_ARMED = bool(os.environ.get("SPRINT_BENCH_GATE"))
#: Gated ceiling: faults=None path <= 1.10x the direct fast path.
GATE_CEILING = 1.10
CPUS = os.cpu_count() or 1
#: Outside the gated job (or on a starved timeshared container), still
#: catch a pathological slowdown in the no-fault path.
SANITY_CEILING = 1.5 if CPUS >= 2 else 2.0


@pytest.fixture(scope="module")
def stream():
    table = generate_request_table(
        PoissonProcess(RATE_RPS), "BERT-B", count=NUM_REQUESTS, seed=0
    )
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    cost.prime(table.specs[0], table.valid_len)
    return table, cost


def test_bench_no_fault_path(benchmark, stream):
    """Wall-clock of one faults=None run over the 200k stream."""
    table, cost = stream
    result = benchmark(lambda: simulate_table(table, cost, faults=None))
    assert len(result.finish_s) == NUM_REQUESTS


def test_bench_no_fault_overhead(stream):
    """faults=None within 10% of the direct path; record the ratio."""
    table, cost = stream

    # Warm both paths; results must be identical objects semantically.
    direct = simulate_table(table, cost)
    routed = simulate_table(table, cost, faults=None)
    assert routed.finish_s.tobytes() == direct.finish_s.tobytes()

    direct_s = routed_s = float("inf")
    for _ in range(REPEATS):
        # Alternate so drifting machine load penalises both alike.
        start = time.perf_counter()
        simulate_table(table, cost)
        direct_s = min(direct_s, time.perf_counter() - start)
        start = time.perf_counter()
        simulate_table(table, cost, faults=None)
        routed_s = min(routed_s, time.perf_counter() - start)
    overhead = routed_s / direct_s

    # Informational: the event-driven fault core on an empty schedule
    # (exact same records).  Not gated -- it trades columnar batch
    # granularity for per-event fault checks by design.
    start = time.perf_counter()
    empty = simulate_faulty_table(table, cost, FaultSchedule.none(1))
    fault_core_s = time.perf_counter() - start
    assert empty.completed_count == NUM_REQUESTS

    if GATE_ARMED:
        entry = {
            "benchmark": "faults_no_fault_path_overhead",
            "config": S_SPRINT.name,
            "mode": ExecutionMode.SPRINT.value,
            "pattern": "poisson",
            "num_requests": NUM_REQUESTS,
            "direct_s": round(direct_s, 4),
            "faults_none_s": round(routed_s, 4),
            "overhead": round(overhead, 3),
            "empty_schedule_fault_core_s": round(fault_core_s, 4),
            "recorded_unix": int(time.time()),
        }
        history = []
        if os.path.exists(BENCH_JSON):
            with open(BENCH_JSON) as f:
                history = json.load(f)
        history.append(entry)
        with open(BENCH_JSON, "w") as f:
            json.dump(history, f, indent=1)
            f.write("\n")

    ceiling = GATE_CEILING if GATE_ARMED and CPUS >= 2 else SANITY_CEILING
    assert overhead <= ceiling, (
        f"faults=None serving path is {overhead:.2f}x the direct fast "
        f"path ({routed_s:.3f}s vs {direct_s:.3f}s; ceiling {ceiling}x)"
    )
