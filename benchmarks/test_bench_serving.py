"""Benchmark: the serving study (load vs tail latency, three patterns)."""

from repro.experiments import serving


def test_bench_serving(benchmark):
    rows = benchmark(
        serving.run, num_requests=100, loads=(20.0, 80.0)
    )
    headroom = serving.max_sla_load(rows)
    for pattern in serving.DEFAULT_PATTERNS:
        base = headroom[(pattern, "baseline")]
        sprint = headroom[(pattern, "sprint")]
        # SPRINT's shorter service times must buy SLA headroom.
        assert sprint > base
    # Saturated baselines cannot exceed their service capacity.
    for row in rows:
        if row.mode == "baseline" and row.offered_rps >= 80.0:
            assert row.throughput_rps < row.offered_rps
    print()
    print(serving.format_table(rows))
