"""Benchmark: regenerate Figure 5 (accuracy vs in-memory score bits)."""

from repro.experiments import fig5_bit_sensitivity


def test_bench_fig5(benchmark):
    rows = benchmark.pedantic(
        fig5_bit_sensitivity.run,
        kwargs=dict(num_samples=24, seq_len=96),
        iterations=1, rounds=1,
    )
    curves = fig5_bit_sensitivity.accuracy_curves(rows)
    for task, curve in curves.items():
        # The paper's shape: >=4-bit scores sit at baseline accuracy,
        # 1-bit collapses.
        assert curve[1] <= curve[8] + 1e-9, task
        assert curve[4] >= curve[8] - 0.1, task
    print()
    print(fig5_bit_sensitivity.format_table(rows))
