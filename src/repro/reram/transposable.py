"""Transposable ReRAM array: in-situ compute plus transposed read.

Models the taped-out transposable ReRAM the paper repurposes ([141]):

- **in-situ computation** mode behaves like a conventional crossbar
  (queries on wordlines, parallel dot products on all bitlines);
- **transposed read** mode swaps the roles of wordlines and bitlines so
  one *column* (i.e. one stored key vector) can be read out through the
  sense amplifiers -- exactly what the selective fetch of unpruned key
  vectors needs (challenge 3 in section III-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.reram.adc import ADC, AnalogComparator, DAC
from repro.reram.crossbar import CrossbarArray


class TransposableArray(CrossbarArray):
    """Crossbar with transposed column reads and analog thresholding."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dac = DAC(bits=4)
        self.pruning_adc = ADC(bits=1)
        self.comparator = AnalogComparator()

    def transposed_read(self, column: int) -> np.ndarray:
        """Read one stored key vector (a column) in transposed mode.

        In hardware the horizontal lines become bitlines, the selected
        vertical line becomes the (single asserted) wordline, and the
        sense amplifiers recover the stored codes.
        """
        if not 0 <= column < self.cols:
            raise IndexError(f"column {column} out of range [0, {self.cols})")
        self.stats.transposed_reads += 1
        return self._codes[:, column].copy()

    def threshold_vmm(
        self,
        query_codes: np.ndarray,
        threshold: float,
        active_cols: Optional[int] = None,
        ideal: bool = False,
    ) -> np.ndarray:
        """In-memory thresholding: VMM -> analog compare -> 1-bit ADC.

        Parameters
        ----------
        query_codes:
            Signed 4-bit query MSB codes (one per wordline).
        threshold:
            Learned threshold in the same analog score units as the VMM
            output (the controller scales the digital threshold before
            issuing the CopyQ command).
        active_cols:
            Number of columns that actually hold keys; trailing columns
            are "Not Used" and excluded from the output.

        Returns
        -------
        Binary pruning vector (uint8), '1' -> pruned, length ``active_cols``.
        """
        # DAC conversion of the (offset-shifted) query codes; the offset
        # cancels differentially, so behaviourally we keep signed values.
        offset = 2 ** (self.dac.bits - 1)
        self.dac.convert(np.asarray(query_codes) + offset)
        analog = self.vmm(query_codes, ideal=ideal)
        cols = self.cols if active_cols is None else active_cols
        if not 0 <= cols <= self.cols:
            raise ValueError("active_cols out of range")
        bits = self.comparator.compare(analog[:cols], threshold)
        self.pruning_adc.convert(bits.astype(np.float64))
        return bits
