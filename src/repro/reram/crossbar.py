"""A ReRAM crossbar array performing analog vector-matrix multiplication.

The behavioural model follows Eq. 2 of the paper: matrix elements map to
memristor conductances, the input vector drives the wordlines as DAC
voltages, and each bitline's summed current is the dot product of the
input with that column.  Non-idealities enter in two places: per-cell
programming variation (:class:`repro.reram.cell.MLCCellModel`) and
aggregate output-referred noise (:class:`repro.reram.noise.OutputNoiseModel`).

Signed operands use the standard differential-column trick (positive and
negative conductance planes whose currents subtract), which behaviourally
reduces to signed effective weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.reram.cell import MLCCellModel
from repro.reram.noise import OutputNoiseModel


@dataclass
class CrossbarStats:
    """Event counters consumed by the energy model."""

    vmm_ops: int = 0
    analog_macs: int = 0
    programs: int = 0
    transposed_reads: int = 0

    def merge(self, other: "CrossbarStats") -> None:
        self.vmm_ops += other.vmm_ops
        self.analog_macs += other.analog_macs
        self.programs += other.programs
        self.transposed_reads += other.transposed_reads


class CrossbarArray:
    """One ``rows x cols`` crossbar storing signed multi-bit codes.

    Parameters
    ----------
    rows, cols:
        Physical array dimensions (wordlines x bitlines).  SPRINT's
        transposable arrays are 64 x 128 (Table I).
    cell:
        MLC cell model; magnitude codes must fit ``cell.bits_per_cell``.
    noise:
        Output noise model applied to every analog VMM result.
    seed:
        Seed for programming variation and noise (deterministic runs).
    """

    def __init__(
        self,
        rows: int = 64,
        cols: int = 128,
        cell: Optional[MLCCellModel] = None,
        noise: Optional[OutputNoiseModel] = None,
        seed: int = 0,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be positive")
        self.rows = rows
        self.cols = cols
        self.cell = cell or MLCCellModel()
        self.noise = noise or OutputNoiseModel()
        self._rng = np.random.default_rng(seed)
        self.stats = CrossbarStats()
        self._codes = np.zeros((rows, cols), dtype=np.int64)
        self._effective = np.zeros((rows, cols), dtype=np.float64)
        self._programmed = False

    # ------------------------------------------------------------------
    def program(self, codes: np.ndarray, ideal: bool = False) -> None:
        """Program signed codes into the array (with variation).

        ``codes`` may be smaller than the array; the remainder stays zero
        ("Not Used" cells in the paper's Figure 6).
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2:
            raise ValueError("codes must be a 2-D matrix")
        r, c = codes.shape
        if r > self.rows or c > self.cols:
            raise ValueError(
                f"codes shape {codes.shape} exceeds array "
                f"({self.rows}x{self.cols})"
            )
        half = 2 ** (self.cell.bits_per_cell - 1)
        if np.any(codes > half - 1) or np.any(codes < -half):
            raise ValueError(
                f"signed codes out of {self.cell.bits_per_cell}-bit range"
            )
        self._codes[:] = 0
        self._effective[:] = 0.0
        self._codes[:r, :c] = codes
        magnitude = np.abs(codes)
        conduct = self.cell.program(magnitude, rng=self._rng, ideal=ideal)
        # Map conductance back to an effective magnitude on the level grid:
        # programming variation becomes multiplicative weight error.
        span = self.cell.g_max - self.cell.g_min
        eff_mag = (conduct - self.cell.g_min) / span * (self.cell.level_count - 1)
        self._effective[:r, :c] = np.sign(codes) * eff_mag
        self.stats.programs += int(codes.size)
        self._programmed = True

    def vmm(self, input_codes: np.ndarray, ideal: bool = False) -> np.ndarray:
        """Analog VMM: one input element per wordline, one output per bitline."""
        if not self._programmed:
            raise RuntimeError("array not programmed")
        v = np.asarray(input_codes, dtype=np.float64)
        if v.ndim != 1:
            raise ValueError("input must be a 1-D vector")
        if v.size > self.rows:
            raise ValueError(f"input length {v.size} exceeds {self.rows} rows")
        padded = np.zeros(self.rows, dtype=np.float64)
        padded[: v.size] = v
        out = padded @ self._effective
        self.stats.vmm_ops += 1
        self.stats.analog_macs += self.rows * self.cols
        if ideal:
            return out
        full_scale = float(np.max(np.abs(out))) * 2.0 if out.size else 0.0
        return self.noise.apply(out, full_scale=full_scale, rng=self._rng)

    def stored_codes(self) -> np.ndarray:
        """Digital view of the stored codes (for verification)."""
        return self._codes.copy()
