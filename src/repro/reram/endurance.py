"""ReRAM write endurance tracking and array lifetime estimation.

ReRAM cells wear out after a bounded number of SET/RESET cycles; the
endurance characterization SPRINT's write-energy numbers come from
([51], Grossi et al.) reports array-level endurance around 1e6-1e8
cycles with correction techniques.  SPRINT's attention traffic is
read-dominated -- embeddings are written once per inference by the
projection GEMMs -- so lifetime is rarely the binding constraint, but a
deployment study needs the number.  This module tracks per-region write
counts and projects array lifetime under a given inference rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: Conservative array-level endurance (SET/RESET cycles per cell), per
#: the Grossi et al. characterization the paper's write energy cites.
DEFAULT_ENDURANCE_CYCLES = 1.0e7


@dataclass
class EnduranceTracker:
    """Per-token-slot write counting with wear statistics.

    One slot per embedding vector location; each inference rewrites the
    Q/K/V regions once (the projection output).  Wear-leveling via the
    rotating base register spreads writes across ``leveling_factor``
    physical locations.
    """

    num_slots: int
    endurance_cycles: float = DEFAULT_ENDURANCE_CYCLES
    leveling_factor: int = 1
    _writes: np.ndarray = field(default=None, repr=False)

    def __post_init__(self):
        if self.num_slots < 1:
            raise ValueError("num_slots must be positive")
        if self.leveling_factor < 1:
            raise ValueError("leveling_factor must be >= 1")
        self._writes = np.zeros(self.num_slots, dtype=np.int64)

    # ------------------------------------------------------------------
    def record_writes(self, slots, count: int = 1) -> None:
        """Record ``count`` writes to each of ``slots``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._writes[np.asarray(slots, dtype=np.int64)] += count

    def record_inference(self, valid_len: Optional[int] = None) -> None:
        """One inference writes every (valid) slot once."""
        end = self.num_slots if valid_len is None else min(
            valid_len, self.num_slots
        )
        self._writes[:end] += 1

    # ------------------------------------------------------------------
    @property
    def max_writes(self) -> int:
        return int(self._writes.max())

    @property
    def total_writes(self) -> int:
        return int(self._writes.sum())

    def wear_fraction(self) -> float:
        """Fraction of the hottest slot's endurance already consumed."""
        effective = self.endurance_cycles * self.leveling_factor
        return self.max_writes / effective

    def remaining_inferences(self) -> float:
        """Inferences left before the hottest slot exceeds endurance.

        Assumes the observed per-inference write pattern continues.
        """
        if self.max_writes == 0:
            return float("inf")
        effective = self.endurance_cycles * self.leveling_factor
        return max(0.0, effective - self.max_writes)

    def lifetime_years(
        self, inferences_per_second: float, writes_per_inference: int = 1
    ) -> float:
        """Projected lifetime at a sustained inference rate."""
        if inferences_per_second <= 0:
            raise ValueError("inferences_per_second must be positive")
        effective = self.endurance_cycles * self.leveling_factor
        seconds = effective / (inferences_per_second * writes_per_inference)
        return seconds / (365.25 * 24 * 3600)

    def hottest_slots(self, top: int = 5) -> Dict[int, int]:
        order = np.argsort(self._writes)[::-1][:top]
        return {int(i): int(self._writes[i]) for i in order}
