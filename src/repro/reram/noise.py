"""Output-referred analog noise for in-memory dot products.

The paper anchors its error model on an HP-Lab measurement ([60]): a
64-tap ReRAM dot product delivers **5-bit equivalent output accuracy**
once thermal noise, coupling, and variation are included.  We model the
aggregate as additive Gaussian noise whose sigma is chosen so the
effective number of bits (ENOB) of the output equals ``equivalent_bits``
over the given full-scale range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class OutputNoiseModel:
    """Additive noise sized to an effective-number-of-bits target.

    For a uniform quantizer with ``b`` bits over full-scale range ``FS``,
    the quantization-noise RMS is ``FS / (2**b * sqrt(12))``.  Matching
    the analog noise RMS to that value makes the analog output
    "b-bit equivalent", the formulation the paper adopts.
    """

    equivalent_bits: float = 5.0

    def sigma(self, full_scale: float) -> float:
        """Noise RMS for the given full-scale output range."""
        if full_scale < 0:
            raise ValueError("full_scale must be non-negative")
        return full_scale / (2 ** self.equivalent_bits * np.sqrt(12.0))

    def apply(
        self,
        values: np.ndarray,
        full_scale: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Add ENOB-matched Gaussian noise to analog output ``values``."""
        values = np.asarray(values, dtype=np.float64)
        if full_scale is None:
            full_scale = float(np.max(np.abs(values))) * 2.0 if values.size else 0.0
        if full_scale == 0.0:
            return values.copy()
        rng = rng or np.random.default_rng(0)
        return values + rng.normal(0.0, self.sigma(full_scale), size=values.shape)
