"""Data converters and the analog comparator (paper section III).

SPRINT's key circuit decision: instead of digitizing every analog score
with a 5-bit ADC and comparing digitally, an **analog comparator** per
bitline compares the column current against the threshold voltage and a
**1-bit ADC** digitizes the single pruning bit.  A 5-bit ADC costs >20x
the power and >30x the area of the 1-bit design ([136, 139]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DAC:
    """Digital-to-analog converter driving the wordlines.

    Converts unsigned ``bits``-bit codes to voltages in ``[0, v_ref]``.
    Conversion count is tracked for the energy model.
    """

    bits: int = 4
    v_ref: float = 1.0
    conversions: int = 0

    def convert(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        full = 2 ** self.bits - 1
        if np.any(codes < 0) or np.any(codes > full):
            raise ValueError(f"codes must be in [0, {full}]")
        self.conversions += int(codes.size)
        return codes.astype(np.float64) * (self.v_ref / full)


@dataclass
class ADC:
    """Analog-to-digital converter with ``bits`` precision.

    The relative power/area cost versus a 1-bit design follows the
    paper's cited survey: both grow super-linearly in resolution.
    """

    bits: int = 1
    v_ref: float = 1.0
    conversions: int = 0

    #: Power of a b-bit ADC relative to 1-bit, from the flash-ADC scaling
    #: the paper cites (>30x for 5-bit vs 1-bit power, >20x area).
    POWER_VS_1BIT = {1: 1.0, 2: 3.0, 3: 7.5, 4: 15.0, 5: 32.0, 6: 64.0}

    def convert(self, voltages: np.ndarray) -> np.ndarray:
        voltages = np.asarray(voltages, dtype=np.float64)
        self.conversions += int(voltages.size)
        levels = 2 ** self.bits - 1
        clipped = np.clip(voltages, 0.0, self.v_ref)
        return np.round(clipped / self.v_ref * levels).astype(np.int64)

    def relative_power(self) -> float:
        return self.POWER_VS_1BIT.get(self.bits, 2.0 ** self.bits)


@dataclass
class AnalogComparator:
    """Per-bitline comparator producing the 1-bit pruning decision.

    Output convention matches the memory controller ('1' -> pruned, i.e.
    the analog score fell *below* the threshold voltage).
    """

    comparisons: int = 0

    def compare(self, analog_scores: np.ndarray, v_threshold: float) -> np.ndarray:
        analog_scores = np.asarray(analog_scores, dtype=np.float64)
        self.comparisons += int(analog_scores.size)
        return (analog_scores < v_threshold).astype(np.uint8)
