"""Behavioural ReRAM substrate: crossbars, MLC cells, transposable arrays.

Models the analog machinery SPRINT relies on (paper sections III and V):

- :mod:`repro.reram.cell` -- multi-level-cell conductance mapping with
  process variation (4 bits/cell, the robustness sweet spot).
- :mod:`repro.reram.noise` -- output-referred analog noise giving the
  "5-bit equivalent output accuracy" of a 64-tap in-memory dot product.
- :mod:`repro.reram.adc` -- DAC/ADC quantizers and the analog comparator.
- :mod:`repro.reram.crossbar` -- vector-matrix multiply on one array.
- :mod:`repro.reram.transposable` -- in-situ compute + transposed read.
- :mod:`repro.reram.thresholding` -- the full in-memory thresholding
  dataflow: tiled KMSB storage, per-query analog compare, 1-bit pruning
  vector out.
"""

from repro.reram.adc import ADC, DAC, AnalogComparator
from repro.reram.cell import MLCCellModel
from repro.reram.crossbar import CrossbarArray, CrossbarStats
from repro.reram.noise import OutputNoiseModel
from repro.reram.thresholding import InMemoryThresholdingUnit, ThresholdingStats
from repro.reram.transposable import TransposableArray
from repro.reram.endurance import EnduranceTracker
from repro.reram.mapping import BankAllocator, BankType, MatrixKind, Region

__all__ = [
    "EnduranceTracker",
    "BankAllocator",
    "BankType",
    "MatrixKind",
    "Region",
    "MLCCellModel",
    "OutputNoiseModel",
    "DAC",
    "ADC",
    "AnalogComparator",
    "CrossbarArray",
    "CrossbarStats",
    "TransposableArray",
    "InMemoryThresholdingUnit",
    "ThresholdingStats",
]
