"""Multi-level ReRAM cell model (paper section III).

Each MLC cell stores ``bits_per_cell`` bits as one of ``2**bits`` target
conductance levels between ``g_min`` (high-resistance state) and
``g_max`` (low-resistance state).  Programming suffers lognormal process
variation; more bits per cell squeeze the level spacing and amplify the
effect -- the reason the paper settles on 4 bits/cell as the
robustness/density sweet spot (citing [15, 60]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class MLCCellModel:
    """Conductance mapping for one multi-level cell technology.

    Parameters
    ----------
    bits_per_cell:
        Stored bits per cell (4 in SPRINT's transposable arrays).
    g_min, g_max:
        Conductance range in siemens; defaults follow typical HfO2 RRAM
        (R_on ~= 10 kOhm, R_off ~= 1 MOhm).
    variation_sigma:
        Relative lognormal programming variation per level.
    """

    bits_per_cell: int = 4
    g_min: float = 1.0e-6
    g_max: float = 1.0e-4
    variation_sigma: float = 0.03

    def __post_init__(self):
        if self.bits_per_cell < 1:
            raise ValueError("bits_per_cell must be >= 1")
        if self.g_min >= self.g_max:
            raise ValueError("g_min must be < g_max")

    @property
    def level_count(self) -> int:
        return 2 ** self.bits_per_cell

    def level_conductances(self) -> np.ndarray:
        """Nominal conductance of each of the ``2**bits`` levels."""
        return np.linspace(self.g_min, self.g_max, self.level_count)

    def program(
        self,
        codes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        ideal: bool = False,
    ) -> np.ndarray:
        """Map integer level codes to (possibly varied) conductances.

        ``codes`` must be unsigned integers in ``[0, 2**bits)``.  Signed
        operands are handled one level up (differential column pairs or
        offset encoding in :mod:`repro.reram.crossbar`).
        """
        codes = np.asarray(codes)
        if np.any(codes < 0) or np.any(codes >= self.level_count):
            raise ValueError(
                f"codes must be in [0, {self.level_count}) for "
                f"{self.bits_per_cell} bits/cell"
            )
        nominal = self.level_conductances()[codes]
        if ideal or self.variation_sigma == 0:
            return nominal
        rng = rng or np.random.default_rng(0)
        variation = rng.lognormal(
            mean=0.0, sigma=self.variation_sigma, size=nominal.shape
        )
        return np.clip(nominal * variation, self.g_min, self.g_max)

    def read_level(self, conductance: np.ndarray) -> np.ndarray:
        """Quantize conductances back to the nearest level code."""
        levels = self.level_conductances()
        conductance = np.asarray(conductance, dtype=np.float64)
        distances = np.abs(conductance[..., None] - levels)
        return np.argmin(distances, axis=-1)
