"""The full in-memory thresholding dataflow (paper section III-B).

:class:`InMemoryThresholdingUnit` owns a tiled bank of transposable
arrays holding the 4-bit MSBs of a head's key matrix (one key vector per
column), and answers per-query pruning requests:

1. quantize ``q`` to 8 bits, take the 4 MSBs;
2. drive them through the DACs of every column tile (row tiles split
   long key vectors across adjacent arrays and merge currents, the
   scaling fix of section V-A);
3. analog-compare each merged column current with the scaled threshold;
4. return the 1-bit-per-key pruning vector.

The unit keeps event counters (:class:`ThresholdingStats`) matching the
energy-model categories, and reports the ``tAxTh`` latency the memory
controller must respect between ``CopyQ`` and ``ReadP``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attention.quantization import split_msb_lsb, symmetric_quantize
from repro.reram.cell import MLCCellModel
from repro.reram.noise import OutputNoiseModel
from repro.reram.transposable import TransposableArray

#: Cycles one in-memory thresholding takes (paper section V-C: <8).
T_AX_TH_CYCLES = 8


@dataclass
class ThresholdingStats:
    """Aggregated event counts across all tiles of the unit."""

    queries_processed: int = 0
    inmemory_array_ops: int = 0
    analog_macs: int = 0
    comparator_ops: int = 0
    adc_1bit_conversions: int = 0
    dac_conversions: int = 0


class InMemoryThresholdingUnit:
    """Tiled transposable-ReRAM thresholding for one attention head.

    Parameters
    ----------
    seq_len:
        Number of key vectors (columns across the column tiles).
    head_dim:
        Key vector length ``d`` (rows across the row tiles).
    array_rows, array_cols:
        Physical tile size; Table I uses 64 x 128 transposable arrays.
    msb_bits:
        MSBs of each 8-bit key element kept in the transposable arrays.
    """

    def __init__(
        self,
        seq_len: int,
        head_dim: int = 64,
        array_rows: int = 64,
        array_cols: int = 128,
        msb_bits: int = 4,
        cell: Optional[MLCCellModel] = None,
        noise: Optional[OutputNoiseModel] = None,
        seed: int = 0,
    ):
        if seq_len < 1 or head_dim < 1:
            raise ValueError("seq_len and head_dim must be positive")
        self.seq_len = seq_len
        self.head_dim = head_dim
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.msb_bits = msb_bits
        self.row_tiles = -(-head_dim // array_rows)
        self.col_tiles = -(-seq_len // array_cols)
        cell = cell or MLCCellModel(bits_per_cell=msb_bits)
        noise = noise or OutputNoiseModel()
        self.tiles: List[List[TransposableArray]] = [
            [
                TransposableArray(
                    rows=array_rows,
                    cols=array_cols,
                    cell=cell,
                    noise=noise,
                    seed=seed + 97 * r + c,
                )
                for c in range(self.col_tiles)
            ]
            for r in range(self.row_tiles)
        ]
        self.stats = ThresholdingStats()
        self._key_scale: Optional[float] = None
        self._query_scale: Optional[float] = None
        self._lsb_shift = 8 - msb_bits

    # ------------------------------------------------------------------
    def store_keys(self, keys: np.ndarray) -> None:
        """Quantize ``(s, d)`` keys to 8b, program MSBs column-wise."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.shape != (self.seq_len, self.head_dim):
            raise ValueError(
                f"keys must be ({self.seq_len}, {self.head_dim}), "
                f"got {keys.shape}"
            )
        quantized = symmetric_quantize(keys, bits=8)
        self._key_scale = quantized.scale
        msb, _ = split_msb_lsb(quantized.codes, bits=8, msb_bits=self.msb_bits)
        # Column-major placement: key i -> column (i mod cols) of tile
        # (i // cols); rows split across row tiles.
        k_t = msb.T  # (d, s)
        for r in range(self.row_tiles):
            row_slice = slice(r * self.array_rows, (r + 1) * self.array_rows)
            for c in range(self.col_tiles):
                col_slice = slice(c * self.array_cols, (c + 1) * self.array_cols)
                self.tiles[r][c].program(np.ascontiguousarray(k_t[row_slice, col_slice]))

    def prune_query(
        self, query: np.ndarray, threshold: float, ideal: bool = False
    ) -> np.ndarray:
        """Return the binary pruning vector for one query ('1' -> pruned).

        ``threshold`` is in *score* units (the same units as ``q . k``);
        the unit rescales it into MSB-code analog units internally, which
        is what the controller's CopyQ command carries.
        """
        if self._key_scale is None:
            raise RuntimeError("store_keys must be called first")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.head_dim,):
            raise ValueError(f"query must be ({self.head_dim},)")
        q_quant = symmetric_quantize(query, bits=8)
        self._query_scale = q_quant.scale
        q_msb, _ = split_msb_lsb(q_quant.codes, bits=8, msb_bits=self.msb_bits)
        # q ~= q_msb * 2^lsb * q_scale, k ~= k_msb * 2^lsb * k_scale, so
        # score ~= (q_msb . k_msb) * 2^(2*lsb) * q_scale * k_scale.
        unit = (
            (2 ** self._lsb_shift) ** 2 * q_quant.scale * self._key_scale
        )
        analog_threshold = threshold / unit
        pruning = np.empty(self.seq_len, dtype=np.uint8)
        for c in range(self.col_tiles):
            col_start = c * self.array_cols
            active = min(self.array_cols, self.seq_len - col_start)
            merged = np.zeros(self.array_cols, dtype=np.float64)
            for r in range(self.row_tiles):
                row_start = r * self.array_rows
                rows = min(self.array_rows, self.head_dim - row_start)
                tile = self.tiles[r][c]
                merged += tile.vmm(
                    q_msb[row_start : row_start + rows].astype(np.float64),
                    ideal=ideal,
                )
                self.stats.inmemory_array_ops += 1
                self.stats.analog_macs += tile.rows * tile.cols
                self.stats.dac_conversions += rows
            bits = (merged[:active] < analog_threshold).astype(np.uint8)
            self.stats.comparator_ops += active
            self.stats.adc_1bit_conversions += active
            pruning[col_start : col_start + active] = bits
        self.stats.queries_processed += 1
        return pruning

    def prune_all(
        self, queries: np.ndarray, threshold: float, ideal: bool = False
    ) -> np.ndarray:
        """Pruning vectors for every query: ``(s, s)`` uint8 matrix."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.stack(
            [self.prune_query(q, threshold, ideal=ideal) for q in queries]
        )

    @property
    def latency_cycles(self) -> int:
        """tAxTh: cycles between CopyQ and the pruning vector being ready."""
        return T_AX_TH_CYCLES

    def read_key_msb(self, index: int) -> np.ndarray:
        """Selective transposed read of one (unpruned) key's MSB codes."""
        if not 0 <= index < self.seq_len:
            raise IndexError("key index out of range")
        tile_col = index // self.array_cols
        col = index % self.array_cols
        parts = [
            self.tiles[r][tile_col].transposed_read(col)
            for r in range(self.row_tiles)
        ]
        return np.concatenate(parts)[: self.head_dim]
