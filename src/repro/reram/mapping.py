"""Device-side data placement across standard and transposable ReRAM.

Paper section V-A: the MSB half of every key vector must live in
*transposable* arrays (for in-memory thresholding + transposed reads),
while the LSB halves, queries, and values live in *standard* arrays --
and the user should be able to express this "without exposing the
physical underlying structure of the memory subsystem" via device-side
allocation APIs.  :class:`BankAllocator` is that API: callers allocate
matrices by *kind* and get back region descriptors; the allocator
enforces bank-type constraints, capacity, and the channel-interleaved
vector placement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class BankType(enum.Enum):
    STANDARD = "standard"
    TRANSPOSABLE = "transposable"


class MatrixKind(enum.Enum):
    """What the region will hold; determines the legal bank type."""

    QUERY = "Q"
    KEY_MSB = "K_MSB"
    KEY_LSB = "K_LSB"
    VALUE = "V"

    @property
    def required_bank_type(self) -> BankType:
        if self is MatrixKind.KEY_MSB:
            return BankType.TRANSPOSABLE
        return BankType.STANDARD


@dataclass(frozen=True)
class Region:
    """One allocated matrix region."""

    kind: MatrixKind
    bank_type: BankType
    start_column: int
    num_vectors: int
    bytes_per_vector: int

    @property
    def total_bytes(self) -> int:
        return self.num_vectors * self.bytes_per_vector

    @property
    def end_column(self) -> int:
        return self.start_column + self.num_vectors


@dataclass
class _BankPool:
    bank_type: BankType
    capacity_vectors: int
    next_column: int = 0

    @property
    def free_vectors(self) -> int:
        return self.capacity_vectors - self.next_column

    def take(self, num_vectors: int) -> int:
        if num_vectors > self.free_vectors:
            raise MemoryError(
                f"{self.bank_type.value} pool exhausted: need "
                f"{num_vectors}, have {self.free_vectors}"
            )
        start = self.next_column
        self.next_column += num_vectors
        return start


class BankAllocator:
    """Allocate Q/K/V matrix regions with bank-type enforcement.

    Parameters
    ----------
    standard_capacity_vectors:
        Column capacity of the standard ReRAM pool (K_LSB + Q + V).
    transposable_capacity_vectors:
        Column capacity of the transposable pool (K_MSB only; Table I's
        64x128 arrays tiled as needed).
    vector_bytes:
        Bytes per stored vector (d single-byte elements; MSB/LSB halves
        each store d/2 bytes worth of information but occupy one column
        of 4-bit cells per element -- accounted as d cells here).
    """

    def __init__(
        self,
        standard_capacity_vectors: int = 1 << 20,
        transposable_capacity_vectors: int = 1 << 16,
        vector_bytes: int = 64,
    ):
        self.vector_bytes = vector_bytes
        self._pools = {
            BankType.STANDARD: _BankPool(
                BankType.STANDARD, standard_capacity_vectors
            ),
            BankType.TRANSPOSABLE: _BankPool(
                BankType.TRANSPOSABLE, transposable_capacity_vectors
            ),
        }
        self._regions: List[Region] = []

    # ------------------------------------------------------------------
    def allocate(self, kind: MatrixKind, num_vectors: int) -> Region:
        """Allocate a region for ``num_vectors`` vectors of ``kind``."""
        if num_vectors < 1:
            raise ValueError("num_vectors must be positive")
        bank_type = kind.required_bank_type
        start = self._pools[bank_type].take(num_vectors)
        region = Region(
            kind=kind,
            bank_type=bank_type,
            start_column=start,
            num_vectors=num_vectors,
            bytes_per_vector=self.vector_bytes,
        )
        self._regions.append(region)
        return region

    def allocate_attention_head(self, seq_len: int) -> Dict[str, Region]:
        """Allocate the full Q / K_MSB / K_LSB / V set for one head.

        This is the high-level call a runtime makes per head before
        computation starts (the static MSB/LSB separation of V-A).
        """
        return {
            "Q": self.allocate(MatrixKind.QUERY, seq_len),
            "K_MSB": self.allocate(MatrixKind.KEY_MSB, seq_len),
            "K_LSB": self.allocate(MatrixKind.KEY_LSB, seq_len),
            "V": self.allocate(MatrixKind.VALUE, seq_len),
        }

    # ------------------------------------------------------------------
    def regions(self, kind: Optional[MatrixKind] = None) -> List[Region]:
        if kind is None:
            return list(self._regions)
        return [r for r in self._regions if r.kind == kind]

    def free_vectors(self, bank_type: BankType) -> int:
        return self._pools[bank_type].free_vectors

    def utilization(self, bank_type: BankType) -> float:
        pool = self._pools[bank_type]
        if pool.capacity_vectors == 0:
            return 0.0
        return pool.next_column / pool.capacity_vectors

    def reset(self) -> None:
        """Free everything (e.g. between layers)."""
        for pool in self._pools.values():
            pool.next_column = 0
        self._regions.clear()
