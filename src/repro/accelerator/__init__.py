"""SPRINT on-chip accelerator: CORELETs, processing units, buffers.

Implements paper section VI: N independent CORELETs, each a pipelined
QK-PU (64-tap 8-bit dot product) -> Softmax (12-bit in, 8-bit out,
two-LUT exponent) -> V-PU chain, with K/V/index buffers, stream-style
Q handling, token interleaving for load balance, and a rotating pointer
to bypass rare data misses.  The baseline design (same resources, no
pruning / no SPRINT controller / no 2-D reduction) lives here too.
"""

from repro.accelerator.arithmetic import (
    FixedPointFormat,
    lut_exponential,
    saturating_mac,
)
from repro.accelerator.buffers import BufferStats, IndexBuffer, SRAMBuffer
from repro.accelerator.corelet import Corelet, CoreletStats, SoftmaxPartial
from repro.accelerator.engine import EngineStats, SprintEngine
from repro.accelerator.baseline import (
    BaselineTraffic,
    baseline_compute_cycles,
    baseline_head_traffic,
)
from repro.accelerator.interleave import (
    assign_tokens,
    imbalance_ratio,
    workload_imbalance,
)
from repro.accelerator.qkpu import QKProcessingUnit
from repro.accelerator.softmax_unit import SoftmaxUnit
from repro.accelerator.vpu import VProcessingUnit

__all__ = [
    "SprintEngine",
    "EngineStats",
    "FixedPointFormat",
    "saturating_mac",
    "lut_exponential",
    "SRAMBuffer",
    "IndexBuffer",
    "BufferStats",
    "QKProcessingUnit",
    "VProcessingUnit",
    "SoftmaxUnit",
    "Corelet",
    "CoreletStats",
    "SoftmaxPartial",
    "BaselineTraffic",
    "baseline_head_traffic",
    "baseline_compute_cycles",
    "assign_tokens",
    "imbalance_ratio",
    "workload_imbalance",
]
