"""QK processing unit: 1-D 64-way 8x8-bit MAC array (Table I).

Computes the 1 x d dot product between a query and one key per issue.
With d = 64 and a 64-tap array, one key's score finishes per cycle; the
MSB and LSB halves of the key are combined digitally before the adder
tree, recovering the full-precision 8-bit score SPRINT recomputes on
chip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QKPUStats:
    dot_products: int = 0
    macs: int = 0
    cycles: int = 0


class QKProcessingUnit:
    """One 64-tap 8-bit dot-product engine."""

    def __init__(self, taps: int = 64):
        if taps < 1:
            raise ValueError("taps must be positive")
        self.taps = taps
        self.stats = QKPUStats()

    def cycles_per_key(self, head_dim: int) -> int:
        """Issue cycles to cover a ``head_dim``-long dot product."""
        return -(-head_dim // self.taps)

    def dot(self, q_codes: np.ndarray, k_codes: np.ndarray) -> int:
        """Full-precision integer dot product of 8-bit code vectors."""
        q = np.asarray(q_codes, dtype=np.int64)
        k = np.asarray(k_codes, dtype=np.int64)
        if q.shape != k.shape or q.ndim != 1:
            raise ValueError("q and k must be equal-length vectors")
        self.stats.dot_products += 1
        self.stats.macs += q.size
        self.stats.cycles += self.cycles_per_key(q.size)
        return int(q @ k)

    def dot_batch(self, q_codes: np.ndarray, k_matrix: np.ndarray) -> np.ndarray:
        """Score one query against many keys (rows of ``k_matrix``)."""
        q = np.asarray(q_codes, dtype=np.int64)
        k = np.asarray(k_matrix, dtype=np.int64)
        if k.ndim != 2 or k.shape[1] != q.size:
            raise ValueError("k_matrix must be (n, d) with d matching q")
        n = k.shape[0]
        self.stats.dot_products += n
        self.stats.macs += n * q.size
        self.stats.cycles += n * self.cycles_per_key(q.size)
        return k @ q
