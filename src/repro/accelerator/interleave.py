"""Token-to-CORELET assignment and workload-imbalance metrics (Fig. 8).

SPRINT assigns *adjacent* key tokens to *different* CORELETs
("token interleaving": key ``4n+i`` goes to CORELET ``i`` with four
CORELETs).  Because unpruned indices cluster spatially, interleaving
spreads each query's surviving keys evenly, whereas a sequential block
mapping leaves some CORELETs idle.  The imbalance ratio divides the
maximum by the minimum unpruned-token count per CORELET, averaged over
queries (1.0 = ideal balance).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

Strategy = Literal["interleaved", "sequential"]


def assign_tokens(
    seq_len: int, num_corelets: int, strategy: Strategy = "interleaved"
) -> np.ndarray:
    """CORELET id for every token index.

    ``interleaved``: token ``i`` -> CORELET ``i mod N``.
    ``sequential``: tokens split into N contiguous blocks.
    """
    if num_corelets < 1:
        raise ValueError("num_corelets must be positive")
    tokens = np.arange(seq_len)
    if strategy == "interleaved":
        return tokens % num_corelets
    if strategy == "sequential":
        block = -(-seq_len // num_corelets)
        return np.minimum(tokens // block, num_corelets - 1)
    raise ValueError(f"unknown strategy {strategy!r}")


def per_query_corelet_counts(
    keep_mask: np.ndarray, num_corelets: int, strategy: Strategy
) -> np.ndarray:
    """``(num_queries, num_corelets)`` unpruned-token counts."""
    keep = np.asarray(keep_mask, dtype=bool)
    assignment = assign_tokens(keep.shape[1], num_corelets, strategy)
    counts = np.zeros((keep.shape[0], num_corelets), dtype=np.int64)
    for c in range(num_corelets):
        counts[:, c] = keep[:, assignment == c].sum(axis=1)
    return counts


def imbalance_ratio(counts: np.ndarray) -> float:
    """Mean over queries of max/min assigned tokens per CORELET.

    Queries with zero total work (fully padded) are skipped; a CORELET
    with zero tokens while others have work clamps the denominator to 1,
    mirroring the paper's treatment (a ratio of 1 means ideal balance).
    """
    counts = np.asarray(counts, dtype=np.float64)
    totals = counts.sum(axis=1)
    active = totals > 0
    if not np.any(active):
        return 1.0
    act = counts[active]
    ratios = act.max(axis=1) / np.maximum(act.min(axis=1), 1.0)
    return float(np.mean(ratios))


def workload_imbalance(
    keep_mask: np.ndarray, num_corelets: int, strategy: Strategy = "interleaved"
) -> float:
    """Figure 8 metric for one keep mask."""
    counts = per_query_corelet_counts(keep_mask, num_corelets, strategy)
    return imbalance_ratio(counts)


def worst_case_tokens(
    keep_mask: np.ndarray, num_corelets: int, strategy: Strategy = "interleaved"
) -> np.ndarray:
    """Per-query max tokens on any CORELET (the pipeline's critical path).

    The paper reports each layer's delay as the worst case across
    CORELETs (section VII, performance simulator).
    """
    counts = per_query_corelet_counts(keep_mask, num_corelets, strategy)
    return counts.max(axis=1)
