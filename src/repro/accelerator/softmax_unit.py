"""Softmax unit: 12-bit input, 8-bit output, two 64-byte LUTs, dividers.

Follows the arithmetic of section VI: streaming exponentials via the
two-LUT decomposition into an accumulation FIFO, then normalization
through two divider units to balance pipeline throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.arithmetic import (
    PROB_FORMAT,
    SCORE_FORMAT,
    lut_exponential,
)


@dataclass
class SoftmaxStats:
    rows: int = 0
    lut_accesses: int = 0
    multiplies: int = 0
    divides: int = 0


class SoftmaxUnit:
    """Fixed-point streaming softmax over one query's unpruned scores."""

    def __init__(self, dividers: int = 2):
        if dividers < 1:
            raise ValueError("dividers must be positive")
        self.dividers = dividers
        self.stats = SoftmaxStats()

    def normalize(self, scores: np.ndarray) -> np.ndarray:
        """Softmax over the (already pruned) score vector.

        Scores are quantized to the 12-bit softmax input format after
        subtracting the running maximum (keeping LUT inputs <= 0), the
        exponentials come from the two LUTs (two table reads and one
        multiply each), and the normalization divides each exponential
        by the accumulated sum.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError("scores must be a vector")
        if scores.size == 0:
            return scores.copy()
        shifted = scores - float(np.max(scores))
        codes = SCORE_FORMAT.quantize(shifted)
        exps = lut_exponential(codes)
        n = scores.size
        self.stats.rows += 1
        self.stats.lut_accesses += 2 * n
        self.stats.multiplies += n
        self.stats.divides += n
        total = float(np.sum(exps))
        probabilities = exps / total if total > 0 else np.full(n, 1.0 / n)
        # Quantize to the 8-bit probability output format.
        return PROB_FORMAT.to_real(PROB_FORMAT.quantize(probabilities))

    def exponentials(self, scores: np.ndarray) -> tuple:
        """Partial softmax: ``(row_max, exp(scores - row_max))``.

        The exponentials come from the same two-LUT path as
        :meth:`normalize`, but normalization is deferred: the caller
        (the shared accumulation FIFO) merges partials from several
        CORELETs with a streaming log-sum-exp before dividing once, so
        no divider or 8-bit probability rounding happens here.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError("scores must be a vector")
        if scores.size == 0:
            return 0.0, scores.copy()
        row_max = float(np.max(scores))
        codes = SCORE_FORMAT.quantize(scores - row_max)
        exps = lut_exponential(codes)
        n = scores.size
        self.stats.rows += 1
        self.stats.lut_accesses += 2 * n
        self.stats.multiplies += n
        return row_max, exps

    def cycles(self, n: int) -> int:
        """Pipeline cycles for one row of ``n`` unpruned scores."""
        if n <= 0:
            return 0
        exp_cycles = n  # one exponential per cycle (2 LUT reads, 1 mult)
        divide_cycles = -(-n // self.dividers)
        return exp_cycles + divide_cycles
