"""V processing unit: weighted sum of value vectors (section VI).

Multiplies each unpruned value vector by its softmax probability and
accumulates -- a 64-tap 8-bit MAC array identical in shape to the QK-PU,
with a 16-bit accumulator for the final attention values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class VPUStats:
    weighted_rows: int = 0
    macs: int = 0
    cycles: int = 0


class VProcessingUnit:
    """Probability-weighted accumulation over value vectors."""

    def __init__(self, taps: int = 64):
        if taps < 1:
            raise ValueError("taps must be positive")
        self.taps = taps
        self.stats = VPUStats()

    def cycles_per_value(self, head_dim: int) -> int:
        return -(-head_dim // self.taps)

    def weighted_sum(
        self, probabilities: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """``sum_i p_i * v_i`` over the unpruned set.

        ``probabilities`` is ``(n,)``; ``values`` is ``(n, d)``.
        """
        p = np.asarray(probabilities, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if v.ndim != 2 or p.shape != (v.shape[0],):
            raise ValueError("probabilities must match values rows")
        n, d = v.shape
        self.stats.weighted_rows += n
        self.stats.macs += n * d
        self.stats.cycles += n * self.cycles_per_value(d)
        return p @ v
