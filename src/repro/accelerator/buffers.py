"""On-chip SRAM buffers: K-buf, V-buf, streaming Q-buf, index buffers.

Table I sizes the total K/V capacity at 16/32/64 KB for S/M/L-SPRINT
(8/16/32 banks, 128-bit port per bank).  SPRINT deliberately avoids
double buffering (section VI, design choice): arrivals go to a small
temporary buffer and a short stall covers the write into K-buf/V-buf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass
class BufferStats:
    """Access counters for the energy model."""

    reads: int = 0
    writes: int = 0
    evictions: int = 0
    stall_cycles: int = 0


class SRAMBuffer:
    """Capacity-managed vector buffer with LRU replacement.

    Tracks which token indices are resident -- this is the "look-up-table
    recording which key and value vectors are currently present on chip"
    of section VI.
    """

    def __init__(
        self,
        capacity_bytes: int,
        vector_bytes: int = 64,
        banks: int = 8,
        port_bits: int = 128,
    ):
        if capacity_bytes < vector_bytes:
            raise ValueError("capacity must hold at least one vector")
        self.capacity_bytes = capacity_bytes
        self.vector_bytes = vector_bytes
        self.banks = banks
        self.port_bits = port_bits
        self.capacity_vectors = capacity_bytes // vector_bytes
        self.stats = BufferStats()
        self._last_use: Dict[int, int] = {}
        self._tick = 0

    # ------------------------------------------------------------------
    @property
    def resident_tokens(self) -> List[int]:
        return sorted(self._last_use)

    def occupancy(self) -> int:
        return len(self._last_use)

    def contains(self, token: int) -> bool:
        return token in self._last_use

    def accesses_per_vector(self) -> int:
        """Buffer accesses needed to move one vector through the ports."""
        return max(1, (self.vector_bytes * 8) // (self.port_bits * self.banks))

    def touch(self, token: int) -> bool:
        """Read a resident vector; returns False on miss."""
        self._tick += 1
        if token not in self._last_use:
            return False
        self._last_use[token] = self._tick
        self.stats.reads += self.accesses_per_vector()
        return True

    def insert(self, token: int) -> Optional[int]:
        """Insert a fetched vector, evicting LRU if full.

        Returns the evicted token index, or None.
        """
        self._tick += 1
        evicted = None
        if token not in self._last_use and self.occupancy() >= self.capacity_vectors:
            evicted = min(self._last_use, key=self._last_use.get)
            del self._last_use[evicted]
            self.stats.evictions += 1
        self._last_use[token] = self._tick
        self.stats.writes += self.accesses_per_vector()
        # No double buffering: the write into the banked array stalls the
        # pipeline for one port transaction (section VI design choice).
        self.stats.stall_cycles += 1
        return evicted

    def flush(self) -> None:
        self._last_use.clear()

    def resident_mask(self, seq_len: int) -> np.ndarray:
        mask = np.zeros(seq_len, dtype=bool)
        for token in self._last_use:
            if token < seq_len:
                mask[token] = True
        return mask


class IndexBuffer:
    """Unpruned-index FIFO with the rotating miss-bypass pointer.

    Holds the key/value indices the controller marked unpruned; the
    rotating pointer lets the CORELET skip an index whose data has not
    arrived and return to it later (section VI, handling data misses).
    """

    def __init__(self, capacity_entries: int = 512):
        self.capacity = capacity_entries
        self._entries: List[int] = []
        self._pointer = 0
        self.stats = BufferStats()

    def load(self, indices) -> None:
        indices = list(indices)
        if len(indices) > self.capacity:
            raise ValueError(
                f"{len(indices)} indices exceed index-buffer capacity "
                f"{self.capacity}"
            )
        self._entries = indices
        self._pointer = 0
        self.stats.writes += len(indices)

    def __len__(self) -> int:
        return len(self._entries)

    def next_available(self, available) -> Optional[int]:
        """Rotate to the next index whose data is available.

        ``available`` is a callable ``token -> bool``.  Returns None when
        every remaining entry is unavailable (a true stall).
        """
        if not self._entries:
            return None
        n = len(self._entries)
        for step in range(n):
            pos = (self._pointer + step) % n
            token = self._entries[pos]
            if token is not None and available(token):
                self._entries[pos] = None
                self._pointer = (pos + 1) % n
                self.stats.reads += 1
                return token
        return None

    def pending(self) -> List[int]:
        return [t for t in self._entries if t is not None]
