"""A CORELET: one complete self-attention pipeline (section VI).

Each CORELET owns a QK-PU, a Softmax unit, a V-PU, slices of the K/V
buffers, and its index buffers with the rotating miss-bypass pointer.
Queries stream through (Q-buf holds just the active query); keys
assigned to this CORELET by the interleaver are scored, normalized,
and reduced against their value vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.attention.quantization import symmetric_quantize
from repro.accelerator.buffers import IndexBuffer, SRAMBuffer
from repro.accelerator.qkpu import QKProcessingUnit
from repro.accelerator.softmax_unit import SoftmaxUnit
from repro.accelerator.vpu import VProcessingUnit


@dataclass
class CoreletStats:
    """Per-CORELET aggregate counters."""

    queries: int = 0
    keys_scored: int = 0
    values_reduced: int = 0
    compute_cycles: int = 0
    miss_bypasses: int = 0


@dataclass
class SoftmaxPartial:
    """One CORELET's un-normalized softmax contribution for a query.

    The shared accumulation FIFO merges these across CORELETs with a
    streaming log-sum-exp: rescale each partial by ``exp(max_score -
    global_max)``, add numerators and denominators, divide once.
    """

    #: Maximum raw score this CORELET saw (log-sum-exp pivot).
    max_score: float
    #: ``sum_i exp(s_i - max_score)`` over this CORELET's tokens.
    exp_sum: float
    #: ``sum_i exp(s_i - max_score) * v_i`` (un-normalized output).
    numerator: np.ndarray
    #: Tokens that contributed.
    count: int


class Corelet:
    """One independent attention pipeline.

    Parameters
    ----------
    corelet_id:
        Index within the accelerator.
    head_dim:
        Per-head embedding size d (64 across the paper's models).
    kv_capacity_bytes:
        This CORELET's share of the on-chip K buffer (V is symmetric).
    """

    def __init__(
        self,
        corelet_id: int,
        head_dim: int = 64,
        kv_capacity_bytes: int = 8 * 1024,
        index_capacity: int = 4096,
    ):
        self.corelet_id = corelet_id
        self.head_dim = head_dim
        self.qkpu = QKProcessingUnit(taps=64)
        self.softmax = SoftmaxUnit(dividers=2)
        self.vpu = VProcessingUnit(taps=64)
        self.k_buffer = SRAMBuffer(kv_capacity_bytes, vector_bytes=head_dim)
        self.v_buffer = SRAMBuffer(kv_capacity_bytes, vector_bytes=head_dim)
        self.key_index_buffer = IndexBuffer(index_capacity)
        self.value_index_buffer = IndexBuffer(index_capacity)
        self.stats = CoreletStats()
        self._key_data: Dict[int, np.ndarray] = {}
        self._value_data: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def load_vector(self, token: int, key: np.ndarray, value: np.ndarray) -> None:
        """Accept one fetched (key, value) pair from the controller."""
        evicted_k = self.k_buffer.insert(token)
        evicted_v = self.v_buffer.insert(token)
        if evicted_k is not None:
            self._key_data.pop(evicted_k, None)
        if evicted_v is not None:
            self._value_data.pop(evicted_v, None)
        self._key_data[token] = np.asarray(key, dtype=np.float64)
        self._value_data[token] = np.asarray(value, dtype=np.float64)

    def resident_tokens(self):
        return self.k_buffer.resident_tokens

    def _score_resident(
        self, query: np.ndarray, unpruned_tokens, scale: Optional[float]
    ):
        """Shared QK front half: index walk, buffer touch, 8-bit scoring.

        Tokens whose data is missing are bypassed via the rotating
        pointer and counted as misses; scoring uses whatever subset was
        available (the controller's prefetching makes true misses rare,
        section VI).  Returns ``(scores, values)`` or ``None`` when no
        token was resident.
        """
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.head_dim,):
            raise ValueError(f"query must be ({self.head_dim},)")
        if scale is None:
            scale = 1.0 / np.sqrt(self.head_dim)
        self.key_index_buffer.load(list(unpruned_tokens))
        ordered = []
        while True:
            token = self.key_index_buffer.next_available(
                lambda t: t in self._key_data
            )
            if token is None:
                break
            ordered.append(token)
        missing = len(self.key_index_buffer.pending())
        self.stats.miss_bypasses += missing
        self.stats.queries += 1
        if not ordered:
            return None
        keys = np.stack([self._key_data[t] for t in ordered])
        values = np.stack([self._value_data[t] for t in ordered])
        for t in ordered:
            self.k_buffer.touch(t)
            self.v_buffer.touch(t)
        # The digital datapath computes in 8-bit: quantize operands to
        # codes, integer dot products, rescale to real score units.
        q_quant = symmetric_quantize(query, bits=8)
        k_quant = symmetric_quantize(keys, bits=8)
        int_scores = np.array(
            [self.qkpu.dot(q_quant.codes, k_codes) for k_codes in k_quant.codes],
            dtype=np.float64,
        )
        scores = int_scores * (q_quant.scale * k_quant.scale) * scale
        n = len(ordered)
        self.stats.keys_scored += n
        self.stats.values_reduced += n
        self.stats.compute_cycles += (
            n * self.qkpu.cycles_per_key(self.head_dim)
            + self.softmax.cycles(n)
            + n * self.vpu.cycles_per_value(self.head_dim)
        )
        return scores, values

    def process_query(
        self,
        query: np.ndarray,
        unpruned_tokens,
        scale: Optional[float] = None,
    ) -> np.ndarray:
        """Score, normalize, and reduce one query against resident keys.

        Softmax normalizes over *this CORELET's* tokens only -- correct
        when one CORELET holds the whole unpruned set.  Multi-CORELET
        execution merges :meth:`process_query_partial` results instead.
        """
        scored = self._score_resident(query, unpruned_tokens, scale)
        if scored is None:
            return np.zeros(self.head_dim)
        scores, values = scored
        probabilities = self.softmax.normalize(scores)
        return self.vpu.weighted_sum(probabilities, values)

    def process_query_partial(
        self,
        query: np.ndarray,
        unpruned_tokens,
        scale: Optional[float] = None,
    ) -> SoftmaxPartial:
        """Un-normalized contribution for the cross-CORELET LSE merge.

        Exponentials use the same two-LUT path as :meth:`process_query`
        but skip the local division and 8-bit probability rounding; the
        numerator/denominator pair stays in the wide accumulation FIFO
        until the engine's global merge normalizes once.
        """
        scored = self._score_resident(query, unpruned_tokens, scale)
        if scored is None:
            return SoftmaxPartial(
                max_score=-np.inf, exp_sum=0.0,
                numerator=np.zeros(self.head_dim), count=0,
            )
        scores, values = scored
        max_score, exps = self.softmax.exponentials(scores)
        numerator = self.vpu.weighted_sum(exps, values)
        return SoftmaxPartial(
            max_score=max_score,
            exp_sum=float(np.sum(exps)),
            numerator=numerator,
            count=len(scores),
        )
