"""Fixed-point arithmetic helpers for the digital datapath (section VI).

SPRINT computes in 8-bit precision except Softmax (12-bit inputs) and
the final attention values (16-bit).  The exponent uses the two
look-up-table decomposition of prior work ([54, 90]):
``exp(x) = exp(hi) * exp(lo)`` where ``hi``/``lo`` are the high and low
fields of the fixed-point input, each indexing a 64-entry table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point with ``total_bits`` and ``frac_bits``."""

    total_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.total_bits < 2 or not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("invalid fixed-point format")

    @property
    def scale(self) -> float:
        return float(2 ** self.frac_bits)

    @property
    def max_code(self) -> int:
        return 2 ** (self.total_bits - 1) - 1

    @property
    def min_code(self) -> int:
        return -(2 ** (self.total_bits - 1))

    def quantize(self, x: np.ndarray) -> np.ndarray:
        codes = np.round(np.asarray(x, dtype=np.float64) * self.scale)
        return np.clip(codes, self.min_code, self.max_code).astype(np.int64)

    def to_real(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=np.float64) / self.scale


#: Datapath formats from section VI.
SCORE_FORMAT = FixedPointFormat(total_bits=12, frac_bits=6)  # softmax input
PROB_FORMAT = FixedPointFormat(total_bits=8, frac_bits=7)  # softmax output
ATTENTION_FORMAT = FixedPointFormat(total_bits=16, frac_bits=8)  # final values


def saturating_mac(
    accumulator: int, a: int, b: int, total_bits: int = 17
) -> int:
    """One saturating multiply-accumulate step (adder-tree element)."""
    hi = 2 ** (total_bits - 1) - 1
    lo = -(2 ** (total_bits - 1))
    return int(np.clip(accumulator + a * b, lo, hi))


def build_exponent_luts(
    fmt: FixedPointFormat = SCORE_FORMAT, entries: int = 64
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Build the two 64-entry exponent tables.

    The 12-bit score code splits into a high field (coarse) and a low
    field (fine); the tables hold ``exp`` of each field's real value.
    Returns ``(hi_table, lo_table, lo_bits)``.
    """
    lo_bits = int(np.log2(entries))
    hi_levels = entries
    lo_levels = entries
    # Scores entering softmax are <= 0 after max subtraction.
    hi_step = (2 ** lo_bits) / fmt.scale
    hi_table = np.exp(-np.arange(hi_levels) * hi_step)
    lo_table = np.exp(-np.arange(lo_levels) / fmt.scale)
    return hi_table, lo_table, lo_bits


_HI_TABLE, _LO_TABLE, _LO_BITS = build_exponent_luts()


def lut_exponential(score_codes: np.ndarray) -> np.ndarray:
    """``exp(x)`` for non-positive fixed-point scores via two LUTs.

    ``score_codes`` are codes in :data:`SCORE_FORMAT` of values <= 0
    (softmax subtracts the row maximum first).  Each lookup costs two
    table reads and one multiply, as the hardware does.
    """
    codes = np.asarray(score_codes, dtype=np.int64)
    magnitude = np.clip(-codes, 0, 2 ** (SCORE_FORMAT.total_bits - 1) - 1)
    hi_index = np.clip(magnitude >> _LO_BITS, 0, len(_HI_TABLE) - 1)
    lo_index = magnitude & ((1 << _LO_BITS) - 1)
    return _HI_TABLE[hi_index] * _LO_TABLE[lo_index]
