"""The baseline design: same resources, no pruning, no SPRINT controller.

Paper section VII (Baseline architecture): identical frequency, PE
counts, on-chip capacity, and bit widths, but every key/value vector is
fetched and every score computed.  With on-chip capacity for ``C``
vectors out of ``s``, the first ``C`` keys/values are pinned on chip and
the remaining ``s - C`` stream from main memory for *every* query --
the data-communication cost Figure 1 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BaselineTraffic:
    """Event counts for one attention head under the baseline design."""

    key_fetches: int
    value_fetches: int
    query_fetches: int
    qk_dot_products: int
    softmax_rows: int
    softmax_elements: int
    v_mac_rows: int
    initial_loads: int

    @property
    def total_vector_fetches(self) -> int:
        return self.key_fetches + self.value_fetches + self.query_fetches


def baseline_head_traffic(
    seq_len: int,
    capacity_vectors: int,
    valid_len: int | None = None,
    mask_aware: bool = False,
) -> BaselineTraffic:
    """Count baseline events for one head.

    Parameters
    ----------
    seq_len:
        Model sequence length ``s``.
    capacity_vectors:
        On-chip K-buffer capacity in vectors (V is symmetric).
    valid_len:
        Non-padded length; only used when ``mask_aware`` (the "Mask Only"
        configuration of Figure 10 adds two-dimensional sequence
        reduction to the baseline's fetch pattern).
    mask_aware:
        Apply the padded-region reduction.
    """
    if seq_len < 1:
        raise ValueError("seq_len must be positive")
    if capacity_vectors < 1:
        raise ValueError("capacity_vectors must be positive")
    effective = seq_len if not mask_aware else (valid_len or seq_len)
    effective = min(effective, seq_len)
    resident = min(capacity_vectors, effective)
    streamed_per_query = effective - resident
    queries = effective
    # Initial fill of the pinned region (keys + values) is charged to
    # the per-kind fetch counts, matching the system simulator.
    initial = 2 * resident
    key_fetches = queries * streamed_per_query + resident
    value_fetches = queries * streamed_per_query + resident
    query_fetches = queries  # each q streams in once
    qk = queries * effective
    return BaselineTraffic(
        key_fetches=key_fetches,
        value_fetches=value_fetches,
        query_fetches=query_fetches,
        qk_dot_products=qk,
        softmax_rows=queries,
        softmax_elements=qk,
        v_mac_rows=qk,
        initial_loads=initial,
    )


def baseline_compute_cycles(
    seq_len: int,
    head_dim: int,
    num_corelets: int,
    taps: int = 64,
    valid_len: int | None = None,
    mask_aware: bool = False,
    dividers: int = 2,
) -> int:
    """Cycle estimate for the baseline head on ``num_corelets`` pipelines.

    Every query scores every (effective) key; keys are interleaved across
    CORELETs so the per-query critical path is ``ceil(n / N)`` keys.
    """
    effective = seq_len if not mask_aware else (valid_len or seq_len)
    effective = min(effective, seq_len)
    per_key = -(-head_dim // taps)
    per_query_keys = -(-effective // num_corelets)
    softmax = per_query_keys + -(-per_query_keys // dividers)
    per_query = per_query_keys * per_key + softmax + per_query_keys * per_key
    return effective * per_query
