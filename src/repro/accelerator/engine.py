"""Functional co-simulation engine: the full SPRINT machine on tensors.

Ties together the three hardware layers on *real* query/key/value
matrices for one attention head:

1. :class:`repro.reram.thresholding.InMemoryThresholdingUnit` produces
   the per-query binary pruning vectors in (noisy) analog;
2. :class:`repro.memory.controller.SprintMemoryController` turns them
   into delta fetches via SLD + residency and schedules the commands;
3. a set of :class:`repro.accelerator.corelet.Corelet` pipelines
   recompute the surviving scores in 8-bit digital and reduce against
   the value vectors, with token interleaving.

This is the integration-grade path (slow, exact); the event-count
simulator in :mod:`repro.core.system` is the fast path for the paper's
sweeps.  Outputs of the two are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accelerator.corelet import Corelet
from repro.accelerator.interleave import assign_tokens
from repro.attention.pruning import calibrate_threshold
from repro.memory.controller import SprintMemoryController
from repro.reram.cell import MLCCellModel
from repro.reram.noise import OutputNoiseModel
from repro.reram.thresholding import InMemoryThresholdingUnit


@dataclass
class EngineStats:
    """Aggregates from one head's worth of execution."""

    queries: int = 0
    vectors_fetched: int = 0
    vectors_reused: int = 0
    keys_recomputed: int = 0
    memory_latency_cycles: int = 0
    compute_cycles: int = 0


class SprintEngine:
    """One attention head's full SPRINT execution on real tensors.

    Parameters
    ----------
    seq_len, head_dim:
        Problem dimensions.
    num_corelets:
        Parallel CORELET pipelines (token-interleaved key assignment).
    kv_capacity_vectors:
        On-chip K-buffer capacity in vectors (V symmetric).
    pruning_rate:
        Target rate used to calibrate the learned threshold from the
        stored keys' score distribution.
    ideal_analog:
        ``True`` disables analog noise/variation (for exactness tests).
    """

    def __init__(
        self,
        seq_len: int,
        head_dim: int = 64,
        num_corelets: int = 1,
        kv_capacity_vectors: int = 128,
        pruning_rate: float = 0.75,
        ideal_analog: bool = False,
        seed: int = 0,
    ):
        if num_corelets < 1:
            raise ValueError("num_corelets must be positive")
        self.seq_len = seq_len
        self.head_dim = head_dim
        self.num_corelets = num_corelets
        self.pruning_rate = pruning_rate
        self.ideal_analog = ideal_analog
        cell = MLCCellModel(variation_sigma=0.0 if ideal_analog else 0.02)
        noise = OutputNoiseModel(
            equivalent_bits=20.0 if ideal_analog else 5.0
        )
        self.thresholding = InMemoryThresholdingUnit(
            seq_len=seq_len, head_dim=head_dim,
            array_rows=min(64, head_dim), array_cols=128,
            cell=cell, noise=noise, seed=seed,
        )
        self.controller = SprintMemoryController(
            seq_len=seq_len, capacity_vectors=kv_capacity_vectors
        )
        per_corelet_bytes = max(
            head_dim, kv_capacity_vectors * head_dim // num_corelets
        )
        self.corelets = [
            Corelet(i, head_dim=head_dim,
                    kv_capacity_bytes=per_corelet_bytes,
                    index_capacity=max(seq_len, 512))
            for i in range(num_corelets)
        ]
        self._assignment = assign_tokens(seq_len, num_corelets, "interleaved")
        self.stats = EngineStats()
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def load(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        threshold: Optional[float] = None,
        calibration_queries: Optional[np.ndarray] = None,
    ) -> None:
        """Program keys into ReRAM and set the learned threshold.

        Without an explicit ``threshold``, one is calibrated from the
        score distribution of ``calibration_queries`` (or the keys
        against themselves, mimicking self-attention statistics).
        """
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape != (self.seq_len, self.head_dim):
            raise ValueError("keys shape mismatch")
        if values.shape != (self.seq_len, self.head_dim):
            raise ValueError("values shape mismatch")
        self._keys = keys
        self._values = values
        self.thresholding.store_keys(keys)
        if threshold is None:
            probes = (
                np.asarray(calibration_queries, dtype=np.float64)
                if calibration_queries is not None
                else keys
            )
            threshold = calibrate_threshold(
                probes @ keys.T, self.pruning_rate
            )
        self._threshold = float(threshold)

    # ------------------------------------------------------------------
    def process_query(self, query: np.ndarray) -> np.ndarray:
        """Run one query end to end; returns the attention output."""
        if self._keys is None or self._threshold is None:
            raise RuntimeError("call load() first")
        query = np.asarray(query, dtype=np.float64)
        pruning = self.thresholding.prune_query(
            query, self._threshold, ideal=self.ideal_analog
        )
        traffic = self.controller.process_query(
            pruning, self.stats.queries
        )
        for token in traffic.fetch_indices:
            corelet = self.corelets[self._assignment[token]]
            corelet.load_vector(
                int(token), self._keys[token], self._values[token]
            )
        unpruned = np.nonzero(pruning == 0)[0]
        scale = 1.0 / np.sqrt(self.head_dim)
        cycles_before = [c.stats.compute_cycles for c in self.corelets]
        partials = []
        for cid, corelet in enumerate(self.corelets):
            mine = [int(t) for t in unpruned if self._assignment[t] == cid]
            if not mine:
                continue
            partials.append(
                corelet.process_query_partial(query, mine, scale=scale)
            )
        # Exact streaming log-sum-exp merge of the per-CORELET partial
        # numerators/denominators -- the global normalization the
        # hardware's shared accumulation FIFO performs: rescale every
        # partial to the global score maximum, accumulate, divide once.
        partials = [p for p in partials if p.count > 0]
        if not partials:
            result = np.zeros(self.head_dim)
        else:
            global_max = max(p.max_score for p in partials)
            numerator = np.zeros(self.head_dim)
            denominator = 0.0
            for p in partials:
                rescale = np.exp(p.max_score - global_max)
                numerator += rescale * p.numerator
                denominator += rescale * p.exp_sum
            result = (
                numerator / denominator
                if denominator > 0
                else np.zeros(self.head_dim)
            )
        self.stats.queries += 1
        self.stats.vectors_fetched += len(traffic.fetch_indices)
        self.stats.vectors_reused += len(traffic.reuse_indices)
        self.stats.keys_recomputed += len(unpruned)
        self.stats.memory_latency_cycles += traffic.latency_cycles
        # Per-query latency: the slowest CORELET's *increment* this
        # query (the corelet counters are lifetime running totals).
        self.stats.compute_cycles += max(
            (
                c.stats.compute_cycles - before
                for c, before in zip(self.corelets, cycles_before)
            ),
            default=0,
        )
        return result

    def process_all(self, queries: np.ndarray) -> np.ndarray:
        """Stream every query through the engine; ``(s, d)`` outputs."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.stack([self.process_query(q) for q in queries])

    # ------------------------------------------------------------------
    @property
    def reuse_fraction(self) -> float:
        total = self.stats.vectors_fetched + self.stats.vectors_reused
        return self.stats.vectors_reused / total if total else 0.0
