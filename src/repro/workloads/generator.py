"""Pruning/padding mask generation calibrated to published model stats.

:func:`generate_workload` is the entry point used by the performance
experiments: given a model's sequence length, pruning rate, and padding
ratio it produces keep masks whose adjacent-query overlap is 2-3x the
random expectation (Figure 3), alongside matched *random* masks at the
same pruning rate for the locality comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.attention.pruning import runtime_prune
from repro.workloads.distributions import calibrated_score_matrix


@dataclass
class WorkloadSample:
    """One input's worth of masks for a single attention head.

    Attributes
    ----------
    keep_mask:
        Boolean ``(s, s)``; ``True`` where the key survives pruning for
        that query.  Padded rows/columns are already ``False``.
    valid_len:
        Number of non-padded tokens at the head of the sequence.
    seq_len:
        Model (maximum) sequence length ``s``.
    """

    keep_mask: np.ndarray
    valid_len: int
    seq_len: int
    causal: bool = False

    @property
    def pruning_rate(self) -> float:
        """Pruning rate measured over the *scoreable* region only.

        For causal models the scoreable region is the lower triangle of
        the valid area; for encoders it is the full valid square.
        """
        valid = self.keep_mask[: self.valid_len, : self.valid_len]
        if valid.size == 0:
            return 0.0
        if self.causal:
            region = np.tril(np.ones_like(valid, dtype=bool))
            return 1.0 - float(valid[region].mean())
        return 1.0 - float(np.mean(valid))

    def pruning_vectors(self) -> np.ndarray:
        """Hardware-convention binary vectors ('1' -> pruned)."""
        return (~self.keep_mask).astype(np.uint8)


@dataclass
class Workload:
    """A batch of :class:`WorkloadSample` plus generation metadata."""

    samples: List[WorkloadSample] = field(default_factory=list)
    seq_len: int = 0
    target_pruning_rate: float = 0.0
    padding_ratio: float = 0.0

    def __iter__(self):
        return iter(self.samples)

    def __len__(self) -> int:
        return len(self.samples)

    def mean_pruning_rate(self) -> float:
        rates = [s.pruning_rate for s in self.samples]
        return float(np.mean(rates)) if rates else 0.0


def structured_keep_mask(
    seq_len: int,
    pruning_rate: float,
    *,
    locality: float = 0.8,
    causal: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One ``(s, s)`` keep mask with calibrated rate and spatial locality.

    For ``causal`` models the upper triangle is masked before threshold
    calibration, so the pruning rate is met within the causal region.
    """
    rng = rng or np.random.default_rng(0)
    scores = calibrated_score_matrix(
        seq_len, pruning_rate, locality=locality, rng=rng
    )
    if causal:
        from repro.attention.functional import NEG_INFINITY

        upper = ~np.tril(np.ones((seq_len, seq_len), dtype=bool))
        scores = scores.copy()
        scores[upper] = NEG_INFINITY
    result = runtime_prune(scores, pruning_rate, keep_self=True)
    keep = result.keep_mask
    if causal:
        keep = keep & np.tril(np.ones((seq_len, seq_len), dtype=bool))
    return keep


def generate_random_masks(
    seq_len: int,
    pruning_rate: float,
    count: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Keep masks with the same rate but *no* structure (Fig. 3 baseline).

    Each query keeps an independent uniformly-random subset of keys, so
    adjacent-query overlap matches the Eq. 1 expectation.  The subsets
    come from one batched argpartition over random keys per mask:
    ranking i.i.d. uniforms and keeping each row's ``k`` smallest is a
    uniform draw without replacement, with no per-query Python loop.
    """
    rng = rng or np.random.default_rng(0)
    keep_per_query = max(1, round(seq_len * (1.0 - pruning_rate)))
    masks = []
    for _ in range(count):
        ranks = rng.random((seq_len, seq_len))
        kept = np.argpartition(ranks, keep_per_query - 1, axis=1)
        mask = np.zeros((seq_len, seq_len), dtype=bool)
        np.put_along_axis(mask, kept[:, :keep_per_query], True, axis=1)
        masks.append(mask)
    return masks


def generate_workload(
    seq_len: int,
    pruning_rate: float,
    *,
    padding_ratio: float = 0.0,
    num_samples: int = 4,
    locality: float = 0.8,
    causal: bool = False,
    seed: int = 0,
) -> Workload:
    """Generate a calibrated workload for one model / one attention head.

    Parameters
    ----------
    seq_len:
        Maximum sequence length of the model.
    pruning_rate:
        Target fraction of (query, key) pairs pruned in the valid region
        (paper section VII reports 64.4%-75.5% across models).
    padding_ratio:
        Mean fraction of the sequence that is padding (e.g. 0.46 for
        BERT-B on SQUAD).  Sample valid lengths are drawn around this mean.
    num_samples:
        Number of independent inputs to generate.
    locality:
        Spatial-locality knob passed to the score generator; the default
        reproduces the 2-3x over-random overlap of Figure 3.
    seed:
        Deterministic seed.
    """
    if not 0.0 <= padding_ratio < 1.0:
        raise ValueError("padding_ratio must be in [0, 1)")
    rng = np.random.default_rng(seed)
    samples: List[WorkloadSample] = []
    for _ in range(num_samples):
        if padding_ratio > 0.0:
            jitter = rng.uniform(-0.05, 0.05)
            ratio = float(np.clip(padding_ratio + jitter, 0.0, 0.95))
            valid_len = max(2, int(round(seq_len * (1.0 - ratio))))
        else:
            valid_len = seq_len
        keep_valid = structured_keep_mask(
            valid_len, pruning_rate, locality=locality, causal=causal, rng=rng
        )
        keep = np.zeros((seq_len, seq_len), dtype=bool)
        keep[:valid_len, :valid_len] = keep_valid
        samples.append(
            WorkloadSample(
                keep_mask=keep, valid_len=valid_len,
                seq_len=seq_len, causal=causal,
            )
        )
    return Workload(
        samples=samples,
        seq_len=seq_len,
        target_pruning_rate=pruning_rate,
        padding_ratio=padding_ratio,
    )
