"""Attention-score distributions with realistic heavy tails.

Real pre-softmax attention scores concentrate most mass near zero with a
small set of strongly-correlated pairs -- which is precisely why runtime
pruning works.  We model scores as a mixture: a dense Gaussian background
plus sparse lognormal "relevance spikes" placed with column structure
(some keys matter to many queries), which also produces the
adjacent-query spatial locality of Figure 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def heavy_tailed_scores(
    seq_len: int,
    *,
    spike_fraction: float = 0.15,
    spike_scale: float = 3.0,
    background_sigma: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw an ``(s, s)`` score matrix from the background+spike mixture."""
    rng = rng or np.random.default_rng(0)
    scores = rng.normal(0.0, background_sigma, size=(seq_len, seq_len))
    spikes = rng.random((seq_len, seq_len)) < spike_fraction
    scores[spikes] += rng.lognormal(0.0, 0.6, size=int(spikes.sum())) * (
        spike_scale / np.e
    )
    return scores


def calibrated_score_matrix(
    seq_len: int,
    pruning_rate: float,
    *,
    locality: float = 0.8,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Score matrix whose top ``1 - pruning_rate`` entries show locality.

    A shared per-key "importance profile" contributes ``locality`` of each
    entry's magnitude, so adjacent queries mostly agree on which keys are
    strong -- reproducing the vertical stripes of the paper's Figure 2.
    The remaining ``1 - locality`` is independent per (query, key) pair.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    key_profile = rng.normal(0.0, 1.0, size=seq_len)
    # Smooth the profile so importance varies gradually along the sequence,
    # as contiguous phrases do in language inputs.
    kernel = np.ones(5) / 5.0
    key_profile = np.convolve(key_profile, kernel, mode="same")
    key_profile = key_profile / max(float(np.std(key_profile)), 1e-12)
    shared = np.tile(key_profile, (seq_len, 1))
    # Per-query drift: each query sees a slightly shifted view of the
    # profile so overlap decays with query distance instead of being total.
    drift = rng.normal(0.0, 0.25, size=(seq_len, 1))
    independent = rng.normal(0.0, 1.0, size=(seq_len, seq_len))
    scores = locality * (shared + drift) + (1.0 - locality) * independent
    # Scale so that thresholding at the pruning-rate quantile leaves a
    # realistic dynamic range above the threshold.
    spread = np.quantile(scores, 0.999) - np.quantile(scores, 0.001)
    return scores * (6.0 / max(spread, 1e-12))
