"""Synthetic workloads calibrated to the paper's published statistics.

The performance-side experiments (Figs. 8, 10, 11, 12, 13) consume only
streams of *pruning masks* and *padding masks*.  The paper derives these
from fine-tuned models on SQUAD/GLUE/CIFAR/WikiText; we generate masks
with the same first-order statistics: per-model pruning rate, padding
fraction, and the 2-3x over-random adjacent-query overlap of Figure 3.
"""

from repro.workloads.generator import (
    WorkloadSample,
    generate_random_masks,
    generate_workload,
    structured_keep_mask,
)
from repro.workloads.distributions import (
    calibrated_score_matrix,
    heavy_tailed_scores,
)

__all__ = [
    "WorkloadSample",
    "generate_workload",
    "generate_random_masks",
    "structured_keep_mask",
    "calibrated_score_matrix",
    "heavy_tailed_scores",
]
