"""Deterministic sim-time request tracing, Chrome-trace exportable.

An opt-in :class:`TraceRecorder` collects request/batch lifecycle spans
from either serving path -- the per-request reference event loop
(:class:`~repro.serving.scheduler.ServingSimulator`) or the columnar
fast engine (:func:`~repro.serving.engine.simulate_table`).  Every
timestamp is **simulation** time (the deterministic clock both engines
already agree on bitwise), never wall clock, so two runs of the same
seed -- at any ``--jobs`` value, on either engine -- produce
byte-identical trace files.

Each sampled request contributes three complete ("X") spans on its own
track: ``queue`` (arrival -> batch sealed), ``dispatch`` (sealed ->
service start), ``compute`` (service start -> finish); each batch a
sampled request rode in contributes one device-track span.  Generative
requests add a fourth ``decode`` span (first token -> last token,
tagged with the generated-token count) so the decode phase reads as
its own region inside ``compute``.  The export
(:meth:`TraceRecorder.to_chrome_trace` / :meth:`~TraceRecorder.write`)
is the Chrome trace-event JSON format, directly loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Sampling (:class:`TraceConfig`) keeps tracing usable on 200k+-request
streams: record the stream *head* (the warm-up transient, usually the
interesting part) plus an optional request-id *stride* for an unbiased
sample of steady state.  Sampling keys on the request id -- a property
of the stream, not of scheduling -- so the sampled set is identical
across engines and runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

#: Microseconds per simulation second (Chrome trace ``ts``/``dur`` unit).
_US = 1e6


@dataclass(frozen=True)
class TraceConfig:
    """Which requests get spans.

    ``head`` records every request id below it; ``stride`` additionally
    records every ``stride``-th id (0 disables striding).  ``head=0,
    stride=1`` records everything.
    """

    head: int = 512
    stride: int = 0

    def __post_init__(self):
        if self.head < 0:
            raise ValueError("head must be non-negative")
        if self.stride < 0:
            raise ValueError("stride must be non-negative")

    def wants(self, request_id: int) -> bool:
        """Should this request's lifecycle be recorded?"""
        if request_id < self.head:
            return True
        return self.stride > 0 and request_id % self.stride == 0

    def mask(self, request_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`wants` over a request-id column."""
        ids = np.asarray(request_ids)
        mask = ids < self.head
        if self.stride > 0:
            mask |= ids % self.stride == 0
        return mask


#: Synthetic pids grouping the two track families in trace viewers.
_REQUEST_PID = 1
_DEVICE_PID = 2


class TraceRecorder:
    """Collects lifecycle spans; exports deterministic Chrome JSON.

    Both serving paths feed the same call -- :meth:`add_request`, once
    per completed request in record order -- and the recorder derives
    the device-track batch spans itself (a batch is fully determined by
    any member's record: two batches can never share a device and a
    start instant).  The export sorts spans by value, so the emission
    order never leaks into the file: identical simulations yield
    byte-identical traces no matter which engine produced them.
    """

    def __init__(self, config: TraceConfig = TraceConfig()):
        self.config = config
        self._request_events: List[Tuple] = []
        #: (request_id, model, first_token_s, finish_s, tokens)
        self._decode_events: List[Tuple] = []
        #: (device_id, start_s, finish_s) -> (model, batch_size)
        self._batches: Dict[Tuple[int, float, float], Tuple[str, int]] = {}
        #: (device_id, down_s, up_s) -- fleet-level, never sampled out.
        self._fault_events: List[Tuple[int, float, float]] = []
        #: (request_id, model, at_s, attempt)
        self._retry_events: List[Tuple[int, str, float, int]] = []

    # ------------------------------------------------------------------
    @property
    def sampled_requests(self) -> int:
        return len(self._request_events) // 3

    @property
    def sampled_batches(self) -> int:
        return len(self._batches)

    @property
    def sampled_decode_phases(self) -> int:
        return len(self._decode_events)

    @property
    def recorded_outages(self) -> int:
        return len(self._fault_events)

    @property
    def sampled_retries(self) -> int:
        return len(self._retry_events)

    def add_request(
        self,
        request_id: int,
        model: str,
        arrival_s: float,
        batched_s: float,
        service_start_s: float,
        finish_s: float,
        device_id: int,
        batch_size: int,
    ) -> None:
        """Record one completed request's lifecycle (if sampled)."""
        if not self.config.wants(request_id):
            return
        tid = int(request_id)
        self._request_events.append(
            ("queue", tid, arrival_s, batched_s - arrival_s, model)
        )
        self._request_events.append(
            ("dispatch", tid, batched_s, service_start_s - batched_s, model)
        )
        self._request_events.append(
            ("compute", tid, service_start_s, finish_s - service_start_s, model)
        )
        self._batches[(int(device_id), service_start_s, finish_s)] = (
            model,
            int(batch_size),
        )

    def add_decode_phase(
        self,
        request_id: int,
        model: str,
        first_token_s: float,
        finish_s: float,
        tokens: int,
    ) -> None:
        """Record one request's decode phase (if sampled and generative).

        ``tokens`` is the generated-token count beyond the first
        (``output_len - 1``); prefill-only requests (``tokens == 0``)
        have no decode phase and add no span.
        """
        if tokens <= 0 or not self.config.wants(request_id):
            return
        self._decode_events.append(
            (int(request_id), model, first_token_s, finish_s, int(tokens))
        )

    def add_device_fault(self, device_id: int, down_s: float, up_s: float) -> None:
        """Record one device outage window as a device-track span.

        Outages are fleet-level facts, not per-request ones, so they
        bypass request sampling: every injected outage that overlaps
        the run appears in the trace.
        """
        self._fault_events.append((int(device_id), float(down_s), float(up_s)))

    def add_retry(
        self, request_id: int, model: str, at_s: float, attempt: int
    ) -> None:
        """Record one retry re-admission (if the request is sampled).

        ``at_s`` is when the retried request re-enters its queue (fail
        time plus backoff); ``attempt`` is the dispatch attempt the
        re-admission begins (2 for the first retry).
        """
        if not self.config.wants(request_id):
            return
        self._retry_events.append((int(request_id), model, float(at_s), int(attempt)))

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The run as a Chrome trace-event JSON object (Perfetto-ready)."""
        events: List[dict] = []
        for name, tid, start_s, dur_s, model in self._request_events:
            events.append(
                {
                    "name": name,
                    "cat": "request",
                    "ph": "X",
                    "ts": start_s * _US,
                    "dur": dur_s * _US,
                    "pid": _REQUEST_PID,
                    "tid": tid,
                    "args": {"model": model},
                }
            )
        for tid, model, first_token_s, finish_s, tokens in self._decode_events:
            events.append(
                {
                    "name": "decode",
                    "cat": "request",
                    "ph": "X",
                    "ts": first_token_s * _US,
                    "dur": (finish_s - first_token_s) * _US,
                    "pid": _REQUEST_PID,
                    "tid": tid,
                    "args": {"model": model, "tokens": tokens},
                }
            )
        for (device_id, start_s, finish_s), (model, size) in self._batches.items():
            events.append(
                {
                    "name": f"batch {model}",
                    "cat": "batch",
                    "ph": "X",
                    "ts": start_s * _US,
                    "dur": (finish_s - start_s) * _US,
                    "pid": _DEVICE_PID,
                    "tid": device_id,
                    "args": {"model": model, "size": size},
                }
            )
        for device_id, down_s, up_s in self._fault_events:
            events.append(
                {
                    "name": "outage",
                    "cat": "fault",
                    "ph": "X",
                    "ts": down_s * _US,
                    "dur": (up_s - down_s) * _US,
                    "pid": _DEVICE_PID,
                    "tid": device_id,
                    "args": {"down_s": down_s, "up_s": up_s},
                }
            )
        for tid, model, at_s, attempt in self._retry_events:
            # Attempt in the name keeps sort keys unique even when two
            # retries of one request land on the same instant.
            events.append(
                {
                    "name": f"retry #{attempt}",
                    "cat": "fault",
                    "ph": "X",
                    "ts": at_s * _US,
                    "dur": 0.0,
                    "pid": _REQUEST_PID,
                    "tid": tid,
                    "args": {"model": model, "attempt": attempt},
                }
            )
        # Value-sort so insertion order (an engine implementation
        # detail) never reaches the file.
        events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"], e["dur"]))
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
            for pid, label in (
                (_REQUEST_PID, "requests"),
                (_DEVICE_PID, "devices"),
            )
        ]
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulation",
                "sampled_requests": self.sampled_requests,
                "sampled_batches": self.sampled_batches,
                "sampled_decode_phases": self.sampled_decode_phases,
                "recorded_outages": self.recorded_outages,
                "sampled_retries": self.sampled_retries,
            },
            "traceEvents": metadata + events,
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Serialize deterministically to ``path``; returns the path.

        Sorted keys, fixed separators, and ``repr``-exact floats: two
        identical simulations write byte-identical files.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_chrome_trace(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        return path
