"""Runtime telemetry: structured events and the run-manifest JSON.

One :class:`RunTelemetry` instance is active per ``sprint-experiments``
invocation (installed by the runner when ``--metrics-out`` or
``--trace-out`` is passed); the runtime layers --
:class:`~repro.runtime.pool.ExperimentPool`,
:class:`~repro.runtime.cache.ResultCache`, and the experiment modules
-- report into it through the module-level helpers :func:`count`,
:func:`event`, and :func:`warn`, all of which are no-ops when nothing
is active, so the default (observability off) costs one ``None`` check
and changes no behaviour.

The manifest (:meth:`RunTelemetry.manifest`) is schema-versioned JSON
recording what the run *did*: unit-cache hits/misses (and corrupt
entries), units executed vs replayed, shard sizes, worker count, the
code version, per-experiment outcomes, and the structured event stream
that replaces ad-hoc stderr prints.  Everything wall-clock-dependent
-- per-experiment seconds and the generation timestamp -- lives under
the single top-level ``"wall"`` key, so two runs of the same
configuration produce byte-identical manifests modulo that one field.

Worker processes fork with the parent's active telemetry and may act on
its *configuration* (e.g. writing trace files into ``trace_dir``), but
counters they bump die with the worker: manifest counts are
parent-side observations.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.streaming import Counter, Gauge

#: Bump when the manifest JSON layout changes incompatibly.
MANIFEST_SCHEMA = 1

#: Counters pre-seeded to zero so the manifest always carries the core
#: cache/unit accounting keys, even on runs that never touch a cache.
CORE_COUNTERS = (
    "artifact_cache.hits",
    "artifact_cache.misses",
    "unit_cache.hits",
    "unit_cache.misses",
    "unit_cache.corrupt_entries",
    "units.planned",
    "units.replayed",
    "units.executed",
    "experiments.failed",
)


class RunTelemetry:
    """Counters, gauges, and structured events for one runner invocation."""

    def __init__(
        self,
        jobs: int = 1,
        fast: bool = False,
        trace_dir: Optional[Union[str, Path]] = None,
        trace_head: int = 512,
        trace_stride: int = 0,
    ):
        self.jobs = int(jobs)
        self.fast = bool(fast)
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.trace_head = int(trace_head)
        self.trace_stride = int(trace_stride)
        self.counters: Dict[str, Counter] = {
            name: Counter(name) for name in CORE_COUNTERS
        }
        self.gauges: Dict[str, Gauge] = {}
        self.events: List[Dict[str, Any]] = []
        #: Deterministic per-experiment outcome facts.
        self.experiments: Dict[str, Dict[str, Any]] = {}
        #: Wall-clock-dependent facts, quarantined under one manifest key.
        self.wall_seconds: Dict[str, float] = {}
        self._started = time.time()

    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.inc(n)

    def gauge(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured event (fields must be JSON-safe)."""
        self.events.append({"kind": kind, **fields})

    def record_experiment(
        self,
        name: str,
        seconds: float,
        cached: bool = False,
        error: Optional[str] = None,
    ) -> None:
        self.experiments[name] = {
            "ok": error is None,
            "cached": bool(cached),
            "error": error,
        }
        self.wall_seconds[name] = round(float(seconds), 4)
        if error is not None:
            self.count("experiments.failed")

    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """The schema-versioned run manifest as JSON-safe data."""
        from repro.runtime.cache import code_version

        return {
            "schema": MANIFEST_SCHEMA,
            "kind": "sprint-run-manifest",
            "code_version": code_version(),
            "workers": self.jobs,
            "fast": self.fast,
            "trace_dir": self.trace_dir,
            "counters": {
                name: self.counters[name].value for name in sorted(self.counters)
            },
            "gauges": {name: self.gauges[name].value for name in sorted(self.gauges)},
            "events": self.events,
            "experiments": self.experiments,
            "wall": {
                "generated_unix": int(time.time()),
                "total_s": round(time.time() - self._started, 4),
                "experiment_s": self.wall_seconds,
            },
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest JSON to ``path``; returns the path."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest(), indent=2) + "\n")
        return path


# ----------------------------------------------------------------------
# the process-active instance and its no-op-when-off helpers
# ----------------------------------------------------------------------
_ACTIVE: Optional[RunTelemetry] = None


def set_telemetry(telemetry: Optional[RunTelemetry]) -> None:
    """Install (or clear, with ``None``) the process-active telemetry."""
    global _ACTIVE
    _ACTIVE = telemetry


def get_telemetry() -> Optional[RunTelemetry]:
    return _ACTIVE


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active telemetry; no-op when inactive."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)


def event(kind: str, **fields: Any) -> None:
    """Record a structured event; no-op when inactive."""
    if _ACTIVE is not None:
        _ACTIVE.event(kind, **fields)


def warn(message: str, **fields: Any) -> None:
    """A warning that lands in the run manifest *and* on stderr.

    The stderr echo is unconditional -- operators watching a live run
    keep seeing it -- while the structured copy only exists when a
    telemetry instance is active.
    """
    print(f"warning: {message}", file=sys.stderr)
    if _ACTIVE is not None:
        _ACTIVE.event("warning", message=message, **fields)
