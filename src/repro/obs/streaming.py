"""Streaming metrics: counters, gauges, and a tail-latency sketch.

The ROADMAP's fleet-scale runs (10^8 requests) cannot materialize a
float64 column per request just to answer "what was p99?".  This module
provides the memory-O(1) alternative:

* :class:`Counter` / :class:`Gauge` -- the trivial scalar primitives
  the runtime telemetry layer (:mod:`repro.obs.telemetry`) aggregates
  into the run manifest;
* :class:`StreamingHistogram` -- a log-spaced fixed-bucket sketch of a
  positive-valued population (latencies, queue waits).  ``O(buckets)``
  memory no matter how many samples stream in, one vectorized
  ``add_many`` per result column, and **mergeable**: sketches built
  independently on shards or devices combine by bucket-count addition
  into exactly the sketch of the concatenated population.

Accuracy contract
-----------------
Buckets are log-spaced: bucket ``i`` covers ``[min_value * r**i,
min_value * r**(i+1))`` with ratio ``r = 10**(1/buckets_per_decade)``.
:meth:`StreamingHistogram.quantile` locates the bucket holding the
exact order statistic ``x_k`` (``k = ceil(q/100 * (n-1))``, i.e.
``np.percentile(samples, q, method="higher")``) and returns the
bucket's geometric midpoint, so the estimate is within a factor
``sqrt(r)`` of ``x_k`` -- a relative error of at most
:attr:`~StreamingHistogram.rel_error_bound` ``= 10**(1/(2 *
buckets_per_decade)) - 1`` (~0.9% at the default 128 buckets/decade).
``mean``, ``max``, ``min``, and ``count`` are tracked exactly.  Values
below ``min_value`` (including exact zeros, e.g. a request that never
waited) land in an underflow bucket whose quantile answer is the exact
tracked minimum, an absolute error below ``min_value``; values at or
above ``max_value`` land in an overflow bucket answered by the exact
tracked maximum.
"""

from __future__ import annotations

from typing import Union

import numpy as np


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> int:
        """Add ``n`` (must be non-negative); returns the new value."""
        if n < 0:
            raise ValueError("counters only increase")
        self.value += int(n)
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins measurement (worker count, shard size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class StreamingHistogram:
    """Log-bucketed sketch of a positive population; O(buckets) memory.

    Parameters
    ----------
    min_value:
        Lower edge of the first regular bucket.  Samples below it
        (zeros included) are counted in the underflow slot.
    max_value:
        Upper edge of the last regular bucket.  Samples at or above it
        are counted in the overflow slot.
    buckets_per_decade:
        Resolution knob: the relative quantile error bound is
        ``10**(1/(2 * buckets_per_decade)) - 1``.

    The defaults span 100 ns to 10 000 s -- every latency this
    simulator can produce -- in 1280 buckets (~10 KB).
    """

    def __init__(
        self,
        min_value: float = 1e-7,
        max_value: float = 1e4,
        buckets_per_decade: int = 128,
    ):
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if max_value <= min_value:
            raise ValueError("max_value must exceed min_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be positive")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = np.log10(self.max_value / self.min_value)
        self.num_buckets = int(np.ceil(decades * self.buckets_per_decade))
        # Slot 0 = underflow, slots 1..num_buckets = regular buckets,
        # slot num_buckets + 1 = overflow.
        self._counts = np.zeros(self.num_buckets + 2, dtype=np.int64)
        self._sum = 0.0
        self._max = float("-inf")
        self._min = float("inf")

    # ------------------------------------------------------------------
    @property
    def config(self) -> tuple:
        """The bucket layout; sketches merge only when these match."""
        return (self.min_value, self.max_value, self.buckets_per_decade)

    @property
    def rel_error_bound(self) -> float:
        """Documented relative quantile error vs the exact order
        statistic at the same rank (``np.percentile`` with
        ``method="higher"``); see the module docstring."""
        return float(10.0 ** (1.0 / (2.0 * self.buckets_per_decade)) - 1.0)

    @property
    def count(self) -> int:
        return int(self._counts.sum())

    @property
    def mean(self) -> float:
        n = self.count
        return self._sum / n if n else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def bucket_counts(self) -> np.ndarray:
        """A copy of the raw slot counts (underflow, buckets, overflow)."""
        return self._counts.copy()

    # ------------------------------------------------------------------
    def _indices(self, values: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            raw = np.floor(np.log10(values / self.min_value) * self.buckets_per_decade)
        # Clip before the int cast: log10(0) is -inf, which must land
        # in the underflow slot, not overflow the integer conversion.
        raw = np.clip(raw, -1.0, float(self.num_buckets))
        idx = raw.astype(np.int64) + 1
        # The clip above handles magnitude; the exact edge still needs
        # the rule "v >= max_value overflows" independent of rounding.
        idx[values >= self.max_value] = self.num_buckets + 1
        return idx

    def add(self, value: float) -> None:
        """Record one sample."""
        self.add_many(np.array([value], dtype=np.float64))

    def add_many(self, values: Union[np.ndarray, list]) -> None:
        """Record a whole column of samples in one vectorized pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if not np.all(values >= 0.0) or not np.all(np.isfinite(values)):
            raise ValueError("samples must be non-negative finite values")
        self._counts += np.bincount(self._indices(values), minlength=self._counts.size)
        self._sum += float(values.sum())
        self._max = max(self._max, float(values.max()))
        self._min = min(self._min, float(values.min()))

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold another shard's sketch into this one (in place).

        Addition of bucket counts: the merged sketch is exactly the
        sketch of the concatenated sample streams, so quantiles keep
        the same error bound and ``mean``/``max``/``min``/``count``
        stay exact.  Returns ``self`` for chaining.
        """
        if other.config != self.config:
            raise ValueError(
                f"cannot merge sketches with different bucket layouts: "
                f"{self.config} vs {other.config}"
            )
        self._counts += other._counts
        self._sum += other._sum
        self._max = max(self._max, other._max)
        self._min = min(self._min, other._min)
        return self

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Within ``rel_error_bound`` (relative) of the exact order
        statistic at rank ``ceil(q/100 * (count-1))``; NaN when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        n = self.count
        if n == 0:
            return float("nan")
        rank = int(np.ceil(q / 100.0 * (n - 1)))
        cum = np.cumsum(self._counts)
        slot = int(np.searchsorted(cum, rank + 1, side="left"))
        if slot == 0:
            return self._min
        if slot == self.num_buckets + 1:
            return self._max
        # Geometric midpoint of the bucket, clamped into the observed
        # range (clamping only ever moves the estimate toward the true
        # order statistic).
        mid = self.min_value * 10.0 ** ((slot - 0.5) / self.buckets_per_decade)
        return float(min(max(mid, self._min), self._max))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHistogram(count={self.count}, mean={self.mean!r}, "
            f"max={self._max!r}, buckets={self.num_buckets})"
        )
