"""Observability for the SPRINT serving/runtime stack: three pillars.

* :mod:`repro.obs.streaming` -- memory-O(1) streaming metrics:
  :class:`Counter`, :class:`Gauge`, and the mergeable log-bucketed
  :class:`StreamingHistogram` tail-latency sketch that lets
  :func:`repro.serving.metrics.summarize` report p50/p95/p99 without
  materializing per-request latency columns (``exact=False``).
* :mod:`repro.obs.trace` -- deterministic sim-time request tracing:
  the opt-in :class:`TraceRecorder` both serving engines emit
  request/batch lifecycle spans into, exported as Chrome trace-event
  JSON (Perfetto-viewable), with head/stride sampling
  (:class:`TraceConfig`) for 200k+-request streams.
* :mod:`repro.obs.telemetry` -- runtime telemetry: the per-run
  :class:`RunTelemetry` collecting cache/unit counters and structured
  events into the schema-versioned run manifest that
  ``sprint-experiments --metrics-out`` writes.

Everything here is opt-in: with no recorder passed and no telemetry
active (the default), the simulators and the runtime execute exactly
the same code paths as before -- the bitwise-equality and golden
contracts are unchanged.
"""

from repro.obs.streaming import Counter, Gauge, StreamingHistogram
from repro.obs.telemetry import (
    MANIFEST_SCHEMA,
    RunTelemetry,
    get_telemetry,
    set_telemetry,
)
from repro.obs.trace import TraceConfig, TraceRecorder

__all__ = [
    "MANIFEST_SCHEMA",
    "Counter",
    "Gauge",
    "RunTelemetry",
    "StreamingHistogram",
    "TraceConfig",
    "TraceRecorder",
    "get_telemetry",
    "set_telemetry",
]
