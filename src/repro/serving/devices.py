"""Device model: a SPRINT chip serving batches, with a cycle-cost cache.

A :class:`ServiceCostModel` turns (model, input length) into per-sample
cycles and energy by rolling the existing per-head cycle model
(:class:`repro.core.system.SprintSystem`) up to whole-model granularity
exactly like :class:`repro.core.multihead.MultiHeadSimulator` does.
Input lengths are bucketed so a 100k-request simulation touches the
(slow, exact) cycle model only a handful of times per model.

A :class:`SprintDevice` is one chip: it executes one batch at a time,
serializing the batch's samples through the accelerator and charging a
fixed per-batch setup (threshold/projection reprogramming, pipeline
drain) that dynamic batching amortizes.

:class:`SprintDevice` objects serve the per-request reference loop;
the columnar fast path prices whole batch columns at once through
:meth:`ServiceCostModel.cost_arrays` (array indexing into the same
primed bucket cache) and models devices as k free-times, so both paths
charge bitwise-identical cycles and energy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.multihead import MultiHeadSimulator
from repro.core.system import ExecutionMode
from repro.models.zoo import ModelSpec
from repro.serving.requests import Batch


#: Per-batch setup cost (threshold/projection reprogramming, pipeline
#: fill/drain) in cycles.  Shared by :class:`SprintDevice` and the fast
#: engine's :func:`~repro.serving.engine.simulate_table` so the two
#: paths cannot drift apart on this physical-model parameter.
DEFAULT_SETUP_CYCLES = 4096


@dataclass(frozen=True)
class SampleCost:
    """Whole-model cost of one sample at one (bucketed) input length."""

    cycles: float
    energy_pj: float


class ServiceCostModel:
    """Memoized (model, length, mode) -> per-sample cycles/energy.

    Parameters
    ----------
    config:
        The chip configuration (Table I column).
    mode:
        Execution mode every request in this simulation runs under.
    len_bucket:
        Input lengths round up to multiples of this before hitting the
        cycle model; smaller buckets are more precise but slower.
    seed:
        Seed for the calibrated masks behind each cache entry (the cost
        cache is deterministic under it).
    """

    def __init__(
        self,
        config: SprintConfig,
        mode: ExecutionMode,
        len_bucket: int = 32,
        seed: int = 0,
        **system_kwargs,
    ):
        if len_bucket < 1:
            raise ValueError("len_bucket must be positive")
        self.config = config
        self.mode = mode
        self.len_bucket = len_bucket
        self.seed = seed
        self._simulator = MultiHeadSimulator(config, **system_kwargs)
        self._cache: Dict[Tuple[str, int], SampleCost] = {}
        self._decode_cache: Dict[Tuple[str, int], SampleCost] = {}

    # ------------------------------------------------------------------
    def bucket_len(self, spec: ModelSpec, valid_len: int) -> int:
        """Round a request length up to its simulation bucket."""
        if valid_len < 1:
            raise ValueError("valid_len must be positive")
        rounded = -(-valid_len // self.len_bucket) * self.len_bucket
        return min(spec.seq_len, max(2, rounded))

    def sample_cost(self, spec: ModelSpec, valid_len: int) -> SampleCost:
        """Whole-model cycles/energy for one sample of ``valid_len``."""
        length = self.bucket_len(spec, valid_len)
        key = (spec.name, length)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        # The batch runs with padding stripped to the bucket length: the
        # serving layer, unlike the figure workloads, knows each
        # request's true length.
        sized = dataclasses.replace(spec, seq_len=length, padding_ratio=0.0)
        report = self._simulator.simulate(
            sized, self.mode, num_samples=1, seed=self.seed
        )
        cost = SampleCost(
            cycles=float(report.total_cycles),
            energy_pj=float(report.total_energy_pj),
        )
        self._cache[key] = cost
        return cost

    def decode_cost(self, spec: ModelSpec, context_len: int) -> SampleCost:
        """Per-token decode cost at a (bucketed) attention context.

        One decode step emits a single token attending over
        ``context_len`` prior tokens.  The cycle model prices whole
        forward passes, so a step is charged the bucketed full-pass
        cost amortized over the bucket length -- the per-token share of
        a pass at that context.  The quadratic attention term makes
        this share grow with context (and lets SPRINT's pruning flatten
        it), which is exactly the decode-phase interaction the
        generative experiment measures.  Derived from the same memoized
        :meth:`sample_cost` buckets, so both serving engines see
        bitwise-identical decode prices.
        """
        length = self.bucket_len(spec, context_len)
        key = (spec.name, length)
        cached = self._decode_cache.get(key)
        if cached is None:
            per_pass = self.sample_cost(spec, length)
            cached = SampleCost(
                cycles=per_pass.cycles / length,
                energy_pj=per_pass.energy_pj / length,
            )
            self._decode_cache[key] = cached
        return cached

    def bucket_lens(self, spec: ModelSpec, valid_lens) -> np.ndarray:
        """Vectorized :meth:`bucket_len` over a column of lengths."""
        lens = np.asarray(valid_lens, dtype=np.int64)
        if lens.size and lens.min() < 1:
            raise ValueError("valid_len must be positive")
        rounded = -(-lens // self.len_bucket) * self.len_bucket
        return np.minimum(spec.seq_len, np.maximum(2, rounded))

    def cost_arrays(self, spec: ModelSpec, valid_lens) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized (cycles, energy) columns for a column of lengths.

        Buckets the lengths, faults any cold bucket into the memoized
        cache (one exact cycle-model pass each), then answers the whole
        column by array indexing -- the fast engine's per-batch cost
        lookup never touches Python-level memo dicts per row.
        """
        buckets = self.bucket_lens(spec, valid_lens)
        uniq, inverse = np.unique(buckets, return_inverse=True)
        costs = [self.sample_cost(spec, int(length)) for length in uniq]
        cycles = np.array([c.cycles for c in costs], dtype=np.float64)
        energy = np.array([c.energy_pj for c in costs], dtype=np.float64)
        return cycles[inverse], energy[inverse]

    def decode_cost_arrays(
        self, spec: ModelSpec, context_lens
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized decode (cycles, energy) columns for contexts.

        The decode twin of :meth:`cost_arrays`: buckets the contexts,
        faults cold buckets through the memoized :meth:`decode_cost`
        (per-token share of a full pass at the bucketed context), then
        answers the whole column by array indexing.  Values are bitwise
        equal to the scalar :meth:`decode_cost` at every context, so
        the macro-stepping decode engine can precompute per-queue cost
        vectors over the full context range and stay on the reference
        loop's exact prices.
        """
        buckets = self.bucket_lens(spec, context_lens)
        uniq, inverse = np.unique(buckets, return_inverse=True)
        costs = [self.decode_cost(spec, int(length)) for length in uniq]
        cycles = np.array([c.cycles for c in costs], dtype=np.float64)
        energy = np.array([c.energy_pj for c in costs], dtype=np.float64)
        return cycles[inverse], energy[inverse]

    def prime(self, spec: ModelSpec, valid_lens: Iterable[int]) -> int:
        """Fill the cost cache for every bucket a request stream touches.

        Serving simulations know each request's length up front, so the
        (slow, exact) cycle model can be run for all distinct buckets
        before the event loop starts instead of faulting in mid-run.
        Each bucket's workload flows through the batched
        :meth:`~repro.core.system.SprintSystem.simulate_workload` core.
        Returns the number of distinct buckets now cached.
        """
        lens = np.fromiter(valid_lens, dtype=np.int64) if not isinstance(
            valid_lens, np.ndarray
        ) else valid_lens
        buckets = np.unique(self.bucket_lens(spec, lens))
        for length in buckets:
            self.sample_cost(spec, int(length))
        return int(buckets.size)

    @property
    def cache_entries(self) -> int:
        return len(self._cache)


@lru_cache(maxsize=32)
def shared_cost_model(
    config: SprintConfig,
    mode: ExecutionMode,
    len_bucket: int = 32,
    seed: int = 0,
) -> ServiceCostModel:
    """Process-level memoized cost model, one per (config, mode, bucket,
    seed).

    The serving sweep's work units group by mode precisely so that a
    worker shard warms a single cost model: the shard's first point
    pays the (slow, exact) cycle-model passes for its length buckets
    and every later point reuses them.  Sharing is sound because a
    :class:`ServiceCostModel` is deterministic under its key — its
    memoized costs are pure values, identical no matter which process
    or sweep point computed them first.  The memo is LRU-bounded so a
    long-lived process sweeping many seeds or configs cannot
    accumulate simulators without limit (a worker shard only ever
    touches one entry).
    """
    return ServiceCostModel(config, mode, len_bucket=len_bucket, seed=seed)


class SprintDevice:
    """One accelerator chip executing sealed batches serially.

    Samples within a batch serialize through the CORELET pipelines (a
    CORELET is a per-head pipeline, so there is no cross-sample
    parallelism to exploit); every sample pays the cost of the batch's
    longest member (dynamic batching pads to the maximum length).  The
    per-batch ``setup_cycles`` covers reprogramming learned thresholds
    and projection weights plus pipeline fill/drain.
    """

    def __init__(
        self,
        device_id: int,
        cost_model: ServiceCostModel,
        setup_cycles: int = DEFAULT_SETUP_CYCLES,
    ):
        if setup_cycles < 0:
            raise ValueError("setup_cycles must be non-negative")
        self.device_id = device_id
        self.cost_model = cost_model
        self.setup_cycles = setup_cycles
        self.busy_until_s: float = 0.0
        self.busy_s: float = 0.0
        self.batches_done: int = 0
        self.samples_done: int = 0
        self.energy_pj: float = 0.0

    # ------------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        return self.cost_model.config.frequency_ghz * 1e9

    def is_idle(self, now_s: float) -> bool:
        return now_s >= self.busy_until_s

    def _batch_cost(self, batch: Batch) -> Tuple[float, SampleCost]:
        """(service seconds, per-sample cost) -- one cost lookup."""
        per_sample = self.cost_model.sample_cost(batch.spec, batch.max_valid_len)
        cycles = self.setup_cycles + per_sample.cycles * batch.size
        return cycles / self.frequency_hz, per_sample

    def service_time_s(self, batch: Batch) -> float:
        """Wall-clock seconds this device needs for ``batch``."""
        return self._batch_cost(batch)[0]

    def _step_cost(
        self, spec: ModelSpec, context_len: int, size: int, decode: bool
    ) -> Tuple[float, SampleCost]:
        """(service seconds, per-sample cost) of one token-step batch."""
        if decode:
            per_sample = self.cost_model.decode_cost(spec, context_len)
        else:
            per_sample = self.cost_model.sample_cost(spec, context_len)
        cycles = self.setup_cycles + per_sample.cycles * size
        return cycles / self.frequency_hz, per_sample

    def step_service_time_s(
        self, spec: ModelSpec, context_len: int, size: int, decode: bool
    ) -> float:
        """Wall-clock seconds one token-step batch would occupy."""
        return self._step_cost(spec, context_len, size, decode)[0]

    def lose_batch(self, batch: Batch, now_s: float, fail_s: float) -> float:
        """The device dies at ``fail_s`` mid-``batch``: occupy it until
        the failure and return the energy wasted on the partial work.

        The lost work counts toward neither ``batches_done`` nor
        ``energy_pj`` -- it delivered nothing -- but the device was
        genuinely busy until the failure instant.
        """
        service, per_sample = self._batch_cost(batch)
        self.busy_until_s = fail_s
        self.busy_s += fail_s - now_s
        return per_sample.energy_pj * batch.size * ((fail_s - now_s) / service)

    def lose_step_batch(
        self,
        spec: ModelSpec,
        context_len: int,
        size: int,
        decode: bool,
        now_s: float,
        fail_s: float,
    ) -> float:
        """Token-step twin of :meth:`lose_batch`."""
        service, per_sample = self._step_cost(spec, context_len, size, decode)
        self.busy_until_s = fail_s
        self.busy_s += fail_s - now_s
        return per_sample.energy_pj * size * ((fail_s - now_s) / service)

    def start_batch(self, batch: Batch, now_s: float) -> float:
        """Begin executing ``batch`` at ``now_s``; returns finish time."""
        if not self.is_idle(now_s):
            raise RuntimeError(
                f"device {self.device_id} busy until {self.busy_until_s}"
            )
        service, per_sample = self._batch_cost(batch)
        self.busy_until_s = now_s + service
        self.busy_s += service
        self.batches_done += 1
        self.samples_done += batch.size
        self.energy_pj += per_sample.energy_pj * batch.size
        return self.busy_until_s

    def start_step_batch(
        self,
        spec: ModelSpec,
        context_len: int,
        size: int,
        decode: bool,
        now_s: float,
    ) -> float:
        """Begin one continuous-batching token step; returns finish time.

        The generative scheduler's unit of device work: ``size``
        same-model requests advancing one token together, padded to the
        batch's longest context.  A *prefill* step prices like a legacy
        batch (full pass at ``context_len``); a *decode* step charges
        the per-token :meth:`ServiceCostModel.decode_cost` share.  Both
        pay the per-batch ``setup_cycles``.
        """
        if not self.is_idle(now_s):
            raise RuntimeError(
                f"device {self.device_id} busy until {self.busy_until_s}"
            )
        service, per_sample = self._step_cost(spec, context_len, size, decode)
        self.busy_until_s = now_s + service
        self.busy_s += service
        self.batches_done += 1
        self.samples_done += size
        self.energy_pj += per_sample.energy_pj * size
        return self.busy_until_s
