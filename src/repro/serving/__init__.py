"""Serving-traffic simulation on top of the SPRINT cycle model.

Turns the per-sample, per-head simulator into a production-serving
study: request streams (Poisson / bursty / trace replay) flow through a
dynamic batcher onto one or more simulated SPRINT chips, producing
throughput, device utilization, and p50/p95/p99 latency with SLA
accounting.

Typical use::

    from repro.core.configs import S_SPRINT
    from repro.core.system import ExecutionMode
    from repro.serving import (
        DynamicBatcher, PoissonProcess, ServiceCostModel,
        ServingSimulator, SprintDevice, generate_requests, summarize,
    )

    process = PoissonProcess(rate_rps=200.0)
    requests = generate_requests(process, "BERT-B", count=1000, seed=0)
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    sim = ServingSimulator(
        [SprintDevice(0, cost)], DynamicBatcher(max_batch_size=8)
    )
    report = summarize(
        sim.run(requests), config=S_SPRINT.name, mode="sprint",
        pattern=process.name, offered_rps=process.mean_rate_rps,
        sla_s=0.1,
    )
    print(report.describe())
"""

from repro.serving.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    PoissonProcess,
    TraceProcess,
    generate_requests,
    sample_valid_len,
)
from repro.serving.batching import BatcherStats, DynamicBatcher
from repro.serving.devices import (
    SampleCost,
    ServiceCostModel,
    SprintDevice,
    shared_cost_model,
)
from repro.serving.events import Event, EventKind, EventQueue
from repro.serving.metrics import LatencyStats, ServingReport, summarize
from repro.serving.requests import Batch, Request, RequestRecord
from repro.serving.scheduler import ServingResult, ServingSimulator

__all__ = [
    "ArrivalProcess",
    "Batch",
    "BatcherStats",
    "BurstyProcess",
    "DynamicBatcher",
    "Event",
    "EventKind",
    "EventQueue",
    "LatencyStats",
    "PoissonProcess",
    "Request",
    "RequestRecord",
    "SampleCost",
    "ServiceCostModel",
    "ServingReport",
    "ServingResult",
    "ServingSimulator",
    "SprintDevice",
    "TraceProcess",
    "generate_requests",
    "sample_valid_len",
    "shared_cost_model",
    "summarize",
]
