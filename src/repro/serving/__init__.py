"""Serving-traffic simulation on top of the SPRINT cycle model.

Turns the per-sample, per-head simulator into a production-serving
study: request streams (Poisson / bursty / trace replay) flow through a
dynamic batcher onto one or more simulated SPRINT chips, producing
throughput, device utilization, and p50/p95/p99 latency with SLA
accounting.

Two execution paths share those semantics:

* the **columnar fast path** (:func:`simulate_table` over a
  :class:`RequestTable`) -- batch-granular simulation over
  struct-of-arrays columns, the default for production-size streams::

      table = generate_request_table(process, "BERT-B", count=200_000)
      cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
      cost.prime(table.specs[0], table.valid_len)
      report = summarize(simulate_table(table, cost), ...)

* the **per-request reference loop** (:class:`ServingSimulator` over
  ``list[Request]``) -- the ``slow_exact`` event-driven definition of
  the semantics; the fast path is pinned exactly equal to it.

A third, **out-of-core** path scales the fast path to 10^7--10^8
requests: :class:`RequestStream` yields chunks whose concatenation is
bitwise identical to the whole-table generator, :func:`simulate_stream`
drives them carrying only the O(devices + open batches) frontier, and
:func:`summarize_stream` folds completed chunks into O(1)-memory
sketches -- same exact aggregates, sketch-bounded percentiles::

    stream = RequestStream(process, "BERT-B", count=100_000_000)
    report = summarize_stream(stream, cost, ...)

**Generative (decode) traffic** extends all three paths to
autoregressive serving under continuous batching: give the stream an
``output_len`` column (``mean_output_tokens=...`` on the generators)
and requests re-enter the scheduler after every decode step with a
grown attention context, device slots freeing per token.  The same
entry points route automatically -- :func:`simulate_table` /
:func:`simulate_stream` dispatch to the event-driven columnar decode
engine (:mod:`repro.serving.decode`), pinned bitwise-equal to the
:class:`GenerativeServingSimulator` reference loop -- and
:func:`summarize` / :func:`summarize_stream` add TTFT / TBT /
tokens-per-second to the report.  With every ``output_len == 1`` the
generative loop degenerates exactly to the prefill-only semantics.

**Fault injection** (:mod:`repro.serving.faults`) threads a
deterministic, seedable :class:`FaultSchedule` of per-device outages
through every path above: a device dying mid-batch loses the in-flight
batch, affected requests re-enter their queue under a
:class:`RetryPolicy` (bounded attempts, exponential backoff) or drop
once their per-request deadline passes, and :func:`summarize` /
:func:`summarize_stream` report availability, goodput, retries, and
wasted energy.  ``simulate_table`` / ``simulate_stream`` take
``faults=`` / ``retry=`` and stay bitwise-equal to the fault-threaded
reference loops; with no schedule the fast paths are untouched.

Both paths accept an optional :class:`repro.obs.trace.TraceRecorder`
for sim-time request tracing, and :func:`summarize` can fold latency
columns through the :mod:`repro.obs.streaming` tail-latency sketch
(``exact=False``) instead of materialized percentile sorts; both are
opt-in and leave results bitwise unchanged.

Typical (reference-path) use::

    from repro.core.configs import S_SPRINT
    from repro.core.system import ExecutionMode
    from repro.serving import (
        DynamicBatcher, PoissonProcess, ServiceCostModel,
        ServingSimulator, SprintDevice, generate_requests, summarize,
    )

    process = PoissonProcess(rate_rps=200.0)
    requests = generate_requests(process, "BERT-B", count=1000, seed=0)
    cost = ServiceCostModel(S_SPRINT, ExecutionMode.SPRINT)
    sim = ServingSimulator(
        [SprintDevice(0, cost)], DynamicBatcher(max_batch_size=8)
    )
    report = summarize(
        sim.run(requests), config=S_SPRINT.name, mode="sprint",
        pattern=process.name, offered_rps=process.mean_rate_rps,
        sla_s=0.1,
    )
    print(report.describe())
"""

from repro.serving.arrivals import (
    ArrivalCursor,
    ArrivalProcess,
    BurstyProcess,
    PoissonProcess,
    TraceProcess,
    generate_request_table,
    generate_requests,
    sample_output_lens,
    sample_valid_len,
)
from repro.serving.batching import (
    BatcherStats,
    ContinuousBatcher,
    DynamicBatcher,
    StepBatch,
    StepItem,
)
from repro.serving.decode import (
    DecodeColumnarResult,
    DecodeCompletedChunk,
    DecodeStreamedResult,
    simulate_decode_stream,
    simulate_decode_table,
)
from repro.serving.devices import (
    SampleCost,
    ServiceCostModel,
    SprintDevice,
    shared_cost_model,
)
from repro.serving.engine import (
    ColumnarServingResult,
    CompletedChunk,
    StreamedServingResult,
    simulate_stream,
    simulate_table,
)
from repro.serving.events import Event, EventKind, EventQueue
from repro.serving.faults import (
    DeviceFaultTrace,
    DroppedRecord,
    FaultColumnarResult,
    FaultCompletedChunk,
    FaultSchedule,
    FaultStreamedResult,
    RetryPolicy,
    simulate_faulty_stream,
    simulate_faulty_table,
)
from repro.serving.metrics import (
    LatencyStats,
    ServingReport,
    summarize,
    summarize_stream,
)
from repro.serving.requests import Batch, Request, RequestRecord, RequestTable
from repro.serving.scheduler import (
    DecodeRecord,
    GenerativeResult,
    GenerativeServingSimulator,
    ServingResult,
    ServingSimulator,
)
from repro.serving.stream import DEFAULT_CHUNK_SIZE, RequestStream

__all__ = [
    "ArrivalCursor",
    "ArrivalProcess",
    "Batch",
    "BatcherStats",
    "BurstyProcess",
    "ColumnarServingResult",
    "CompletedChunk",
    "ContinuousBatcher",
    "DEFAULT_CHUNK_SIZE",
    "DecodeColumnarResult",
    "DecodeCompletedChunk",
    "DecodeRecord",
    "DecodeStreamedResult",
    "DeviceFaultTrace",
    "DroppedRecord",
    "DynamicBatcher",
    "Event",
    "EventKind",
    "EventQueue",
    "FaultColumnarResult",
    "FaultCompletedChunk",
    "FaultSchedule",
    "FaultStreamedResult",
    "GenerativeResult",
    "GenerativeServingSimulator",
    "LatencyStats",
    "PoissonProcess",
    "Request",
    "RequestRecord",
    "RequestStream",
    "RequestTable",
    "RetryPolicy",
    "SampleCost",
    "ServiceCostModel",
    "ServingReport",
    "ServingResult",
    "ServingSimulator",
    "SprintDevice",
    "StepBatch",
    "StepItem",
    "StreamedServingResult",
    "TraceProcess",
    "generate_request_table",
    "generate_requests",
    "sample_output_lens",
    "sample_valid_len",
    "shared_cost_model",
    "simulate_decode_stream",
    "simulate_decode_table",
    "simulate_faulty_stream",
    "simulate_faulty_table",
    "simulate_stream",
    "simulate_table",
    "summarize",
    "summarize_stream",
]
