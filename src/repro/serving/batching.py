"""Dynamic batching: group compatible requests under size/wait knobs.

The batcher keeps one FIFO queue per model.  A batch seals when it
reaches ``max_batch_size``, or when its oldest member has waited
``max_wait_s`` (the reference scheduler drives the timeout via
events).  Requests for different models never share a batch -- they
need different weights and learned thresholds programmed into the
accelerator.

Note the seal rules depend only on the arrival stream, never on device
state: batch formation is fully determined before any batch runs.  The
columnar fast path (:mod:`repro.serving.engine`) exploits exactly that
-- it computes every sealed batch in one forward pass over the sorted
arrival columns instead of driving this incremental batcher, and is
pinned to produce the same batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serving.requests import Batch, Request


@dataclass
class BatcherStats:
    """Aggregate batcher behaviour over one simulation."""

    requests_in: int = 0
    batches_out: int = 0
    size_triggered: int = 0
    timeout_triggered: int = 0

    @property
    def mean_batch_size(self) -> float:
        if self.batches_out == 0:
            return 0.0
        return self.requests_in / self.batches_out


class DynamicBatcher:
    """Size- and latency-bounded request grouping.

    Parameters
    ----------
    max_batch_size:
        Seal a batch as soon as it holds this many requests.
    max_wait_s:
        Upper bound on the time any request spends waiting for
        batch-mates.  ``0`` degenerates to one-request batches.
    """

    def __init__(self, max_batch_size: int = 8, max_wait_s: float = 2e-3):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.stats = BatcherStats()
        self._queues: Dict[str, List[Request]] = {}
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    def _seal(self, model: str, now_s: float, by_size: bool) -> Batch:
        requests = self._queues.pop(model)
        batch = Batch(
            batch_id=self._next_batch_id, requests=requests, sealed_s=now_s
        )
        self._next_batch_id += 1
        self.stats.batches_out += 1
        if by_size:
            self.stats.size_triggered += 1
        else:
            self.stats.timeout_triggered += 1
        return batch

    # ------------------------------------------------------------------
    def add(self, request: Request, now_s: float) -> Optional[Batch]:
        """Admit one request; returns a sealed batch on a size trigger."""
        self.stats.requests_in += 1
        queue = self._queues.setdefault(request.spec.name, [])
        queue.append(request)
        if len(queue) >= self.max_batch_size:
            return self._seal(request.spec.name, now_s, by_size=True)
        return None

    def deadline_for(self, request: Request) -> float:
        """Latest instant this request may wait for batch-mates."""
        return request.arrival_s + self.max_wait_s

    def flush_due(self, now_s: float) -> List[Batch]:
        """Seal every queue whose oldest member's wait bound expired."""
        due = [
            model
            for model, queue in self._queues.items()
            if now_s >= queue[0].arrival_s + self.max_wait_s
        ]
        return [self._seal(m, now_s, by_size=False) for m in due]

    def flush_all(self, now_s: float) -> List[Batch]:
        """Seal everything (end of stream)."""
        return [
            self._seal(m, now_s, by_size=False)
            for m in list(self._queues)
        ]

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())
