"""Dynamic batching: group compatible requests under size/wait knobs.

The batcher keeps one FIFO queue per model.  A batch seals when it
reaches ``max_batch_size``, or when its oldest member has waited
``max_wait_s`` (the reference scheduler drives the timeout via
events).  Requests for different models never share a batch -- they
need different weights and learned thresholds programmed into the
accelerator.

Note the seal rules depend only on the arrival stream, never on device
state: batch formation is fully determined before any batch runs.  The
columnar fast path (:mod:`repro.serving.engine`) exploits exactly that
-- it computes every sealed batch in one forward pass over the sorted
arrival columns instead of driving this incremental batcher, and is
pinned to produce the same batches.

Generative traffic batches at *token-step* granularity instead:
:class:`ContinuousBatcher` queues :class:`StepItem` work (one prefill
or decode step of one request) under the same size/wait seal rules,
keyed by (model, phase).  Decode steps re-enter the queue the moment
their previous step finishes, so device slots free per token rather
than per request -- continuous batching.  Unlike the prefill-only
batcher, step readiness *does* depend on device timing, so generative
batch formation cannot be precomputed; the fast decode engine
(:mod:`repro.serving.decode`) replays these seal rules
event-driven over columnar state instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.models.zoo import ModelSpec
from repro.serving.requests import Batch, Request


@dataclass
class BatcherStats:
    """Aggregate batcher behaviour over one simulation."""

    requests_in: int = 0
    batches_out: int = 0
    size_triggered: int = 0
    timeout_triggered: int = 0

    @property
    def mean_batch_size(self) -> float:
        if self.batches_out == 0:
            return 0.0
        return self.requests_in / self.batches_out


class DynamicBatcher:
    """Size- and latency-bounded request grouping.

    Parameters
    ----------
    max_batch_size:
        Seal a batch as soon as it holds this many requests.
    max_wait_s:
        Upper bound on the time any request spends waiting for
        batch-mates.  ``0`` degenerates to one-request batches.
    """

    def __init__(self, max_batch_size: int = 8, max_wait_s: float = 2e-3):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.stats = BatcherStats()
        self._queues: Dict[str, List[Request]] = {}
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    def _seal(self, model: str, now_s: float, by_size: bool) -> Batch:
        requests = self._queues.pop(model)
        batch = Batch(batch_id=self._next_batch_id, requests=requests, sealed_s=now_s)
        self._next_batch_id += 1
        self.stats.batches_out += 1
        if by_size:
            self.stats.size_triggered += 1
        else:
            self.stats.timeout_triggered += 1
        return batch

    # ------------------------------------------------------------------
    def add(self, request: Request, now_s: float) -> Optional[Batch]:
        """Admit one request; returns a sealed batch on a size trigger."""
        self.stats.requests_in += 1
        queue = self._queues.setdefault(request.spec.name, [])
        queue.append(request)
        if len(queue) >= self.max_batch_size:
            return self._seal(request.spec.name, now_s, by_size=True)
        return None

    def deadline_for(self, request: Request) -> float:
        """Latest instant this request may wait for batch-mates."""
        return request.arrival_s + self.max_wait_s

    def flush_due(self, now_s: float) -> List[Batch]:
        """Seal every queue whose oldest member's wait bound expired."""
        due = [
            model
            for model, queue in self._queues.items()
            if now_s >= queue[0].arrival_s + self.max_wait_s
        ]
        return [self._seal(m, now_s, by_size=False) for m in due]

    def flush_all(self, now_s: float) -> List[Batch]:
        """Seal everything (end of stream)."""
        return [self._seal(m, now_s, by_size=False) for m in list(self._queues)]

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())


@dataclass
class StepItem:
    """One token step of one request, awaiting continuous batching.

    ``step == 0`` is the prefill pass: the whole prompt
    (``request.valid_len`` tokens) runs and the first output token
    emerges at its finish.  ``step == k >= 1`` is the k-th decode
    step: one new token attending over a context grown to
    ``valid_len + k``.
    """

    request: Request
    step: int
    #: When this step became schedulable: the request's arrival for
    #: prefill, the previous step's finish for decode.
    ready_s: float

    @property
    def decode(self) -> bool:
        return self.step > 0

    @property
    def context_len(self) -> int:
        """Tokens this step attends over (pads to the batch max)."""
        return self.request.valid_len + self.step

    @property
    def is_last(self) -> bool:
        return self.step == self.request.output_len - 1


@dataclass
class StepBatch:
    """A group of same-model, same-phase steps dispatched as one unit."""

    batch_id: int
    items: List[StepItem]
    sealed_s: float = 0.0

    def __post_init__(self):
        if not self.items:
            raise ValueError("a step batch needs at least one item")
        keys = {(i.request.spec.name, i.decode) for i in self.items}
        if len(keys) > 1:
            raise ValueError(f"mixed step batch: {sorted(keys)}")

    @property
    def spec(self) -> ModelSpec:
        return self.items[0].request.spec

    @property
    def decode(self) -> bool:
        return self.items[0].decode

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def max_context_len(self) -> int:
        """Every member pads to the longest context in the batch."""
        return max(i.context_len for i in self.items)


class ContinuousBatcher:
    """Size- and latency-bounded grouping of token steps.

    The generative twin of :class:`DynamicBatcher`: identical seal
    knobs and FIFO rules, but the queued unit is a :class:`StepItem`
    and queues key on (model name, phase) -- prefill and decode steps
    never share a batch (a prefill pass and a single-token step are
    different kernels), while both phases interleave freely on the
    devices.  ``stats.requests_in`` counts *steps*, so
    ``stats.mean_batch_size`` is mean step-batch occupancy.
    """

    def __init__(self, max_batch_size: int = 8, max_wait_s: float = 2e-3):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.stats = BatcherStats()
        self._queues: Dict[Tuple[str, bool], List[StepItem]] = {}
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    def _seal(self, key: Tuple[str, bool], now_s: float, by_size: bool) -> StepBatch:
        items = self._queues.pop(key)
        batch = StepBatch(batch_id=self._next_batch_id, items=items, sealed_s=now_s)
        self._next_batch_id += 1
        self.stats.batches_out += 1
        if by_size:
            self.stats.size_triggered += 1
        else:
            self.stats.timeout_triggered += 1
        return batch

    # ------------------------------------------------------------------
    def add(self, item: StepItem, now_s: float) -> Optional[StepBatch]:
        """Admit one step; returns a sealed batch on a size trigger."""
        self.stats.requests_in += 1
        key = (item.request.spec.name, item.decode)
        queue = self._queues.setdefault(key, [])
        queue.append(item)
        if len(queue) >= self.max_batch_size:
            return self._seal(key, now_s, by_size=True)
        return None

    def deadline_for(self, item: StepItem) -> float:
        """Latest instant this step may wait for batch-mates."""
        return item.ready_s + self.max_wait_s

    def flush_due(self, now_s: float) -> List[StepBatch]:
        """Seal every queue whose oldest step's wait bound expired."""
        due = [
            key
            for key, queue in self._queues.items()
            if now_s >= queue[0].ready_s + self.max_wait_s
        ]
        return [self._seal(k, now_s, by_size=False) for k in due]

    def flush_all(self, now_s: float) -> List[StepBatch]:
        """Seal everything (no further steps can ever join)."""
        return [self._seal(k, now_s, by_size=False) for k in list(self._queues)]

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())
