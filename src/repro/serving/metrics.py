"""Serving metrics: throughput, utilization, tail latency, SLA checks.

Mirrors the reporting style of :mod:`repro.core.results`: a dataclass
per aggregate with derived properties and a ``describe()`` that prints
the table rows the serving experiments lead with.

:func:`summarize` folds either representation of a run -- the
reference loop's object-based :class:`~repro.serving.scheduler.
ServingResult` or the fast engine's :class:`~repro.serving.engine.
ColumnarServingResult` -- into the same :class:`ServingReport`.  The
columnar path computes latency/wait/violation statistics directly from
the result's columns (no per-request objects); both paths evaluate the
same floating-point expressions over the same values in the same
order, so an equivalent run summarizes to an identical report.

``summarize(..., exact=False)`` swaps the percentile computation onto
:class:`~repro.obs.streaming.StreamingHistogram` sketches -- the
memory-O(1) path for fleet-scale streams, where per-request latency
columns must never be sorted (or, eventually, materialized) whole.
The sketch's p50/p95/p99 carry its documented relative error bound
(:attr:`~repro.obs.streaming.StreamingHistogram.rel_error_bound`,
~0.9% at the default resolution) vs the exact order statistics;
``mean``/``max``/counts stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

import numpy as np

from repro.obs.streaming import StreamingHistogram
from repro.serving.decode import DecodeColumnarResult
from repro.serving.devices import DEFAULT_SETUP_CYCLES, ServiceCostModel
from repro.serving.engine import ColumnarServingResult, simulate_stream
from repro.serving.faults import DROP_REASON_NAMES, FaultColumnarResult
from repro.serving.requests import RequestTable
from repro.serving.scheduler import GenerativeResult, ServingResult


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of one latency population (seconds)."""

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples) -> "LatencyStats":
        # Arrays pass through unboxed (the columnar path hands in whole
        # float64 columns); lists/generators still materialize.
        if not isinstance(samples, np.ndarray):
            samples = list(samples)
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            # A run where zero requests complete (load far beyond SLA
            # capacity) must produce a degenerate report, not crash the
            # capacity sweep probing for the overload point.
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return cls(
            mean_s=float(arr.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(arr.max()),
        )

    @classmethod
    def from_sketch(cls, sketch: StreamingHistogram) -> "LatencyStats":
        """Percentiles from a streaming sketch (O(buckets) memory).

        p50/p95/p99 carry the sketch's documented relative error bound
        (:attr:`~repro.obs.streaming.StreamingHistogram.
        rel_error_bound`); ``mean`` and ``max`` are tracked exactly.
        An empty sketch yields the same NaN-filled degenerate stats as
        an empty sample population.
        """
        return cls(
            mean_s=sketch.mean,
            p50_s=sketch.quantile(50.0),
            p95_s=sketch.quantile(95.0),
            p99_s=sketch.quantile(99.0),
            max_s=sketch.max,
        )


@dataclass
class ServingReport:
    """One (config, mode, arrival pattern, load) serving outcome."""

    config: str
    mode: str
    pattern: str
    offered_rps: float
    requests: int
    duration_s: float
    latency: LatencyStats
    queue_wait: LatencyStats
    throughput_rps: float
    #: Mean busy fraction across devices over the run's span.
    utilization: float
    mean_batch_size: float
    energy_uj: float
    sla_s: Optional[float] = None
    sla_violations: int = 0
    #: Generative runs only (``None``/0 for prefill-only traffic, so
    #: legacy report equality is untouched): time-to-first-token and
    #: time-between-tokens populations, and total tokens generated.
    ttft: Optional[LatencyStats] = None
    tbt: Optional[LatencyStats] = None
    total_tokens: int = 0
    #: Fault-injection accounting.  The defaults describe a fault-free
    #: run, so legacy report construction and equality are untouched.
    faulted: bool = False
    dropped_requests: int = 0
    #: Dropped counts keyed by reason ('retries', 'deadline',
    #: 'stranded'); empty on fault-free runs.
    dropped_by_reason: dict = field(default_factory=dict)
    #: Retry dispatches the fault layer scheduled.
    retries: int = 0
    #: Completed requests that needed at least one retry.
    retried_completed: int = 0
    #: Batches lost to mid-execution device failures.
    failed_batches: int = 0
    #: Energy spent on lost (never-delivered) batch work.
    wasted_energy_uj: float = 0.0
    #: Mean fleet uptime fraction over the run span (1.0 without
    #: faults).
    availability: float = 1.0
    #: Latency population of completed requests that needed >= 2
    #: attempts (``None`` on fault-free runs).
    retried_latency: Optional[LatencyStats] = None

    @property
    def generative(self) -> bool:
        return self.ttft is not None

    @property
    def offered_requests(self) -> int:
        """Requests that entered the system: completed plus dropped."""
        return self.requests + self.dropped_requests

    @property
    def goodput_rps(self) -> float:
        """Completed-request rate -- the degraded-fleet reading of
        throughput (drops never count; compare against
        ``offered_rps`` for the loss to failures)."""
        return self.throughput_rps

    @property
    def drop_rate(self) -> float:
        offered = self.offered_requests
        return self.dropped_requests / offered if offered else 0.0

    @property
    def tokens_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_tokens / self.duration_s

    @property
    def energy_uj_per_token(self) -> float:
        if self.total_tokens == 0:
            return 0.0
        return self.energy_uj / self.total_tokens

    @property
    def sla_violation_rate(self) -> float:
        return self.sla_violations / self.requests if self.requests else 0.0

    def meets_sla(self) -> bool:
        """p99 within the SLA (the criterion the sweeps rank loads by)."""
        if self.sla_s is None:
            return True
        return self.latency.p99_s <= self.sla_s

    def describe(self) -> str:
        lines = [
            f"{self.config} / {self.mode} / {self.pattern} "
            f"@ {self.offered_rps:,.1f} rps:",
            f"  requests          : {self.requests:,} "
            f"over {self.duration_s:,.2f} s",
            f"  throughput        : {self.throughput_rps:,.1f} rps",
            f"  utilization       : {self.utilization:.1%}",
            f"  latency p50/p95/p99: "
            f"{self.latency.p50_s * 1e3:,.2f} / "
            f"{self.latency.p95_s * 1e3:,.2f} / "
            f"{self.latency.p99_s * 1e3:,.2f} ms",
            f"  queue wait p50/p99: "
            f"{self.queue_wait.p50_s * 1e3:,.2f} / "
            f"{self.queue_wait.p99_s * 1e3:,.2f} ms",
            f"  mean batch size   : {self.mean_batch_size:.2f}",
            f"  energy            : {self.energy_uj:,.1f} uJ",
        ]
        if self.generative:
            lines.extend(
                [
                    f"  tokens            : {self.total_tokens:,} "
                    f"({self.tokens_per_s:,.1f} tok/s, "
                    f"{self.energy_uj_per_token:.3f} uJ/tok)",
                    f"  TTFT p50/p99      : "
                    f"{self.ttft.p50_s * 1e3:,.2f} / "
                    f"{self.ttft.p99_s * 1e3:,.2f} ms",
                    f"  TBT p50/p99       : "
                    f"{self.tbt.p50_s * 1e3:,.2f} / "
                    f"{self.tbt.p99_s * 1e3:,.2f} ms",
                ]
            )
        if self.faulted:
            reasons = (
                ", ".join(
                    f"{name}={count:,}"
                    for name, count in sorted(self.dropped_by_reason.items())
                    if count
                )
                or "none"
            )
            lines.extend(
                [
                    f"  availability      : {self.availability:.1%}",
                    f"  goodput           : {self.goodput_rps:,.1f} rps "
                    f"({self.requests:,}/{self.offered_requests:,} offered)",
                    f"  dropped           : {self.dropped_requests:,} ({reasons})",
                    f"  retries           : {self.retries:,} "
                    f"({self.retried_completed:,} completed after retry)",
                    f"  lost batches      : {self.failed_batches:,} "
                    f"({self.wasted_energy_uj:,.1f} uJ wasted)",
                ]
            )
        if self.sla_s is not None:
            lines.append(
                f"  SLA {self.sla_s * 1e3:,.1f} ms     : "
                f"{self.sla_violations:,} violations "
                f"({self.sla_violation_rate:.2%})"
            )
        return "\n".join(lines)


def summarize(
    result: Union[
        ServingResult,
        ColumnarServingResult,
        GenerativeResult,
        DecodeColumnarResult,
        FaultColumnarResult,
    ],
    config: str,
    mode: str,
    pattern: str,
    offered_rps: float,
    sla_s: Optional[float] = None,
    exact: bool = True,
) -> ServingReport:
    """Fold one run (object-based or columnar) into a report.

    ``exact=False`` computes the latency and queue-wait percentiles
    from :class:`~repro.obs.streaming.StreamingHistogram` sketches
    instead of ``np.percentile`` over the full columns -- O(buckets)
    working memory and a single vectorized pass, the summarization
    path sized for the ROADMAP's 10^8-request runs.  Throughput,
    utilization, energy, violation counts, ``mean``, and ``max`` are
    identical either way; p50/p95/p99 differ from the exact report by
    at most the sketch's documented relative error bound.

    Generative results (reference or columnar) additionally fill the
    ``ttft``/``tbt``/``total_tokens`` fields; for them ``latency`` is
    arrival-to-last-token, SLA violations stay on that end-to-end
    latency, and ``mean_batch_size`` is mean *step*-batch occupancy
    (total token steps over step batches).  TBT percentiles cover the
    multi-token requests (single-token requests have no decode gaps).

    Fault-mode results (:class:`~repro.serving.faults.
    FaultColumnarResult`, or a reference result whose run had a fault
    schedule) also fill the degraded-fleet fields: drops by reason,
    retry counts, lost-batch energy, availability, and the latency
    population of retried completions.  ``requests`` / ``throughput``
    then cover *completed* requests only (goodput); compare against
    :attr:`ServingReport.offered_requests` for the loss.
    """
    ttfts = tbts = None
    tokens = 0
    step_mean_batch = None
    retried_lat = None
    if isinstance(result, FaultColumnarResult):
        mask = result.completed
        latencies = result.latency_s
        waits = result.queue_wait_s
        if result.generative:
            ttfts = result.ttft_s
            tbts = result.tbt_s
            tokens = result.total_tokens
            sizes = None
            step_mean_batch = (
                result.total_tokens / result.batches if result.batches else 0.0
            )
        else:
            sizes = result.batch_size[mask]
        retried_lat = latencies[result.attempts[mask] >= 2]
    elif isinstance(result, DecodeColumnarResult):
        latencies = result.latency_s
        waits = result.queue_wait_s
        ttfts = result.ttft_s
        tbts = result.tbt_s[np.isfinite(result.tbt_s)]
        tokens = result.total_tokens
        sizes = None
        step_mean_batch = (
            result.total_tokens / result.batches if result.batches else 0.0
        )
    elif isinstance(result, GenerativeResult):
        latencies = np.array(
            [rec.latency_s for rec in result.records], dtype=np.float64
        )
        waits = np.array([rec.queue_wait_s for rec in result.records], dtype=np.float64)
        ttfts = np.array([rec.ttft_s for rec in result.records], dtype=np.float64)
        tbts = np.array([rec.tbt_s for rec in result.records], dtype=np.float64)
        tbts = tbts[np.isfinite(tbts)]
        tokens = result.total_tokens
        sizes = None
        step_mean_batch = (
            result.total_tokens / result.batches if result.batches else 0.0
        )
    elif isinstance(result, ColumnarServingResult):
        # Array-native: latency/wait columns are single vector ops over
        # the struct-of-arrays result -- no per-request objects.
        latencies = result.latency_s
        waits = result.queue_wait_s
        sizes = result.batch_size
    else:
        latencies = np.array(
            [rec.latency_s for rec in result.records], dtype=np.float64
        )
        waits = np.array([rec.queue_wait_s for rec in result.records], dtype=np.float64)
        sizes = np.array([rec.batch_size for rec in result.records], dtype=np.int64)
    duration = result.duration_s
    span = duration if duration > 0 else float("inf")
    busy = np.asarray(result.device_busy_s, dtype=np.float64)
    utilization = float(np.mean(busy / span)) if busy.size else 0.0
    violations = (int(np.count_nonzero(latencies > sla_s)) if sla_s is not None else 0)

    # Fault accounting: the columnar fault result carries columns; the
    # reference results carry it on their records/dropped lists (their
    # ``device_downtime_s`` is non-empty exactly on fault runs).
    n_completed = result.completed
    fault_kwargs: dict = {}
    if isinstance(result, FaultColumnarResult):
        n_completed = result.completed_count
        by_reason = {name: 0 for name in DROP_REASON_NAMES.values()}
        for row in result.drop_order:
            by_reason[DROP_REASON_NAMES[int(result.drop_reason[row])]] += 1
        fault_kwargs = dict(
            dropped_requests=result.dropped_count,
            dropped_by_reason=by_reason,
            retries=result.retries,
            retried_completed=int(retried_lat.size),
            failed_batches=result.failed_batches,
            wasted_energy_uj=result.wasted_energy_pj / 1e6,
        )
    elif getattr(result, "device_downtime_s", None):
        retried_lat = np.array(
            [rec.latency_s for rec in result.records if rec.attempts >= 2],
            dtype=np.float64,
        )
        by_reason = {name: 0 for name in DROP_REASON_NAMES.values()}
        for dropped in result.dropped:
            by_reason[dropped.reason] += 1
        fault_kwargs = dict(
            dropped_requests=len(result.dropped),
            dropped_by_reason=by_reason,
            retries=result.retries,
            retried_completed=int(retried_lat.size),
            failed_batches=result.failed_batches,
            wasted_energy_uj=result.wasted_energy_pj / 1e6,
        )
    if fault_kwargs:
        downtime = np.asarray(result.device_downtime_s, dtype=np.float64)
        fault_kwargs["faulted"] = True
        fault_kwargs["availability"] = (
            float(1.0 - np.mean(downtime / span)) if downtime.size else 1.0
        )

    ttft_stats = tbt_stats = None
    retried_stats = None
    if exact:
        latency_stats = LatencyStats.from_samples(latencies)
        wait_stats = LatencyStats.from_samples(waits)
        if ttfts is not None:
            ttft_stats = LatencyStats.from_samples(ttfts)
            tbt_stats = LatencyStats.from_samples(tbts)
        if fault_kwargs:
            retried_stats = LatencyStats.from_samples(retried_lat)
    else:
        latency_sketch = StreamingHistogram()
        latency_sketch.add_many(latencies)
        wait_sketch = StreamingHistogram()
        wait_sketch.add_many(waits)
        latency_stats = LatencyStats.from_sketch(latency_sketch)
        wait_stats = LatencyStats.from_sketch(wait_sketch)
        if ttfts is not None:
            ttft_sketch = StreamingHistogram()
            ttft_sketch.add_many(ttfts)
            tbt_sketch = StreamingHistogram()
            tbt_sketch.add_many(tbts)
            ttft_stats = LatencyStats.from_sketch(ttft_sketch)
            tbt_stats = LatencyStats.from_sketch(tbt_sketch)
        if fault_kwargs:
            retried_sketch = StreamingHistogram()
            retried_sketch.add_many(retried_lat)
            retried_stats = LatencyStats.from_sketch(retried_sketch)
    if fault_kwargs:
        fault_kwargs["retried_latency"] = retried_stats
    return ServingReport(
        config=config,
        mode=mode,
        pattern=pattern,
        offered_rps=offered_rps,
        requests=n_completed,
        duration_s=duration,
        latency=latency_stats,
        queue_wait=wait_stats,
        throughput_rps=n_completed / span,
        utilization=utilization,
        mean_batch_size=(
            step_mean_batch
            if step_mean_batch is not None
            else float(np.mean(sizes)) if sizes.size else 0.0
        ),
        energy_uj=float(sum(result.device_energy_pj)) / 1e6,
        sla_s=sla_s,
        sla_violations=violations,
        ttft=ttft_stats,
        tbt=tbt_stats,
        total_tokens=tokens,
        **fault_kwargs,
    )


def summarize_stream(
    chunks: Iterable[RequestTable],
    cost_model: ServiceCostModel,
    config: str,
    mode: str,
    pattern: str,
    offered_rps: float,
    sla_s: Optional[float] = None,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    threads: int = 1,
    faults=None,
    retry=None,
) -> ServingReport:
    """Simulate a chunked stream and summarize it in O(1) memory.

    Drives :func:`~repro.serving.engine.simulate_stream` over the
    chunks (e.g. a :class:`~repro.serving.stream.RequestStream`) and
    folds every completed chunk's latency / queue-wait / batch-size
    columns straight into :class:`~repro.obs.streaming.
    StreamingHistogram` sketches and exact counters, so a 10^8-request
    run holds one chunk plus fixed-size sketches -- never a full
    per-request column.

    Relative to the exact whole-table ``summarize``: ``requests``,
    ``duration``, ``throughput``, ``utilization``, ``energy``,
    ``mean_batch_size``, and SLA violation counts are identical (the
    underlying run is bitwise equal and the folds are exact);
    latency/queue-wait p50/p95/p99 carry the sketch's documented
    relative error bound (~0.9% at default resolution), and their
    ``mean`` differs only by float summation order.

    Generative streams fold TTFT and TBT into their own sketches the
    same way (TBT over multi-token requests), so the decode-phase tail
    percentiles also come out of O(1) memory.

    A ``faults`` schedule routes the run through the fault-injection
    engine; the report then carries the degraded-fleet fields and a
    retried-completion latency sketch built by merging one small
    per-chunk sketch per flush (most are empty -- the merge is a
    no-op on them).
    """
    from repro.obs.streaming import Counter
    from repro.serving.faults import FaultCompletedChunk

    latency_sketch = StreamingHistogram()
    wait_sketch = StreamingHistogram()
    ttft_sketch = StreamingHistogram()
    tbt_sketch = StreamingHistogram()
    retried_sketch = StreamingHistogram()
    retried_counter = Counter("retried_completed")
    batch_size_sum = 0
    violations = 0
    generative = False

    def _fold(completed) -> None:
        nonlocal batch_size_sum, violations, generative
        latencies = completed.latency_s
        latency_sketch.add_many(latencies)
        wait_sketch.add_many(completed.queue_wait_s)
        if isinstance(completed, FaultCompletedChunk):
            is_generative = completed.generative
            retried = completed.attempts >= 2
            # Per-chunk sketch merged in: chunks with zero retried
            # completions merge an empty sketch (and inc the counter
            # by 0) -- pinned edge cases of the streaming primitives.
            local = StreamingHistogram()
            local.add_many(latencies[retried])
            retried_sketch.merge(local)
            retried_counter.inc(int(np.count_nonzero(retried)))
        else:
            is_generative = hasattr(completed, "ttft_s")
        if is_generative:
            generative = True
            ttft_sketch.add_many(completed.ttft_s)
            tbt = completed.tbt_s
            tbt_sketch.add_many(tbt[np.isfinite(tbt)])
        else:
            # Integer fold: exact, and equal to np.mean's float sum for
            # any realistic stream (batch sizes sum far below 2**53).
            batch_size_sum += int(np.sum(completed.batch_size))
        if sla_s is not None:
            violations += int(np.count_nonzero(latencies > sla_s))

    result = simulate_stream(
        chunks,
        cost_model,
        num_devices=num_devices,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        setup_cycles=setup_cycles,
        threads=threads,
        sink=_fold,
        faults=faults,
        retry=retry,
    )
    duration = result.duration_s
    span = duration if duration > 0 else float("inf")
    busy = np.asarray(result.device_busy_s, dtype=np.float64)
    if generative:
        mean_batch = (result.total_tokens / result.batches if result.batches else 0.0)
    else:
        mean_batch = (batch_size_sum / result.completed if result.completed else 0.0)
    fault_kwargs: dict = {}
    if faults is not None:
        downtime = np.asarray(result.device_downtime_s, dtype=np.float64)
        fault_kwargs = dict(
            faulted=True,
            dropped_requests=result.dropped,
            dropped_by_reason=dict(result.dropped_by_reason),
            retries=result.retries,
            retried_completed=retried_counter.value,
            failed_batches=result.failed_batches,
            wasted_energy_uj=result.wasted_energy_pj / 1e6,
            availability=(
                float(1.0 - np.mean(downtime / span)) if downtime.size else 1.0
            ),
            retried_latency=LatencyStats.from_sketch(retried_sketch),
        )
    return ServingReport(
        config=config,
        mode=mode,
        pattern=pattern,
        offered_rps=offered_rps,
        requests=result.completed,
        duration_s=duration,
        latency=LatencyStats.from_sketch(latency_sketch),
        queue_wait=LatencyStats.from_sketch(wait_sketch),
        throughput_rps=result.completed / span,
        utilization=float(np.mean(busy / span)) if busy.size else 0.0,
        mean_batch_size=mean_batch,
        energy_uj=float(sum(result.device_energy_pj)) / 1e6,
        sla_s=sla_s,
        sla_violations=violations,
        ttft=LatencyStats.from_sketch(ttft_sketch) if generative else None,
        tbt=LatencyStats.from_sketch(tbt_sketch) if generative else None,
        total_tokens=result.total_tokens if generative else 0,
        **fault_kwargs,
    )
