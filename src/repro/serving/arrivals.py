"""Request arrival processes: Poisson, bursty (MMPP), and trace replay.

Each process produces deterministic-under-seed arrival timestamps;
:func:`generate_request_table` turns them into a columnar
:class:`~repro.serving.requests.RequestTable` by drawing models from a
weighted mix and padded input lengths around each model's mean padding
ratio (matching ``repro.workloads.generator``).  Generation is fully
vectorized -- one ``rng.uniform`` draw covers every request whose spec
jitters its padding -- and consumes the generator in exactly the order
the historical per-request loop did, so a given seed yields the same
stream bit-for-bit.  :func:`generate_requests` materializes the same
table as :class:`Request` objects for the per-request reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.models.zoo import ModelSpec, get_model
from repro.serving.requests import Request, RequestTable


def _clone_generator(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator at exactly ``rng``'s current state."""
    clone = np.random.default_rng()
    clone.bit_generator.state = rng.bit_generator.state
    return clone


#: Draws consumed per burst when a cursor advances a generator without
#: materializing the whole stream.
_ADVANCE_CHUNK = 65536


class ArrivalCursor:
    """Incremental view of one ``arrival_times`` draw.

    ``take(m)`` returns the next ``m`` timestamps; the concatenation of
    all takes is bitwise identical to the single whole-stream
    ``arrival_times`` call the cursor stands in for, regardless of how
    the takes are sized.
    """

    def take(self, m: int) -> np.ndarray:
        raise NotImplementedError


class _MaterializedCursor(ArrivalCursor):
    """Fallback cursor: the whole stream drawn up front, served in slices.

    Trivially exact, but O(stream) memory -- processes that matter for
    out-of-core runs override :meth:`ArrivalProcess.cursor` with an
    O(chunk) implementation.
    """

    def __init__(self, times: np.ndarray):
        self._times = times
        self._pos = 0

    def take(self, m: int) -> np.ndarray:
        if self._pos + m > self._times.size:
            raise ValueError("cursor exhausted")
        out = self._times[self._pos : self._pos + m]
        self._pos += m
        return out


class _PoissonCursor(ArrivalCursor):
    def __init__(self, rng: np.random.Generator, scale: float):
        self._rng = rng
        self._scale = scale
        self._carry = 0.0

    def take(self, m: int) -> np.ndarray:
        gaps = self._rng.exponential(self._scale, size=m)
        # Seeding the cumsum with the previous chunk's last timestamp
        # continues the exact left fold a whole-stream np.cumsum runs
        # (0.0 + x == x for the first chunk).
        times = np.cumsum(np.concatenate(([self._carry], gaps)))[1:]
        self._carry = float(times[-1])
        return times


class _BurstyCursor(ArrivalCursor):
    def __init__(self, process: "BurstyProcess", rng: np.random.Generator):
        self._rng = rng
        self._rates = (process.calm_rate_rps, process.burst_rate_rps)
        self._dwells = (process.calm_dwell_s, process.burst_dwell_s)
        self._t = 0.0
        self._state = 0
        self._next_switch = rng.exponential(self._dwells[0])

    def take(self, m: int) -> np.ndarray:
        # The exact per-arrival loop of BurstyProcess.arrival_times,
        # with (t, state, next_switch) carried across takes.
        times = np.empty(m)
        produced = 0
        while produced < m:
            gap = self._rng.exponential(1.0 / self._rates[self._state])
            if self._t + gap >= self._next_switch:
                self._t = self._next_switch
                self._state ^= 1
                self._next_switch = self._t + self._rng.exponential(
                    self._dwells[self._state]
                )
                continue
            self._t += gap
            times[produced] = self._t
            produced += 1
        return times


class _TraceCursor(ArrivalCursor):
    def __init__(self, gaps: np.ndarray, time_scale: float):
        self._gaps = gaps
        self._scale = time_scale
        self._pos = 0
        self._carry = 0.0

    def take(self, m: int) -> np.ndarray:
        idx = (self._pos + np.arange(m, dtype=np.int64)) % self._gaps.size
        gaps = self._gaps[idx] * self._scale
        times = np.cumsum(np.concatenate(([self._carry], gaps)))[1:]
        self._pos += m
        self._carry = float(times[-1])
        return times


class ArrivalProcess:
    """Base class: a stream of arrival timestamps (seconds)."""

    #: Short name used in experiment tables.
    name = "abstract"

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def cursor(self, count: int, rng: np.random.Generator) -> ArrivalCursor:
        """An incremental cursor over this process's next ``count`` draws.

        Contract: ``rng`` is left in exactly the state a whole-stream
        ``arrival_times(count, rng)`` call would leave it (so the
        caller's later draws are unaffected), and the cursor replays
        those same ``count`` timestamps bitwise through ``take``.  The
        base implementation materializes the stream (O(count) memory);
        the built-in processes override it with O(chunk) cursors.
        """
        return _MaterializedCursor(self.arrival_times(count, rng))

    @property
    def mean_rate_rps(self) -> float:
        """Long-run offered load in requests per second."""
        raise NotImplementedError


@dataclass
class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate."""

    rate_rps: float
    name = "poisson"

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")

    def arrival_times(self, count, rng):
        gaps = rng.exponential(1.0 / self.rate_rps, size=count)
        return np.cumsum(gaps)

    def cursor(self, count, rng):
        replay = _clone_generator(rng)
        # Advance rng past the whole phase-1 draw without materializing
        # it: chunked draws consume the identical underlying stream.
        scale = 1.0 / self.rate_rps
        remaining = count
        while remaining:
            m = min(_ADVANCE_CHUNK, remaining)
            rng.exponential(scale, size=m)
            remaining -= m
        return _PoissonCursor(replay, scale)

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps


@dataclass
class BurstyProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm/burst phases).

    Dwell times in each state are exponential; arrivals within a state
    are Poisson at that state's rate.  At a state switch the residual
    inter-arrival gap is redrawn from the new state's rate, which is
    exact for exponential gaps (memorylessness).
    """

    calm_rate_rps: float
    burst_rate_rps: float
    calm_dwell_s: float = 1.0
    burst_dwell_s: float = 0.25
    name = "bursty"

    def __post_init__(self):
        if min(self.calm_rate_rps, self.burst_rate_rps) <= 0:
            raise ValueError("rates must be positive")
        if min(self.calm_dwell_s, self.burst_dwell_s) <= 0:
            raise ValueError("dwell times must be positive")

    def arrival_times(self, count, rng):
        rates = (self.calm_rate_rps, self.burst_rate_rps)
        dwells = (self.calm_dwell_s, self.burst_dwell_s)
        times = np.empty(count)
        t, state = 0.0, 0
        next_switch = rng.exponential(dwells[state])
        produced = 0
        while produced < count:
            gap = rng.exponential(1.0 / rates[state])
            if t + gap >= next_switch:
                t = next_switch
                state ^= 1
                next_switch = t + rng.exponential(dwells[state])
                continue
            t += gap
            times[produced] = t
            produced += 1
        return times

    def cursor(self, count, rng):
        replay = _clone_generator(rng)
        # O(count) time (the draw loop is inherently sequential) but
        # O(chunk) memory: burn the draws to advance rng.
        burn = _BurstyCursor(self, rng)
        remaining = count
        while remaining:
            m = min(_ADVANCE_CHUNK, remaining)
            burn.take(m)
            remaining -= m
        return _BurstyCursor(self, replay)

    @property
    def mean_rate_rps(self) -> float:
        # Time-weighted mean of the two phases.
        total = self.calm_dwell_s + self.burst_dwell_s
        return (
            self.calm_rate_rps * self.calm_dwell_s
            + self.burst_rate_rps * self.burst_dwell_s
        ) / total


@dataclass
class TraceProcess(ArrivalProcess):
    """Replay recorded inter-arrival gaps, cycling when exhausted."""

    inter_arrival_s: Sequence[float]
    #: Time-axis scale; 0.5 replays the trace at twice the speed.
    time_scale: float = 1.0
    name = "trace"

    def __post_init__(self):
        gaps = np.asarray(self.inter_arrival_s, dtype=np.float64)
        if gaps.size == 0:
            raise ValueError("trace must contain at least one gap")
        if np.any(gaps < 0):
            raise ValueError("inter-arrival gaps must be non-negative")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._gaps = gaps

    def arrival_times(self, count, rng):
        reps = -(-count // self._gaps.size)
        gaps = np.tile(self._gaps, reps)[:count] * self.time_scale
        return np.cumsum(gaps)

    def cursor(self, count, rng):
        # Trace replay draws nothing from rng; the cursor just walks
        # the recorded gaps modularly.
        return _TraceCursor(self._gaps, self.time_scale)

    @property
    def mean_rate_rps(self) -> float:
        mean_gap = float(np.mean(self._gaps)) * self.time_scale
        return 1.0 / mean_gap if mean_gap > 0 else float("inf")

    @classmethod
    def from_rate_profile(
        cls,
        rates_rps: Sequence[float],
        requests_per_segment: int,
        time_scale: float = 1.0,
    ) -> "TraceProcess":
        """Synthesize a replayable trace from a piecewise rate profile.

        Each profile segment contributes ``requests_per_segment`` gaps
        of ``1/rate`` seconds -- a deterministic stand-in for a recorded
        production trace (e.g. a diurnal load curve).
        """
        if requests_per_segment < 1:
            raise ValueError("requests_per_segment must be positive")
        gaps: List[float] = []
        for rate in rates_rps:
            if rate <= 0:
                raise ValueError("profile rates must be positive")
            gaps.extend([1.0 / rate] * requests_per_segment)
        return cls(inter_arrival_s=gaps, time_scale=time_scale)


#: A model mix: either spec/name -> weight, or a bare spec (weight 1).
ModelMix = Union[
    ModelSpec,
    str,
    Dict[Union[ModelSpec, str], float],
    Sequence[Tuple[Union[ModelSpec, str], float]],
]


def _normalize_mix(mix: ModelMix) -> Tuple[List[ModelSpec], np.ndarray]:
    if isinstance(mix, (ModelSpec, str)):
        pairs = [(mix, 1.0)]
    elif isinstance(mix, dict):
        pairs = list(mix.items())
    else:
        pairs = list(mix)
    if not pairs:
        raise ValueError("model mix must not be empty")
    specs = [m if isinstance(m, ModelSpec) else get_model(m) for m, _ in pairs]
    weights = np.array([w for _, w in pairs], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative and sum > 0")
    return specs, weights / weights.sum()


def sample_valid_len(spec: ModelSpec, rng: np.random.Generator) -> int:
    """Draw one request's non-padded length around the model's mean.

    Mirrors the jitter the calibrated workload generator applies to the
    padding ratio, so serving traffic and figure workloads agree.
    """
    if spec.padding_ratio <= 0.0:
        return spec.seq_len
    jitter = rng.uniform(-0.05, 0.05)
    ratio = float(np.clip(spec.padding_ratio + jitter, 0.0, 0.95))
    return max(2, int(round(spec.seq_len * (1.0 - ratio))))


def sample_output_lens(
    u: np.ndarray, mean_output_tokens: float, cap: np.ndarray
) -> np.ndarray:
    """Geometric output lengths from uniform draws, clipped per request.

    Inverse-CDF sampling of a geometric distribution with mean
    ``mean_output_tokens`` (success probability ``p = 1/mean``):
    ``1 + floor(log1p(-u) / log1p(-p))``.  Working from explicit
    ``rng.uniform`` draws (rather than ``rng.geometric``) keeps the
    draw count exactly one-per-request, so the chunked stream generator
    replays the phase bitwise at any chunk size.  ``cap`` is the
    per-request hard ceiling ``seq_len - valid_len + 1`` (the final
    decode context must fit the model's window).
    """
    if mean_output_tokens < 1.0:
        raise ValueError("mean_output_tokens must be >= 1")
    p = 1.0 / mean_output_tokens
    if p >= 1.0:
        lens = np.ones(u.shape, dtype=np.int64)
    else:
        lens = 1 + np.floor(np.log1p(-u) / np.log1p(-p)).astype(np.int64)
    return np.minimum(np.maximum(lens, 1), cap)


def generate_request_table(
    process: ArrivalProcess,
    mix: ModelMix,
    count: int,
    seed: int = 0,
    start_id: int = 0,
    mean_output_tokens: float = None,
    deadline_range_s: Tuple[float, float] = None,
) -> RequestTable:
    """Vectorized stream generation into a columnar request table.

    Deterministic under ``seed`` and bit-identical to the historical
    per-request loop: the length jitter is drawn as **one**
    ``rng.uniform`` over exactly the requests whose spec jitters its
    padding (``padding_ratio > 0``), in request order -- the same draw
    sequence ``sample_valid_len`` consumed one call at a time, so
    every pre-vectorization golden stream is unchanged.

    ``mean_output_tokens`` switches the stream generative: a fourth RNG
    phase (drawn strictly *after* the prefill phases, so prefill-only
    streams stay byte-identical) samples each request's output length
    from a geometric with that mean, clipped to the model window
    (``valid_len + output_len - 1 <= seq_len``).

    ``deadline_range_s=(lo, hi)`` adds a fifth phase -- again drawn
    strictly after every earlier phase, preserving their draw order --
    sampling each request's completion deadline uniformly from
    ``[lo, hi)`` seconds after arrival (the fault layer's drop bound;
    see :class:`~repro.serving.requests.Request`).
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    specs, weights = _normalize_mix(mix)
    times = np.asarray(process.arrival_times(count, rng), dtype=np.float64)
    picks = rng.choice(len(specs), size=count, p=weights)

    seq_lens = np.array([s.seq_len for s in specs], dtype=np.int64)
    paddings = np.array([s.padding_ratio for s in specs], dtype=np.float64)
    picked_padding = paddings[picks]
    valid = seq_lens[picks].copy()
    jittered = picked_padding > 0.0
    n_jittered = int(np.count_nonzero(jittered))
    if n_jittered:
        jitter = rng.uniform(-0.05, 0.05, size=n_jittered)
        ratio = np.clip(picked_padding[jittered] + jitter, 0.0, 0.95)
        drawn = np.round(valid[jittered] * (1.0 - ratio))
        valid[jittered] = np.maximum(2, drawn.astype(np.int64))
    output_len = None
    if mean_output_tokens is not None:
        u = rng.uniform(size=count)
        output_len = sample_output_lens(
            u, mean_output_tokens, seq_lens[picks] - valid + 1
        )
    deadline_s = None
    if deadline_range_s is not None:
        lo, hi = deadline_range_s
        if not 0 < lo <= hi:
            raise ValueError("deadline_range_s must satisfy 0 < lo <= hi")
        deadline_s = rng.uniform(lo, hi, size=count)
    return RequestTable(
        specs=specs,
        request_id=start_id + np.arange(count, dtype=np.int64),
        arrival_s=times,
        spec_idx=np.asarray(picks, dtype=np.int64),
        valid_len=valid,
        output_len=output_len,
        deadline_s=deadline_s,
    )


def generate_requests(
    process: ArrivalProcess,
    mix: ModelMix,
    count: int,
    seed: int = 0,
    start_id: int = 0,
    mean_output_tokens: float = None,
    deadline_range_s: Tuple[float, float] = None,
) -> List[Request]:
    """Materialize ``count`` requests from an arrival process and a mix.

    Deterministic under ``seed``: the same call always yields identical
    timestamps, model draws, and input lengths.  Thin object view over
    :func:`generate_request_table` (one source of truth for the draw
    sequence).
    """
    return generate_request_table(
        process,
        mix,
        count,
        seed=seed,
        start_id=start_id,
        mean_output_tokens=mean_output_tokens,
        deadline_range_s=deadline_range_s,
    ).to_requests()
