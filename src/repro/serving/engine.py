"""Columnar fast path: batch-granular serving simulation over arrays.

The per-request reference loop (:class:`~repro.serving.scheduler.
ServingSimulator`) spends its time on Python object churn: one heap
event, one dict lookup, and one record mutation per request.  This
module simulates the *same* deployment semantics at batch granularity
over a struct-of-arrays :class:`~repro.serving.requests.RequestTable`:

1. **Batch formation is device-independent.**  The dynamic batcher
   seals on size or on the oldest member's wait bound only, so every
   sealed batch -- members, seal time, and trigger -- is computable in
   a single forward pass over each model's sorted arrival column,
   without running an event loop at all.
2. **Dispatch is a k-server FIFO over batches.**  Devices are k free
   times; each batch (in global seal order) starts at
   ``max(sealed_s, earliest free time)`` on the lowest-index device
   idle at that instant -- exactly the device the reference loop's
   event-driven dispatch would pick -- collapsing the event count by
   the mean batch size.
3. **Costs and metrics stay columnar.**  Per-batch cycles/energy come
   from :meth:`~repro.serving.devices.ServiceCostModel.cost_arrays`
   (array indexing into the primed bucket cache) and
   :func:`~repro.serving.metrics.summarize` consumes the result's
   columns directly.

The equivalence contract: for any stream, knobs, and device count,
:func:`simulate_table` produces per-request records **exactly equal**
(bitwise, not approximately) to the reference loop's -- the same
floating-point expressions are evaluated in the same order, only
batched.  ``tests/test_serving_engine.py`` pins this across arrival
patterns, execution modes, seeds, device counts, and wait bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.trace import TraceRecorder
from repro.serving.devices import DEFAULT_SETUP_CYCLES, ServiceCostModel
from repro.serving.requests import RequestRecord, RequestTable
from repro.serving.scheduler import ServingResult


@dataclass
class ColumnarServingResult:
    """Everything one fast-path run produced, as per-request columns.

    Row ``i`` of every column describes request ``i`` of ``table``
    (sorted by arrival, ties by request id -- the reference loop's
    record order).  :meth:`to_result` materializes the object-based
    :class:`~repro.serving.scheduler.ServingResult` for equivalence
    tests; analysis paths should stay columnar via
    :func:`~repro.serving.metrics.summarize`.
    """

    table: RequestTable
    batched_s: np.ndarray
    service_start_s: np.ndarray
    finish_s: np.ndarray
    batch_size: np.ndarray
    device_id: np.ndarray
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.table)

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latency column: arrival to completion."""
        return self.finish_s - self.table.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Arrival to service start (batching + dispatch queueing)."""
        return self.service_start_s - self.table.arrival_s

    def to_result(self) -> ServingResult:
        """Materialize per-request records (the reference loop's shape)."""
        records = [
            RequestRecord(
                request=request,
                batched_s=float(self.batched_s[i]),
                service_start_s=float(self.service_start_s[i]),
                finish_s=float(self.finish_s[i]),
                batch_size=int(self.batch_size[i]),
                device_id=int(self.device_id[i]),
            )
            for i, request in enumerate(self.table.to_requests())
        ]
        return ServingResult(
            records=records,
            start_s=self.start_s,
            end_s=self.end_s,
            device_busy_s=list(self.device_busy_s),
            device_energy_pj=list(self.device_energy_pj),
            batches=self.batches,
            size_triggered_batches=self.size_triggered_batches,
            timeout_triggered_batches=self.timeout_triggered_batches,
        )


def _form_batches(
    arrival: np.ndarray,
    request_id: np.ndarray,
    max_batch_size: int,
    max_wait_s: float,
    last_arrival_s: float,
) -> Tuple[np.ndarray, ...]:
    """Seal one model queue's batches in a forward pass.

    Returns formation-order arrays ``(member_start, member_count,
    sealed_s, by_size, tie_arrival, tie_id)`` where ``member_start`` /
    ``member_count`` slice the model's sorted request rows.  The seal
    rules mirror the reference batcher exactly:

    * **size**: the ``max_batch_size``-th member seals at its own
      arrival instant;
    * **timeout**: otherwise the batch seals at ``oldest arrival +
      max_wait_s``, including any request arriving exactly at that
      deadline (arrivals outrank timeout flushes at equal timestamps);
    * **end of stream**: once the globally last request has arrived,
      the pending tail seals immediately at ``last_arrival_s``;
    * **zero wait** degenerates to one singleton batch per request.

    ``tie_arrival``/``tie_id`` reproduce the reference event loop's
    FIFO order for batches sealed at the same instant: size-sealed
    batches order by their triggering (final) member's event position,
    timeout/end flushes by their oldest member's queue-creation
    position.
    """
    n = arrival.size
    if max_wait_s == 0.0:
        # The reference loop flushes after every add: singleton batches
        # sealed at their own arrival.  They count as size-triggered
        # only when max_batch_size == 1 (the add() itself seals).
        return (
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.int64),
            arrival.copy(),
            np.full(n, max_batch_size == 1, dtype=bool),
            arrival.copy(),
            request_id.copy(),
        )
    starts: List[int] = []
    counts: List[int] = []
    sealed: List[float] = []
    by_size: List[bool] = []
    tie_a: List[float] = []
    tie_i: List[int] = []
    i = 0
    while i < n:
        deadline = float(arrival[i]) + max_wait_s
        due = int(np.searchsorted(arrival, deadline, side="right"))
        take = min(max_batch_size, due - i)
        if take == max_batch_size:
            last = i + take - 1
            seal_at, size_trigger = float(arrival[last]), True
            anchor_a, anchor_i = float(arrival[last]), int(request_id[last])
        else:
            seal_at = deadline if deadline <= last_arrival_s else last_arrival_s
            size_trigger = False
            anchor_a, anchor_i = float(arrival[i]), int(request_id[i])
        starts.append(i)
        counts.append(take)
        sealed.append(seal_at)
        by_size.append(size_trigger)
        tie_a.append(anchor_a)
        tie_i.append(anchor_i)
        i += take
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
        np.asarray(sealed, dtype=np.float64),
        np.asarray(by_size, dtype=bool),
        np.asarray(tie_a, dtype=np.float64),
        np.asarray(tie_i, dtype=np.int64),
    )


def simulate_table(
    table: RequestTable,
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    recorder: Optional[TraceRecorder] = None,
) -> ColumnarServingResult:
    """Run one deployment over a columnar stream; the fast path.

    Identical knobs and semantics to building ``num_devices``
    :class:`~repro.serving.devices.SprintDevice` plus a
    :class:`~repro.serving.batching.DynamicBatcher` and calling
    :meth:`~repro.serving.scheduler.ServingSimulator.run`, but
    batch-granular: O(requests / mean batch size) light Python
    iterations instead of O(requests) heap events.  Unlike the
    single-use reference simulator, this function carries no run state
    and may be called repeatedly.

    ``recorder`` opts into sim-time tracing: the sampled requests'
    lifecycle spans are emitted from the finished columns after the
    simulation proper, so tracing cannot perturb a single computed
    value -- results are bitwise identical with tracing on or off (and
    the emitted spans bitwise match the reference loop's).
    """
    if len(table) == 0:
        raise ValueError("request stream must not be empty")
    if num_devices < 1:
        raise ValueError("at least one device required")
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    if max_wait_s < 0:
        raise ValueError("max_wait_s must be non-negative")
    if np.unique(table.request_id).size != len(table):
        raise ValueError("duplicate request id in stream")

    order = np.lexsort((table.request_id, table.arrival_s))
    table = RequestTable(
        specs=table.specs,
        request_id=table.request_id[order],
        arrival_s=table.arrival_s[order],
        spec_idx=table.spec_idx[order],
        valid_len=table.valid_len[order],
    )
    n = len(table)
    last_arrival_s = float(table.arrival_s[n - 1])
    frequency_hz = cost_model.config.frequency_ghz * 1e9

    # ------------------------------------------------------------------
    # Phase 1: per-model batch formation (device-independent).
    # ------------------------------------------------------------------
    model_rows: List[np.ndarray] = []
    model_slices: List[Tuple[int, int]] = []
    form_columns: List[Tuple[np.ndarray, ...]] = []
    service_parts: List[np.ndarray] = []
    energy_parts: List[np.ndarray] = []
    total = 0
    # One queue per model *name*, like the reference batcher: a spec
    # list may carry the same model under several indices (a mix that
    # repeats a model), and those requests share one queue.  The table
    # validated that same-name specs are identical.
    queues: dict = {}
    for idx, spec in enumerate(table.specs):
        queues.setdefault(spec.name, []).append(idx)
    for indices in queues.values():
        spec = table.specs[indices[0]]
        rows = np.flatnonzero(np.isin(table.spec_idx, indices))
        if rows.size == 0:
            continue
        formed = _form_batches(
            table.arrival_s[rows],
            table.request_id[rows],
            max_batch_size,
            max_wait_s,
            last_arrival_s,
        )
        starts, counts = formed[0], formed[1]
        # Dynamic batching pads members to the batch's longest input;
        # cost lookup is one array-indexing pass over the primed cache.
        padded_len = np.maximum.reduceat(table.valid_len[rows], starts)
        cycles, energy = cost_model.cost_arrays(spec, padded_len)
        service_parts.append((setup_cycles + cycles * counts) / frequency_hz)
        energy_parts.append(energy * counts)
        model_rows.append(rows)
        model_slices.append((total, total + starts.size))
        form_columns.append(formed)
        total += starts.size

    member_count = np.concatenate([f[1] for f in form_columns])
    sealed_s = np.concatenate([f[2] for f in form_columns])
    size_sealed = np.concatenate([f[3] for f in form_columns])
    tie_arrival = np.concatenate([f[4] for f in form_columns])
    tie_id = np.concatenate([f[5] for f in form_columns])
    service_s = np.concatenate(service_parts)
    energy_pj = np.concatenate(energy_parts)
    num_batches = member_count.size

    # ------------------------------------------------------------------
    # Phase 2: k-server FIFO dispatch over batches in global seal order.
    # Size seals happen inside an arrival event, which outranks a
    # timeout flush at the same instant, hence the ~size_sealed rank.
    # ------------------------------------------------------------------
    dispatch_order = np.lexsort((tie_id, tie_arrival, ~size_sealed, sealed_s))
    batch_start = np.empty(num_batches, dtype=np.float64)
    batch_finish = np.empty(num_batches, dtype=np.float64)
    batch_device = np.empty(num_batches, dtype=np.int64)
    free_at = [0.0] * num_devices
    busy_s = [0.0] * num_devices
    energy_by_device = [0.0] * num_devices
    for b in dispatch_order:
        start = sealed_s[b]
        earliest = min(free_at)
        if earliest > start:
            start = earliest
        # The reference scans devices in index order at the dispatch
        # instant: the *lowest-index idle* device takes the batch, not
        # necessarily the earliest-freed one.
        for device in range(num_devices):
            if free_at[device] <= start:
                break
        service = float(service_s[b])
        finish = start + service
        free_at[device] = finish
        busy_s[device] += service
        energy_by_device[device] += float(energy_pj[b])
        batch_start[b] = start
        batch_finish[b] = finish
        batch_device[b] = device

    # ------------------------------------------------------------------
    # Phase 3: scatter per-batch outcomes back to per-request columns.
    # A model's batches tile its sorted rows in formation order, so one
    # repeat() per model covers every member.
    # ------------------------------------------------------------------
    batched_col = np.empty(n, dtype=np.float64)
    start_col = np.empty(n, dtype=np.float64)
    finish_col = np.empty(n, dtype=np.float64)
    size_col = np.empty(n, dtype=np.int64)
    device_col = np.empty(n, dtype=np.int64)
    for rows, (lo, hi) in zip(model_rows, model_slices):
        counts = member_count[lo:hi]
        batched_col[rows] = np.repeat(sealed_s[lo:hi], counts)
        start_col[rows] = np.repeat(batch_start[lo:hi], counts)
        finish_col[rows] = np.repeat(batch_finish[lo:hi], counts)
        size_col[rows] = np.repeat(member_count[lo:hi], counts)
        device_col[rows] = np.repeat(batch_device[lo:hi], counts)

    size_triggered = int(np.count_nonzero(size_sealed))
    if recorder is not None:
        # Post-hoc span emission over the finished columns: the sampled
        # set keys on request id only, so it matches the reference
        # loop's (and any other run of this stream) exactly.
        for i in np.flatnonzero(recorder.config.mask(table.request_id)):
            i = int(i)
            recorder.add_request(
                request_id=int(table.request_id[i]),
                model=table.specs[int(table.spec_idx[i])].name,
                arrival_s=float(table.arrival_s[i]),
                batched_s=float(batched_col[i]),
                service_start_s=float(start_col[i]),
                finish_s=float(finish_col[i]),
                device_id=int(device_col[i]),
                batch_size=int(size_col[i]),
            )
    return ColumnarServingResult(
        table=table,
        batched_s=batched_col,
        service_start_s=start_col,
        finish_s=finish_col,
        batch_size=size_col,
        device_id=device_col,
        start_s=float(table.arrival_s[0]),
        end_s=float(np.max(batch_finish)),
        device_busy_s=busy_s,
        device_energy_pj=energy_by_device,
        batches=int(num_batches),
        size_triggered_batches=size_triggered,
        timeout_triggered_batches=int(num_batches) - size_triggered,
    )
