"""Columnar fast path: batch-granular serving simulation over arrays.

The per-request reference loop (:class:`~repro.serving.scheduler.
ServingSimulator`) spends its time on Python object churn: one heap
event, one dict lookup, and one record mutation per request.  This
module simulates the *same* deployment semantics at batch granularity
over a struct-of-arrays :class:`~repro.serving.requests.RequestTable`:

1. **Batch formation is device-independent.**  The dynamic batcher
   seals on size or on the oldest member's wait bound only, so every
   sealed batch -- members, seal time, and trigger -- is computable in
   a single forward pass over each model's sorted arrival column,
   without running an event loop at all.
2. **Dispatch is a k-server FIFO over batches.**  Devices are k free
   times; each batch (in global seal order) starts at
   ``max(sealed_s, earliest free time)`` on the lowest-index device
   idle at that instant -- exactly the device the reference loop's
   event-driven dispatch would pick -- collapsing the event count by
   the mean batch size.
3. **Costs and metrics stay columnar.**  Per-batch cycles/energy come
   from :meth:`~repro.serving.devices.ServiceCostModel.cost_arrays`
   (array indexing into the primed bucket cache) and
   :func:`~repro.serving.metrics.summarize` consumes the result's
   columns directly.

The equivalence contract: for any stream, knobs, and device count,
:func:`simulate_table` produces per-request records **exactly equal**
(bitwise, not approximately) to the reference loop's -- the same
floating-point expressions are evaluated in the same order, only
batched.  ``tests/test_serving_engine.py`` pins this across arrival
patterns, execution modes, seeds, device counts, and wait bounds.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.trace import TraceRecorder
from repro.serving.devices import DEFAULT_SETUP_CYCLES, ServiceCostModel
from repro.serving.requests import RequestRecord, RequestTable
from repro.serving.scheduler import ServingResult


@dataclass
class ColumnarServingResult:
    """Everything one fast-path run produced, as per-request columns.

    Row ``i`` of every column describes request ``i`` of ``table``
    (sorted by arrival, ties by request id -- the reference loop's
    record order).  :meth:`to_result` materializes the object-based
    :class:`~repro.serving.scheduler.ServingResult` for equivalence
    tests; analysis paths should stay columnar via
    :func:`~repro.serving.metrics.summarize`.
    """

    table: RequestTable
    batched_s: np.ndarray
    service_start_s: np.ndarray
    finish_s: np.ndarray
    batch_size: np.ndarray
    device_id: np.ndarray
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.table)

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latency column: arrival to completion."""
        return self.finish_s - self.table.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Arrival to service start (batching + dispatch queueing)."""
        return self.service_start_s - self.table.arrival_s

    def to_result(self) -> ServingResult:
        """Materialize per-request records (the reference loop's shape)."""
        records = [
            RequestRecord(
                request=request,
                batched_s=float(self.batched_s[i]),
                service_start_s=float(self.service_start_s[i]),
                finish_s=float(self.finish_s[i]),
                batch_size=int(self.batch_size[i]),
                device_id=int(self.device_id[i]),
            )
            for i, request in enumerate(self.table.to_requests())
        ]
        return ServingResult(
            records=records,
            start_s=self.start_s,
            end_s=self.end_s,
            device_busy_s=list(self.device_busy_s),
            device_energy_pj=list(self.device_energy_pj),
            batches=self.batches,
            size_triggered_batches=self.size_triggered_batches,
            timeout_triggered_batches=self.timeout_triggered_batches,
        )


def _form_batches(
    arrival: np.ndarray,
    request_id: np.ndarray,
    max_batch_size: int,
    max_wait_s: float,
    last_arrival_s: Optional[float] = None,
    horizon_s: Optional[float] = None,
) -> Tuple[np.ndarray, ...]:
    """Seal one model queue's batches in a forward pass.

    Returns formation-order arrays ``(member_start, member_count,
    sealed_s, by_size, tie_arrival, tie_id, consumed)`` where
    ``member_start`` / ``member_count`` slice the model's sorted
    request rows and ``consumed`` counts the leading rows covered by
    the returned batches.  The seal rules mirror the reference batcher
    exactly:

    * **size**: the ``max_batch_size``-th member seals at its own
      arrival instant;
    * **timeout**: otherwise the batch seals at ``oldest arrival +
      max_wait_s``, including any request arriving exactly at that
      deadline (arrivals outrank timeout flushes at equal timestamps);
    * **end of stream**: once the globally last request has arrived,
      the pending tail seals immediately at ``last_arrival_s``;
    * **zero wait** degenerates to one singleton batch per request.

    Exactly one of ``last_arrival_s`` / ``horizon_s`` must be given.
    ``last_arrival_s`` is whole-stream mode: every row is consumed.
    ``horizon_s`` is the chunked drivers' incremental mode: only
    batches whose seal no future arrival could change are emitted --
    size seals, plus timeout seals whose deadline falls strictly
    before the horizon (the largest arrival seen so far; a request
    arriving *exactly* at a deadline still joins that batch, so a
    deadline equal to the horizon stays open).  Unconsumed rows are
    the queue's pending tail, provably shorter than
    ``max_batch_size``.

    ``tie_arrival``/``tie_id`` reproduce the reference event loop's
    FIFO order for batches sealed at the same instant: size-sealed
    batches order by their triggering (final) member's event position,
    timeout/end flushes by their oldest member's queue-creation
    position.
    """
    if (last_arrival_s is None) == (horizon_s is None):
        raise ValueError("give exactly one of last_arrival_s / horizon_s")
    n = arrival.size
    if max_wait_s == 0.0:
        # The reference loop flushes after every add: singleton batches
        # sealed at their own arrival.  They count as size-triggered
        # only when max_batch_size == 1 (the add() itself seals).
        return (
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.int64),
            arrival.copy(),
            np.full(n, max_batch_size == 1, dtype=bool),
            arrival.copy(),
            request_id.copy(),
            n,
        )
    starts: List[int] = []
    counts: List[int] = []
    sealed: List[float] = []
    by_size: List[bool] = []
    tie_a: List[float] = []
    tie_i: List[int] = []
    i = 0
    while i < n:
        deadline = float(arrival[i]) + max_wait_s
        due = int(np.searchsorted(arrival, deadline, side="right"))
        take = min(max_batch_size, due - i)
        if take == max_batch_size:
            last = i + take - 1
            seal_at, size_trigger = float(arrival[last]), True
            anchor_a, anchor_i = float(arrival[last]), int(request_id[last])
        elif last_arrival_s is not None:
            seal_at = deadline if deadline <= last_arrival_s else last_arrival_s
            size_trigger = False
            anchor_a, anchor_i = float(arrival[i]), int(request_id[i])
        elif deadline < horizon_s:
            # Incremental mode: this timeout seal is final -- every
            # arrival that could still join (<= deadline) has been seen,
            # and the deadline precedes the stream's end (the horizon is
            # itself an arrival), so no end-of-stream clamp applies.
            seal_at, size_trigger = deadline, False
            anchor_a, anchor_i = float(arrival[i]), int(request_id[i])
        else:
            break
        starts.append(i)
        counts.append(take)
        sealed.append(seal_at)
        by_size.append(size_trigger)
        tie_a.append(anchor_a)
        tie_i.append(anchor_i)
        i += take
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
        np.asarray(sealed, dtype=np.float64),
        np.asarray(by_size, dtype=bool),
        np.asarray(tie_a, dtype=np.float64),
        np.asarray(tie_i, dtype=np.int64),
        i,
    )


def _queue_map(specs) -> Tuple[List, np.ndarray]:
    """Map spec indices onto batching queues (one queue per model name).

    Returns ``(queue_specs, queue_of_spec)``: the representative spec
    per queue in first-appearance order (the reference batcher's queue
    creation order) and an int64 lookup from spec index to queue id.
    The table validated that same-name specs are identical.
    """
    queue_ids: dict = {}
    queue_specs: List = []
    queue_of_spec = np.empty(len(specs), dtype=np.int64)
    for idx, spec in enumerate(specs):
        qid = queue_ids.setdefault(spec.name, len(queue_specs))
        if qid == len(queue_specs):
            queue_specs.append(spec)
        queue_of_spec[idx] = qid
    return queue_specs, queue_of_spec


def _group_rows(
    spec_idx: np.ndarray, queue_of_spec: np.ndarray, num_queues: int
) -> List[np.ndarray]:
    """Row indices per queue, each ascending (stream order preserved).

    One O(n) lookup plus one stable argsort replaces the historical
    per-queue ``np.isin`` scan (O(n * queues)); the stable sort keeps
    rows of equal queue id in their original ascending order, so the
    selection is identical to ``np.flatnonzero(np.isin(...))``.
    """
    if num_queues == 1:
        return [np.arange(spec_idx.size, dtype=np.int64)]
    qcol = queue_of_spec[spec_idx]
    counts = np.bincount(qcol, minlength=num_queues)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    order = np.argsort(qcol, kind="stable")
    return [order[offsets[q] : offsets[q + 1]] for q in range(num_queues)]


def _form_queue(
    arrival: np.ndarray,
    request_id: np.ndarray,
    valid_len: np.ndarray,
    spec,
    cost_model: ServiceCostModel,
    max_batch_size: int,
    max_wait_s: float,
    setup_cycles: int,
    frequency_hz: float,
    last_arrival_s: Optional[float] = None,
    horizon_s: Optional[float] = None,
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray, np.ndarray, int]:
    """Phase 1 for one queue: seal batches and price them.

    Returns ``(formed, service_s, energy_pj, consumed)`` where
    ``formed`` is :func:`_form_batches` output (sans consumed count),
    ``service_s``/``energy_pj`` are per-batch cost columns, and
    ``consumed`` counts the leading rows covered.
    """
    f = _form_batches(
        arrival,
        request_id,
        max_batch_size,
        max_wait_s,
        last_arrival_s=last_arrival_s,
        horizon_s=horizon_s,
    )
    starts, counts, consumed = f[0], f[1], f[6]
    if starts.size == 0:
        empty = np.empty(0, dtype=np.float64)
        return f[:6], empty, empty.copy(), consumed
    # Dynamic batching pads members to the batch's longest input; cost
    # lookup is one array-indexing pass over the primed cache.
    padded_len = np.maximum.reduceat(valid_len[:consumed], starts)
    cycles, energy = cost_model.cost_arrays(spec, padded_len)
    service_s = (setup_cycles + cycles * counts) / frequency_hz
    return f[:6], service_s, energy * counts, consumed


def _single_device_chain(
    sealed: np.ndarray, service: np.ndarray, free0: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-device dispatch over batches already in dispatch order.

    The scalar loop is a left fold: ``start = max(sealed, prev_finish);
    finish = start + service``.  Whenever the device never idles,
    ``finish`` is a running sum -- and a seeded ``np.cumsum`` *is* that
    exact left fold, so stretches between idle gaps vectorize without
    changing a single rounding step.  The scan walks windows (doubling
    up to 64k while no gap appears), accepts the prefix up to the first
    idle gap (``sealed > previous finish``), and reseeds there, which
    keeps every accepted value bitwise equal to the loop's.
    """
    n = sealed.size
    start = np.empty(n, dtype=np.float64)
    finish = np.empty(n, dtype=np.float64)
    prev = float(free0)
    i = 0
    window = 64
    while i < n:
        j = min(n, i + window)
        s = sealed[i:j]
        sv = service[i:j]
        first = prev if prev > s[0] else float(s[0])
        f = np.cumsum(np.concatenate(([first], sv)))[1:]
        gaps = np.flatnonzero(s[1:] > f[:-1])
        if gaps.size == 0:
            take = j - i
            window = min(window * 2, 65536)
        else:
            take = int(gaps[0]) + 1
        start[i] = first
        start[i + 1 : i + take] = f[: take - 1]
        finish[i : i + take] = f[:take]
        prev = float(f[take - 1])
        i += take
    return start, finish


def _dispatch(
    sealed_s: np.ndarray,
    service_s: np.ndarray,
    energy_pj: np.ndarray,
    size_sealed: np.ndarray,
    tie_arrival: np.ndarray,
    tie_id: np.ndarray,
    free_at: List[float],
    busy_s: List[float],
    energy_by_device: List[float],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """K-server FIFO dispatch of one globally ordered batch set.

    Sorts the batches into the reference event loop's dispatch order
    (size seals happen inside an arrival event, which outranks a
    timeout flush at the same instant, hence the ``~size_sealed``
    rank), runs them over the device pool, and mutates the carried
    ``free_at`` / ``busy_s`` / ``energy_by_device`` state in place --
    the chunked driver calls this once per flush and the carried state
    makes the flush sequence bitwise equal to one whole-stream pass.
    Returns per-batch ``(start, finish, device)`` in input order.
    """
    num_batches = sealed_s.size
    batch_start = np.empty(num_batches, dtype=np.float64)
    batch_finish = np.empty(num_batches, dtype=np.float64)
    batch_device = np.empty(num_batches, dtype=np.int64)
    if num_batches == 0:
        return batch_start, batch_finish, batch_device
    order = np.lexsort((tie_id, tie_arrival, ~size_sealed, sealed_s))
    if len(free_at) == 1:
        sv = service_s[order]
        st, fin = _single_device_chain(sealed_s[order], sv, free_at[0])
        batch_start[order] = st
        batch_finish[order] = fin
        batch_device[:] = 0
        free_at[0] = float(fin[-1])
        # Seeded cumsum == the loop's sequential ``+=`` left fold.
        busy_s[0] = float(np.cumsum(np.concatenate(([busy_s[0]], sv)))[-1])
        energy_by_device[0] = float(
            np.cumsum(np.concatenate(([energy_by_device[0]], energy_pj[order])))[-1]
        )
    else:
        for b in order:
            start = sealed_s[b]
            earliest = min(free_at)
            if earliest > start:
                start = earliest
            # The reference scans devices in index order at the dispatch
            # instant: the *lowest-index idle* device takes the batch,
            # not necessarily the earliest-freed one.
            for device in range(len(free_at)):
                if free_at[device] <= start:
                    break
            service = float(service_s[b])
            finish = start + service
            free_at[device] = finish
            busy_s[device] += service
            energy_by_device[device] += float(energy_pj[b])
            batch_start[b] = start
            batch_finish[b] = finish
            batch_device[b] = device
    return batch_start, batch_finish, batch_device


def simulate_table(
    table: RequestTable,
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    recorder: Optional[TraceRecorder] = None,
    threads: int = 1,
    faults=None,
    retry=None,
    _formed: Optional[dict] = None,
) -> "ColumnarServingResult | DecodeColumnarResult":
    """Run one deployment over a columnar stream; the fast path.

    Generative tables (an ``output_len`` column present) route to the
    event-driven decode engine and return a
    :class:`~repro.serving.decode.DecodeColumnarResult` instead --
    same knobs, same bitwise-vs-reference contract, per-token
    lifecycle columns.

    Identical knobs and semantics to building ``num_devices``
    :class:`~repro.serving.devices.SprintDevice` plus a
    :class:`~repro.serving.batching.DynamicBatcher` and calling
    :meth:`~repro.serving.scheduler.ServingSimulator.run`, but
    batch-granular: O(requests / mean batch size) light Python
    iterations instead of O(requests) heap events.  Unlike the
    single-use reference simulator, this function carries no run state
    and may be called repeatedly.

    ``recorder`` opts into sim-time tracing: the sampled requests'
    lifecycle spans are emitted from the finished columns after the
    simulation proper, so tracing cannot perturb a single computed
    value -- results are bitwise identical with tracing on or off (and
    the emitted spans bitwise match the reference loop's).

    ``threads > 1`` runs phase 1 (per-queue batch formation + cost
    lookup, embarrassingly parallel and numpy-heavy, so the GIL is
    mostly released) across a thread pool -- results stay bitwise
    identical at every thread count.  ``_formed`` is the process-shard
    injection point (:func:`repro.runtime.pool.simulate_table_sharded`):
    a dict of queue id -> precomputed phase-1 parts for the canonically
    sorted table.

    ``faults`` (a :class:`~repro.serving.faults.FaultSchedule`) routes
    to the unified fault-mode event core
    (:func:`~repro.serving.faults.simulate_faulty_table`) and returns a
    :class:`~repro.serving.faults.FaultColumnarResult`; ``retry``
    customizes its :class:`~repro.serving.faults.RetryPolicy`.  With
    ``faults=None`` the no-fault fast path below runs untouched.
    """
    if faults is not None:
        from repro.serving.faults import simulate_faulty_table

        if _formed is not None:
            raise ValueError(
                "sharded batch formation does not apply under fault injection"
            )
        return simulate_faulty_table(
            table,
            cost_model,
            faults,
            retry=retry,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            recorder=recorder,
        )
    if retry is not None:
        raise ValueError("a retry policy requires a fault schedule")
    if table.output_len is not None:
        # Generative traffic: decode-step readiness depends on device
        # timing, so batch formation cannot be precomputed -- route to
        # the event-driven columnar decode engine.  ``threads``
        # parallelizes its phase 1 (per-queue cost-vector
        # construction); the event loop itself stays sequential.
        from repro.serving.decode import simulate_decode_table

        if _formed is not None:
            raise ValueError(
                "sharded batch formation does not apply to generative tables"
            )
        return simulate_decode_table(
            table,
            cost_model,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            recorder=recorder,
            threads=threads,
        )
    if len(table) == 0:
        raise ValueError("request stream must not be empty")
    if num_devices < 1:
        raise ValueError("at least one device required")
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    if max_wait_s < 0:
        raise ValueError("max_wait_s must be non-negative")
    if threads < 1:
        raise ValueError("threads must be positive")
    if np.unique(table.request_id).size != len(table):
        raise ValueError("duplicate request id in stream")

    order = np.lexsort((table.request_id, table.arrival_s))
    table = RequestTable(
        specs=table.specs,
        request_id=table.request_id[order],
        arrival_s=table.arrival_s[order],
        spec_idx=table.spec_idx[order],
        valid_len=table.valid_len[order],
        deadline_s=(
            None if table.deadline_s is None else table.deadline_s[order]
        ),
    )
    n = len(table)
    last_arrival_s = float(table.arrival_s[n - 1])
    frequency_hz = cost_model.config.frequency_ghz * 1e9

    # ------------------------------------------------------------------
    # Phase 1: per-model batch formation (device-independent).  One
    # queue per model *name*, like the reference batcher: a spec list
    # may carry the same model under several indices (a mix that
    # repeats a model), and those requests share one queue.
    # ------------------------------------------------------------------
    queue_specs, queue_of_spec = _queue_map(table.specs)
    rows_list = _group_rows(table.spec_idx, queue_of_spec, len(queue_specs))
    active = [qid for qid in range(len(queue_specs)) if rows_list[qid].size]

    def _one_queue(qid: int):
        rows = rows_list[qid]
        return _form_queue(
            table.arrival_s[rows],
            table.request_id[rows],
            table.valid_len[rows],
            queue_specs[qid],
            cost_model,
            max_batch_size,
            max_wait_s,
            setup_cycles,
            frequency_hz,
            last_arrival_s=last_arrival_s,
        )

    if _formed is not None:
        per_queue = [_formed[qid] for qid in active]
    elif threads > 1 and len(active) > 1:
        # Fault every cold length bucket serially first: the threaded
        # workers then only read the memo dict (plus GIL-free numpy),
        # and the fault order stays deterministic.
        for qid in active:
            cost_model.prime(queue_specs[qid], table.valid_len[rows_list[qid]])
        with ThreadPoolExecutor(max_workers=min(threads, len(active))) as pool:
            per_queue = list(pool.map(_one_queue, active))
    else:
        per_queue = [_one_queue(qid) for qid in active]

    model_rows: List[np.ndarray] = []
    model_slices: List[Tuple[int, int]] = []
    form_columns: List[Tuple[np.ndarray, ...]] = []
    service_parts: List[np.ndarray] = []
    energy_parts: List[np.ndarray] = []
    total = 0
    for qid, (formed, service, energy, _consumed) in zip(active, per_queue):
        model_rows.append(rows_list[qid])
        model_slices.append((total, total + formed[0].size))
        form_columns.append(formed)
        service_parts.append(service)
        energy_parts.append(energy)
        total += formed[0].size

    member_count = np.concatenate([f[1] for f in form_columns])
    sealed_s = np.concatenate([f[2] for f in form_columns])
    size_sealed = np.concatenate([f[3] for f in form_columns])
    tie_arrival = np.concatenate([f[4] for f in form_columns])
    tie_id = np.concatenate([f[5] for f in form_columns])
    service_s = np.concatenate(service_parts)
    energy_pj = np.concatenate(energy_parts)
    num_batches = member_count.size

    # ------------------------------------------------------------------
    # Phase 2: k-server FIFO dispatch over batches in global seal order.
    # ------------------------------------------------------------------
    free_at = [0.0] * num_devices
    busy_s = [0.0] * num_devices
    energy_by_device = [0.0] * num_devices
    batch_start, batch_finish, batch_device = _dispatch(
        sealed_s,
        service_s,
        energy_pj,
        size_sealed,
        tie_arrival,
        tie_id,
        free_at,
        busy_s,
        energy_by_device,
    )

    # ------------------------------------------------------------------
    # Phase 3: scatter per-batch outcomes back to per-request columns.
    # A model's batches tile its sorted rows in formation order, so one
    # repeat() per model covers every member.
    # ------------------------------------------------------------------
    batched_col = np.empty(n, dtype=np.float64)
    start_col = np.empty(n, dtype=np.float64)
    finish_col = np.empty(n, dtype=np.float64)
    size_col = np.empty(n, dtype=np.int64)
    device_col = np.empty(n, dtype=np.int64)
    for rows, (lo, hi) in zip(model_rows, model_slices):
        counts = member_count[lo:hi]
        batched_col[rows] = np.repeat(sealed_s[lo:hi], counts)
        start_col[rows] = np.repeat(batch_start[lo:hi], counts)
        finish_col[rows] = np.repeat(batch_finish[lo:hi], counts)
        size_col[rows] = np.repeat(member_count[lo:hi], counts)
        device_col[rows] = np.repeat(batch_device[lo:hi], counts)

    size_triggered = int(np.count_nonzero(size_sealed))
    if recorder is not None:
        # Post-hoc span emission over the finished columns: the sampled
        # set keys on request id only, so it matches the reference
        # loop's (and any other run of this stream) exactly.
        for i in np.flatnonzero(recorder.config.mask(table.request_id)):
            i = int(i)
            recorder.add_request(
                request_id=int(table.request_id[i]),
                model=table.specs[int(table.spec_idx[i])].name,
                arrival_s=float(table.arrival_s[i]),
                batched_s=float(batched_col[i]),
                service_start_s=float(start_col[i]),
                finish_s=float(finish_col[i]),
                device_id=int(device_col[i]),
                batch_size=int(size_col[i]),
            )
    return ColumnarServingResult(
        table=table,
        batched_s=batched_col,
        service_start_s=start_col,
        finish_s=finish_col,
        batch_size=size_col,
        device_id=device_col,
        start_s=float(table.arrival_s[0]),
        end_s=float(np.max(batch_finish)),
        device_busy_s=busy_s,
        device_energy_pj=energy_by_device,
        batches=int(num_batches),
        size_triggered_batches=size_triggered,
        timeout_triggered_batches=int(num_batches) - size_triggered,
    )


# ----------------------------------------------------------------------
# Out-of-core chunked driver.
# ----------------------------------------------------------------------


@dataclass
class CompletedChunk:
    """Outcome columns for the requests retired by one stream flush.

    Same per-request columns a :class:`ColumnarServingResult` carries,
    but only for the requests whose batches dispatched in this flush,
    in batch-grouped order (row order within a chunk is free; the
    values are bitwise equal to the whole-table run's).  The chunked
    driver hands these forward and drops them -- downstream consumers
    (:func:`repro.serving.metrics.summarize_stream`) fold them into
    fixed-size sketches.
    """

    specs: List
    request_id: np.ndarray
    arrival_s: np.ndarray
    spec_idx: np.ndarray
    valid_len: np.ndarray
    batched_s: np.ndarray
    service_start_s: np.ndarray
    finish_s: np.ndarray
    batch_size: np.ndarray
    device_id: np.ndarray

    def __len__(self) -> int:
        return int(self.request_id.size)

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latency column: arrival to completion."""
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Arrival to service start (batching + dispatch queueing)."""
        return self.service_start_s - self.arrival_s


@dataclass
class StreamedServingResult:
    """Run-level aggregates of a chunked out-of-core simulation.

    Everything a whole-table :class:`ColumnarServingResult` reports
    except the per-request columns themselves, which streamed through
    the ``sink`` as :class:`CompletedChunk` batches.  Every field is
    bitwise equal to the whole-table run's.
    """

    completed: int
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


#: Column layout of a per-queue batch "part": batch-level arrays first
#: (sealed, by_size, tie_arrival, tie_id, service, energy, counts),
#: then member-level arrays (arrival, request_id, valid_len, spec_idx)
#: aligned with ``counts``.
_BATCH_COLS = 7


@dataclass
class _QueueState:
    """One model queue's frontier between chunks.

    ``pend`` is the unsealed tail (provably shorter than the batch
    size bound); ``carry`` holds batches already sealed but not yet
    dispatchable (sealed exactly at the current horizon -- a later
    flush retires them).  Both are O(open batch), not O(stream).
    """

    spec: object
    pend: Tuple[np.ndarray, ...] = field(
        default_factory=lambda: (
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    )
    carry: Optional[Tuple[np.ndarray, ...]] = None


def _advance_queue(
    q: _QueueState,
    cost_model: ServiceCostModel,
    max_batch_size: int,
    max_wait_s: float,
    setup_cycles: int,
    frequency_hz: float,
    horizon_s: Optional[float],
    last_arrival_s: Optional[float],
) -> Optional[Tuple[np.ndarray, ...]]:
    """Seal and price whatever is certain in one queue's pending tail."""
    arr, rid, vlen, sidx = q.pend
    if arr.size == 0:
        return None
    formed, service, energy, consumed = _form_queue(
        arr,
        rid,
        vlen,
        q.spec,
        cost_model,
        max_batch_size,
        max_wait_s,
        setup_cycles,
        frequency_hz,
        last_arrival_s=last_arrival_s,
        horizon_s=horizon_s,
    )
    if consumed == 0:
        return None
    part = (
        formed[2],
        formed[3],
        formed[4],
        formed[5],
        service,
        energy,
        formed[1],
        arr[:consumed],
        rid[:consumed],
        vlen[:consumed],
        sidx[:consumed],
    )
    q.pend = (
        arr[consumed:].copy(),
        rid[consumed:].copy(),
        vlen[consumed:].copy(),
        sidx[consumed:].copy(),
    )
    return part


def _split_carry(
    q: _QueueState,
    part: Optional[Tuple[np.ndarray, ...]],
    horizon_s: Optional[float],
) -> Optional[Tuple[np.ndarray, ...]]:
    """Merge carried batches with newly sealed ones and split on the horizon.

    Only batches sealed *strictly before* the horizon may dispatch: a
    future chunk can still seal batches exactly at the horizon instant
    (size seals anchored on a boundary arrival), and the global
    dispatch order breaks same-instant ties across queues.  Batches at
    the horizon stay carried; ``horizon_s=None`` (end of stream)
    flushes everything.
    """
    if q.carry is not None and part is not None:
        combined = tuple(np.concatenate((c, p)) for c, p in zip(q.carry, part))
    elif q.carry is not None:
        combined = q.carry
    elif part is not None:
        combined = part
    else:
        return None
    if horizon_s is None:
        q.carry = None
        return combined
    sealed = combined[0]
    batch_mask = sealed < horizon_s
    if batch_mask.all():
        q.carry = None
        return combined
    member_mask = np.repeat(batch_mask, combined[_BATCH_COLS - 1])
    held = tuple(a[~batch_mask] for a in combined[:_BATCH_COLS]) + tuple(
        a[~member_mask] for a in combined[_BATCH_COLS:]
    )
    q.carry = held
    if not batch_mask.any():
        return None
    return tuple(a[batch_mask] for a in combined[:_BATCH_COLS]) + tuple(
        a[member_mask] for a in combined[_BATCH_COLS:]
    )


def simulate_stream(
    chunks: Iterable[RequestTable],
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    threads: int = 1,
    sink: Optional[Callable[[CompletedChunk], None]] = None,
    faults=None,
    retry=None,
) -> "StreamedServingResult | DecodeStreamedResult":
    """Out-of-core serving simulation over a chunked request stream.

    Generative streams (first non-empty chunk carries an
    ``output_len`` column) route to the event-driven decode engine:
    ``sink`` then receives :class:`~repro.serving.decode.
    DecodeCompletedChunk` columns and the call returns a
    :class:`~repro.serving.decode.DecodeStreamedResult`.

    With a ``faults`` schedule the run routes to the fault-injection
    engine (:func:`repro.serving.faults.simulate_faulty_stream`):
    ``sink`` then receives :class:`~repro.serving.faults.
    FaultCompletedChunk` columns and the call returns a
    :class:`~repro.serving.faults.FaultStreamedResult`.

    Consumes ``RequestTable`` chunks in arrival order (e.g. from
    :class:`repro.serving.stream.RequestStream`), carrying only the
    O(devices + open batches) frontier between chunks: per-queue
    unsealed tails, sealed-at-horizon batches, device free times, and
    running busy/energy folds.  Completed requests leave immediately
    as :class:`CompletedChunk` columns through ``sink`` -- peak memory
    is one chunk plus the frontier, independent of stream length.

    The equivalence contract matches :func:`simulate_table`: for the
    same concatenated stream and knobs, every per-request column value,
    device busy/energy total, and batch counter is **bitwise equal**
    to the whole-table run (and hence to the reference event loop),
    at every chunk size and thread count.

    Chunks must be non-overlapping and ordered: each chunk's earliest
    (arrival, id) must lexicographically follow the previous chunk's
    latest, and all chunks must share one spec list.  Request-id
    uniqueness is enforced within a chunk; across chunks it is the
    caller's contract (checking it globally would break the O(1)
    memory bound).
    """
    if num_devices < 1:
        raise ValueError("at least one device required")
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    if max_wait_s < 0:
        raise ValueError("max_wait_s must be non-negative")
    if threads < 1:
        raise ValueError("threads must be positive")
    if faults is not None:
        from repro.serving.faults import simulate_faulty_stream

        return simulate_faulty_stream(
            chunks,
            cost_model,
            faults,
            retry=retry,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            sink=sink,
        )
    if retry is not None:
        raise ValueError("a retry policy requires a fault schedule")

    # Peek the first non-empty chunk to route generative streams.
    iterator = iter(chunks)
    first = next(iterator, None)
    while first is not None and len(first) == 0:
        first = next(iterator, None)
    if first is not None and first.output_len is not None:
        from itertools import chain as _chain

        from repro.serving.decode import simulate_decode_stream

        return simulate_decode_stream(
            _chain([first], iterator),
            cost_model,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            sink=sink,
            threads=threads,
        )
    if first is not None:
        from itertools import chain as _chain

        chunks = _chain([first], iterator)
    else:
        chunks = iter(())
    frequency_hz = cost_model.config.frequency_ghz * 1e9

    specs: Optional[List] = None
    queue_specs: List = []
    queue_of_spec = np.empty(0, dtype=np.int64)
    queues: List[_QueueState] = []
    free_at = [0.0] * num_devices
    busy_s = [0.0] * num_devices
    energy_by_device = [0.0] * num_devices
    completed_total = 0
    batches_total = 0
    size_triggered_total = 0
    start_s = 0.0
    end_s = -np.inf
    prev_arrival = -np.inf
    prev_id = -1
    pool: Optional[ThreadPoolExecutor] = None

    def _advance_and_split(qid: int, horizon, last_arrival):
        part = _advance_queue(
            queues[qid],
            cost_model,
            max_batch_size,
            max_wait_s,
            setup_cycles,
            frequency_hz,
            horizon,
            last_arrival,
        )
        return _split_carry(queues[qid], part, horizon)

    def _flush(parts) -> None:
        nonlocal completed_total, batches_total, size_triggered_total, end_s
        if not parts:
            return
        cols = [np.concatenate([p[k] for p in parts]) for k in range(len(parts[0]))]
        sealed, by_size, tie_a, tie_i, service, energy, counts = cols[:_BATCH_COLS]
        b_start, b_finish, b_device = _dispatch(
            sealed,
            service,
            energy,
            by_size,
            tie_a,
            tie_i,
            free_at,
            busy_s,
            energy_by_device,
        )
        batches_total += int(sealed.size)
        size_triggered_total += int(np.count_nonzero(by_size))
        flush_end = float(np.max(b_finish))
        if flush_end > end_s:
            end_s = flush_end
        completed = CompletedChunk(
            specs=specs,
            arrival_s=cols[_BATCH_COLS],
            request_id=cols[_BATCH_COLS + 1],
            valid_len=cols[_BATCH_COLS + 2],
            spec_idx=cols[_BATCH_COLS + 3],
            batched_s=np.repeat(sealed, counts),
            service_start_s=np.repeat(b_start, counts),
            finish_s=np.repeat(b_finish, counts),
            batch_size=np.repeat(counts, counts),
            device_id=np.repeat(b_device, counts),
        )
        completed_total += len(completed)
        if sink is not None:
            sink(completed)

    try:
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            order = np.lexsort((chunk.request_id, chunk.arrival_s))
            arrival = chunk.arrival_s[order]
            request_id = chunk.request_id[order]
            spec_idx = chunk.spec_idx[order]
            valid_len = chunk.valid_len[order]
            if np.unique(request_id).size != request_id.size:
                raise ValueError("duplicate request id in chunk")
            if specs is None:
                specs = list(chunk.specs)
                queue_specs, queue_of_spec = _queue_map(specs)
                queues = [_QueueState(spec) for spec in queue_specs]
                start_s = float(arrival[0])
            elif list(chunk.specs) != specs:
                raise ValueError("chunks disagree on the spec list")
            first_a, first_i = float(arrival[0]), int(request_id[0])
            if first_a < prev_arrival or (
                first_a == prev_arrival and first_i <= prev_id
            ):
                raise ValueError(
                    "chunks out of order: a chunk must start strictly "
                    "after the previous chunk's last (arrival, id)"
                )
            prev_arrival = float(arrival[-1])
            prev_id = int(request_id[-1])
            horizon = prev_arrival

            rows_list = _group_rows(spec_idx, queue_of_spec, len(queues))
            for qid, rows in enumerate(rows_list):
                if rows.size:
                    q = queues[qid]
                    q.pend = (
                        np.concatenate((q.pend[0], arrival[rows])),
                        np.concatenate((q.pend[1], request_id[rows])),
                        np.concatenate((q.pend[2], valid_len[rows])),
                        np.concatenate((q.pend[3], spec_idx[rows])),
                    )
            busy_qids = [
                qid
                for qid in range(len(queues))
                if queues[qid].pend[0].size or queues[qid].carry is not None
            ]
            if threads > 1 and len(busy_qids) > 1:
                for qid in busy_qids:
                    if queues[qid].pend[0].size:
                        cost_model.prime(queues[qid].spec, queues[qid].pend[2])
                if pool is None:
                    pool = ThreadPoolExecutor(max_workers=threads)
                parts = list(
                    pool.map(
                        lambda qid: _advance_and_split(qid, horizon, None),
                        busy_qids,
                    )
                )
            else:
                parts = [_advance_and_split(qid, horizon, None) for qid in busy_qids]
            _flush([p for p in parts if p is not None])

        if specs is None:
            raise ValueError("request stream must not be empty")
        # End of stream: the pending tails seal at the global last
        # arrival and every carried batch dispatches.
        parts = [
            _advance_and_split(qid, None, prev_arrival) for qid in range(len(queues))
        ]
        _flush([p for p in parts if p is not None])
    finally:
        if pool is not None:
            pool.shutdown()

    return StreamedServingResult(
        completed=completed_total,
        start_s=start_s,
        end_s=end_s,
        device_busy_s=busy_s,
        device_energy_pj=energy_by_device,
        batches=batches_total,
        size_triggered_batches=size_triggered_total,
        timeout_triggered_batches=batches_total - size_triggered_total,
    )
