"""The serving event loop: arrivals -> batcher -> devices -> records.

:class:`ServingSimulator` wires the pieces together as a discrete-event
simulation: request arrivals feed the dynamic batcher; sealed batches
enter a FIFO dispatch queue; idle devices pull from it; completions
free the device and stamp every member request's record.  The loop is
fully deterministic -- same requests, same knobs, same result.

This per-request event loop is the serving layer's ``slow_exact``
**reference**: the columnar fast path (:mod:`repro.serving.engine`)
must produce per-request records exactly equal to it, and the
equivalence suite pins that contract across patterns, modes, device
counts, and wait bounds.  Production-size streams should run through
the fast engine; this loop exists to define the semantics and to keep
the fast path honest.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.obs.trace import TraceRecorder
from repro.serving.batching import (
    ContinuousBatcher,
    DynamicBatcher,
    StepBatch,
    StepItem,
)
from repro.serving.devices import SprintDevice
from repro.serving.events import EventKind, EventQueue
from repro.serving.requests import Batch, Request, RequestRecord


@dataclass
class ServingResult:
    """Everything one simulation run produced.

    The fault-layer fields keep their zero defaults on fault-free runs,
    so legacy construction sites and equality checks are untouched.
    """

    records: List[RequestRecord] = field(default_factory=list)
    #: Wall-clock span of the run: first arrival to last completion.
    start_s: float = 0.0
    end_s: float = 0.0
    #: Per-device busy seconds (index = device position).
    device_busy_s: List[float] = field(default_factory=list)
    device_energy_pj: List[float] = field(default_factory=list)
    batches: int = 0
    size_triggered_batches: int = 0
    timeout_triggered_batches: int = 0
    #: Retry dispatches the fault layer scheduled.
    retries: int = 0
    #: Batches lost to mid-execution device failures.
    failed_batches: int = 0
    #: Energy spent on lost (never-delivered) batch work.
    wasted_energy_pj: float = 0.0
    #: :class:`~repro.serving.faults.DroppedRecord` per given-up
    #: request, in drop order.
    dropped: list = field(default_factory=list)
    #: Per-device outage seconds within [start_s, end_s] (empty on
    #: fault-free runs).
    device_downtime_s: List[float] = field(default_factory=list)
    #: (request id, retry instant, attempt number, model name) per
    #: scheduled retry.
    retry_events: list = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def offered(self) -> int:
        return len(self.records) + len(self.dropped)


class ServingSimulator:
    """Simulate one (devices, batcher) deployment over a request stream.

    Parameters
    ----------
    devices:
        One or more :class:`SprintDevice` (multi-chip deployments load-
        balance over them; the first idle device takes the next batch).
    batcher:
        The dynamic batcher; its knobs set the batching/latency trade.
    recorder:
        Optional sim-time :class:`~repro.obs.trace.TraceRecorder`;
        sampled lifecycle spans are emitted from the completed records
        after the event loop finishes, so tracing never perturbs the
        simulation itself.
    faults:
        Optional :class:`~repro.serving.faults.FaultSchedule` (one
        outage trace per device position).  With it in force, a device
        that dies mid-batch loses the batch; members retry under
        ``retry`` or drop (see :mod:`repro.serving.faults`).
    retry:
        :class:`~repro.serving.faults.RetryPolicy` for lost requests;
        defaults to ``RetryPolicy()`` when ``faults`` is given.
    """

    def __init__(
        self,
        devices: Sequence[SprintDevice],
        batcher: DynamicBatcher,
        recorder: Optional[TraceRecorder] = None,
        faults=None,
        retry=None,
    ):
        devices = list(devices)
        if not devices:
            raise ValueError("at least one device required")
        if faults is None:
            if retry is not None:
                raise ValueError("a retry policy requires a fault schedule")
        else:
            faults.validate_for(len(devices))
            if retry is None:
                from repro.serving.faults import RetryPolicy

                retry = RetryPolicy()
        self.devices = devices
        self.batcher = batcher
        self.recorder = recorder
        self.faults = faults
        self.retry = retry
        self._consumed = False

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Process every request to completion; returns the records.

        Single-use: devices and the batcher accumulate wall-clock and
        counter state during a run, so reusing them would corrupt the
        next run's timing.  Build a fresh simulator per stream.
        """
        if self._consumed:
            raise RuntimeError(
                "ServingSimulator.run() is single-use: devices and "
                "batcher carry per-run state; build a new simulator"
            )
        self._consumed = True
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if not requests:
            raise ValueError("request stream must not be empty")
        seen = set()
        for r in requests:
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)

        queue = EventQueue()
        # Sealed batches awaiting a device, FIFO: a deque so the head
        # pop is O(1) instead of list.pop(0)'s O(n) shuffle.
        ready: Deque[Batch] = deque()
        records: Dict[int, RequestRecord] = {}
        arrivals_left = len(requests)
        faults = self.faults
        retry = self.retry
        # Fault-mode state.  A retried request re-enters the batcher
        # as a copy with ``arrival_s`` moved to the retry instant (so
        # the batcher's wait rules apply naturally); ``originals``
        # keeps the true request for records and latency.
        originals: Dict[int, Request] = {}
        failures: Dict[int, int] = {}
        dropped: list = []
        retry_events: list = []
        pending_retries = 0
        retries = 0
        failed_batches = 0
        wasted_energy_pj = 0.0
        if faults is not None:
            from repro.serving.faults import DroppedRecord

            originals = {r.request_id: r for r in requests}

        for r in requests:
            queue.push(r.arrival_s, EventKind.ARRIVAL, r)
        if faults is not None:
            for device_index, up_s in faults.recovery_events():
                queue.push(up_s, EventKind.RECOVERY, device_index)

        def seal(batch: Batch) -> None:
            for member in batch.requests:
                records[member.request_id] = RequestRecord(
                    request=originals.get(member.request_id, member),
                    batched_s=batch.sealed_s,
                    batch_size=batch.size,
                )
            ready.append(batch)

        def dispatch(now_s: float) -> None:
            nonlocal failed_batches, wasted_energy_pj
            while ready:
                at = -1
                for i, d in enumerate(self.devices):
                    if d.is_idle(now_s) and (
                        faults is None or faults.is_up(i, now_s)
                    ):
                        at = i
                        break
                if at < 0:
                    return
                device = self.devices[at]
                batch = ready.popleft()
                if faults is not None:
                    fail_s = faults.next_down_after(at, now_s)
                    if fail_s < now_s + device.service_time_s(batch):
                        # Preordained loss: the device dies mid-batch.
                        wasted_energy_pj += device.lose_batch(batch, now_s, fail_s)
                        failed_batches += 1
                        queue.push(fail_s, EventKind.BATCH_FAILED, batch)
                        continue
                finish = device.start_batch(batch, now_s)
                for member in batch.requests:
                    rec = records[member.request_id]
                    rec.service_start_s = now_s
                    rec.finish_s = finish
                    rec.device_id = device.device_id
                queue.push(finish, EventKind.DEVICE_DONE, batch)

        while queue:
            event = queue.pop()
            now = event.time_s
            if event.kind == EventKind.ARRIVAL:
                arrivals_left -= 1
                sealed = self.batcher.add(event.payload, now)
                if sealed is not None:
                    seal(sealed)
                elif self.batcher.max_wait_s > 0:
                    queue.push(
                        self.batcher.deadline_for(event.payload),
                        EventKind.BATCH_TIMEOUT,
                    )
                elif faults is None:
                    # Zero wait: the request never lingers in the
                    # batcher; seal its (possibly singleton) queue now.
                    # (Fault mode runs the same flush post-event, where
                    # retry re-admissions share it.)
                    for b in self.batcher.flush_due(now):
                        seal(b)
                if faults is None and arrivals_left == 0 and self.batcher.pending:
                    # Stream over: don't make the tail wait out its
                    # timeout for batch-mates that will never come.
                    for b in self.batcher.flush_all(now):
                        seal(b)
            elif event.kind == EventKind.BATCH_TIMEOUT:
                for b in self.batcher.flush_due(now):
                    seal(b)
            elif event.kind == EventKind.DEVICE_DONE:
                if faults is not None:
                    for member in event.payload.requests:
                        records[member.request_id].attempts = (
                            failures.get(member.request_id, 0) + 1
                        )
            elif event.kind == EventKind.BATCH_FAILED:
                for member in event.payload.requests:
                    rid = member.request_id
                    f = failures.get(rid, 0) + 1
                    failures[rid] = f
                    original = originals[rid]
                    if f >= retry.max_attempts:
                        dropped.append(DroppedRecord(original, "retries", now, f))
                        continue
                    retry_at = now + retry.backoff_s(f)
                    if (
                        original.deadline_s is not None
                        and retry_at > original.arrival_s + original.deadline_s
                    ):
                        dropped.append(DroppedRecord(original, "deadline", now, f))
                        continue
                    retries += 1
                    pending_retries += 1
                    retry_events.append(
                        (rid, retry_at, f + 1, original.spec.name)
                    )
                    queue.push(
                        retry_at,
                        EventKind.RETRY,
                        dataclasses.replace(original, arrival_s=retry_at),
                    )
            elif event.kind == EventKind.RETRY:
                pending_retries -= 1
                sealed = self.batcher.add(event.payload, now)
                if sealed is not None:
                    seal(sealed)
                elif self.batcher.max_wait_s > 0:
                    queue.push(
                        self.batcher.deadline_for(event.payload),
                        EventKind.BATCH_TIMEOUT,
                    )
            # EventKind.RECOVERY carries no state change: up/down is a
            # pure function of time; the event re-triggers dispatch.
            if faults is not None:
                if self.batcher.max_wait_s == 0 and self.batcher.pending:
                    for b in self.batcher.flush_due(now):
                        seal(b)
                if (
                    arrivals_left == 0
                    and pending_retries == 0
                    and self.batcher.pending
                ):
                    for b in self.batcher.flush_all(now):
                        seal(b)
            dispatch(now)

        if faults is not None:
            # Fleet dead forever with sealed work still queued: those
            # batches can never run; their members strand.
            while ready:
                batch = ready.popleft()
                for member in batch.requests:
                    rid = member.request_id
                    dropped.append(
                        DroppedRecord(
                            originals[rid],
                            "stranded",
                            batch.sealed_s,
                            failures.get(rid, 0),
                        )
                    )
        assert not ready and self.batcher.pending == 0
        dropped_ids = {d.request.request_id for d in dropped}
        result_records = [
            records[r.request_id]
            for r in requests
            if r.request_id not in dropped_ids
        ]
        assert len(result_records) + len(dropped) == len(requests)
        if faults is None:
            end_s = max(rec.finish_s for rec in result_records)
        else:
            end_s = max(
                [rec.finish_s for rec in result_records]
                + [d.dropped_s for d in dropped]
            )
        if self.recorder is not None:
            for rec in result_records:
                self.recorder.add_request(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    arrival_s=rec.request.arrival_s,
                    batched_s=rec.batched_s,
                    service_start_s=rec.service_start_s,
                    finish_s=rec.finish_s,
                    device_id=rec.device_id,
                    batch_size=rec.batch_size,
                )
            if faults is not None:
                from repro.serving.faults import _emit_fault_trace

                _emit_fault_trace(
                    self.recorder,
                    faults,
                    len(self.devices),
                    requests[0].arrival_s,
                    end_s,
                    retry_events,
                )
        return ServingResult(
            records=result_records,
            start_s=requests[0].arrival_s,
            end_s=end_s,
            device_busy_s=[d.busy_s for d in self.devices],
            device_energy_pj=[d.energy_pj for d in self.devices],
            batches=self.batcher.stats.batches_out,
            size_triggered_batches=self.batcher.stats.size_triggered,
            timeout_triggered_batches=self.batcher.stats.timeout_triggered,
            retries=retries,
            failed_batches=failed_batches,
            wasted_energy_pj=wasted_energy_pj,
            dropped=dropped,
            device_downtime_s=(
                []
                if faults is None
                else [
                    faults.downtime_within(i, requests[0].arrival_s, end_s)
                    for i in range(len(self.devices))
                ]
            ),
            retry_events=retry_events,
        )


@dataclass
class DecodeRecord:
    """Per-token lifecycle timestamps for one generative request."""

    request: Request
    #: When the batcher sealed this request's prefill batch.
    prefill_batched_s: float = 0.0
    #: When a device started the prefill batch.
    prefill_start_s: float = 0.0
    #: When the prefill batch finished -- the first output token.
    first_token_s: float = 0.0
    #: When the request's final token step finished.
    finish_s: float = 0.0
    #: Size of the prefill batch the request rode in.
    prefill_batch_size: int = 1
    #: Device that executed the prefill batch.
    prefill_device_id: int = -1
    #: Sum of batch sizes over this request's decode steps (total
    #: batch occupancy its decode tokens experienced; 0 when
    #: ``output_len == 1``).
    decode_slots: int = 0
    #: Dispatch attempts this request needed (1 without faults; the
    #: fault layer counts one per lost step batch plus the success).
    attempts: int = 1

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to prefill completion."""
        return self.first_token_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to the last token."""
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Arrival to prefill service start."""
        return self.prefill_start_s - self.request.arrival_s

    @property
    def tbt_s(self) -> float:
        """Mean time between tokens over the decode phase.

        NaN for single-token requests (no decode steps to average).
        """
        steps = self.request.output_len - 1
        if steps < 1:
            return float("nan")
        return (self.finish_s - self.first_token_s) / steps


@dataclass
class GenerativeResult:
    """Everything one generative (continuous-batching) run produced."""

    records: List[DecodeRecord] = field(default_factory=list)
    start_s: float = 0.0
    end_s: float = 0.0
    device_busy_s: List[float] = field(default_factory=list)
    device_energy_pj: List[float] = field(default_factory=list)
    #: Token-step batches dispatched (prefill + decode).
    batches: int = 0
    prefill_batches: int = 0
    decode_batches: int = 0
    size_triggered_batches: int = 0
    timeout_triggered_batches: int = 0
    #: Tokens generated across all *completed* requests (= total steps
    #: executed; equals the whole stream's tokens without faults).
    total_tokens: int = 0
    retries: int = 0
    failed_batches: int = 0
    wasted_energy_pj: float = 0.0
    dropped: list = field(default_factory=list)
    device_downtime_s: List[float] = field(default_factory=list)
    retry_events: list = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def offered(self) -> int:
        return len(self.records) + len(self.dropped)


class GenerativeServingSimulator:
    """Reference event loop for autoregressive (decode) serving.

    The semantic spec for continuous batching on the SPRINT machine,
    mirroring :class:`ServingSimulator`'s structure: arrivals enter as
    prefill :class:`~repro.serving.batching.StepItem` work; every
    batch completion re-admits its unfinished members as decode steps
    at the finish instant (device slots free per token); the
    :class:`~repro.serving.batching.ContinuousBatcher` seals mixed
    prefill/decode queues under the same size/wait rules.  Timing
    rules, event priorities, FIFO dispatch, and the lowest-index-idle
    device choice are identical to the prefill-only loop, and with
    every ``output_len == 1`` this loop degenerates to it exactly
    (same batches, same floats).  The columnar fast path
    (:mod:`repro.serving.decode`) is pinned bitwise-equal to this
    loop.

    End-of-stream rule: when no future steps can ever join (all
    arrivals seen and no unfinished request is in flight), pending
    queues flush immediately instead of waiting out their timeout --
    the generative extension of the reference loop's tail flush.
    """

    def __init__(
        self,
        devices: Sequence[SprintDevice],
        batcher: ContinuousBatcher,
        recorder: Optional[TraceRecorder] = None,
        faults=None,
        retry=None,
    ):
        devices = list(devices)
        if not devices:
            raise ValueError("at least one device required")
        if faults is None:
            if retry is not None:
                raise ValueError("a retry policy requires a fault schedule")
        else:
            faults.validate_for(len(devices))
            if retry is None:
                from repro.serving.faults import RetryPolicy

                retry = RetryPolicy()
        self.devices = devices
        self.batcher = batcher
        self.recorder = recorder
        self.faults = faults
        self.retry = retry
        self._consumed = False

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> GenerativeResult:
        """Process every request's every token step to completion."""
        if self._consumed:
            raise RuntimeError(
                "GenerativeServingSimulator.run() is single-use: devices "
                "and batcher carry per-run state; build a new simulator"
            )
        self._consumed = True
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if not requests:
            raise ValueError("request stream must not be empty")
        seen = set()
        for r in requests:
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)

        queue = EventQueue()
        ready: Deque[StepBatch] = deque()
        records: Dict[int, DecodeRecord] = {}
        arrivals_left = len(requests)
        #: Unfinished steps downstream of the batcher (sealed or
        #: executing): while any exist, more work will re-enter.
        in_flight_rejoiners = 0
        prefill_batches = 0
        decode_batches = 0
        faults = self.faults
        retry = self.retry
        failures: Dict[int, int] = {}
        dropped: list = []
        retry_events: list = []
        pending_retries = 0
        retries = 0
        failed_batches = 0
        wasted_energy_pj = 0.0
        if faults is not None:
            from repro.serving.faults import DroppedRecord

        for r in requests:
            queue.push(r.arrival_s, EventKind.ARRIVAL, r)
        if faults is not None:
            for device_index, up_s in faults.recovery_events():
                queue.push(up_s, EventKind.RECOVERY, device_index)

        def seal(batch: StepBatch) -> None:
            nonlocal in_flight_rejoiners, prefill_batches, decode_batches
            if batch.decode:
                decode_batches += 1
            else:
                prefill_batches += 1
                for item in batch.items:
                    rec = records[item.request.request_id]
                    rec.prefill_batched_s = batch.sealed_s
                    rec.prefill_batch_size = batch.size
            in_flight_rejoiners += sum(1 for item in batch.items if not item.is_last)
            ready.append(batch)

        def admit(item: StepItem, now_s: float) -> None:
            sealed = self.batcher.add(item, now_s)
            if sealed is not None:
                seal(sealed)
            elif self.batcher.max_wait_s > 0:
                queue.push(
                    self.batcher.deadline_for(item),
                    EventKind.BATCH_TIMEOUT,
                )

        def dispatch(now_s: float) -> None:
            nonlocal failed_batches, wasted_energy_pj
            while ready:
                at = -1
                for i, d in enumerate(self.devices):
                    if d.is_idle(now_s) and (
                        faults is None or faults.is_up(i, now_s)
                    ):
                        at = i
                        break
                if at < 0:
                    return
                device = self.devices[at]
                batch = ready.popleft()
                if faults is not None:
                    fail_s = faults.next_down_after(at, now_s)
                    service = device.step_service_time_s(
                        batch.spec, batch.max_context_len, batch.size, batch.decode
                    )
                    if fail_s < now_s + service:
                        # Preordained loss: the device dies mid-step.
                        wasted_energy_pj += device.lose_step_batch(
                            batch.spec,
                            batch.max_context_len,
                            batch.size,
                            batch.decode,
                            now_s,
                            fail_s,
                        )
                        failed_batches += 1
                        queue.push(fail_s, EventKind.BATCH_FAILED, batch)
                        continue
                finish = device.start_step_batch(
                    batch.spec,
                    batch.max_context_len,
                    batch.size,
                    batch.decode,
                    now_s,
                )
                if not batch.decode:
                    for item in batch.items:
                        rec = records[item.request.request_id]
                        rec.prefill_start_s = now_s
                        rec.prefill_device_id = device.device_id
                queue.push(finish, EventKind.DEVICE_DONE, batch)

        while queue:
            event = queue.pop()
            now = event.time_s
            if event.kind == EventKind.ARRIVAL:
                arrivals_left -= 1
                r = event.payload
                records[r.request_id] = DecodeRecord(request=r)
                admit(StepItem(request=r, step=0, ready_s=now), now)
            elif event.kind == EventKind.BATCH_TIMEOUT:
                for b in self.batcher.flush_due(now):
                    seal(b)
            elif event.kind == EventKind.DEVICE_DONE:
                batch = event.payload
                size = batch.size
                for item in batch.items:
                    rec = records[item.request.request_id]
                    if batch.decode:
                        rec.decode_slots += size
                    else:
                        rec.first_token_s = now
                    if item.is_last:
                        rec.finish_s = now
                        if faults is not None:
                            rec.attempts = (
                                failures.get(item.request.request_id, 0) + 1
                            )
                    else:
                        in_flight_rejoiners -= 1
                        admit(
                            StepItem(
                                request=item.request,
                                step=item.step + 1,
                                ready_s=now,
                            ),
                            now,
                        )
            elif event.kind == EventKind.BATCH_FAILED:
                batch = event.payload
                for item in batch.items:
                    if not item.is_last:
                        in_flight_rejoiners -= 1
                    rid = item.request.request_id
                    f = failures.get(rid, 0) + 1
                    failures[rid] = f
                    if f >= retry.max_attempts:
                        dropped.append(DroppedRecord(item.request, "retries", now, f))
                        continue
                    retry_at = now + retry.backoff_s(f)
                    if (
                        item.request.deadline_s is not None
                        and retry_at
                        > item.request.arrival_s + item.request.deadline_s
                    ):
                        dropped.append(DroppedRecord(item.request, "deadline", now, f))
                        continue
                    retries += 1
                    pending_retries += 1
                    retry_events.append(
                        (rid, retry_at, f + 1, item.request.spec.name)
                    )
                    queue.push(
                        retry_at,
                        EventKind.RETRY,
                        StepItem(
                            request=item.request,
                            step=item.step,
                            ready_s=retry_at,
                        ),
                    )
            elif event.kind == EventKind.RETRY:
                pending_retries -= 1
                admit(event.payload, now)
            # EventKind.RECOVERY carries no state change: up/down is a
            # pure function of time; the event re-triggers dispatch.
            if self.batcher.max_wait_s == 0 and self.batcher.pending:
                # Zero wait: no step lingers in the batcher; seal the
                # (possibly singleton) queues this event populated.
                for b in self.batcher.flush_due(now):
                    seal(b)
            if (
                arrivals_left == 0
                and in_flight_rejoiners == 0
                and pending_retries == 0
                and self.batcher.pending
            ):
                # No future step can ever join: don't make the tail
                # wait out its timeout for batch-mates that won't come.
                for b in self.batcher.flush_all(now):
                    seal(b)
            dispatch(now)

        if faults is not None:
            # Fleet dead forever with sealed work still queued: those
            # steps can never run; their requests strand.
            while ready:
                batch = ready.popleft()
                for item in batch.items:
                    if not item.is_last:
                        in_flight_rejoiners -= 1
                    rid = item.request.request_id
                    dropped.append(
                        DroppedRecord(
                            item.request,
                            "stranded",
                            batch.sealed_s,
                            failures.get(rid, 0),
                        )
                    )
        assert not ready and self.batcher.pending == 0
        assert in_flight_rejoiners == 0
        dropped_ids = {d.request.request_id for d in dropped}
        result_records = [
            records[r.request_id]
            for r in requests
            if r.request_id not in dropped_ids
        ]
        assert len(result_records) + len(dropped) == len(requests)
        if faults is None:
            end_s = max(rec.finish_s for rec in result_records)
        else:
            end_s = max(
                [rec.finish_s for rec in result_records]
                + [d.dropped_s for d in dropped]
            )
        if self.recorder is not None:
            for rec in result_records:
                self.recorder.add_request(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    arrival_s=rec.request.arrival_s,
                    batched_s=rec.prefill_batched_s,
                    service_start_s=rec.prefill_start_s,
                    finish_s=rec.finish_s,
                    device_id=rec.prefill_device_id,
                    batch_size=rec.prefill_batch_size,
                )
                self.recorder.add_decode_phase(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    first_token_s=rec.first_token_s,
                    finish_s=rec.finish_s,
                    tokens=rec.request.output_len - 1,
                )
            if faults is not None:
                from repro.serving.faults import _emit_fault_trace

                _emit_fault_trace(
                    self.recorder,
                    faults,
                    len(self.devices),
                    requests[0].arrival_s,
                    end_s,
                    retry_events,
                )
        return GenerativeResult(
            records=result_records,
            start_s=requests[0].arrival_s,
            end_s=end_s,
            device_busy_s=[d.busy_s for d in self.devices],
            device_energy_pj=[d.energy_pj for d in self.devices],
            batches=self.batcher.stats.batches_out,
            prefill_batches=prefill_batches,
            decode_batches=decode_batches,
            size_triggered_batches=self.batcher.stats.size_triggered,
            timeout_triggered_batches=self.batcher.stats.timeout_triggered,
            total_tokens=sum(rec.request.output_len for rec in result_records),
            retries=retries,
            failed_batches=failed_batches,
            wasted_energy_pj=wasted_energy_pj,
            dropped=dropped,
            device_downtime_s=(
                []
                if faults is None
                else [
                    faults.downtime_within(i, requests[0].arrival_s, end_s)
                    for i in range(len(self.devices))
                ]
            ),
            retry_events=retry_events,
        )
