"""The serving event loop: arrivals -> batcher -> devices -> records.

:class:`ServingSimulator` wires the pieces together as a discrete-event
simulation: request arrivals feed the dynamic batcher; sealed batches
enter a FIFO dispatch queue; idle devices pull from it; completions
free the device and stamp every member request's record.  The loop is
fully deterministic -- same requests, same knobs, same result.

This per-request event loop is the serving layer's ``slow_exact``
**reference**: the columnar fast path (:mod:`repro.serving.engine`)
must produce per-request records exactly equal to it, and the
equivalence suite pins that contract across patterns, modes, device
counts, and wait bounds.  Production-size streams should run through
the fast engine; this loop exists to define the semantics and to keep
the fast path honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.obs.trace import TraceRecorder
from repro.serving.batching import DynamicBatcher
from repro.serving.devices import SprintDevice
from repro.serving.events import EventKind, EventQueue
from repro.serving.requests import Batch, Request, RequestRecord


@dataclass
class ServingResult:
    """Everything one simulation run produced."""

    records: List[RequestRecord] = field(default_factory=list)
    #: Wall-clock span of the run: first arrival to last completion.
    start_s: float = 0.0
    end_s: float = 0.0
    #: Per-device busy seconds (index = device position).
    device_busy_s: List[float] = field(default_factory=list)
    device_energy_pj: List[float] = field(default_factory=list)
    batches: int = 0
    size_triggered_batches: int = 0
    timeout_triggered_batches: int = 0

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.records)


class ServingSimulator:
    """Simulate one (devices, batcher) deployment over a request stream.

    Parameters
    ----------
    devices:
        One or more :class:`SprintDevice` (multi-chip deployments load-
        balance over them; the first idle device takes the next batch).
    batcher:
        The dynamic batcher; its knobs set the batching/latency trade.
    recorder:
        Optional sim-time :class:`~repro.obs.trace.TraceRecorder`;
        sampled lifecycle spans are emitted from the completed records
        after the event loop finishes, so tracing never perturbs the
        simulation itself.
    """

    def __init__(
        self,
        devices: Sequence[SprintDevice],
        batcher: DynamicBatcher,
        recorder: Optional[TraceRecorder] = None,
    ):
        devices = list(devices)
        if not devices:
            raise ValueError("at least one device required")
        self.devices = devices
        self.batcher = batcher
        self.recorder = recorder
        self._consumed = False

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Process every request to completion; returns the records.

        Single-use: devices and the batcher accumulate wall-clock and
        counter state during a run, so reusing them would corrupt the
        next run's timing.  Build a fresh simulator per stream.
        """
        if self._consumed:
            raise RuntimeError(
                "ServingSimulator.run() is single-use: devices and "
                "batcher carry per-run state; build a new simulator"
            )
        self._consumed = True
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if not requests:
            raise ValueError("request stream must not be empty")
        seen = set()
        for r in requests:
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)

        queue = EventQueue()
        # Sealed batches awaiting a device, FIFO: a deque so the head
        # pop is O(1) instead of list.pop(0)'s O(n) shuffle.
        ready: Deque[Batch] = deque()
        records: Dict[int, RequestRecord] = {}
        arrivals_left = len(requests)

        for r in requests:
            queue.push(r.arrival_s, EventKind.ARRIVAL, r)

        def seal(batch: Batch) -> None:
            for member in batch.requests:
                records[member.request_id] = RequestRecord(
                    request=member,
                    batched_s=batch.sealed_s,
                    batch_size=batch.size,
                )
            ready.append(batch)

        def dispatch(now_s: float) -> None:
            while ready:
                device = next(
                    (d for d in self.devices if d.is_idle(now_s)), None
                )
                if device is None:
                    return
                batch = ready.popleft()
                finish = device.start_batch(batch, now_s)
                for member in batch.requests:
                    rec = records[member.request_id]
                    rec.service_start_s = now_s
                    rec.finish_s = finish
                    rec.device_id = device.device_id
                queue.push(finish, EventKind.DEVICE_DONE, batch)

        while queue:
            event = queue.pop()
            now = event.time_s
            if event.kind == EventKind.ARRIVAL:
                arrivals_left -= 1
                sealed = self.batcher.add(event.payload, now)
                if sealed is not None:
                    seal(sealed)
                elif self.batcher.max_wait_s > 0:
                    queue.push(
                        self.batcher.deadline_for(event.payload),
                        EventKind.BATCH_TIMEOUT,
                    )
                else:
                    # Zero wait: the request never lingers in the
                    # batcher; seal its (possibly singleton) queue now.
                    for b in self.batcher.flush_due(now):
                        seal(b)
                if arrivals_left == 0 and self.batcher.pending:
                    # Stream over: don't make the tail wait out its
                    # timeout for batch-mates that will never come.
                    for b in self.batcher.flush_all(now):
                        seal(b)
            elif event.kind == EventKind.BATCH_TIMEOUT:
                for b in self.batcher.flush_due(now):
                    seal(b)
            elif event.kind == EventKind.DEVICE_DONE:
                pass  # the device's busy_until_s already expired
            dispatch(now)

        assert not ready and self.batcher.pending == 0
        result_records = [records[r.request_id] for r in requests]
        assert len(result_records) == len(requests)
        if self.recorder is not None:
            for rec in result_records:
                self.recorder.add_request(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    arrival_s=rec.request.arrival_s,
                    batched_s=rec.batched_s,
                    service_start_s=rec.service_start_s,
                    finish_s=rec.finish_s,
                    device_id=rec.device_id,
                    batch_size=rec.batch_size,
                )
        return ServingResult(
            records=result_records,
            start_s=requests[0].arrival_s,
            end_s=max(rec.finish_s for rec in result_records),
            device_busy_s=[d.busy_s for d in self.devices],
            device_energy_pj=[d.energy_pj for d in self.devices],
            batches=self.batcher.stats.batches_out,
            size_triggered_batches=self.batcher.stats.size_triggered,
            timeout_triggered_batches=self.batcher.stats.timeout_triggered,
        )
