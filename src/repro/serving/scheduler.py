"""The serving event loop: arrivals -> batcher -> devices -> records.

:class:`ServingSimulator` wires the pieces together as a discrete-event
simulation: request arrivals feed the dynamic batcher; sealed batches
enter a FIFO dispatch queue; idle devices pull from it; completions
free the device and stamp every member request's record.  The loop is
fully deterministic -- same requests, same knobs, same result.

This per-request event loop is the serving layer's ``slow_exact``
**reference**: the columnar fast path (:mod:`repro.serving.engine`)
must produce per-request records exactly equal to it, and the
equivalence suite pins that contract across patterns, modes, device
counts, and wait bounds.  Production-size streams should run through
the fast engine; this loop exists to define the semantics and to keep
the fast path honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.obs.trace import TraceRecorder
from repro.serving.batching import (
    ContinuousBatcher,
    DynamicBatcher,
    StepBatch,
    StepItem,
)
from repro.serving.devices import SprintDevice
from repro.serving.events import EventKind, EventQueue
from repro.serving.requests import Batch, Request, RequestRecord


@dataclass
class ServingResult:
    """Everything one simulation run produced."""

    records: List[RequestRecord] = field(default_factory=list)
    #: Wall-clock span of the run: first arrival to last completion.
    start_s: float = 0.0
    end_s: float = 0.0
    #: Per-device busy seconds (index = device position).
    device_busy_s: List[float] = field(default_factory=list)
    device_energy_pj: List[float] = field(default_factory=list)
    batches: int = 0
    size_triggered_batches: int = 0
    timeout_triggered_batches: int = 0

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.records)


class ServingSimulator:
    """Simulate one (devices, batcher) deployment over a request stream.

    Parameters
    ----------
    devices:
        One or more :class:`SprintDevice` (multi-chip deployments load-
        balance over them; the first idle device takes the next batch).
    batcher:
        The dynamic batcher; its knobs set the batching/latency trade.
    recorder:
        Optional sim-time :class:`~repro.obs.trace.TraceRecorder`;
        sampled lifecycle spans are emitted from the completed records
        after the event loop finishes, so tracing never perturbs the
        simulation itself.
    """

    def __init__(
        self,
        devices: Sequence[SprintDevice],
        batcher: DynamicBatcher,
        recorder: Optional[TraceRecorder] = None,
    ):
        devices = list(devices)
        if not devices:
            raise ValueError("at least one device required")
        self.devices = devices
        self.batcher = batcher
        self.recorder = recorder
        self._consumed = False

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Process every request to completion; returns the records.

        Single-use: devices and the batcher accumulate wall-clock and
        counter state during a run, so reusing them would corrupt the
        next run's timing.  Build a fresh simulator per stream.
        """
        if self._consumed:
            raise RuntimeError(
                "ServingSimulator.run() is single-use: devices and "
                "batcher carry per-run state; build a new simulator"
            )
        self._consumed = True
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if not requests:
            raise ValueError("request stream must not be empty")
        seen = set()
        for r in requests:
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)

        queue = EventQueue()
        # Sealed batches awaiting a device, FIFO: a deque so the head
        # pop is O(1) instead of list.pop(0)'s O(n) shuffle.
        ready: Deque[Batch] = deque()
        records: Dict[int, RequestRecord] = {}
        arrivals_left = len(requests)

        for r in requests:
            queue.push(r.arrival_s, EventKind.ARRIVAL, r)

        def seal(batch: Batch) -> None:
            for member in batch.requests:
                records[member.request_id] = RequestRecord(
                    request=member,
                    batched_s=batch.sealed_s,
                    batch_size=batch.size,
                )
            ready.append(batch)

        def dispatch(now_s: float) -> None:
            while ready:
                device = next((d for d in self.devices if d.is_idle(now_s)), None)
                if device is None:
                    return
                batch = ready.popleft()
                finish = device.start_batch(batch, now_s)
                for member in batch.requests:
                    rec = records[member.request_id]
                    rec.service_start_s = now_s
                    rec.finish_s = finish
                    rec.device_id = device.device_id
                queue.push(finish, EventKind.DEVICE_DONE, batch)

        while queue:
            event = queue.pop()
            now = event.time_s
            if event.kind == EventKind.ARRIVAL:
                arrivals_left -= 1
                sealed = self.batcher.add(event.payload, now)
                if sealed is not None:
                    seal(sealed)
                elif self.batcher.max_wait_s > 0:
                    queue.push(
                        self.batcher.deadline_for(event.payload),
                        EventKind.BATCH_TIMEOUT,
                    )
                else:
                    # Zero wait: the request never lingers in the
                    # batcher; seal its (possibly singleton) queue now.
                    for b in self.batcher.flush_due(now):
                        seal(b)
                if arrivals_left == 0 and self.batcher.pending:
                    # Stream over: don't make the tail wait out its
                    # timeout for batch-mates that will never come.
                    for b in self.batcher.flush_all(now):
                        seal(b)
            elif event.kind == EventKind.BATCH_TIMEOUT:
                for b in self.batcher.flush_due(now):
                    seal(b)
            elif event.kind == EventKind.DEVICE_DONE:
                pass  # the device's busy_until_s already expired
            dispatch(now)

        assert not ready and self.batcher.pending == 0
        result_records = [records[r.request_id] for r in requests]
        assert len(result_records) == len(requests)
        if self.recorder is not None:
            for rec in result_records:
                self.recorder.add_request(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    arrival_s=rec.request.arrival_s,
                    batched_s=rec.batched_s,
                    service_start_s=rec.service_start_s,
                    finish_s=rec.finish_s,
                    device_id=rec.device_id,
                    batch_size=rec.batch_size,
                )
        return ServingResult(
            records=result_records,
            start_s=requests[0].arrival_s,
            end_s=max(rec.finish_s for rec in result_records),
            device_busy_s=[d.busy_s for d in self.devices],
            device_energy_pj=[d.energy_pj for d in self.devices],
            batches=self.batcher.stats.batches_out,
            size_triggered_batches=self.batcher.stats.size_triggered,
            timeout_triggered_batches=self.batcher.stats.timeout_triggered,
        )


@dataclass
class DecodeRecord:
    """Per-token lifecycle timestamps for one generative request."""

    request: Request
    #: When the batcher sealed this request's prefill batch.
    prefill_batched_s: float = 0.0
    #: When a device started the prefill batch.
    prefill_start_s: float = 0.0
    #: When the prefill batch finished -- the first output token.
    first_token_s: float = 0.0
    #: When the request's final token step finished.
    finish_s: float = 0.0
    #: Size of the prefill batch the request rode in.
    prefill_batch_size: int = 1
    #: Device that executed the prefill batch.
    prefill_device_id: int = -1
    #: Sum of batch sizes over this request's decode steps (total
    #: batch occupancy its decode tokens experienced; 0 when
    #: ``output_len == 1``).
    decode_slots: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to prefill completion."""
        return self.first_token_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to the last token."""
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Arrival to prefill service start."""
        return self.prefill_start_s - self.request.arrival_s

    @property
    def tbt_s(self) -> float:
        """Mean time between tokens over the decode phase.

        NaN for single-token requests (no decode steps to average).
        """
        steps = self.request.output_len - 1
        if steps < 1:
            return float("nan")
        return (self.finish_s - self.first_token_s) / steps


@dataclass
class GenerativeResult:
    """Everything one generative (continuous-batching) run produced."""

    records: List[DecodeRecord] = field(default_factory=list)
    start_s: float = 0.0
    end_s: float = 0.0
    device_busy_s: List[float] = field(default_factory=list)
    device_energy_pj: List[float] = field(default_factory=list)
    #: Token-step batches dispatched (prefill + decode).
    batches: int = 0
    prefill_batches: int = 0
    decode_batches: int = 0
    size_triggered_batches: int = 0
    timeout_triggered_batches: int = 0
    #: Tokens generated across all requests (= total steps executed).
    total_tokens: int = 0

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return len(self.records)


class GenerativeServingSimulator:
    """Reference event loop for autoregressive (decode) serving.

    The semantic spec for continuous batching on the SPRINT machine,
    mirroring :class:`ServingSimulator`'s structure: arrivals enter as
    prefill :class:`~repro.serving.batching.StepItem` work; every
    batch completion re-admits its unfinished members as decode steps
    at the finish instant (device slots free per token); the
    :class:`~repro.serving.batching.ContinuousBatcher` seals mixed
    prefill/decode queues under the same size/wait rules.  Timing
    rules, event priorities, FIFO dispatch, and the lowest-index-idle
    device choice are identical to the prefill-only loop, and with
    every ``output_len == 1`` this loop degenerates to it exactly
    (same batches, same floats).  The columnar fast path
    (:mod:`repro.serving.decode`) is pinned bitwise-equal to this
    loop.

    End-of-stream rule: when no future steps can ever join (all
    arrivals seen and no unfinished request is in flight), pending
    queues flush immediately instead of waiting out their timeout --
    the generative extension of the reference loop's tail flush.
    """

    def __init__(
        self,
        devices: Sequence[SprintDevice],
        batcher: ContinuousBatcher,
        recorder: Optional[TraceRecorder] = None,
    ):
        devices = list(devices)
        if not devices:
            raise ValueError("at least one device required")
        self.devices = devices
        self.batcher = batcher
        self.recorder = recorder
        self._consumed = False

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> GenerativeResult:
        """Process every request's every token step to completion."""
        if self._consumed:
            raise RuntimeError(
                "GenerativeServingSimulator.run() is single-use: devices "
                "and batcher carry per-run state; build a new simulator"
            )
        self._consumed = True
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if not requests:
            raise ValueError("request stream must not be empty")
        seen = set()
        for r in requests:
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)

        queue = EventQueue()
        ready: Deque[StepBatch] = deque()
        records: Dict[int, DecodeRecord] = {}
        arrivals_left = len(requests)
        #: Unfinished steps downstream of the batcher (sealed or
        #: executing): while any exist, more work will re-enter.
        in_flight_rejoiners = 0
        prefill_batches = 0
        decode_batches = 0

        for r in requests:
            queue.push(r.arrival_s, EventKind.ARRIVAL, r)

        def seal(batch: StepBatch) -> None:
            nonlocal in_flight_rejoiners, prefill_batches, decode_batches
            if batch.decode:
                decode_batches += 1
            else:
                prefill_batches += 1
                for item in batch.items:
                    rec = records[item.request.request_id]
                    rec.prefill_batched_s = batch.sealed_s
                    rec.prefill_batch_size = batch.size
            in_flight_rejoiners += sum(1 for item in batch.items if not item.is_last)
            ready.append(batch)

        def admit(item: StepItem, now_s: float) -> None:
            sealed = self.batcher.add(item, now_s)
            if sealed is not None:
                seal(sealed)
            elif self.batcher.max_wait_s > 0:
                queue.push(
                    self.batcher.deadline_for(item),
                    EventKind.BATCH_TIMEOUT,
                )

        def dispatch(now_s: float) -> None:
            while ready:
                device = next((d for d in self.devices if d.is_idle(now_s)), None)
                if device is None:
                    return
                batch = ready.popleft()
                finish = device.start_step_batch(
                    batch.spec,
                    batch.max_context_len,
                    batch.size,
                    batch.decode,
                    now_s,
                )
                if not batch.decode:
                    for item in batch.items:
                        rec = records[item.request.request_id]
                        rec.prefill_start_s = now_s
                        rec.prefill_device_id = device.device_id
                queue.push(finish, EventKind.DEVICE_DONE, batch)

        while queue:
            event = queue.pop()
            now = event.time_s
            if event.kind == EventKind.ARRIVAL:
                arrivals_left -= 1
                r = event.payload
                records[r.request_id] = DecodeRecord(request=r)
                admit(StepItem(request=r, step=0, ready_s=now), now)
            elif event.kind == EventKind.BATCH_TIMEOUT:
                for b in self.batcher.flush_due(now):
                    seal(b)
            elif event.kind == EventKind.DEVICE_DONE:
                batch = event.payload
                size = batch.size
                for item in batch.items:
                    rec = records[item.request.request_id]
                    if batch.decode:
                        rec.decode_slots += size
                    else:
                        rec.first_token_s = now
                    if item.is_last:
                        rec.finish_s = now
                    else:
                        in_flight_rejoiners -= 1
                        admit(
                            StepItem(
                                request=item.request,
                                step=item.step + 1,
                                ready_s=now,
                            ),
                            now,
                        )
            if self.batcher.max_wait_s == 0 and self.batcher.pending:
                # Zero wait: no step lingers in the batcher; seal the
                # (possibly singleton) queues this event populated.
                for b in self.batcher.flush_due(now):
                    seal(b)
            if (
                arrivals_left == 0 and in_flight_rejoiners == 0 and self.batcher.pending
            ):
                # No future step can ever join: don't make the tail
                # wait out its timeout for batch-mates that won't come.
                for b in self.batcher.flush_all(now):
                    seal(b)
            dispatch(now)

        assert not ready and self.batcher.pending == 0
        assert in_flight_rejoiners == 0
        result_records = [records[r.request_id] for r in requests]
        if self.recorder is not None:
            for rec in result_records:
                self.recorder.add_request(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    arrival_s=rec.request.arrival_s,
                    batched_s=rec.prefill_batched_s,
                    service_start_s=rec.prefill_start_s,
                    finish_s=rec.finish_s,
                    device_id=rec.prefill_device_id,
                    batch_size=rec.prefill_batch_size,
                )
                self.recorder.add_decode_phase(
                    request_id=rec.request.request_id,
                    model=rec.request.spec.name,
                    first_token_s=rec.first_token_s,
                    finish_s=rec.finish_s,
                    tokens=rec.request.output_len - 1,
                )
        return GenerativeResult(
            records=result_records,
            start_s=requests[0].arrival_s,
            end_s=max(rec.finish_s for rec in result_records),
            device_busy_s=[d.busy_s for d in self.devices],
            device_energy_pj=[d.energy_pj for d in self.devices],
            batches=self.batcher.stats.batches_out,
            prefill_batches=prefill_batches,
            decode_batches=decode_batches,
            size_triggered_batches=self.batcher.stats.size_triggered,
            timeout_triggered_batches=self.batcher.stats.timeout_triggered,
            total_tokens=sum(r.output_len for r in requests),
        )
