"""Inference requests and their lifecycle records.

A :class:`Request` is one user inference call: a model, a (possibly
padded) input length, and an arrival time.  The serving simulators fill
in a :class:`RequestRecord` as the request moves through the dynamic
batcher, the dispatch queue, and a device -- the record carries every
timestamp the tail-latency analysis needs.

Streams exist in two interchangeable representations:

* a list of :class:`Request` objects, consumed by the per-request
  reference event loop (:class:`repro.serving.scheduler.ServingSimulator`);
* a :class:`RequestTable` -- the same stream as struct-of-arrays numpy
  columns, consumed by the columnar fast path
  (:mod:`repro.serving.engine`).

``RequestTable.from_requests`` / ``RequestTable.to_requests`` convert
losslessly between the two.

Autoregressive (generative) traffic adds an ``output_len`` per request:
the prompt (``valid_len`` tokens) is processed by one *prefill* step
that emits the first token, then each further token is one *decode*
step over a context grown by one.  ``output_len == 1`` degenerates to
the historical single-forward-pass request, and a table without the
``output_len`` column is exactly the legacy prefill-only stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.models.zoo import ModelSpec


@dataclass
class Request:
    """One inference request in the arrival stream.

    Attributes
    ----------
    request_id:
        Unique, monotonically increasing within a stream.
    arrival_s:
        Arrival time in seconds from the start of the simulation.
    spec:
        The model this request runs (drawn from the stream's mix).
    valid_len:
        Non-padded tokens in this request's input (drawn around the
        model's mean padding ratio, like the workload generator does).
        For generative requests this is the *prompt* length.
    output_len:
        Tokens the request generates.  ``1`` (the default) is the
        legacy prefill-only request: one forward pass, one result.
        ``k > 1`` adds ``k - 1`` decode steps, each re-entering the
        batcher with context grown by one token; the final context
        ``valid_len + output_len - 1`` must fit in ``spec.seq_len``.
    deadline_s:
        Optional completion deadline in seconds *relative to arrival*.
        Only the fault layer reads it: a lost request is dropped
        instead of retried once its next retry would land past
        ``arrival_s + deadline_s``.  ``None`` (the default) never
        drops.
    """

    request_id: int
    arrival_s: float
    spec: ModelSpec
    valid_len: int
    output_len: int = 1
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.valid_len < 1:
            raise ValueError("valid_len must be positive")
        if self.valid_len > self.spec.seq_len:
            raise ValueError("valid_len exceeds the model's seq_len")
        if self.output_len < 1:
            raise ValueError("output_len must be positive")
        if self.valid_len + self.output_len - 1 > self.spec.seq_len:
            raise ValueError("valid_len + output_len - 1 exceeds the model's seq_len")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError("deadline_s must be positive")


@dataclass
class RequestRecord:
    """Lifecycle timestamps for one completed request (seconds)."""

    request: Request
    #: When the dynamic batcher sealed this request's batch.
    batched_s: float = 0.0
    #: When a device started executing the batch.
    service_start_s: float = 0.0
    #: When the batch (and hence the request) finished.
    finish_s: float = 0.0
    #: Size of the batch the request rode in.
    batch_size: int = 1
    #: Device that executed the batch.
    device_id: int = -1
    #: Dispatch attempts this request needed (1 without faults; the
    #: fault layer counts one per lost batch plus the success).
    attempts: int = 1

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_s - self.request.arrival_s

    @property
    def batching_wait_s(self) -> float:
        """Time spent waiting in the batcher before the batch sealed."""
        return self.batched_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Arrival to service start (batching + dispatch queueing)."""
        return self.service_start_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.service_start_s


@dataclass
class Batch:
    """A group of compatible requests dispatched as one unit."""

    batch_id: int
    requests: list = field(default_factory=list)
    #: When the batcher sealed the batch (size or wait trigger).
    sealed_s: float = 0.0

    def __post_init__(self):
        if not self.requests:
            raise ValueError("a batch needs at least one request")
        specs = {r.spec.name for r in self.requests}
        if len(specs) > 1:
            raise ValueError(f"mixed-model batch: {sorted(specs)}")

    @property
    def spec(self) -> ModelSpec:
        return self.requests[0].spec

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def max_valid_len(self) -> int:
        """Dynamic batching pads every member to the longest input."""
        return max(r.valid_len for r in self.requests)


@dataclass
class RequestTable:
    """A request stream as struct-of-arrays numpy columns.

    The columnar twin of a ``list[Request]``: row ``i`` of every column
    describes one request, and ``specs[spec_idx[i]]`` is its model.
    This is the representation the fast serving engine
    (:mod:`repro.serving.engine`) consumes -- generation, batch
    formation, cost lookup, and metrics all stay in vectorized numpy
    instead of touching per-request Python objects.

    Columns are validated on construction (equal lengths, positive
    ``valid_len`` within each spec's ``seq_len``, in-range ``spec_idx``)
    so the engine can trust them without re-checking per row.
    """

    #: Distinct model specs; ``spec_idx`` indexes into this list.
    specs: List[ModelSpec]
    request_id: np.ndarray
    arrival_s: np.ndarray
    spec_idx: np.ndarray
    valid_len: np.ndarray
    #: Generated tokens per request (``None`` -> legacy prefill-only
    #: stream; every request is one forward pass).
    output_len: Optional[np.ndarray] = None
    #: Per-request completion deadline, seconds relative to arrival
    #: (``None`` -> no deadlines; ``inf`` rows mean no deadline).
    #: Only the fault layer reads this column.
    deadline_s: Optional[np.ndarray] = None

    def __post_init__(self):
        self.request_id = np.asarray(self.request_id, dtype=np.int64)
        self.arrival_s = np.asarray(self.arrival_s, dtype=np.float64)
        self.spec_idx = np.asarray(self.spec_idx, dtype=np.int64)
        self.valid_len = np.asarray(self.valid_len, dtype=np.int64)
        if self.output_len is not None:
            self.output_len = np.asarray(self.output_len, dtype=np.int64)
        if self.deadline_s is not None:
            self.deadline_s = np.asarray(self.deadline_s, dtype=np.float64)
        n = self.request_id.size
        for name in ("arrival_s", "spec_idx", "valid_len"):
            if getattr(self, name).size != n:
                raise ValueError(f"column {name} length != request_id length")
        if self.output_len is not None and self.output_len.size != n:
            raise ValueError("column output_len length != request_id length")
        if self.deadline_s is not None:
            if self.deadline_s.size != n:
                raise ValueError("column deadline_s length != request_id length")
            if n and not np.all(self.deadline_s > 0):
                raise ValueError("deadline_s must be positive")
        if n == 0:
            return
        if not self.specs:
            raise ValueError("a non-empty table needs at least one spec")
        seen: dict = {}
        for spec in self.specs:
            # Batching keys on the model *name* (the reference batcher
            # merges same-name queues), so two specs may share a name
            # only if they are the same model.
            if seen.setdefault(spec.name, spec) != spec:
                raise ValueError(f"conflicting specs share the name {spec.name!r}")
        if self.spec_idx.min() < 0 or self.spec_idx.max() >= len(self.specs):
            raise ValueError("spec_idx out of range")
        if self.valid_len.min() < 1:
            raise ValueError("valid_len must be positive")
        seq_lens = np.array([s.seq_len for s in self.specs], dtype=np.int64)
        if np.any(self.valid_len > seq_lens[self.spec_idx]):
            raise ValueError("valid_len exceeds the model's seq_len")
        if self.output_len is not None:
            if self.output_len.min() < 1:
                raise ValueError("output_len must be positive")
            final_ctx = self.valid_len + self.output_len - 1
            if np.any(final_ctx > seq_lens[self.spec_idx]):
                raise ValueError(
                    "valid_len + output_len - 1 exceeds the model's seq_len"
                )

    def __len__(self) -> int:
        return int(self.request_id.size)

    @property
    def is_generative(self) -> bool:
        """Whether this stream carries decode work (an output_len column)."""
        return self.output_len is not None

    # ------------------------------------------------------------------
    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "RequestTable":
        """Columnarize an object stream (specs dedup by model name)."""
        specs: List[ModelSpec] = []
        index: dict = {}
        spec_idx = np.empty(len(requests), dtype=np.int64)
        for i, r in enumerate(requests):
            at = index.get(r.spec.name)
            if at is None:
                at = index[r.spec.name] = len(specs)
                specs.append(r.spec)
            spec_idx[i] = at
        # The columns stay absent for pure prefill / no-deadline
        # streams so legacy round-trips keep producing legacy tables.
        output_len = None
        if any(r.output_len != 1 for r in requests):
            output_len = np.array([r.output_len for r in requests], dtype=np.int64)
        deadline_s = None
        if any(r.deadline_s is not None for r in requests):
            deadline_s = np.array(
                [np.inf if r.deadline_s is None else r.deadline_s for r in requests],
                dtype=np.float64,
            )
        return cls(
            specs=specs,
            request_id=np.array([r.request_id for r in requests], dtype=np.int64),
            arrival_s=np.array([r.arrival_s for r in requests], dtype=np.float64),
            spec_idx=spec_idx,
            valid_len=np.array([r.valid_len for r in requests], dtype=np.int64),
            output_len=output_len,
            deadline_s=deadline_s,
        )

    def to_requests(self) -> List[Request]:
        """Materialize the object stream (exact same values row-wise)."""
        out = self.output_len
        dl = self.deadline_s
        return [
            Request(
                request_id=int(self.request_id[i]),
                arrival_s=float(self.arrival_s[i]),
                spec=self.specs[int(self.spec_idx[i])],
                valid_len=int(self.valid_len[i]),
                output_len=1 if out is None else int(out[i]),
                deadline_s=(
                    None
                    if dl is None or not np.isfinite(dl[i])
                    else float(dl[i])
                ),
            )
            for i in range(len(self))
        ]

    def head(self, count: int) -> "RequestTable":
        """The first ``count`` rows (a prefix of the stream)."""
        if count < 1:
            raise ValueError("count must be positive")
        if count > len(self):
            raise ValueError(f"count {count} exceeds the table's {len(self)} rows")
        return self.slice(0, count)

    def slice(self, lo: int, hi: int) -> "RequestTable":
        """Rows ``[lo, hi)`` as an independent (copied) table.

        The chunked drivers cut one stream into consecutive slices;
        copies keep a chunk alive without pinning the parent columns.
        """
        if not 0 <= lo < hi <= len(self):
            raise ValueError(f"slice [{lo}, {hi}) out of range for {len(self)} rows")
        out = self.output_len
        dl = self.deadline_s
        return RequestTable(
            specs=self.specs,
            request_id=self.request_id[lo:hi].copy(),
            arrival_s=self.arrival_s[lo:hi].copy(),
            spec_idx=self.spec_idx[lo:hi].copy(),
            valid_len=self.valid_len[lo:hi].copy(),
            output_len=None if out is None else out[lo:hi].copy(),
            deadline_s=None if dl is None else dl[lo:hi].copy(),
        )
