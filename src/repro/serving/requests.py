"""Inference requests and their lifecycle records.

A :class:`Request` is one user inference call: a model, a (possibly
padded) input length, and an arrival time.  The serving simulator fills
in a :class:`RequestRecord` as the request moves through the dynamic
batcher, the dispatch queue, and a device -- the record carries every
timestamp the tail-latency analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.zoo import ModelSpec


@dataclass
class Request:
    """One inference request in the arrival stream.

    Attributes
    ----------
    request_id:
        Unique, monotonically increasing within a stream.
    arrival_s:
        Arrival time in seconds from the start of the simulation.
    spec:
        The model this request runs (drawn from the stream's mix).
    valid_len:
        Non-padded tokens in this request's input (drawn around the
        model's mean padding ratio, like the workload generator does).
    """

    request_id: int
    arrival_s: float
    spec: ModelSpec
    valid_len: int

    def __post_init__(self):
        if self.valid_len < 1:
            raise ValueError("valid_len must be positive")
        if self.valid_len > self.spec.seq_len:
            raise ValueError("valid_len exceeds the model's seq_len")


@dataclass
class RequestRecord:
    """Lifecycle timestamps for one completed request (seconds)."""

    request: Request
    #: When the dynamic batcher sealed this request's batch.
    batched_s: float = 0.0
    #: When a device started executing the batch.
    service_start_s: float = 0.0
    #: When the batch (and hence the request) finished.
    finish_s: float = 0.0
    #: Size of the batch the request rode in.
    batch_size: int = 1
    #: Device that executed the batch.
    device_id: int = -1

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_s - self.request.arrival_s

    @property
    def batching_wait_s(self) -> float:
        """Time spent waiting in the batcher before the batch sealed."""
        return self.batched_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Arrival to service start (batching + dispatch queueing)."""
        return self.service_start_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.service_start_s


@dataclass
class Batch:
    """A group of compatible requests dispatched as one unit."""

    batch_id: int
    requests: list = field(default_factory=list)
    #: When the batcher sealed the batch (size or wait trigger).
    sealed_s: float = 0.0

    def __post_init__(self):
        if not self.requests:
            raise ValueError("a batch needs at least one request")
        specs = {r.spec.name for r in self.requests}
        if len(specs) > 1:
            raise ValueError(f"mixed-model batch: {sorted(specs)}")

    @property
    def spec(self) -> ModelSpec:
        return self.requests[0].spec

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def max_valid_len(self) -> int:
        """Dynamic batching pads every member to the longest input."""
        return max(r.valid_len for r in self.requests)
