"""Deterministic device-fault injection for the serving simulators.

A :class:`FaultSchedule` assigns every device a fixed list of outage
intervals -- either written down directly (:meth:`FaultSchedule
.from_intervals`) or drawn from seeded exponential MTBF/MTTR
generators (:meth:`FaultSchedule.exponential`).  The schedule is
*exogenous*: outages depend only on (seed, device), never on simulated
traffic, so every batch's fate is preordained at dispatch time and the
event loops never roll anything back.  Generated schedules are
materialized up front -- O(expected failures), independent of stream
length -- so chunked (out-of-core) runs replay the exact same outages
no matter how the stream is cut, the fault-layer analogue of
``ArrivalProcess.cursor``.

Failure semantics
-----------------
* A device is *down* over half-open intervals ``[down_s, up_s)``: it
  can start a batch at the exact recovery instant, and a batch that
  finishes exactly when the outage begins completes.
* A batch whose device dies mid-execution is **lost** at the failure
  instant: the device stays occupied until then (the work happened, it
  just produced nothing), the partial energy is accounted as *wasted*,
  and every member re-enters its queue under the :class:`RetryPolicy`
  -- bounded attempts with exponential backoff -- or is dropped once
  its budget or per-request deadline (``Request.deadline_s``, relative
  to arrival) is exhausted.
* If the whole fleet is down forever with sealed work still queued,
  those requests are dropped as ``stranded``.

Both serving paths understand fault schedules: the per-request
reference loops (:mod:`repro.serving.scheduler`) define the semantics,
and :class:`_FaultCore` here is their columnar fast path, pinned
bitwise-equal under every schedule (and equal to the no-fault engines
when the schedule is empty).  Conservation holds by construction:
``completed + dropped == offered``.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import TraceRecorder
from repro.serving.decode import _build_cost_vectors, _queue_map, _validate_knobs
from repro.serving.devices import DEFAULT_SETUP_CYCLES, ServiceCostModel
from repro.serving.requests import Request, RequestTable

_INF = float("inf")

#: Drop-reason codes (the ``drop_reason`` column; 0 = completed).
DROP_NONE = 0
DROP_RETRIES = 1
DROP_DEADLINE = 2
DROP_STRANDED = 3
DROP_REASON_NAMES = {
    DROP_RETRIES: "retries",
    DROP_DEADLINE: "deadline",
    DROP_STRANDED: "stranded",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for lost batches.

    A request's k-th failure (k counted from 1) schedules a retry at
    ``failure_instant + backoff_base_s * backoff_multiplier**(k - 1)``
    unless k has reached ``max_attempts`` (the request is dropped with
    reason ``retries``) or the retry instant overshoots the request's
    absolute deadline (dropped with reason ``deadline``).  Deadlines
    gate *retries only* -- a request that completes on its first
    attempt is never deadline-checked, so fault-free runs are
    untouched by deadline columns.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_s(self, failure_index: int) -> float:
        """Backoff after the ``failure_index``-th failure (1-based)."""
        return self.backoff_base_s * self.backoff_multiplier ** (failure_index - 1)


class DeviceFaultTrace:
    """Sorted, disjoint half-open ``[down_s, up_s)`` outages of one device."""

    __slots__ = ("down_s", "up_s")

    def __init__(self, intervals: Sequence[Tuple[float, float]]):
        downs: List[float] = []
        ups: List[float] = []
        prev_up = 0.0
        for down, up in intervals:
            down = float(down)
            up = float(up)
            if down < 0:
                raise ValueError("outage start must be non-negative")
            if not up > down:
                raise ValueError("outage end must exceed its start")
            if downs and down <= prev_up:
                raise ValueError("outage intervals must be sorted and disjoint")
            downs.append(down)
            ups.append(up)
            prev_up = up
        self.down_s: Tuple[float, ...] = tuple(downs)
        self.up_s: Tuple[float, ...] = tuple(ups)

    def __len__(self) -> int:
        return len(self.down_s)

    def is_up(self, t: float) -> bool:
        idx = bisect_right(self.down_s, t) - 1
        return idx < 0 or t >= self.up_s[idx]

    def next_down_after(self, t: float) -> float:
        """Start of the first outage strictly after ``t`` (inf if none)."""
        idx = bisect_right(self.down_s, t)
        return self.down_s[idx] if idx < len(self.down_s) else _INF

    def downtime_within(self, t0: float, t1: float) -> float:
        """Seconds of outage overlapping ``[t0, t1]``."""
        total = 0.0
        for down, up in zip(self.down_s, self.up_s):
            if down >= t1:
                break
            overlap = min(up, t1) - max(down, t0)
            if overlap > 0:
                total += overlap
        return total


class FaultSchedule:
    """Per-device outage traces; index = device position in the fleet."""

    def __init__(self, traces: Sequence[DeviceFaultTrace]):
        self.traces: List[DeviceFaultTrace] = list(traces)

    def __len__(self) -> int:
        return len(self.traces)

    # ------------------------------------------------------------------
    @classmethod
    def from_intervals(
        cls, intervals_per_device: Sequence[Sequence[Tuple[float, float]]]
    ) -> "FaultSchedule":
        """Fixed outage traces, one interval list per device."""
        return cls([DeviceFaultTrace(iv) for iv in intervals_per_device])

    @classmethod
    def none(cls, num_devices: int) -> "FaultSchedule":
        """An empty schedule: every device is up forever."""
        if num_devices < 1:
            raise ValueError("at least one device required")
        return cls([DeviceFaultTrace(()) for _ in range(num_devices)])

    @classmethod
    def exponential(
        cls,
        num_devices: int,
        mtbf_s: float,
        mttr_s: float,
        horizon_s: float,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Seeded alternating-renewal outages: Exp(mtbf) up, Exp(mttr) down.

        Each device draws from its own ``default_rng([seed, device])``
        stream, so the schedule for device ``d`` is identical no matter
        the fleet size, and the whole schedule is materialized up front
        (outages whose *start* falls before ``horizon_s``), making
        chunked replays exact by construction.
        """
        if num_devices < 1:
            raise ValueError("at least one device required")
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        traces = []
        for device in range(num_devices):
            rng = np.random.default_rng([seed, device])
            t = 0.0
            intervals: List[Tuple[float, float]] = []
            while True:
                t += float(rng.exponential(mtbf_s))
                if t >= horizon_s:
                    break
                down = t
                t += float(rng.exponential(mttr_s))
                intervals.append((down, t))
            traces.append(DeviceFaultTrace(intervals))
        return cls(traces)

    # ------------------------------------------------------------------
    def validate_for(self, num_devices: int) -> None:
        if len(self.traces) != num_devices:
            raise ValueError(
                f"fault schedule covers {len(self.traces)} devices, "
                f"fleet has {num_devices}"
            )

    def is_up(self, device: int, t: float) -> bool:
        return self.traces[device].is_up(t)

    def next_down_after(self, device: int, t: float) -> float:
        return self.traces[device].next_down_after(t)

    def recovery_events(self) -> List[Tuple[int, float]]:
        """(device, recovery instant) for every finite outage end.

        Both engines push these a priori -- a recovery only exists to
        re-trigger dispatch; up/down state itself is a pure function of
        time -- and in the same (device-major, then chronological)
        order, so same-instant tie-breaks agree.
        """
        events = []
        for device, trace in enumerate(self.traces):
            for up in trace.up_s:
                if up < _INF:
                    events.append((device, up))
        return events

    def downtime_within(self, device: int, t0: float, t1: float) -> float:
        return self.traces[device].downtime_within(t0, t1)


@dataclass
class DroppedRecord:
    """One request the fault layer gave up on."""

    request: Request
    #: ``retries`` (attempt budget exhausted), ``deadline`` (the next
    #: retry would land past the request's deadline), or ``stranded``
    #: (the whole fleet died with the request's batch still queued).
    reason: str
    dropped_s: float
    #: Dispatch attempts that actually started (and were lost).
    attempts: int


# Per-request record layout for the columnar fault core (plain lists:
# the hot loop touches these per token step, so attribute access is
# out).  Slots 0..13 mirror :mod:`repro.serving.decode`; the tail adds
# the fault bookkeeping.
_RID = 0  # request id
_ARR = 1  # arrival_s
_SPEC = 2  # spec index
_VLEN = 3  # prompt length
_OLEN = 4  # output length
_LCTX = 5  # final context: vlen + olen - 1
_PFB = 6  # prefill batched (sealed) time
_PFS = 7  # prefill service start
_PFD = 8  # prefill device id
_PFSZ = 9  # prefill batch size
_FT = 10  # first token (prefill finish)
_FIN = 11  # finish (last token)
_DSLOT = 12  # summed decode batch occupancy
_ROW = 13  # global row index (sorted order)
_QID = 14  # batching queue id (model name)
_FLS = 15  # lost dispatches so far
_ADL = 16  # absolute deadline (arrival + deadline_s; inf if none)

# Heap priorities, matching :class:`repro.serving.events.EventKind`.
_P_DONE = 0
_P_TIMEOUT = 2
_P_FAILED = 3
_P_RECOVERY = 4
_P_RETRY = 5


class _FaultCore:
    """Event loop over columnar state with a fault schedule in force.

    The unified fast path for *both* fault-mode reference loops:
    generative streams run step-by-step exactly like
    :class:`~repro.serving.decode._DecodeCore` (minus macro-stepping,
    which assumes fixed batch membership that failures break), and
    prefill streams run as the ``output_len == 1`` degenerate case --
    the generative loop's documented degeneracy makes that exact.
    Heap order (time, priority, push order) matches the reference
    :class:`~repro.serving.events.EventQueue`, with the fault kinds
    BATCH_FAILED(3) < RECOVERY(4) < RETRY(5) after BATCH_TIMEOUT at
    shared instants.
    """

    def __init__(
        self,
        specs: List,
        cost_model: ServiceCostModel,
        num_devices: int,
        max_batch_size: int,
        max_wait_s: float,
        setup_cycles: int,
        schedule: FaultSchedule,
        retry: RetryPolicy,
    ):
        self.specs = specs
        self.queue_specs, self.queue_of_spec = _queue_map(specs)
        self.cost_model = cost_model
        self.num_devices = num_devices
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.zero_wait = max_wait_s == 0
        self.setup_cycles = setup_cycles
        self.frequency_hz = cost_model.config.frequency_ghz * 1e9
        self.schedule = schedule
        self.retry = retry

        # (time, priority, seq, payload); payloads: sealed batch for
        # DONE/FAILED, (record, context) for RETRY, None otherwise.
        self.heap: list = []
        self.seq = 0
        # (queue id, decode?) -> [ready times, records, contexts,
        # rejoiner count]; insertion-ordered like the reference
        # batcher's dict.
        self.queues: dict = {}
        # Sealed batches awaiting a device, FIFO.  Entries:
        # [decode?, records, contexts, service_s, energy_pj_per_sample,
        #  sealed_s, rejoiners].
        self.ready: deque = deque()
        self.free_at = [0.0] * num_devices
        self.busy_s = [0.0] * num_devices
        self.energy_pj = [0.0] * num_devices
        self.vecs: dict = {}
        self.completed: list = []
        #: (record, reason code, drop instant), in event order.
        self.dropped: list = []
        self.in_flight_rejoiners = 0
        self.pending_retries = 0
        self.arrivals_done = False
        self.last_now = 0.0
        self.steps_in = 0
        self.batches = 0
        self.prefill_batches = 0
        self.decode_batches = 0
        self.size_triggered = 0
        self.timeout_triggered = 0
        self.retries = 0
        self.failed_batches = 0
        self.wasted_energy_pj = 0.0
        #: (request id, retry instant, attempt number, model name).
        self.retry_events: list = []
        for _device, up in schedule.recovery_events():
            heappush(self.heap, (up, _P_RECOVERY, self.seq, None))
            self.seq += 1

    # ------------------------------------------------------------------
    def _vectors(self, qid: int, decode: bool, max_ctx: int):
        key = (qid, decode)
        vecs = self.vecs.get(key)
        if vecs is None or max_ctx >= len(vecs[0]):
            cyc, en = _build_cost_vectors(
                self.cost_model, self.queue_specs[qid], decode, max_ctx
            )
            vecs = self.vecs[key] = (cyc.tolist(), en.tolist())
        return vecs

    def _seal(self, key, now: float, by_size: bool) -> None:
        readys, recs, ctxs, rejoiners = self.queues.pop(key)
        qid, decode = key
        size = len(recs)
        mx = max(ctxs)
        vecs = self._vectors(qid, decode, mx)
        service = (self.setup_cycles + vecs[0][mx] * size) / self.frequency_hz
        self.batches += 1
        if decode:
            self.decode_batches += 1
        else:
            self.prefill_batches += 1
            for rec in recs:
                rec[_PFB] = now
                rec[_PFSZ] = size
        if by_size:
            self.size_triggered += 1
        else:
            self.timeout_triggered += 1
        self.in_flight_rejoiners += rejoiners
        self.ready.append([decode, recs, ctxs, service, vecs[1][mx], now, rejoiners])

    def _admit(self, rec, ctx: int, decode: bool, now: float) -> None:
        self.steps_in += 1
        key = (rec[_QID], decode)
        q = self.queues.get(key)
        rejoin = 0 if ctx == rec[_LCTX] else 1
        if q is None:
            self.queues[key] = [[now], [rec], [ctx], rejoin]
            if self.max_batch_size <= 1:
                self._seal(key, now, by_size=True)
            elif self.max_wait_s > 0:
                # One timeout per queue creation: it covers the head's
                # deadline, and a stale pop is a no-op flush_due (the
                # reference pushes one per non-sealing admission; the
                # contract is over outcomes, not pushes).
                heappush(self.heap, (now + self.max_wait_s, _P_TIMEOUT, self.seq, None))
                self.seq += 1
        else:
            q[0].append(now)
            q[1].append(rec)
            q[2].append(ctx)
            q[3] += rejoin
            if len(q[1]) >= self.max_batch_size:
                self._seal(key, now, by_size=True)

    def _flush_due(self, now: float) -> None:
        due = [
            key
            for key, q in self.queues.items()
            if now >= q[0][0] + self.max_wait_s
        ]
        for key in due:
            self._seal(key, now, by_size=False)

    def _drop(self, rec, reason: int, now: float) -> None:
        self.dropped.append((rec, reason, now))

    def _dispatch(self, now: float) -> None:
        traces = self.schedule.traces
        while self.ready:
            dev = -1
            for d in range(self.num_devices):
                if self.free_at[d] <= now and traces[d].is_up(now):
                    dev = d
                    break
            if dev < 0:
                return
            batch = self.ready.popleft()
            service = batch[3]
            size = len(batch[1])
            fail = traces[dev].next_down_after(now)
            if fail < now + service:
                # Preordained loss: the device dies mid-batch.  It
                # stays occupied until the failure; the partial work's
                # energy is wasted, not delivered.
                self.busy_s[dev] += fail - now
                self.free_at[dev] = fail
                self.wasted_energy_pj += batch[4] * size * ((fail - now) / service)
                self.failed_batches += 1
                heappush(self.heap, (fail, _P_FAILED, self.seq, batch))
                self.seq += 1
                continue
            finish = now + service
            self.free_at[dev] = finish
            self.busy_s[dev] += service
            self.energy_pj[dev] += batch[4] * size
            if not batch[0]:
                for rec in batch[1]:
                    rec[_PFS] = now
                    rec[_PFD] = dev
            heappush(self.heap, (finish, _P_DONE, self.seq, batch))
            self.seq += 1

    # ------------------------------------------------------------------
    def _handle(self) -> None:
        now, priority, _, payload = heappop(self.heap)
        if priority == _P_DONE:
            decode, recs, ctxs = payload[0], payload[1], payload[2]
            size = len(recs)
            for k in range(size):
                rec = recs[k]
                if decode:
                    rec[_DSLOT] += size
                else:
                    rec[_FT] = now
                ctx = ctxs[k]
                if ctx == rec[_LCTX]:
                    rec[_FIN] = now
                    self.completed.append(rec)
                else:
                    self.in_flight_rejoiners -= 1
                    self._admit(rec, ctx + 1, True, now)
        elif priority == _P_TIMEOUT:
            if self.queues:
                self._flush_due(now)
        elif priority == _P_FAILED:
            recs, ctxs = payload[1], payload[2]
            self.in_flight_rejoiners -= payload[6]
            retry = self.retry
            for k in range(len(recs)):
                rec = recs[k]
                f = rec[_FLS] + 1
                rec[_FLS] = f
                if f >= retry.max_attempts:
                    self._drop(rec, DROP_RETRIES, now)
                    continue
                retry_at = now + retry.backoff_s(f)
                if retry_at > rec[_ADL]:
                    self._drop(rec, DROP_DEADLINE, now)
                    continue
                self.retries += 1
                self.pending_retries += 1
                self.retry_events.append(
                    (rec[_RID], retry_at, f + 1, self.queue_specs[rec[_QID]].name)
                )
                heappush(self.heap, (retry_at, _P_RETRY, self.seq, (rec, ctxs[k])))
                self.seq += 1
        elif priority == _P_RETRY:
            self.pending_retries -= 1
            rec, ctx = payload
            self._admit(rec, ctx, ctx > rec[_VLEN], now)
        # _P_RECOVERY carries no state change: up/down is a pure
        # function of time; the event exists to re-trigger dispatch.
        self.last_now = now
        if self.zero_wait and self.queues:
            self._flush_due(now)
        if (
            self.arrivals_done
            and self.in_flight_rejoiners == 0
            and self.pending_retries == 0
            and self.queues
        ):
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
        if self.ready:
            self._dispatch(now)

    # ------------------------------------------------------------------
    def run_arrivals(
        self,
        request_id,
        arrival_s,
        spec_idx,
        valid_len,
        output_len,
        deadline_s,
        row_base: int,
    ) -> None:
        heap = self.heap
        qmap = self.queue_of_spec
        for i in range(len(request_id)):
            t = float(arrival_s[i])
            while heap and (heap[0][0] < t or (heap[0][0] == t and heap[0][1] == 0)):
                self._handle()
            v = int(valid_len[i])
            o = int(output_len[i])
            si = int(spec_idx[i])
            rec = [
                int(request_id[i]),
                t,
                si,
                v,
                o,
                v + o - 1,
                0.0,
                0.0,
                -1,
                1,
                0.0,
                0.0,
                0,
                row_base + i,
                qmap[si],
                0,
                t + float(deadline_s[i]) if deadline_s is not None else _INF,
            ]
            self._admit(rec, v, False, t)
            self.last_now = t
            if self.zero_wait and self.queues:
                self._flush_due(t)
            if self.ready:
                self._dispatch(t)

    def finalize(self) -> None:
        self.arrivals_done = True
        if (
            self.in_flight_rejoiners == 0
            and self.pending_retries == 0
            and self.queues
        ):
            now = self.last_now
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
            self._dispatch(now)
        while self.heap:
            self._handle()
        # Fleet dead forever with sealed work still queued: those
        # batches can never run; their members strand.
        while self.ready:
            batch = self.ready.popleft()
            self.in_flight_rejoiners -= batch[6]
            for rec in batch[1]:
                self._drop(rec, DROP_STRANDED, batch[5])
        assert not self.queues
        assert self.in_flight_rejoiners == 0 and self.pending_retries == 0


@dataclass
class FaultColumnarResult:
    """A fault-mode run's per-request columns plus fleet accounting.

    Rows are in canonical (arrival, id) order.  ``completed`` masks
    the rows that finished; dropped rows carry ``drop_reason`` /
    ``dropped_s`` instead of service timestamps.  ``generative``
    selects which reference result :meth:`to_result` rebuilds.
    """

    table: RequestTable
    generative: bool
    completed: np.ndarray
    attempts: np.ndarray
    drop_reason: np.ndarray
    dropped_s: np.ndarray
    #: Row indices of dropped requests in drop-event order (the
    #: reference result's ``dropped`` list order).
    drop_order: np.ndarray
    batched_s: np.ndarray
    service_start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    batch_size: np.ndarray
    device_id: np.ndarray
    decode_slots: np.ndarray
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    device_downtime_s: List[float]
    batches: int
    prefill_batches: int
    decode_batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int
    total_tokens: int
    retries: int
    failed_batches: int
    wasted_energy_pj: float
    retry_events: List[Tuple[int, float, int, str]]

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed_count(self) -> int:
        return int(np.count_nonzero(self.completed))

    @property
    def dropped_count(self) -> int:
        return int(self.drop_order.size)

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latency of the *completed* rows."""
        m = self.completed
        return self.finish_s[m] - self.table.arrival_s[m]

    @property
    def queue_wait_s(self) -> np.ndarray:
        m = self.completed
        return self.service_start_s[m] - self.table.arrival_s[m]

    @property
    def ttft_s(self) -> np.ndarray:
        m = self.completed
        return self.first_token_s[m] - self.table.arrival_s[m]

    @property
    def tbt_s(self) -> np.ndarray:
        """Mean time between tokens of completed multi-token rows."""
        out = self.table.output_len
        if out is None:
            return np.empty(0, dtype=np.float64)
        m = self.completed & (out > 1)
        steps = out[m] - 1
        return (self.finish_s[m] - self.first_token_s[m]) / steps

    # ------------------------------------------------------------------
    def _request_at(self, row: int) -> Request:
        t = self.table
        out = t.output_len
        dl = t.deadline_s
        deadline = None
        if dl is not None and np.isfinite(dl[row]):
            deadline = float(dl[row])
        return Request(
            request_id=int(t.request_id[row]),
            arrival_s=float(t.arrival_s[row]),
            spec=t.specs[int(t.spec_idx[row])],
            valid_len=int(t.valid_len[row]),
            output_len=1 if out is None else int(out[row]),
            deadline_s=deadline,
        )

    def to_result(self):
        """Rebuild the reference result (for the equivalence suite)."""
        from repro.serving.scheduler import (
            DecodeRecord,
            GenerativeResult,
            RequestRecord,
            ServingResult,
        )

        dropped = [
            DroppedRecord(
                request=self._request_at(row),
                reason=DROP_REASON_NAMES[int(self.drop_reason[row])],
                dropped_s=float(self.dropped_s[row]),
                attempts=int(self.attempts[row]),
            )
            for row in self.drop_order
        ]
        rows = np.flatnonzero(self.completed)
        common = dict(
            start_s=self.start_s,
            end_s=self.end_s,
            device_busy_s=list(self.device_busy_s),
            device_energy_pj=list(self.device_energy_pj),
            batches=self.batches,
            size_triggered_batches=self.size_triggered_batches,
            timeout_triggered_batches=self.timeout_triggered_batches,
            retries=self.retries,
            failed_batches=self.failed_batches,
            wasted_energy_pj=self.wasted_energy_pj,
            dropped=dropped,
            device_downtime_s=list(self.device_downtime_s),
            retry_events=list(self.retry_events),
        )
        if self.generative:
            records = [
                DecodeRecord(
                    request=self._request_at(row),
                    prefill_batched_s=float(self.batched_s[row]),
                    prefill_start_s=float(self.service_start_s[row]),
                    first_token_s=float(self.first_token_s[row]),
                    finish_s=float(self.finish_s[row]),
                    prefill_batch_size=int(self.batch_size[row]),
                    prefill_device_id=int(self.device_id[row]),
                    decode_slots=int(self.decode_slots[row]),
                    attempts=int(self.attempts[row]),
                )
                for row in rows
            ]
            return GenerativeResult(
                records=records,
                prefill_batches=self.prefill_batches,
                decode_batches=self.decode_batches,
                total_tokens=self.total_tokens,
                **common,
            )
        records = [
            RequestRecord(
                request=self._request_at(row),
                batched_s=float(self.batched_s[row]),
                service_start_s=float(self.service_start_s[row]),
                finish_s=float(self.finish_s[row]),
                batch_size=int(self.batch_size[row]),
                device_id=int(self.device_id[row]),
                attempts=int(self.attempts[row]),
            )
            for row in rows
        ]
        return ServingResult(records=records, **common)


def _emit_fault_trace(
    recorder: TraceRecorder,
    schedule: FaultSchedule,
    num_devices: int,
    start_s: float,
    end_s: float,
    retry_events: Sequence[Tuple[int, float, int, str]],
) -> None:
    """Shared post-hoc span emission: both engines call this with equal
    inputs, so fault traces stay byte-identical across paths."""
    for device in range(num_devices):
        trace = schedule.traces[device]
        for down, up in zip(trace.down_s, trace.up_s):
            if down < end_s and up > start_s:
                recorder.add_device_fault(
                    device_id=device,
                    down_s=max(down, start_s),
                    up_s=min(up, end_s),
                )
    for request_id, at_s, attempt, model in retry_events:
        recorder.add_retry(
            request_id=request_id, model=model, at_s=at_s, attempt=attempt
        )


def _run_core_result(
    core: _FaultCore,
    table: RequestTable,
    schedule: FaultSchedule,
    num_devices: int,
    recorder: Optional[TraceRecorder],
) -> FaultColumnarResult:
    """Assemble a :class:`FaultColumnarResult` from a finished core."""
    n = len(table)
    generative = table.output_len is not None
    completed = np.zeros(n, dtype=bool)
    attempts = np.zeros(n, dtype=np.int64)
    drop_reason = np.zeros(n, dtype=np.int8)
    dropped_s = np.full(n, np.nan)
    drop_order = np.empty(len(core.dropped), dtype=np.int64)
    batched_s = np.full(n, np.nan)
    service_start_s = np.full(n, np.nan)
    first_token_s = np.full(n, np.nan)
    finish_s = np.full(n, np.nan)
    batch_size = np.zeros(n, dtype=np.int64)
    device_id = np.full(n, -1, dtype=np.int64)
    decode_slots = np.zeros(n, dtype=np.int64)

    end_s = -_INF
    for rec in core.completed:
        row = rec[_ROW]
        completed[row] = True
        attempts[row] = rec[_FLS] + 1
        batched_s[row] = rec[_PFB]
        service_start_s[row] = rec[_PFS]
        first_token_s[row] = rec[_FT]
        finish_s[row] = rec[_FIN]
        batch_size[row] = rec[_PFSZ]
        device_id[row] = rec[_PFD]
        decode_slots[row] = rec[_DSLOT]
        if rec[_FIN] > end_s:
            end_s = rec[_FIN]
    for k, (rec, reason, at) in enumerate(core.dropped):
        row = rec[_ROW]
        drop_order[k] = row
        attempts[row] = rec[_FLS]
        drop_reason[row] = reason
        dropped_s[row] = at
        if at > end_s:
            end_s = at

    start_s = float(table.arrival_s[0])
    end_s = float(end_s)
    total_tokens = (
        int(np.sum(table.output_len[completed])) if generative else int(
            np.count_nonzero(completed)
        )
    )
    result = FaultColumnarResult(
        table=table,
        generative=generative,
        completed=completed,
        attempts=attempts,
        drop_reason=drop_reason,
        dropped_s=dropped_s,
        drop_order=drop_order,
        batched_s=batched_s,
        service_start_s=service_start_s,
        first_token_s=first_token_s,
        finish_s=finish_s,
        batch_size=batch_size,
        device_id=device_id,
        decode_slots=decode_slots,
        start_s=start_s,
        end_s=end_s,
        device_busy_s=list(core.busy_s),
        device_energy_pj=list(core.energy_pj),
        device_downtime_s=[
            schedule.downtime_within(d, start_s, end_s) for d in range(num_devices)
        ],
        batches=core.batches,
        prefill_batches=core.prefill_batches,
        decode_batches=core.decode_batches,
        size_triggered_batches=core.size_triggered,
        timeout_triggered_batches=core.timeout_triggered,
        total_tokens=total_tokens,
        retries=core.retries,
        failed_batches=core.failed_batches,
        wasted_energy_pj=core.wasted_energy_pj,
        retry_events=list(core.retry_events),
    )
    if recorder is not None:
        rows = np.flatnonzero(completed)
        out = table.output_len
        for row in rows:
            spec = table.specs[int(table.spec_idx[row])]
            recorder.add_request(
                request_id=int(table.request_id[row]),
                model=spec.name,
                arrival_s=float(table.arrival_s[row]),
                batched_s=float(batched_s[row]),
                service_start_s=float(service_start_s[row]),
                finish_s=float(finish_s[row]),
                device_id=int(device_id[row]),
                batch_size=int(batch_size[row]),
            )
            if generative:
                recorder.add_decode_phase(
                    request_id=int(table.request_id[row]),
                    model=spec.name,
                    first_token_s=float(first_token_s[row]),
                    finish_s=float(finish_s[row]),
                    tokens=int(out[row]) - 1,
                )
        _emit_fault_trace(
            recorder, schedule, num_devices, start_s, end_s, core.retry_events
        )
    return result


def _sorted_columns(table: RequestTable):
    order = np.lexsort((table.request_id, table.arrival_s))
    sorted_table = RequestTable(
        specs=table.specs,
        request_id=table.request_id[order],
        arrival_s=table.arrival_s[order],
        spec_idx=table.spec_idx[order],
        valid_len=table.valid_len[order],
        output_len=None if table.output_len is None else table.output_len[order],
        deadline_s=None if table.deadline_s is None else table.deadline_s[order],
    )
    if np.unique(sorted_table.request_id).size != len(sorted_table):
        raise ValueError("duplicate request id")
    return sorted_table


def simulate_faulty_table(
    table: RequestTable,
    cost_model: ServiceCostModel,
    faults: FaultSchedule,
    retry: Optional[RetryPolicy] = None,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    recorder: Optional[TraceRecorder] = None,
) -> FaultColumnarResult:
    """Columnar serving with a fault schedule in force.

    Handles prefill-only and generative tables through one unified
    event core; pinned bitwise-equal to the fault-mode reference loops
    (:class:`~repro.serving.scheduler.ServingSimulator` /
    :class:`~repro.serving.scheduler.GenerativeServingSimulator`).
    """
    if len(table) == 0:
        raise ValueError("request table must not be empty")
    _validate_knobs(num_devices, max_batch_size, max_wait_s)
    faults.validate_for(num_devices)
    if retry is None:
        retry = RetryPolicy()
    sorted_table = _sorted_columns(table)
    olen = (
        sorted_table.output_len
        if sorted_table.output_len is not None
        else np.ones(len(sorted_table), dtype=np.int64)
    )
    core = _FaultCore(
        sorted_table.specs,
        cost_model,
        num_devices,
        max_batch_size,
        max_wait_s,
        setup_cycles,
        faults,
        retry,
    )
    core.run_arrivals(
        sorted_table.request_id,
        sorted_table.arrival_s,
        sorted_table.spec_idx,
        sorted_table.valid_len,
        olen,
        sorted_table.deadline_s,
        0,
    )
    core.finalize()
    return _run_core_result(core, sorted_table, faults, num_devices, recorder)


@dataclass
class FaultCompletedChunk:
    """Requests that finished during one streamed chunk (completion
    order), with the per-attempt column the retry sketches fold."""

    generative: bool
    request_id: np.ndarray
    arrival_s: np.ndarray
    output_len: np.ndarray
    attempts: np.ndarray
    batched_s: np.ndarray
    service_start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    batch_size: np.ndarray
    device_id: np.ndarray
    decode_slots: np.ndarray

    def __len__(self) -> int:
        return int(self.request_id.size)

    @property
    def latency_s(self) -> np.ndarray:
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        return self.service_start_s - self.arrival_s

    @property
    def ttft_s(self) -> np.ndarray:
        return self.first_token_s - self.arrival_s

    @property
    def tbt_s(self) -> np.ndarray:
        m = self.output_len > 1
        return (self.finish_s[m] - self.first_token_s[m]) / (self.output_len[m] - 1)


@dataclass
class FaultStreamedResult:
    """Aggregates of a chunked fault-mode run (per-request columns went
    to the sink chunk-wise; only O(fleet) state remains)."""

    generative: bool
    offered: int
    completed: int
    dropped: int
    dropped_by_reason: dict
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    device_downtime_s: List[float]
    batches: int
    prefill_batches: int
    decode_batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int
    total_tokens: int
    retries: int
    failed_batches: int
    wasted_energy_pj: float

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


def simulate_faulty_stream(
    chunks,
    cost_model: ServiceCostModel,
    faults: FaultSchedule,
    retry: Optional[RetryPolicy] = None,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    sink: Optional[Callable[[FaultCompletedChunk], None]] = None,
) -> FaultStreamedResult:
    """Out-of-core fault-mode serving: one core, chunked arrivals.

    Chunking never changes the computation -- the core's state advances
    arrival by arrival either way -- so aggregates and per-request
    values are bitwise equal to :func:`simulate_faulty_table` on the
    concatenated stream at any chunk size.
    """
    _validate_knobs(num_devices, max_batch_size, max_wait_s)
    faults.validate_for(num_devices)
    if retry is None:
        retry = RetryPolicy()

    core: Optional[_FaultCore] = None
    generative = False
    seen_ids: set = set()
    offered = 0
    last_key = None
    start_s = 0.0
    end_s = -_INF
    total_tokens = 0
    dropped_by_reason = {name: 0 for name in DROP_REASON_NAMES.values()}
    dropped = 0

    def _drain(core: _FaultCore) -> None:
        nonlocal end_s, total_tokens, dropped
        if core.completed:
            recs = core.completed
            if sink is not None:
                chunk = FaultCompletedChunk(
                    generative=generative,
                    request_id=np.array([r[_RID] for r in recs], dtype=np.int64),
                    arrival_s=np.array([r[_ARR] for r in recs]),
                    output_len=np.array([r[_OLEN] for r in recs], dtype=np.int64),
                    attempts=np.array([r[_FLS] + 1 for r in recs], dtype=np.int64),
                    batched_s=np.array([r[_PFB] for r in recs]),
                    service_start_s=np.array([r[_PFS] for r in recs]),
                    first_token_s=np.array([r[_FT] for r in recs]),
                    finish_s=np.array([r[_FIN] for r in recs]),
                    batch_size=np.array([r[_PFSZ] for r in recs], dtype=np.int64),
                    device_id=np.array([r[_PFD] for r in recs], dtype=np.int64),
                    decode_slots=np.array([r[_DSLOT] for r in recs], dtype=np.int64),
                )
                sink(chunk)
            for r in recs:
                if r[_FIN] > end_s:
                    end_s = r[_FIN]
                total_tokens += r[_OLEN] if generative else 1
            core.completed = []
        if core.dropped:
            for rec, reason, at in core.dropped:
                dropped_by_reason[DROP_REASON_NAMES[reason]] += 1
                dropped += 1
                if at > end_s:
                    end_s = at
            core.dropped = []

    for chunk in chunks:
        if len(chunk) == 0:
            continue
        sub = _sorted_columns(chunk)
        if core is None:
            generative = sub.output_len is not None
            start_s = float(sub.arrival_s[0])
            core = _FaultCore(
                sub.specs,
                cost_model,
                num_devices,
                max_batch_size,
                max_wait_s,
                setup_cycles,
                faults,
                retry,
            )
        elif sub.specs is not core.specs and list(sub.specs) != list(core.specs):
            raise ValueError("every chunk must share the stream's spec list")
        key = (float(sub.arrival_s[0]), int(sub.request_id[0]))
        if last_key is not None and key < last_key:
            raise ValueError("chunks must be sorted by (arrival_s, request_id)")
        for rid in sub.request_id.tolist():
            if rid in seen_ids:
                raise ValueError(f"duplicate request id {rid}")
            seen_ids.add(rid)
        last_key = (float(sub.arrival_s[-1]), int(sub.request_id[-1]))
        olen = (
            sub.output_len
            if sub.output_len is not None
            else np.ones(len(sub), dtype=np.int64)
        )
        core.run_arrivals(
            sub.request_id,
            sub.arrival_s,
            sub.spec_idx,
            sub.valid_len,
            olen,
            sub.deadline_s,
            offered,
        )
        offered += len(sub)
        _drain(core)
    if core is None:
        raise ValueError("request stream must not be empty")
    core.finalize()
    _drain(core)
    start = float(start_s)
    end = float(end_s)
    return FaultStreamedResult(
        generative=generative,
        offered=offered,
        completed=offered - dropped,
        dropped=dropped,
        dropped_by_reason=dropped_by_reason,
        start_s=start,
        end_s=end,
        device_busy_s=list(core.busy_s),
        device_energy_pj=list(core.energy_pj),
        device_downtime_s=[
            faults.downtime_within(d, start, end) for d in range(num_devices)
        ],
        batches=core.batches,
        prefill_batches=core.prefill_batches,
        decode_batches=core.decode_batches,
        size_triggered_batches=core.size_triggered,
        timeout_triggered_batches=core.timeout_triggered,
        total_tokens=total_tokens,
        retries=core.retries,
        failed_batches=core.failed_batches,
        wasted_energy_pj=core.wasted_energy_pj,
    )
