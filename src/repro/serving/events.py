"""Discrete-event core: a deterministic time-ordered event queue.

Ties are broken by (time, priority, insertion order), so simulations
are reproducible regardless of floating-point coincidences -- e.g. a
batch-timeout and an arrival landing on the same timestamp always
process in a fixed order.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Optional


class EventKind(enum.IntEnum):
    """Event types, ordered by same-timestamp processing priority.

    A device completion frees capacity before new work is considered;
    arrivals are observed before wait-timeout flushes at the same
    instant (the request that arrives exactly at the deadline still
    joins the flushing batch).

    The fault-injection kinds extend the order without disturbing it:
    a lost batch is accounted after any same-instant timeout flush,
    recoveries only re-trigger dispatch, and retry re-admissions come
    last so a retried request never jumps ahead of same-instant work.
    """

    DEVICE_DONE = 0
    ARRIVAL = 1
    BATCH_TIMEOUT = 2
    BATCH_FAILED = 3
    RECOVERY = 4
    RETRY = 5


@dataclass(order=True)
class Event:
    time_s: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A heap of :class:`Event` with deterministic total order."""

    def __init__(self):
        self._heap: list = []
        self._seq = 0

    def push(self, time_s: float, kind: EventKind, payload: Any = None) -> Event:
        if time_s < 0:
            raise ValueError("event time must be non-negative")
        event = Event(
            time_s=time_s,
            priority=int(kind),
            seq=self._seq,
            kind=kind,
            payload=payload,
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time_s if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
