"""Chunked request-stream generation for out-of-core serving runs.

:class:`RequestStream` yields :class:`~repro.serving.requests.
RequestTable` chunks whose concatenation is **bitwise identical** to
one whole-stream :func:`~repro.serving.arrivals.generate_request_table`
call with the same arguments, while holding only O(chunk) rows at any
moment.  That is what lets a 10^7--10^8 request run flow through
:func:`~repro.serving.engine.simulate_stream` and
:func:`~repro.serving.metrics.summarize_stream` under a fixed memory
budget.

The whole-stream generator consumes one ``np.random.Generator`` in
three strict phases -- (1) arrival timestamps, (2) weighted model
picks, (3) one uniform jitter draw over the padded-spec rows in
request order.  Chunked emission must interleave the phases per chunk,
so it cannot share a single generator; instead the stream advances a
generator through each phase boundary once up front (O(chunk) memory:
draws are burned chunk-wise, never materialized) and replays each
phase from its own cloned generator.  numpy's ``Generator`` draws
consume the underlying bit stream identically whether drawn whole or
in chunks, so each phase's chunked draws -- and therefore the emitted
columns -- match the monolithic call bit for bit.  ``tests/
test_serving_stream.py`` pins this across processes, mixes, seeds,
and chunk sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.serving.arrivals import (
    ArrivalProcess,
    ModelMix,
    _clone_generator,
    _normalize_mix,
    sample_output_lens,
)
from repro.serving.requests import RequestTable

#: Default rows per emitted chunk: large enough to keep the engine's
#: per-chunk vector work dominant, small enough that one chunk's
#: columns stay a few MB.
DEFAULT_CHUNK_SIZE = 65536


@dataclass
class RequestStream:
    """A lazily generated, re-iterable chunked request stream.

    Same parameters as :func:`~repro.serving.arrivals.
    generate_request_table`; every :meth:`chunks` call restarts from
    the seed and yields the identical chunk sequence, and
    concatenating the chunks reproduces the whole-stream table
    bitwise.  ``materialize()`` does exactly that (for tests and
    small runs -- it defeats the purpose at out-of-core scale).
    """

    process: ArrivalProcess
    mix: ModelMix
    count: int
    seed: int = 0
    start_id: int = 0
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: Generative streams only: mean of the geometric output-length
    #: draw (phase 4).  ``None`` keeps the legacy prefill-only stream.
    mean_output_tokens: float = None

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("count must be positive")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self._specs, self._weights = _normalize_mix(self.mix)

    @property
    def specs(self) -> List:
        """The normalized spec list every emitted chunk carries."""
        return self._specs

    def _chunk_sizes(self) -> Iterator[int]:
        remaining = self.count
        while remaining:
            m = min(self.chunk_size, remaining)
            yield m
            remaining -= m

    def chunks(self) -> Iterator[RequestTable]:
        """Yield the stream as consecutive ``RequestTable`` chunks."""
        rng = np.random.default_rng(self.seed)
        # Phase 1 (arrivals): the cursor contract advances rng to the
        # exact state the whole-stream draw would leave, and replays
        # the timestamps incrementally from a clone.
        arrivals = self.process.cursor(self.count, rng)
        picks_rng = _clone_generator(rng)
        # Phase 2 (model picks): burn the choice draws chunk-wise to
        # reach the phase-3 state; chunked draws consume the identical
        # underlying bit stream.
        n_specs = len(self._specs)
        for m in self._chunk_sizes():
            rng.choice(n_specs, size=m, p=self._weights)

        seq_lens = np.array([s.seq_len for s in self._specs], dtype=np.int64)
        paddings = np.array([s.padding_ratio for s in self._specs], dtype=np.float64)
        if self.mean_output_tokens is None:
            jitter_rng = rng
            out_rng = None
        else:
            # Phase 3 (length jitter): replay from a clone while rng
            # burns through it -- the jitter draw count per chunk
            # depends on the model picks, so the burn replays those
            # from a second clone -- leaving rng at the phase-4 state
            # (output lengths).
            jitter_rng = _clone_generator(rng)
            picks_burn = _clone_generator(picks_rng)
            for m in self._chunk_sizes():
                picks = picks_burn.choice(n_specs, size=m, p=self._weights)
                n_j = int(np.count_nonzero(paddings[picks] > 0.0))
                if n_j:
                    rng.uniform(-0.05, 0.05, size=n_j)
            out_rng = rng
        lo = 0
        for m in self._chunk_sizes():
            times = arrivals.take(m)
            picks = picks_rng.choice(n_specs, size=m, p=self._weights)
            # Per-chunk replay of generate_request_table's vectorized
            # length jitter: phase 3 is one uniform draw over the
            # jittered rows in request order, so the chunk's share is
            # exactly the next n_jittered values of that stream.
            picked_padding = paddings[picks]
            valid = seq_lens[picks].copy()
            jittered = picked_padding > 0.0
            n_jittered = int(np.count_nonzero(jittered))
            if n_jittered:
                jitter = jitter_rng.uniform(-0.05, 0.05, size=n_jittered)
                ratio = np.clip(picked_padding[jittered] + jitter, 0.0, 0.95)
                drawn = np.round(valid[jittered] * (1.0 - ratio))
                valid[jittered] = np.maximum(2, drawn.astype(np.int64))
            output_len = None
            if out_rng is not None:
                # Phase 4 replay: one uniform per request, so the
                # chunk's share is exactly the next m draws.
                output_len = sample_output_lens(
                    out_rng.uniform(size=m),
                    self.mean_output_tokens,
                    seq_lens[picks] - valid + 1,
                )
            yield RequestTable(
                specs=self._specs,
                request_id=self.start_id
                + lo
                + np.arange(m, dtype=np.int64),
                arrival_s=np.asarray(times, dtype=np.float64),
                spec_idx=np.asarray(picks, dtype=np.int64),
                valid_len=valid,
                output_len=output_len,
            )
            lo += m

    def __iter__(self) -> Iterator[RequestTable]:
        return self.chunks()

    def materialize(self) -> RequestTable:
        """Concatenate every chunk into one whole-stream table."""
        parts = list(self.chunks())
        output_len = None
        if self.mean_output_tokens is not None:
            output_len = np.concatenate([p.output_len for p in parts])
        return RequestTable(
            specs=self._specs,
            request_id=np.concatenate([p.request_id for p in parts]),
            arrival_s=np.concatenate([p.arrival_s for p in parts]),
            spec_idx=np.concatenate([p.spec_idx for p in parts]),
            valid_len=np.concatenate([p.valid_len for p in parts]),
            output_len=output_len,
        )
