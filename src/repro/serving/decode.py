"""Columnar fast path for generative (continuous-batching) serving.

The decode twin of :mod:`repro.serving.engine`: where prefill-only
batch formation is device-independent (so the fast engine can form
every batch in one vectorized pass), a decode step only becomes
schedulable when its previous step *finishes* -- batch formation and
dispatch are coupled through device timing.  This engine therefore
stays event-driven, but works at **batch granularity over columnar
state**: one heap entry per sealed step batch (not per request-step),
plain-tuple queue frontiers instead of per-step objects, and a
memoized (model, phase, bucket) cost table -- the same design that
makes the prefill engine fast, applied to the generative lifecycle.

The contract matches the prefill engine's: for the same stream and
knobs, :func:`simulate_decode_table` produces per-request timestamps,
device busy/energy folds, and batch counters **bitwise equal** to the
reference :class:`~repro.serving.scheduler.GenerativeServingSimulator`
(same float expressions evaluated in the same order), and
:func:`simulate_decode_stream` extends that bitwise contract to
chunked out-of-core streams at any chunk size, retiring completed
requests through a ``sink`` so peak memory is O(chunk + in-flight).

Request lifecycle (continuous batching)::

    arrival --> [prefill queue] --seal--> prefill step ----> first token
                                              (batch)            |
              +---------------------------------<----------------+
              |  re-admit at finish, context += 1
              v
            [decode queue] --seal--> decode step --> ... --> last token

Seal rules are the reference batcher's, at step granularity: a queue
seals on ``max_batch_size`` members or when its oldest step has waited
``max_wait_s``; prefill and decode steps never share a batch; when no
future step can ever join, pending queues flush immediately.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.trace import TraceRecorder
from repro.serving.devices import DEFAULT_SETUP_CYCLES, ServiceCostModel
from repro.serving.requests import Request, RequestTable
from repro.serving.scheduler import DecodeRecord, GenerativeResult


# Per-request record layout (plain lists: the hot loop touches these
# per token step, so attribute access is out).
_RID = 0      # request id
_ARR = 1      # arrival_s
_SPEC = 2     # spec index
_VLEN = 3     # prompt length
_OLEN = 4     # output length
_LCTX = 5     # final context: vlen + olen - 1
_PFB = 6      # prefill batched (sealed) time
_PFS = 7      # prefill service start
_PFD = 8      # prefill device id
_PFSZ = 9     # prefill batch size
_FT = 10      # first token (prefill finish)
_FIN = 11     # finish (last token)
_DSLOT = 12   # summed decode batch occupancy
_ROW = 13     # global row index (sorted order)
_QID = 14     # name-keyed queue id (duplicate-name specs share one)


@dataclass
class DecodeColumnarResult:
    """A generative run's outcome as struct-of-arrays columns.

    Rows follow the canonical (arrival_s, request_id) sort of the
    input table; every value is bitwise equal to the reference loop's
    :class:`~repro.serving.scheduler.DecodeRecord` fields.
    """

    specs: List
    request_id: np.ndarray
    arrival_s: np.ndarray
    spec_idx: np.ndarray
    valid_len: np.ndarray
    output_len: np.ndarray
    prefill_batched_s: np.ndarray
    prefill_start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    prefill_batch_size: np.ndarray
    prefill_device_id: np.ndarray
    decode_slots: np.ndarray
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    prefill_batches: int
    decode_batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int
    total_tokens: int
    #: Optional per-request deadline column (seconds relative to
    #: arrival, ``inf`` = none), carried through the canonical sort so
    #: :meth:`to_result` round-trips deadline-bearing tables losslessly.
    deadline_s: Optional[np.ndarray] = None

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return int(self.request_id.size)

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latency column: arrival to last token."""
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Arrival to prefill service start."""
        return self.prefill_start_s - self.arrival_s

    @property
    def ttft_s(self) -> np.ndarray:
        """Time-to-first-token column: arrival to prefill finish."""
        return self.first_token_s - self.arrival_s

    @property
    def tbt_s(self) -> np.ndarray:
        """Mean time between tokens per request (NaN when 1 token)."""
        steps = (self.output_len - 1).astype(np.float64)
        return np.divide(
            self.finish_s - self.first_token_s,
            steps,
            out=np.full(steps.shape, np.nan),
            where=steps > 0,
        )

    def to_result(self) -> GenerativeResult:
        """Materialize reference-shaped records (tests, small runs)."""
        records = [
            DecodeRecord(
                request=Request(
                    request_id=int(self.request_id[i]),
                    arrival_s=float(self.arrival_s[i]),
                    spec=self.specs[int(self.spec_idx[i])],
                    valid_len=int(self.valid_len[i]),
                    output_len=int(self.output_len[i]),
                    deadline_s=(
                        None
                        if self.deadline_s is None
                        or not np.isfinite(self.deadline_s[i])
                        else float(self.deadline_s[i])
                    ),
                ),
                prefill_batched_s=float(self.prefill_batched_s[i]),
                prefill_start_s=float(self.prefill_start_s[i]),
                first_token_s=float(self.first_token_s[i]),
                finish_s=float(self.finish_s[i]),
                prefill_batch_size=int(self.prefill_batch_size[i]),
                prefill_device_id=int(self.prefill_device_id[i]),
                decode_slots=int(self.decode_slots[i]),
            )
            for i in range(self.completed)
        ]
        return GenerativeResult(
            records=records,
            start_s=self.start_s,
            end_s=self.end_s,
            device_busy_s=list(self.device_busy_s),
            device_energy_pj=list(self.device_energy_pj),
            batches=self.batches,
            prefill_batches=self.prefill_batches,
            decode_batches=self.decode_batches,
            size_triggered_batches=self.size_triggered_batches,
            timeout_triggered_batches=self.timeout_triggered_batches,
            total_tokens=self.total_tokens,
        )


@dataclass
class DecodeCompletedChunk:
    """Outcome columns for requests retired by the chunked decode driver.

    Rows are in completion (finish-event) order; values are bitwise
    equal to the whole-table run's.  Downstream consumers
    (:func:`repro.serving.metrics.summarize_stream`) fold these into
    fixed-size sketches and drop them.
    """

    specs: List
    request_id: np.ndarray
    arrival_s: np.ndarray
    spec_idx: np.ndarray
    valid_len: np.ndarray
    output_len: np.ndarray
    prefill_batched_s: np.ndarray
    prefill_start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    prefill_batch_size: np.ndarray
    prefill_device_id: np.ndarray
    decode_slots: np.ndarray

    def __len__(self) -> int:
        return int(self.request_id.size)

    @property
    def latency_s(self) -> np.ndarray:
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        return self.prefill_start_s - self.arrival_s

    @property
    def ttft_s(self) -> np.ndarray:
        return self.first_token_s - self.arrival_s

    @property
    def tbt_s(self) -> np.ndarray:
        steps = (self.output_len - 1).astype(np.float64)
        return np.divide(
            self.finish_s - self.first_token_s,
            steps,
            out=np.full(steps.shape, np.nan),
            where=steps > 0,
        )


@dataclass
class DecodeStreamedResult:
    """Run-level aggregates of a chunked generative simulation."""

    completed: int
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    prefill_batches: int
    decode_batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int
    total_tokens: int

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


def _queue_map(specs) -> Tuple[List, List[int]]:
    """Name-keyed queue ids, exactly the reference batcher's keying.

    Same-name specs (identical by table validation) share one queue.
    Shared with the process-shard workers in :mod:`repro.runtime.pool`
    so both sides agree on which queue owns which rows.
    """
    queue_ids: dict = {}
    queue_specs: List = []
    queue_of_spec: List[int] = []
    for spec in specs:
        qid = queue_ids.setdefault(spec.name, len(queue_specs))
        if qid == len(queue_specs):
            queue_specs.append(spec)
        queue_of_spec.append(qid)
    return queue_specs, queue_of_spec


def _build_cost_vectors(
    cost_model: ServiceCostModel, spec, decode: bool, max_ctx: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample (cycles, energy_pj) vectors indexed by raw context.

    Index ``c`` answers a seal at max context ``c`` for ``c`` in
    ``1 .. hi``, where ``hi`` rounds ``max_ctx`` up to a bucket
    boundary so repeated extensions amortize (index 0 pads).  Values
    come from the vectorized bucket caches
    (:meth:`~repro.serving.devices.ServiceCostModel.cost_arrays` /
    :meth:`~repro.serving.devices.ServiceCostModel.decode_cost_arrays`)
    and are bitwise equal to the scalar lookups the reference devices
    make, so sealing and macro-stepping can price by one array index.
    """
    lb = cost_model.len_bucket
    hi = max(2, -(-max(max_ctx, 1) // lb) * lb)
    ctx_range = np.arange(1, hi + 1, dtype=np.int64)
    if decode:
        cyc, en = cost_model.decode_cost_arrays(spec, ctx_range)
    else:
        cyc, en = cost_model.cost_arrays(spec, ctx_range)
    pad = np.full(1, np.nan)
    return np.concatenate((pad, cyc)), np.concatenate((pad, en))


class _DecodeCore:
    """The event loop over columnar generative state.

    Shared by the whole-table and chunked entry points: arrivals feed
    in through :meth:`run_arrivals` (possibly across many calls), the
    heap carries one entry per in-flight step batch plus queue-creation
    timeouts, and completed per-request records accumulate in
    ``self.completed`` (the callers drain it).  Event ordering --
    (time, priority, push order) with DEVICE_DONE < ARRIVAL <
    BATCH_TIMEOUT at equal instants -- matches the reference
    :class:`~repro.serving.events.EventQueue` exactly.
    """

    def __init__(
        self,
        specs: List,
        cost_model: ServiceCostModel,
        num_devices: int,
        max_batch_size: int,
        max_wait_s: float,
        setup_cycles: int,
    ):
        self.specs = specs
        self.queue_specs, self.queue_of_spec = _queue_map(specs)
        self.cost_model = cost_model
        self.num_devices = num_devices
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.zero_wait = max_wait_s == 0
        self.setup_cycles = setup_cycles
        self.frequency_hz = cost_model.config.frequency_ghz * 1e9

        # (time, priority, seq, payload); priority 0 = DEVICE_DONE
        # (payload: sealed batch), 2 = BATCH_TIMEOUT (payload: None).
        self.heap: list = []
        self.seq = 0
        # (queue id, decode?) -> [ready times, records, contexts,
        # rejoiner count]; insertion-ordered like the reference
        # batcher's dict (flush order at shared instants depends on
        # it).  The rejoiner count -- members whose step is not their
        # last -- accumulates at admission so sealing is O(1) in it.
        self.queues: dict = {}
        # Sealed batches awaiting a device, FIFO.  Entries are mutable
        # lists [decode?, records, contexts, service_s, energy_pj,
        # macro_steps, min_left, max_ctx]: ``macro_steps`` counts
        # decode steps advanced without touching the per-member
        # records (stamped lazily at the next scalar event),
        # ``min_left`` is the fewest steps any member still has from
        # the materialized contexts minus ``macro_steps``, and
        # ``max_ctx`` tracks the batch's current max context.
        self.ready: deque = deque()
        self.free_at = [0.0] * num_devices
        #: min(free_at), maintained on every assignment: the dispatch
        #: loop's "every device is busy" exit is one comparison.
        self.min_free_at = 0.0
        self.busy_s = [0.0] * num_devices
        self.energy_pj = [0.0] * num_devices
        # (queue id, decode?) -> context-indexed per-sample cost
        # vectors (see :func:`_build_cost_vectors`), stored as plain
        # Python lists: sealing and macro-stepping price by one list
        # index (cheaper than numpy scalar indexing in the hot loop)
        # instead of memo-dict chains.  Built lazily per queue
        # (extended on bucket boundaries), prebuilt by
        # ``threads``/shard phase 1.
        self.vecs: Dict[tuple, Tuple[list, list]] = {}
        # Queue-creation timeouts not yet pushed: (deadline, key),
        # nondecreasing in deadline (appended in event order).  A
        # timeout only needs to reach the heap before the event loop
        # advances past its deadline; deferring the push lets queues
        # that seal by size first drop theirs entirely (the reference
        # pushes *more* timeout events than this -- one per non-sealing
        # admission -- so the contract is over outcomes, not pushes).
        self.deferred_to: deque = deque()
        self.completed: list = []
        self.in_flight_rejoiners = 0
        self.arrivals_done = False
        self.last_now = 0.0
        self.steps_in = 0
        self.batches = 0
        self.prefill_batches = 0
        self.decode_batches = 0
        self.size_triggered = 0
        self.timeout_triggered = 0
        self.end_s = -np.inf

    # ------------------------------------------------------------------
    def _vectors(self, qid: int, decode: bool, max_ctx: int):
        """Cost vectors for a queue, covering contexts up to max_ctx."""
        key = (qid, decode)
        vecs = self.vecs.get(key)
        if vecs is None or max_ctx >= len(vecs[0]):
            cyc, en = _build_cost_vectors(
                self.cost_model, self.queue_specs[qid], decode, max_ctx
            )
            vecs = self.vecs[key] = (cyc.tolist(), en.tolist())
        return vecs

    def _seal(self, key, now: float, by_size: bool) -> None:
        readys, recs, ctxs, rejoiners = self.queues.pop(key)
        qid, decode = key
        size = len(recs)
        if decode:
            # One pass for the pricing context (max) and the macro
            # window (fewest steps any member has before its last).
            mx = 0
            left = 1 << 60
            for k in range(size):
                c = ctxs[k]
                if c > mx:
                    mx = c
                r = recs[k][_LCTX] - c
                if r < left:
                    left = r
        else:
            mx = max(ctxs)
            left = 0
        vecs = self._vectors(qid, decode, mx)
        # Same float expressions as SprintDevice.start_step_batch.
        service = (self.setup_cycles + vecs[0][mx] * size) / self.frequency_hz
        energy = vecs[1][mx]
        self.batches += 1
        if by_size:
            self.size_triggered += 1
        else:
            self.timeout_triggered += 1
        if decode:
            self.decode_batches += 1
        else:
            self.prefill_batches += 1
            for rec in recs:
                rec[_PFB] = now
                rec[_PFSZ] = size
        self.in_flight_rejoiners += rejoiners
        self.ready.append([decode, recs, ctxs, service, energy, 0, left, mx])

    def _admit(self, rec, ctx: int, decode: bool, now: float) -> None:
        self.steps_in += 1
        key = (rec[_QID], decode)
        queues = self.queues
        q = queues.get(key)
        rejoin = 1 if ctx != rec[_LCTX] else 0
        if q is None:
            q = queues[key] = [[now], [rec], [ctx], rejoin]
            if self.max_batch_size <= 1:
                self._seal(key, now, by_size=True)
            elif self.max_wait_s > 0:
                self.deferred_to.append((now + self.max_wait_s, key))
        else:
            q[0].append(now)
            q[1].append(rec)
            q[2].append(ctx)
            q[3] += rejoin
            if len(q[1]) >= self.max_batch_size:
                self._seal(key, now, by_size=True)

    def _flush_due(self, now: float) -> None:
        # Same float comparison as the reference batcher's flush_due.
        w = self.max_wait_s
        queues = self.queues
        if len(queues) == 1:
            key = next(iter(queues))
            if now >= queues[key][0][0] + w:
                self._seal(key, now, by_size=False)
            return
        due = [key for key, q in queues.items() if now >= q[0][0] + w]
        for key in due:
            self._seal(key, now, by_size=False)

    def _dispatch(self, now: float) -> None:
        ready = self.ready
        if not ready or self.min_free_at > now:
            return
        free_at = self.free_at
        while ready:
            dev = -1
            for d in range(self.num_devices):
                if free_at[d] <= now:
                    dev = d
                    break
            if dev < 0:
                return
            batch = ready.popleft()
            recs = batch[1]
            service = batch[3]
            finish = now + service
            free_at[dev] = finish
            self.min_free_at = min(free_at)
            self.busy_s[dev] += service
            self.energy_pj[dev] += batch[4] * len(recs)
            if not batch[0]:
                for rec in recs:
                    rec[_PFS] = now
                    rec[_PFD] = dev
            heappush(self.heap, (finish, 0, self.seq, batch))
            self.seq += 1

    def _macro_run(self, batch, now: float, limit: float) -> bool:
        """Advance a decode batch through a run of membership-fixed steps.

        Preconditions (checked by the caller): this batch's DEVICE_DONE
        just popped with the queues and the ready FIFO empty -- no
        other members are pending, so until the next arrival
        (``limit``), the next foreign heap event, or a member's last
        token, every event is this batch's own reseal cycle and its
        membership is fixed.  The run advances as one plain-float
        chain: each iteration is the exact arithmetic of one scalar
        reseal cycle (rejoin, seal, dispatch) priced off the queue's
        context-indexed cost lists, so every finish instant and the
        busy/energy folds are bitwise the reference loop's
        one-event-at-a-time accumulation -- without touching the heap,
        the queue dict, or the per-member records.  Returns False when
        no full reseal fits before the bounds (the caller falls back
        to the scalar handler).
        """
        recs = batch[1]
        size = len(recs)
        left, mx = batch[6], batch[7]
        qid = recs[0][_QID]
        queues = self.queues
        # A pending queue at this batch's own rejoin key means the
        # reseal would have to merge into it: membership changes, so
        # the step runs scalar.
        if queues and (qid, True) in queues:
            return False
        by_size = size >= self.max_batch_size
        # After arrivals end, the end-of-stream flush only seals a
        # rejoin queue instantly when no OTHER batch still has pending
        # rejoiners in flight (our own ``size`` members rejoin at each
        # step and do not block it).
        instant = (
            by_size
            or self.zero_wait
            or (self.arrivals_done and self.in_flight_rejoiners == size)
        )
        heap = self.heap
        # The next foreign heap event bounds the run strictly: at equal
        # instants it was pushed earlier, so it pops first and may
        # change membership (a stale timeout merely ends the run
        # early; it pops as a no-op and the next DONE resumes).
        t2 = heap[0][0] if heap else None
        if not instant and (
            now + self.max_wait_s >= limit
            or (t2 is not None and now + self.max_wait_s >= t2)
        ):
            return False
        if queues:
            # Other pending queues are safe spectators -- they only
            # seal at their own deadline or on an arrival, both of
            # which bound the run.  Any alive queue's deadline is
            # either already in the heap (the foreign-event bound
            # above) or still deferred: the earliest alive deferred
            # deadline joins the bound.  Dead-key heads would pop as
            # no-ops anyway (their queue sealed first), so drop them.
            deferred = self.deferred_to
            while deferred:
                deadline, key = deferred[0]
                if key in queues:
                    if t2 is None or deadline < t2:
                        t2 = deadline
                    break
                deferred.popleft()
        # Stop one step short of the earliest member's last token: the
        # completion step changes membership, so it runs scalar.
        last = left - 1
        cyc_vec, en_vec = self._vectors(qid, True, mx + last)
        setup = self.setup_cycles
        freq = self.frequency_hz
        # Every reseal dispatches to the same device: the lowest-index
        # one free at ``now`` (ours, or an idle lower index -- exactly
        # the scalar _dispatch scan), and no other device frees before
        # the run's bound.
        free_at = self.free_at
        dev = 0
        while free_at[dev] > now:
            dev += 1
        busy = self.busy_s[dev]
        energy = self.energy_pj[dev]
        m = 0
        fin = now  # the pending (in-flight) DONE instant
        s = 0.0
        if instant:
            # Full batch, zero wait, or end-of-stream flush: each DONE
            # reseals and redispatches at the same instant, so finish
            # times chain directly.  A finish at exactly ``limit``
            # still runs (DEVICE_DONE outranks the arrival) but one at
            # the foreign event's instant does not (it was pushed
            # earlier), hence the strict bound when ``t2`` is closer.
            hi = limit
            strict = False
            if t2 is not None and t2 <= limit:
                hi = t2
                strict = True
            prev = now
            while True:
                idx = mx + m + 1
                s = (setup + cyc_vec[idx] * size) / freq
                busy += s
                energy += en_vec[idx] * size
                prev = fin
                fin += s
                m += 1
                if m == last or fin > hi or (strict and fin == hi):
                    break
            self.end_s = prev
            self.last_now = prev
        else:
            # Timeout cadence: DONE at fin_j -> members re-queue ->
            # timeout seals at fin_j + w -> dispatch -> next finish.
            # A seal at exactly ``limit`` belongs to the caller
            # (arrivals outrank timeouts at equal instants), so both
            # bounds are strict.
            w = self.max_wait_s
            hi = limit if t2 is None or limit <= t2 else t2
            prev_fin = now
            t_seal = now
            while True:
                ts = fin + w
                if ts >= hi:
                    break
                idx = mx + m + 1
                s = (setup + cyc_vec[idx] * size) / freq
                busy += s
                energy += en_vec[idx] * size
                prev_fin = fin
                t_seal = ts
                fin = ts + s
                m += 1
                if m == last:
                    break
            if m < 1:
                return False
            if m >= 2:
                self.end_s = prev_fin
            self.last_now = t_seal
        self.busy_s[dev] = busy
        self.energy_pj[dev] = energy
        free_at[dev] = fin
        self.min_free_at = min(free_at)
        self.batches += m
        self.decode_batches += m
        if by_size:
            self.size_triggered += m
        else:
            self.timeout_triggered += m
        self.steps_in += size * m
        batch[3] = s
        batch[4] = en_vec[mx + m]
        batch[5] += m
        batch[6] = left - m
        batch[7] = mx + m
        heappush(self.heap, (fin, 0, self.seq, batch))
        self.seq += 1
        return True

    def _handle_heap_event(self, limit: float) -> None:
        now, priority, _, batch = heappop(self.heap)
        if priority == 0:  # DEVICE_DONE
            if now > self.end_s:
                self.end_s = now
            if (
                batch[0]
                and batch[6] >= 2
                and not self.ready
                and self._macro_run(batch, now, limit)
            ):
                return
            decode, recs, ctxs = batch[0], batch[1], batch[2]
            size = len(recs)
            steps = batch[5]
            if steps:
                # Materialize macro-advanced state before per-member
                # processing: each deferred step occupied ``size``
                # decode slots and grew every context by one.
                add = size * steps
                for k in range(size):
                    ctxs[k] += steps
                    recs[k][_DSLOT] += add
            # The rejoin admission (self._admit with decode=True) is
            # inlined: this loop runs once per token-step and dominates
            # the engine's wall-clock.
            queues = self.queues
            completed = self.completed
            max_bs = self.max_batch_size
            w = self.max_wait_s
            rejoined = 0
            created = None
            for k in range(size):
                rec = recs[k]
                ctx = ctxs[k]
                last = rec[_LCTX]
                if decode:
                    rec[_DSLOT] += size
                else:
                    rec[_FT] = now
                if ctx == last:
                    rec[_FIN] = now
                    completed.append(rec)
                    continue
                rejoined += 1
                ctx += 1
                key = (rec[_QID], True)
                q = queues.get(key)
                if q is None:
                    q = queues[key] = [[now], [rec], [ctx], 0 if ctx == last else 1]
                    if max_bs <= 1:
                        self._seal(key, now, by_size=True)
                    elif w > 0:
                        if now + w < limit:
                            if created is None:
                                created = [key]
                            else:
                                created.append(key)
                        else:
                            self.deferred_to.append((now + w, key))
                else:
                    q[0].append(now)
                    q[1].append(rec)
                    q[2].append(ctx)
                    if ctx != last:
                        q[3] += 1
                    if len(q[1]) >= max_bs:
                        self._seal(key, now, by_size=True)
            if created is not None:
                # Push deadlines only for queues that survived the
                # handler: a queue sealed by size above never needs its
                # timeout event at all.
                for key in created:
                    if key in queues:
                        heappush(self.heap, (now + w, 2, self.seq, None))
                        self.seq += 1
            self.in_flight_rejoiners -= rejoined
            self.steps_in += rejoined
        elif self.queues:  # BATCH_TIMEOUT
            self._flush_due(now)
        # _after_event, inlined (this handler is the hot loop).
        self.last_now = now
        if self.zero_wait and self.queues:
            self._flush_due(now)
        if self.arrivals_done and self.in_flight_rejoiners == 0 and self.queues:
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
        if self.ready:
            self._dispatch(now)

    # ------------------------------------------------------------------
    def run_arrivals(self, rid, arr, spec_i, vlen, olen, row_base: int):
        """Feed one chunk of sorted arrivals through the event loop.

        Heap events strictly preceding each arrival (in the reference
        (time, priority) order) are processed first; events at or
        beyond the chunk's last arrival stay queued for the next chunk
        or :meth:`finalize`.  Deferred queue-creation timeouts whose
        deadline the loop is about to reach are pushed first -- only
        for queues still alive, which is what lets size-sealed queues
        skip their timeout events entirely.
        """
        heap = self.heap
        queues = self.queues
        deferred = self.deferred_to
        qmap = self.queue_of_spec
        n = rid.size
        for i in range(n):
            t = float(arr[i])
            while deferred and deferred[0][0] <= t:
                deadline, key = deferred.popleft()
                if key in queues:
                    heappush(heap, (deadline, 2, self.seq, None))
                    self.seq += 1
            while heap and (heap[0][0] < t or (heap[0][0] == t and heap[0][1] == 0)):
                self._handle_heap_event(t)
            v = int(vlen[i])
            o = int(olen[i])
            s = int(spec_i[i])
            rec = [
                int(rid[i]),
                t,
                s,
                v,
                o,
                v + o - 1,
                0.0,
                0.0,
                -1,
                1,
                0.0,
                0.0,
                0,
                row_base + i,
                qmap[s],
            ]
            self._admit(rec, v, False, t)
            # _after_event, inlined (arrivals_done is False here, so
            # the end-of-stream flush can never apply).
            self.last_now = t
            if self.zero_wait and self.queues:
                self._flush_due(t)
            if self.ready:
                self._dispatch(t)

    def finalize(self) -> None:
        """No further arrivals: apply the tail flush and drain the heap."""
        self.arrivals_done = True
        if self.in_flight_rejoiners == 0 and self.queues:
            # The end-of-stream flush the monolithic loop would have
            # applied at the last processed event.
            now = self.last_now
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
            self._dispatch(now)
        deferred = self.deferred_to
        while deferred:
            deadline, key = deferred.popleft()
            if key in self.queues:
                heappush(self.heap, (deadline, 2, self.seq, None))
                self.seq += 1
        inf = float("inf")
        while self.heap:
            self._handle_heap_event(inf)
        assert not self.ready and not self.queues
        assert self.in_flight_rejoiners == 0


def _validate_knobs(num_devices, max_batch_size, max_wait_s, threads=1):
    if num_devices < 1:
        raise ValueError("at least one device required")
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    if max_wait_s < 0:
        raise ValueError("max_wait_s must be non-negative")
    if threads < 1:
        raise ValueError("threads must be positive")


def _prebuild_vectors(core: _DecodeCore, spec_i, vlen, olen, threads: int) -> None:
    """Phase 1: build every queue's cost vectors before the event loop.

    The per-queue context ceiling comes from the arrival columns
    (``valid_len + output_len - 1``), so the event loop never faults
    the cycle model mid-run.  Queues are independent -- they own
    disjoint model names, hence disjoint bucket-cache keys -- so with
    ``threads > 1`` each queue's vectors (including the exact
    cycle-model passes behind cold buckets, which run numpy-heavy
    batched kernels) build concurrently.  Values are memoized pure
    functions of (model, bucket), so thread scheduling cannot change
    any priced cost and results stay bitwise identical at every thread
    count.
    """
    qmap = np.asarray(core.queue_of_spec, dtype=np.int64)
    qids = qmap[spec_i]
    ctx_hi = vlen + olen - 1
    targets = [
        (int(qid), int(ctx_hi[qids == qid].max())) for qid in np.unique(qids)
    ]

    def _one(target):
        qid, hi = target
        core._vectors(qid, True, hi)
        core._vectors(qid, False, hi)

    if threads > 1 and len(targets) > 1:
        with ThreadPoolExecutor(max_workers=min(threads, len(targets))) as pool:
            list(pool.map(_one, targets))
    else:
        for target in targets:
            _one(target)


def simulate_decode_table(
    table: RequestTable,
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    recorder: Optional[TraceRecorder] = None,
    threads: int = 1,
    _vectors: Optional[dict] = None,
    faults=None,
    retry=None,
) -> "DecodeColumnarResult | FaultColumnarResult":
    """Run one deployment over a generative columnar stream; fast path.

    Identical knobs and semantics to building ``num_devices``
    :class:`~repro.serving.devices.SprintDevice` plus a
    :class:`~repro.serving.batching.ContinuousBatcher` and calling
    :meth:`~repro.serving.scheduler.GenerativeServingSimulator.run`;
    per-request timestamps, busy/energy folds, and batch counters are
    bitwise equal.  Tables without an ``output_len`` column run as
    all-``output_len=1`` generative traffic (pure prefill).

    ``recorder`` emits the sampled requests' lifecycle spans post-hoc
    from the finished columns (prefill batching/dispatch, decode phase,
    finish at the last token), bitwise identical to the reference
    loop's.  ``threads > 1`` runs phase 1 (per-queue cost-vector
    construction, including the cycle-model passes behind cold cost
    buckets) across a thread pool -- results stay bitwise identical at
    every thread count.  ``_vectors`` is the process-shard injection
    point (:func:`repro.runtime.pool.simulate_decode_table_sharded`): a
    dict of (queue id, decode?) -> prebuilt cost vectors.
    """
    if len(table) == 0:
        raise ValueError("request stream must not be empty")
    _validate_knobs(num_devices, max_batch_size, max_wait_s, threads)
    if faults is not None:
        from repro.serving.faults import simulate_faulty_table

        if _vectors is not None:
            raise ValueError("sharded cost vectors do not apply under fault injection")
        return simulate_faulty_table(
            table,
            cost_model,
            faults,
            retry=retry,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            recorder=recorder,
        )
    if retry is not None:
        raise ValueError("a retry policy requires a fault schedule")
    if np.unique(table.request_id).size != len(table):
        raise ValueError("duplicate request id in stream")

    order = np.lexsort((table.request_id, table.arrival_s))
    rid = table.request_id[order]
    arr = table.arrival_s[order]
    spec_i = table.spec_idx[order]
    vlen = table.valid_len[order]
    if table.output_len is None:
        olen = np.ones(len(table), dtype=np.int64)
    else:
        olen = table.output_len[order]

    core = _DecodeCore(
        table.specs,
        cost_model,
        num_devices,
        max_batch_size,
        max_wait_s,
        setup_cycles,
    )
    if _vectors:
        core.vecs.update(
            {
                key: (np.asarray(cyc).tolist(), np.asarray(en).tolist())
                for key, (cyc, en) in _vectors.items()
            }
        )
    elif threads > 1:
        _prebuild_vectors(core, spec_i, vlen, olen, threads)
    core.run_arrivals(rid, arr, spec_i, vlen, olen, 0)
    core.finalize()

    n = len(table)
    prefill_batched = np.empty(n, dtype=np.float64)
    prefill_start = np.empty(n, dtype=np.float64)
    first_token = np.empty(n, dtype=np.float64)
    finish = np.empty(n, dtype=np.float64)
    prefill_size = np.empty(n, dtype=np.int64)
    prefill_dev = np.empty(n, dtype=np.int64)
    dslots = np.empty(n, dtype=np.int64)
    assert len(core.completed) == n
    for rec in core.completed:
        row = rec[_ROW]
        prefill_batched[row] = rec[_PFB]
        prefill_start[row] = rec[_PFS]
        first_token[row] = rec[_FT]
        finish[row] = rec[_FIN]
        prefill_size[row] = rec[_PFSZ]
        prefill_dev[row] = rec[_PFD]
        dslots[row] = rec[_DSLOT]

    if recorder is not None:
        specs = table.specs
        for i in range(n):
            recorder.add_request(
                request_id=int(rid[i]),
                model=specs[int(spec_i[i])].name,
                arrival_s=float(arr[i]),
                batched_s=float(prefill_batched[i]),
                service_start_s=float(prefill_start[i]),
                finish_s=float(finish[i]),
                device_id=int(prefill_dev[i]),
                batch_size=int(prefill_size[i]),
            )
            recorder.add_decode_phase(
                request_id=int(rid[i]),
                model=specs[int(spec_i[i])].name,
                first_token_s=float(first_token[i]),
                finish_s=float(finish[i]),
                tokens=int(olen[i]) - 1,
            )

    return DecodeColumnarResult(
        specs=table.specs,
        request_id=rid,
        arrival_s=arr,
        spec_idx=spec_i,
        valid_len=vlen,
        output_len=olen,
        prefill_batched_s=prefill_batched,
        prefill_start_s=prefill_start,
        first_token_s=first_token,
        finish_s=finish,
        prefill_batch_size=prefill_size,
        prefill_device_id=prefill_dev,
        decode_slots=dslots,
        start_s=float(arr[0]),
        end_s=float(finish.max()),
        device_busy_s=list(core.busy_s),
        device_energy_pj=list(core.energy_pj),
        batches=core.batches,
        prefill_batches=core.prefill_batches,
        decode_batches=core.decode_batches,
        size_triggered_batches=core.size_triggered,
        timeout_triggered_batches=core.timeout_triggered,
        total_tokens=int(olen.sum()),
        deadline_s=(None if table.deadline_s is None else table.deadline_s[order]),
    )


def _completed_chunk(specs, recs) -> DecodeCompletedChunk:
    n = len(recs)
    cols = {
        "request_id": (np.int64, _RID),
        "arrival_s": (np.float64, _ARR),
        "spec_idx": (np.int64, _SPEC),
        "valid_len": (np.int64, _VLEN),
        "output_len": (np.int64, _OLEN),
        "prefill_batched_s": (np.float64, _PFB),
        "prefill_start_s": (np.float64, _PFS),
        "first_token_s": (np.float64, _FT),
        "finish_s": (np.float64, _FIN),
        "prefill_batch_size": (np.int64, _PFSZ),
        "prefill_device_id": (np.int64, _PFD),
        "decode_slots": (np.int64, _DSLOT),
    }
    arrays = {}
    for name, (dtype, at) in cols.items():
        col = np.empty(n, dtype=dtype)
        for i, rec in enumerate(recs):
            col[i] = rec[at]
        arrays[name] = col
    return DecodeCompletedChunk(specs=specs, **arrays)


def simulate_decode_stream(
    chunks: Iterable[RequestTable],
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    sink: Optional[Callable[[DecodeCompletedChunk], None]] = None,
    threads: int = 1,
    faults=None,
    retry=None,
) -> "DecodeStreamedResult | FaultStreamedResult":
    """Out-of-core generative simulation over a chunked request stream.

    The generative twin of :func:`~repro.serving.engine.
    simulate_stream`: consumes generative ``RequestTable`` chunks in
    arrival order, holds only the event-loop frontier (open queues,
    in-flight step batches, device folds) plus one chunk, and retires
    completed requests through ``sink`` as
    :class:`DecodeCompletedChunk` columns in completion order.  Every
    emitted value and aggregate is bitwise equal to the whole-table
    :func:`simulate_decode_table` run of the concatenated stream, at
    any chunk size.

    Chunks must be non-overlapping and ordered (each chunk's earliest
    (arrival, id) lexicographically follows the previous chunk's
    latest) and share one spec list; request-id uniqueness across
    chunks is the caller's contract, as in the prefill driver.

    ``threads > 1`` builds each chunk's per-queue cost vectors across a
    thread pool before feeding the chunk's arrivals (vectors extend
    in place as later chunks raise a queue's context ceiling), keeping
    peak memory O(chunk + frontier) and results bitwise identical at
    every thread count.
    """
    _validate_knobs(num_devices, max_batch_size, max_wait_s, threads)
    if faults is not None:
        from repro.serving.faults import simulate_faulty_stream

        return simulate_faulty_stream(
            chunks,
            cost_model,
            faults,
            retry=retry,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            sink=sink,
        )
    if retry is not None:
        raise ValueError("a retry policy requires a fault schedule")
    core: Optional[_DecodeCore] = None
    specs: Optional[List] = None
    start_s = 0.0
    row_base = 0
    prev_arrival = -np.inf
    prev_id = -1

    def _drain() -> None:
        if core.completed:
            chunk_out = _completed_chunk(specs, core.completed)
            core.completed.clear()
            if sink is not None:
                sink(chunk_out)

    for chunk in chunks:
        if len(chunk) == 0:
            continue
        if specs is None:
            specs = list(chunk.specs)
            core = _DecodeCore(
                specs,
                cost_model,
                num_devices,
                max_batch_size,
                max_wait_s,
                setup_cycles,
            )
        elif list(chunk.specs) != specs:
            raise ValueError("chunks must share one spec list")
        order = np.lexsort((chunk.request_id, chunk.arrival_s))
        rid = chunk.request_id[order]
        arr = chunk.arrival_s[order]
        if row_base == 0:
            start_s = float(arr[0])
        if (arr[0], rid[0]) <= (prev_arrival, prev_id):
            raise ValueError("chunks must be ordered by (arrival_s, request_id)")
        if np.unique(rid).size != rid.size:
            raise ValueError("duplicate request id in chunk")
        prev_arrival, prev_id = float(arr[-1]), int(rid[-1])
        if chunk.output_len is None:
            olen = np.ones(len(chunk), dtype=np.int64)
        else:
            olen = chunk.output_len[order]
        spec_col = chunk.spec_idx[order]
        vlen_col = chunk.valid_len[order]
        if threads > 1:
            _prebuild_vectors(core, spec_col, vlen_col, olen, threads)
        core.run_arrivals(rid, arr, spec_col, vlen_col, olen, row_base)
        row_base += len(chunk)
        _drain()
    if core is None:
        raise ValueError("request stream must not be empty")
    core.finalize()
    _drain()
    return DecodeStreamedResult(
        completed=row_base,
        start_s=start_s,
        end_s=float(core.end_s),
        device_busy_s=list(core.busy_s),
        device_energy_pj=list(core.energy_pj),
        batches=core.batches,
        prefill_batches=core.prefill_batches,
        decode_batches=core.decode_batches,
        size_triggered_batches=core.size_triggered,
        timeout_triggered_batches=core.timeout_triggered,
        total_tokens=core.steps_in,
    )
