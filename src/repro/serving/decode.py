"""Columnar fast path for generative (continuous-batching) serving.

The decode twin of :mod:`repro.serving.engine`: where prefill-only
batch formation is device-independent (so the fast engine can form
every batch in one vectorized pass), a decode step only becomes
schedulable when its previous step *finishes* -- batch formation and
dispatch are coupled through device timing.  This engine therefore
stays event-driven, but works at **batch granularity over columnar
state**: one heap entry per sealed step batch (not per request-step),
plain-tuple queue frontiers instead of per-step objects, and a
memoized (model, phase, bucket) cost table -- the same design that
makes the prefill engine fast, applied to the generative lifecycle.

The contract matches the prefill engine's: for the same stream and
knobs, :func:`simulate_decode_table` produces per-request timestamps,
device busy/energy folds, and batch counters **bitwise equal** to the
reference :class:`~repro.serving.scheduler.GenerativeServingSimulator`
(same float expressions evaluated in the same order), and
:func:`simulate_decode_stream` extends that bitwise contract to
chunked out-of-core streams at any chunk size, retiring completed
requests through a ``sink`` so peak memory is O(chunk + in-flight).

Request lifecycle (continuous batching)::

    arrival --> [prefill queue] --seal--> prefill step ----> first token
                                              (batch)            |
              +---------------------------------<----------------+
              |  re-admit at finish, context += 1
              v
            [decode queue] --seal--> decode step --> ... --> last token

Seal rules are the reference batcher's, at step granularity: a queue
seals on ``max_batch_size`` members or when its oldest step has waited
``max_wait_s``; prefill and decode steps never share a batch; when no
future step can ever join, pending queues flush immediately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.obs.trace import TraceRecorder
from repro.serving.devices import DEFAULT_SETUP_CYCLES, ServiceCostModel
from repro.serving.requests import Request, RequestTable
from repro.serving.scheduler import DecodeRecord, GenerativeResult


# Per-request record layout (plain lists: the hot loop touches these
# per token step, so attribute access is out).
_RID = 0      # request id
_ARR = 1      # arrival_s
_SPEC = 2     # spec index
_VLEN = 3     # prompt length
_OLEN = 4     # output length
_LCTX = 5     # final context: vlen + olen - 1
_PFB = 6      # prefill batched (sealed) time
_PFS = 7      # prefill service start
_PFD = 8      # prefill device id
_PFSZ = 9     # prefill batch size
_FT = 10      # first token (prefill finish)
_FIN = 11     # finish (last token)
_DSLOT = 12   # summed decode batch occupancy
_ROW = 13     # global row index (sorted order)
_QID = 14     # name-keyed queue id (duplicate-name specs share one)


@dataclass
class DecodeColumnarResult:
    """A generative run's outcome as struct-of-arrays columns.

    Rows follow the canonical (arrival_s, request_id) sort of the
    input table; every value is bitwise equal to the reference loop's
    :class:`~repro.serving.scheduler.DecodeRecord` fields.
    """

    specs: List
    request_id: np.ndarray
    arrival_s: np.ndarray
    spec_idx: np.ndarray
    valid_len: np.ndarray
    output_len: np.ndarray
    prefill_batched_s: np.ndarray
    prefill_start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    prefill_batch_size: np.ndarray
    prefill_device_id: np.ndarray
    decode_slots: np.ndarray
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    prefill_batches: int
    decode_batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int
    total_tokens: int

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def completed(self) -> int:
        return int(self.request_id.size)

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latency column: arrival to last token."""
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        """Arrival to prefill service start."""
        return self.prefill_start_s - self.arrival_s

    @property
    def ttft_s(self) -> np.ndarray:
        """Time-to-first-token column: arrival to prefill finish."""
        return self.first_token_s - self.arrival_s

    @property
    def tbt_s(self) -> np.ndarray:
        """Mean time between tokens per request (NaN when 1 token)."""
        steps = (self.output_len - 1).astype(np.float64)
        return np.divide(
            self.finish_s - self.first_token_s,
            steps,
            out=np.full(steps.shape, np.nan),
            where=steps > 0,
        )

    def to_result(self) -> GenerativeResult:
        """Materialize reference-shaped records (tests, small runs)."""
        records = [
            DecodeRecord(
                request=Request(
                    request_id=int(self.request_id[i]),
                    arrival_s=float(self.arrival_s[i]),
                    spec=self.specs[int(self.spec_idx[i])],
                    valid_len=int(self.valid_len[i]),
                    output_len=int(self.output_len[i]),
                ),
                prefill_batched_s=float(self.prefill_batched_s[i]),
                prefill_start_s=float(self.prefill_start_s[i]),
                first_token_s=float(self.first_token_s[i]),
                finish_s=float(self.finish_s[i]),
                prefill_batch_size=int(self.prefill_batch_size[i]),
                prefill_device_id=int(self.prefill_device_id[i]),
                decode_slots=int(self.decode_slots[i]),
            )
            for i in range(self.completed)
        ]
        return GenerativeResult(
            records=records,
            start_s=self.start_s,
            end_s=self.end_s,
            device_busy_s=list(self.device_busy_s),
            device_energy_pj=list(self.device_energy_pj),
            batches=self.batches,
            prefill_batches=self.prefill_batches,
            decode_batches=self.decode_batches,
            size_triggered_batches=self.size_triggered_batches,
            timeout_triggered_batches=self.timeout_triggered_batches,
            total_tokens=self.total_tokens,
        )


@dataclass
class DecodeCompletedChunk:
    """Outcome columns for requests retired by the chunked decode driver.

    Rows are in completion (finish-event) order; values are bitwise
    equal to the whole-table run's.  Downstream consumers
    (:func:`repro.serving.metrics.summarize_stream`) fold these into
    fixed-size sketches and drop them.
    """

    specs: List
    request_id: np.ndarray
    arrival_s: np.ndarray
    spec_idx: np.ndarray
    valid_len: np.ndarray
    output_len: np.ndarray
    prefill_batched_s: np.ndarray
    prefill_start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    prefill_batch_size: np.ndarray
    prefill_device_id: np.ndarray
    decode_slots: np.ndarray

    def __len__(self) -> int:
        return int(self.request_id.size)

    @property
    def latency_s(self) -> np.ndarray:
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> np.ndarray:
        return self.prefill_start_s - self.arrival_s

    @property
    def ttft_s(self) -> np.ndarray:
        return self.first_token_s - self.arrival_s

    @property
    def tbt_s(self) -> np.ndarray:
        steps = (self.output_len - 1).astype(np.float64)
        return np.divide(
            self.finish_s - self.first_token_s,
            steps,
            out=np.full(steps.shape, np.nan),
            where=steps > 0,
        )


@dataclass
class DecodeStreamedResult:
    """Run-level aggregates of a chunked generative simulation."""

    completed: int
    start_s: float
    end_s: float
    device_busy_s: List[float]
    device_energy_pj: List[float]
    batches: int
    prefill_batches: int
    decode_batches: int
    size_triggered_batches: int
    timeout_triggered_batches: int
    total_tokens: int

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)


class _DecodeCore:
    """The event loop over columnar generative state.

    Shared by the whole-table and chunked entry points: arrivals feed
    in through :meth:`run_arrivals` (possibly across many calls), the
    heap carries one entry per in-flight step batch plus queue-creation
    timeouts, and completed per-request records accumulate in
    ``self.completed`` (the callers drain it).  Event ordering --
    (time, priority, push order) with DEVICE_DONE < ARRIVAL <
    BATCH_TIMEOUT at equal instants -- matches the reference
    :class:`~repro.serving.events.EventQueue` exactly.
    """

    def __init__(
        self,
        specs: List,
        cost_model: ServiceCostModel,
        num_devices: int,
        max_batch_size: int,
        max_wait_s: float,
        setup_cycles: int,
    ):
        self.specs = specs
        # The reference batcher keys queues on model *name*: same-name
        # specs (identical by table validation) must share a queue.
        queue_ids: dict = {}
        self.queue_specs: List = []
        self.queue_of_spec: List[int] = []
        for spec in specs:
            qid = queue_ids.setdefault(spec.name, len(self.queue_specs))
            if qid == len(self.queue_specs):
                self.queue_specs.append(spec)
            self.queue_of_spec.append(qid)
        self.cost_model = cost_model
        self.num_devices = num_devices
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.zero_wait = max_wait_s == 0
        self.setup_cycles = setup_cycles
        self.frequency_hz = cost_model.config.frequency_ghz * 1e9

        # (time, priority, seq, payload); priority 0 = DEVICE_DONE
        # (payload: sealed batch), 2 = BATCH_TIMEOUT (payload: None).
        self.heap: list = []
        self.seq = 0
        # (queue id, decode?) -> [ready times, records, contexts,
        # rejoiner count]; insertion-ordered like the reference
        # batcher's dict (flush order at shared instants depends on
        # it).  The rejoiner count -- members whose step is not their
        # last -- accumulates at admission so sealing is O(1) in it.
        self.queues: dict = {}
        # Sealed batches awaiting a device, FIFO.  Entries:
        # (decode?, records, contexts, service_s, energy_pj).
        self.ready: deque = deque()
        self.free_at = [0.0] * num_devices
        #: min(free_at), maintained on every assignment: the dispatch
        #: loop's "every device is busy" exit is one comparison.
        self.min_free_at = 0.0
        self.busy_s = [0.0] * num_devices
        self.energy_pj = [0.0] * num_devices
        # (queue id, decode?, context bucket) -> per-sample cost, and a
        # pre-bucket layer keyed on the raw max context so sealing
        # skips the bucket arithmetic for contexts it has seen.
        self.cost_memo: dict = {}
        self.ctx_memo: dict = {}
        self.completed: list = []
        self.in_flight_rejoiners = 0
        self.arrivals_done = False
        self.last_now = 0.0
        self.steps_in = 0
        self.batches = 0
        self.prefill_batches = 0
        self.decode_batches = 0
        self.size_triggered = 0
        self.timeout_triggered = 0
        self.end_s = -np.inf

    # ------------------------------------------------------------------
    def _cost(self, qid: int, decode: bool, max_ctx: int):
        """(per-sample cycles, energy) at the bucketed max context."""
        model = self.cost_model
        lb = model.len_bucket
        spec = self.queue_specs[qid]
        bucket = min(spec.seq_len, max(2, -(-max_ctx // lb) * lb))
        key = (qid, decode, bucket)
        cached = self.cost_memo.get(key)
        if cached is None:
            per = (
                model.decode_cost(spec, max_ctx)
                if decode
                else model.sample_cost(spec, max_ctx)
            )
            cached = self.cost_memo[key] = (per.cycles, per.energy_pj)
        return cached

    def _seal(self, key, now: float, by_size: bool) -> None:
        readys, recs, ctxs, rejoiners = self.queues.pop(key)
        qid, decode = key
        size = len(recs)
        ckey = (qid, decode, max(ctxs))
        cached = self.ctx_memo.get(ckey)
        if cached is None:
            cached = self.ctx_memo[ckey] = self._cost(*ckey)
        cycles, energy = cached
        # Same float expressions as SprintDevice.start_step_batch.
        service = (self.setup_cycles + cycles * size) / self.frequency_hz
        self.batches += 1
        if by_size:
            self.size_triggered += 1
        else:
            self.timeout_triggered += 1
        if decode:
            self.decode_batches += 1
        else:
            self.prefill_batches += 1
            for rec in recs:
                rec[_PFB] = now
                rec[_PFSZ] = size
        self.in_flight_rejoiners += rejoiners
        self.ready.append((decode, recs, ctxs, service, energy))

    def _admit(self, rec, ctx: int, decode: bool, now: float) -> None:
        self.steps_in += 1
        key = (rec[_QID], decode)
        queues = self.queues
        q = queues.get(key)
        rejoin = 1 if ctx != rec[_LCTX] else 0
        if q is None:
            q = queues[key] = [[now], [rec], [ctx], rejoin]
            if self.max_batch_size <= 1:
                self._seal(key, now, by_size=True)
            elif self.max_wait_s > 0:
                heappush(self.heap, (now + self.max_wait_s, 2, self.seq, None))
                self.seq += 1
        else:
            q[0].append(now)
            q[1].append(rec)
            q[2].append(ctx)
            q[3] += rejoin
            if len(q[1]) >= self.max_batch_size:
                self._seal(key, now, by_size=True)

    def _flush_due(self, now: float) -> None:
        # Same float comparison as the reference batcher's flush_due.
        w = self.max_wait_s
        queues = self.queues
        if len(queues) == 1:
            key = next(iter(queues))
            if now >= queues[key][0][0] + w:
                self._seal(key, now, by_size=False)
            return
        due = [key for key, q in queues.items() if now >= q[0][0] + w]
        for key in due:
            self._seal(key, now, by_size=False)

    def _dispatch(self, now: float) -> None:
        ready = self.ready
        if not ready or self.min_free_at > now:
            return
        free_at = self.free_at
        while ready:
            dev = -1
            for d in range(self.num_devices):
                if free_at[d] <= now:
                    dev = d
                    break
            if dev < 0:
                return
            batch = ready.popleft()
            decode, recs, ctxs, service, energy = batch
            finish = now + service
            free_at[dev] = finish
            self.min_free_at = min(free_at)
            self.busy_s[dev] += service
            self.energy_pj[dev] += energy * len(recs)
            if not decode:
                for rec in recs:
                    rec[_PFS] = now
                    rec[_PFD] = dev
            heappush(self.heap, (finish, 0, self.seq, batch))
            self.seq += 1

    def _after_event(self, now: float) -> None:
        self.last_now = now
        if self.zero_wait and self.queues:
            self._flush_due(now)
        if self.arrivals_done and self.in_flight_rejoiners == 0 and self.queues:
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
        self._dispatch(now)

    def _handle_heap_event(self) -> None:
        now, priority, _, batch = heappop(self.heap)
        if priority == 0:  # DEVICE_DONE
            decode, recs, ctxs, service, energy = batch
            size = len(recs)
            if now > self.end_s:
                self.end_s = now
            # The rejoin admission (self._admit with decode=True) is
            # inlined: this loop runs once per token-step and dominates
            # the engine's wall-clock.
            queues = self.queues
            completed = self.completed
            max_bs = self.max_batch_size
            w = self.max_wait_s
            rejoined = 0
            for k in range(size):
                rec = recs[k]
                ctx = ctxs[k]
                last = rec[_LCTX]
                if decode:
                    rec[_DSLOT] += size
                else:
                    rec[_FT] = now
                if ctx == last:
                    rec[_FIN] = now
                    completed.append(rec)
                    continue
                rejoined += 1
                ctx += 1
                key = (rec[_QID], True)
                q = queues.get(key)
                if q is None:
                    q = queues[key] = [[now], [rec], [ctx], 0 if ctx == last else 1]
                    if max_bs <= 1:
                        self._seal(key, now, by_size=True)
                    elif w > 0:
                        heappush(self.heap, (now + w, 2, self.seq, None))
                        self.seq += 1
                else:
                    q[0].append(now)
                    q[1].append(rec)
                    q[2].append(ctx)
                    if ctx != last:
                        q[3] += 1
                    if len(q[1]) >= max_bs:
                        self._seal(key, now, by_size=True)
            self.in_flight_rejoiners -= rejoined
            self.steps_in += rejoined
        elif self.queues:  # BATCH_TIMEOUT
            self._flush_due(now)
        # _after_event, inlined (this handler is the hot loop).
        self.last_now = now
        if self.zero_wait and self.queues:
            self._flush_due(now)
        if self.arrivals_done and self.in_flight_rejoiners == 0 and self.queues:
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
        if self.ready:
            self._dispatch(now)

    # ------------------------------------------------------------------
    def run_arrivals(self, rid, arr, spec_i, vlen, olen, row_base: int):
        """Feed one chunk of sorted arrivals through the event loop.

        Heap events strictly preceding each arrival (in the reference
        (time, priority) order) are processed first; events at or
        beyond the chunk's last arrival stay queued for the next chunk
        or :meth:`finalize`.
        """
        heap = self.heap
        qmap = self.queue_of_spec
        n = rid.size
        for i in range(n):
            t = float(arr[i])
            while heap and (heap[0][0] < t or (heap[0][0] == t and heap[0][1] == 0)):
                self._handle_heap_event()
            v = int(vlen[i])
            o = int(olen[i])
            s = int(spec_i[i])
            rec = [
                int(rid[i]),
                t,
                s,
                v,
                o,
                v + o - 1,
                0.0,
                0.0,
                -1,
                1,
                0.0,
                0.0,
                0,
                row_base + i,
                qmap[s],
            ]
            self._admit(rec, v, False, t)
            # _after_event, inlined (arrivals_done is False here, so
            # the end-of-stream flush can never apply).
            self.last_now = t
            if self.zero_wait and self.queues:
                self._flush_due(t)
            if self.ready:
                self._dispatch(t)

    def finalize(self) -> None:
        """No further arrivals: apply the tail flush and drain the heap."""
        self.arrivals_done = True
        if self.in_flight_rejoiners == 0 and self.queues:
            # The end-of-stream flush the monolithic loop would have
            # applied at the last processed event.
            now = self.last_now
            for key in list(self.queues):
                self._seal(key, now, by_size=False)
            self._dispatch(now)
        while self.heap:
            self._handle_heap_event()
        assert not self.ready and not self.queues
        assert self.in_flight_rejoiners == 0


def _validate_knobs(num_devices, max_batch_size, max_wait_s):
    if num_devices < 1:
        raise ValueError("at least one device required")
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    if max_wait_s < 0:
        raise ValueError("max_wait_s must be non-negative")


def simulate_decode_table(
    table: RequestTable,
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    recorder: Optional[TraceRecorder] = None,
) -> DecodeColumnarResult:
    """Run one deployment over a generative columnar stream; fast path.

    Identical knobs and semantics to building ``num_devices``
    :class:`~repro.serving.devices.SprintDevice` plus a
    :class:`~repro.serving.batching.ContinuousBatcher` and calling
    :meth:`~repro.serving.scheduler.GenerativeServingSimulator.run`;
    per-request timestamps, busy/energy folds, and batch counters are
    bitwise equal.  Tables without an ``output_len`` column run as
    all-``output_len=1`` generative traffic (pure prefill).

    ``recorder`` emits the sampled requests' lifecycle spans post-hoc
    from the finished columns (prefill batching/dispatch, finish at
    the last token), bitwise identical to the reference loop's.
    """
    if len(table) == 0:
        raise ValueError("request stream must not be empty")
    _validate_knobs(num_devices, max_batch_size, max_wait_s)
    if np.unique(table.request_id).size != len(table):
        raise ValueError("duplicate request id in stream")

    order = np.lexsort((table.request_id, table.arrival_s))
    rid = table.request_id[order]
    arr = table.arrival_s[order]
    spec_i = table.spec_idx[order]
    vlen = table.valid_len[order]
    if table.output_len is None:
        olen = np.ones(len(table), dtype=np.int64)
    else:
        olen = table.output_len[order]

    core = _DecodeCore(
        table.specs,
        cost_model,
        num_devices,
        max_batch_size,
        max_wait_s,
        setup_cycles,
    )
    core.run_arrivals(rid, arr, spec_i, vlen, olen, 0)
    core.finalize()

    n = len(table)
    prefill_batched = np.empty(n, dtype=np.float64)
    prefill_start = np.empty(n, dtype=np.float64)
    first_token = np.empty(n, dtype=np.float64)
    finish = np.empty(n, dtype=np.float64)
    prefill_size = np.empty(n, dtype=np.int64)
    prefill_dev = np.empty(n, dtype=np.int64)
    dslots = np.empty(n, dtype=np.int64)
    assert len(core.completed) == n
    for rec in core.completed:
        row = rec[_ROW]
        prefill_batched[row] = rec[_PFB]
        prefill_start[row] = rec[_PFS]
        first_token[row] = rec[_FT]
        finish[row] = rec[_FIN]
        prefill_size[row] = rec[_PFSZ]
        prefill_dev[row] = rec[_PFD]
        dslots[row] = rec[_DSLOT]

    if recorder is not None:
        specs = table.specs
        for i in range(n):
            recorder.add_request(
                request_id=int(rid[i]),
                model=specs[int(spec_i[i])].name,
                arrival_s=float(arr[i]),
                batched_s=float(prefill_batched[i]),
                service_start_s=float(prefill_start[i]),
                finish_s=float(finish[i]),
                device_id=int(prefill_dev[i]),
                batch_size=int(prefill_size[i]),
            )

    return DecodeColumnarResult(
        specs=table.specs,
        request_id=rid,
        arrival_s=arr,
        spec_idx=spec_i,
        valid_len=vlen,
        output_len=olen,
        prefill_batched_s=prefill_batched,
        prefill_start_s=prefill_start,
        first_token_s=first_token,
        finish_s=finish,
        prefill_batch_size=prefill_size,
        prefill_device_id=prefill_dev,
        decode_slots=dslots,
        start_s=float(arr[0]),
        end_s=float(finish.max()),
        device_busy_s=list(core.busy_s),
        device_energy_pj=list(core.energy_pj),
        batches=core.batches,
        prefill_batches=core.prefill_batches,
        decode_batches=core.decode_batches,
        size_triggered_batches=core.size_triggered,
        timeout_triggered_batches=core.timeout_triggered,
        total_tokens=int(olen.sum()),
    )


def _completed_chunk(specs, recs) -> DecodeCompletedChunk:
    n = len(recs)
    cols = {
        "request_id": (np.int64, _RID),
        "arrival_s": (np.float64, _ARR),
        "spec_idx": (np.int64, _SPEC),
        "valid_len": (np.int64, _VLEN),
        "output_len": (np.int64, _OLEN),
        "prefill_batched_s": (np.float64, _PFB),
        "prefill_start_s": (np.float64, _PFS),
        "first_token_s": (np.float64, _FT),
        "finish_s": (np.float64, _FIN),
        "prefill_batch_size": (np.int64, _PFSZ),
        "prefill_device_id": (np.int64, _PFD),
        "decode_slots": (np.int64, _DSLOT),
    }
    arrays = {}
    for name, (dtype, at) in cols.items():
        col = np.empty(n, dtype=dtype)
        for i, rec in enumerate(recs):
            col[i] = rec[at]
        arrays[name] = col
    return DecodeCompletedChunk(specs=specs, **arrays)


def simulate_decode_stream(
    chunks: Iterable[RequestTable],
    cost_model: ServiceCostModel,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    sink: Optional[Callable[[DecodeCompletedChunk], None]] = None,
) -> DecodeStreamedResult:
    """Out-of-core generative simulation over a chunked request stream.

    The generative twin of :func:`~repro.serving.engine.
    simulate_stream`: consumes generative ``RequestTable`` chunks in
    arrival order, holds only the event-loop frontier (open queues,
    in-flight step batches, device folds) plus one chunk, and retires
    completed requests through ``sink`` as
    :class:`DecodeCompletedChunk` columns in completion order.  Every
    emitted value and aggregate is bitwise equal to the whole-table
    :func:`simulate_decode_table` run of the concatenated stream, at
    any chunk size.

    Chunks must be non-overlapping and ordered (each chunk's earliest
    (arrival, id) lexicographically follows the previous chunk's
    latest) and share one spec list; request-id uniqueness across
    chunks is the caller's contract, as in the prefill driver.
    """
    _validate_knobs(num_devices, max_batch_size, max_wait_s)
    core: Optional[_DecodeCore] = None
    specs: Optional[List] = None
    start_s = 0.0
    row_base = 0
    prev_arrival = -np.inf
    prev_id = -1

    def _drain() -> None:
        if core.completed:
            chunk_out = _completed_chunk(specs, core.completed)
            core.completed.clear()
            if sink is not None:
                sink(chunk_out)

    for chunk in chunks:
        if len(chunk) == 0:
            continue
        if specs is None:
            specs = list(chunk.specs)
            core = _DecodeCore(
                specs,
                cost_model,
                num_devices,
                max_batch_size,
                max_wait_s,
                setup_cycles,
            )
        elif list(chunk.specs) != specs:
            raise ValueError("chunks must share one spec list")
        order = np.lexsort((chunk.request_id, chunk.arrival_s))
        rid = chunk.request_id[order]
        arr = chunk.arrival_s[order]
        if row_base == 0:
            start_s = float(arr[0])
        if (arr[0], rid[0]) <= (prev_arrival, prev_id):
            raise ValueError("chunks must be ordered by (arrival_s, request_id)")
        if np.unique(rid).size != rid.size:
            raise ValueError("duplicate request id in chunk")
        prev_arrival, prev_id = float(arr[-1]), int(rid[-1])
        if chunk.output_len is None:
            olen = np.ones(len(chunk), dtype=np.int64)
        else:
            olen = chunk.output_len[order]
        core.run_arrivals(
            rid,
            arr,
            chunk.spec_idx[order],
            chunk.valid_len[order],
            olen,
            row_base,
        )
        row_base += len(chunk)
        _drain()
    if core is None:
        raise ValueError("request stream must not be empty")
    core.finalize()
    _drain()
    return DecodeStreamedResult(
        completed=row_base,
        start_s=start_s,
        end_s=float(core.end_s),
        device_busy_s=list(core.busy_s),
        device_energy_pj=list(core.energy_pj),
        batches=core.batches,
        prefill_batches=core.prefill_batches,
        decode_batches=core.decode_batches,
        size_triggered_batches=core.size_triggered,
        timeout_triggered_batches=core.timeout_triggered,
        total_tokens=core.steps_in,
    )
