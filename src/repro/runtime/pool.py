"""Process-sharded experiment orchestrator.

:class:`ExperimentPool` runs a set of experiments across
``ProcessPoolExecutor`` workers.  Two kinds of work are sharded:

* **Standalone experiments** (fig1, fig5, sensitivity, ...) run whole
  in a worker, which returns the finished artifact.
* **Unit-planned experiments** declare the independent simulation
  points behind their ``run`` via the :mod:`~repro.runtime.units`
  WorkUnit protocol (``plan``/``prime``/``clear_primed``).  The pool
  takes the union of every planned experiment's units (identical
  points deduplicate by unit key — the fig10-13/ffn/table3 grids all
  consume the shared :mod:`~repro.experiments.sweep` cells), shards
  them by unit *group* so per-shard warm state is built once (one
  calibrated workload per model shard, one serving cost model per mode
  shard), executes shards in workers, primes every owning module with
  the shipped-back results, and aggregates each experiment in-parent —
  cheap, and each point is computed exactly once no matter how many
  experiments consume it.

Determinism: every unit key carries the full parameters (including
seeds) of its point, and ``execute()`` is the same pure computation
the serial ``run`` performs, so results do not depend on worker count
or scheduling; artifacts are byte-identical across ``--jobs`` values.
When a :class:`~repro.runtime.cache.ResultCache` is attached, hits
skip whole experiments (artifact granularity) or individual points
(unit granularity — so editing a load list only simulates the new
points).  Fresh unit results *stream* into the cache the moment each
one is computed — worker-side, atomically, not at experiment end — so
a ``--jobs`` run killed mid-flight resumes from exactly the units that
already landed.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import registry
from repro.obs import telemetry
from repro.runtime.artifacts import Artifact, build_artifact
from repro.runtime.cache import (
    ResultCache,
    cache_key,
    code_version,
    unit_cache_key,
)
from repro.runtime.units import WorkUnit, supports_units


@dataclass
class ExperimentOutcome:
    """One experiment's result plus how it was obtained."""

    name: str
    artifact: Optional[Artifact]
    seconds: float
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_standalone(name: str, kwargs: Dict[str, Any]) -> Tuple[Artifact, float]:
    """Worker: run one whole experiment; returns (artifact, seconds)."""
    _, module = registry.EXPERIMENTS[name]
    start = time.perf_counter()
    artifact = build_artifact(name, kwargs, module)
    return artifact, time.perf_counter() - start


def _execute_units(
    units: Sequence[WorkUnit],
    cache_root: Optional[str] = None,
    cache_version: Optional[str] = None,
) -> List[Tuple[Any, Any]]:
    """Worker: execute one shard of work units.

    Shards arrive grouped by ``unit.group``, so process-level warm
    state (the sweep's calibrated workloads, serving's per-mode cost
    models) is built on the first unit and shared by the rest.

    When a cache directory is attached, every unit result streams into
    it the moment it is computed (atomic write), not when the shard --
    let alone the experiment -- finishes: a ``--jobs`` run killed
    mid-flight resumes from exactly the units that already landed.
    Entries are addressed under the *parent's* source digest
    (``cache_version``): workers neither re-hash the tree nor race a
    concurrent source edit into keys the parent would never look up.
    No stale-temp sweep worker-side -- siblings may be mid-write.
    """
    cache = (
        ResultCache(cache_root, sweep_stale=False)
        if cache_root is not None
        else None
    )
    out = []
    for unit in units:
        result = unit.execute()
        if cache is not None:
            cache.put_unit(
                unit_cache_key(unit.key, version=cache_version), result
            )
        out.append((unit.key, result))
    return out


class ExperimentPool:
    """Shard experiments (and their work units) across processes."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[mp.context.BaseContext] = None,
        shard_retries: int = 1,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        #: Re-runs granted to a unit shard whose worker died (e.g. an
        #: OOM-killed process).  Each retry gets a *fresh* executor --
        #: a crashed worker poisons its pool (BrokenProcessPool), so
        #: resubmitting there can never succeed.
        self.shard_retries = max(0, int(shard_retries))
        if mp_context is None:
            # fork keeps worker start-up cheap (warm imports) and
            # inherits the parent's hash seed, so any residual
            # dict/set ordering matches the serial run exactly.
            methods = mp.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
            mp_context = mp.get_context(method)
        self._mp_context = mp_context

    # ------------------------------------------------------------------
    def run(
        self, names: Sequence[str], fast: bool = False
    ) -> Dict[str, ExperimentOutcome]:
        """Run ``names`` (cache -> shard -> aggregate); insertion-ordered.

        Raises :class:`KeyError` for unknown names before any work
        starts.  Per-experiment failures are captured in the outcome's
        ``error`` field rather than aborting the batch.
        """
        outcomes: Dict[str, Optional[ExperimentOutcome]] = {}
        pending: List[Tuple[str, Dict[str, Any], Any]] = []
        for name in names:
            if name in outcomes:
                continue
            kwargs, module = registry.resolve(name, fast)
            outcomes[name] = None
            if self.cache is not None:
                hit = self.cache.get(cache_key(name, kwargs))
                if hit is not None:
                    outcomes[name] = ExperimentOutcome(name, hit, 0.0, cached=True)
                    continue
            pending.append((name, kwargs, module))

        # Workers pay off when there is more than one experiment to
        # spread out, or when even a single pending experiment plans
        # shardable units behind it.
        use_workers = self.jobs > 1 and (
            len(pending) > 1
            or any(supports_units(module) for _, _, module in pending)
        )
        if use_workers:
            self._run_sharded(pending, outcomes)
        else:
            for name, kwargs, module in pending:
                outcomes[name] = self._run_serial(name, kwargs, module)

        if self.cache is not None:
            for outcome in outcomes.values():
                if outcome.ok and not outcome.cached:
                    self.cache.put(outcome.artifact)
        return outcomes

    # ------------------------------------------------------------------
    def _plan(self, module, kwargs) -> Optional[List[WorkUnit]]:
        """``module.plan(**kwargs)``, or None when planning fails.

        Unit planning is an optimization; a drifting ``plan`` signature
        must not abort the batch.  The experiment still aggregates via
        :meth:`_run_local`, which isolates (and reports) any real
        failure.
        """
        try:
            return list(module.plan(**kwargs))
        except Exception:  # noqa: BLE001
            return None

    def _run_local(self, name, kwargs, module) -> ExperimentOutcome:
        start = time.perf_counter()
        try:
            artifact = build_artifact(name, kwargs, module)
        except Exception as exc:  # noqa: BLE001 - reported per experiment
            return ExperimentOutcome(
                name,
                None,
                time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
        return ExperimentOutcome(name, artifact, time.perf_counter() - start)

    def _run_serial(self, name, kwargs, module) -> ExperimentOutcome:
        """In-process run, still unit-cached when the module plans.

        Even at ``--jobs 1`` a planned experiment replays its cached
        points and simulates only the missing ones, so warm reruns
        after a kwargs edit stay incremental.
        """
        if self.cache is None or not supports_units(module):
            return self._run_local(name, kwargs, module)
        units = self._plan(module, kwargs)
        if not units:
            return self._run_local(name, kwargs, module)
        telemetry.count("units.planned", len(units))
        start = time.perf_counter()
        try:
            try:
                for unit in units:
                    ukey = unit_cache_key(unit.key)
                    result = self.cache.get_unit(ukey)
                    if result is None:
                        result = unit.execute()
                        self.cache.put_unit(ukey, result)
                        telemetry.count("units.executed")
                    else:
                        telemetry.count("units.replayed")
                    module.prime(unit.key, result)
            except Exception:  # noqa: BLE001
                # A unit that cannot execute re-fails (and is reported)
                # inside the aggregation run below.
                pass
            outcome = self._run_local(name, kwargs, module)
        finally:
            module.clear_primed()
        outcome.seconds = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------
    def _retry_shard(
        self, group, shard, cache_root, cache_version, prime_owners
    ) -> bool:
        """Re-run one failed unit shard, bounded by ``shard_retries``.

        Each attempt runs on a **fresh** single-worker executor: the
        original pool is poisoned once any worker dies.  On success the
        results prime their owners exactly as a first-try shard would
        (unit cache writes already streamed worker-side).  After the
        budget is spent the shard is abandoned -- the consuming
        experiment re-simulates its points serially, as before.
        """
        for attempt in range(1, self.shard_retries + 1):
            telemetry.count("units.shard_retries")
            telemetry.event(
                "shard_retry",
                group=repr(group),
                units=len(shard),
                attempt=attempt,
            )
            try:
                with ProcessPoolExecutor(
                    max_workers=1, mp_context=self._mp_context
                ) as retry_pool:
                    results = retry_pool.submit(
                        _execute_units, shard, cache_root, cache_version
                    ).result()
            except Exception as exc:  # noqa: BLE001
                telemetry.warn(
                    f"shard retry {attempt}/{self.shard_retries} failed "
                    f"({type(exc).__name__}: {exc})",
                    source="work-unit-shard",
                )
                continue
            for key, result in results:
                prime_owners(key, result)
            return True
        telemetry.warn(
            "work-unit shard exhausted its retries; falling back to "
            "in-process simulation",
            source="work-unit-shard",
        )
        return False

    # ------------------------------------------------------------------
    def _run_sharded(self, pending, outcomes) -> None:
        planned: List[Tuple[str, Dict[str, Any], Any]] = []
        standalone: List[Tuple[str, Dict[str, Any], Any]] = []
        plans: Dict[str, List[WorkUnit]] = {}
        for spec in pending:
            name, kwargs, module = spec
            if supports_units(module):
                planned.append(spec)
                plans[name] = self._plan(module, kwargs) or []
            else:
                standalone.append(spec)

        # Union of every planned experiment's units: identical points
        # (same key) deduplicate, and each key remembers which modules
        # to prime with its result.
        units_by_key: Dict[Any, WorkUnit] = {}
        owners: Dict[Any, List[Any]] = {}
        for name, _kwargs, module in planned:
            for unit in plans[name]:
                units_by_key.setdefault(unit.key, unit)
                mods = owners.setdefault(unit.key, [])
                if module not in mods:
                    mods.append(module)

        def prime_owners(key: Any, result: Any) -> None:
            for module in owners[key]:
                module.prime(key, result)

        telemetry.count("units.planned", len(units_by_key))

        # Unit-cache pre-pass: cached points prime immediately and
        # never reach a worker.
        to_run: List[WorkUnit] = []
        for key, unit in units_by_key.items():
            if self.cache is not None:
                result = self.cache.get_unit(unit_cache_key(key))
                if result is not None:
                    prime_owners(key, result)
                    telemetry.count("units.replayed")
                    continue
            to_run.append(unit)
        telemetry.count("units.executed", len(to_run))

        # Shard by group affinity so per-shard warm state is shared.
        shards: Dict[Any, List[WorkUnit]] = {}
        for unit in to_run:
            shards.setdefault(unit.group, []).append(unit)
        for group, shard in shards.items():
            telemetry.event("shard", group=repr(group), units=len(shard))

        executor = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._mp_context
        )
        cache_root = str(self.cache.root) if self.cache is not None else None
        cache_version = code_version() if self.cache is not None else None
        with executor:
            unit_futures = {
                executor.submit(
                    _execute_units, shard, cache_root, cache_version
                ): (group, shard)
                for group, shard in shards.items()
            }
            standalone_futures = {}
            submitted: Dict[Any, float] = {}
            elapsed: Dict[Any, float] = {}

            def _record_elapsed(future, t0):
                elapsed[future] = time.perf_counter() - t0

            for name, kwargs, _module in standalone:
                future = executor.submit(_run_standalone, name, kwargs)
                standalone_futures[future] = name
                submitted[future] = time.perf_counter()
                # Completion wall time is stamped by the executor's
                # waiter thread, so a failed future still reports how
                # long it actually ran instead of 0.0.
                future.add_done_callback(
                    functools.partial(_record_elapsed, t0=submitted[future])
                )
            failed: List[Tuple[Any, List[WorkUnit]]] = []
            for future in as_completed(unit_futures):
                try:
                    # Cache writes already streamed worker-side, unit
                    # by unit; the parent only primes the owners.
                    for key, result in future.result():
                        prime_owners(key, result)
                except Exception as exc:  # noqa: BLE001
                    # A crashed worker (SIGKILL, OOM) poisons the whole
                    # pool, so every shard still in flight lands here;
                    # each gets its bounded retry on a fresh executor
                    # below before the serial fallback.
                    failed.append(unit_futures[future])
                    telemetry.warn(
                        f"work-unit shard failed ({type(exc).__name__}: "
                        f"{exc}); scheduling shard retry",
                        source="work-unit-shard",
                    )
            for group, shard in failed:
                self._retry_shard(
                    group, shard, cache_root, cache_version, prime_owners
                )
            # Units are primed: aggregate the planned experiments
            # in-parent while the standalone workers keep running.
            # Priming is scoped to this run so module-global state does
            # not leak into unrelated later callers.
            try:
                for name, kwargs, module in planned:
                    outcomes[name] = self._run_local(name, kwargs, module)
            finally:
                for module in {id(m): m for _, _, m in planned}.values():
                    module.clear_primed()
            for future, name in standalone_futures.items():
                try:
                    artifact, seconds = future.result()
                except Exception as exc:  # noqa: BLE001
                    # result() can raise before the done callback has
                    # run (set_exception wakes waiters first); in that
                    # window the future finished just now, so measuring
                    # from submission is the accurate fallback.
                    failed_s = elapsed.get(
                        future, time.perf_counter() - submitted[future]
                    )
                    outcomes[name] = ExperimentOutcome(
                        name,
                        None,
                        failed_s,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    outcomes[name] = ExperimentOutcome(name, artifact, seconds)


# ----------------------------------------------------------------------
# Zero-copy process sharding of one columnar serving simulation.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SharedTableHandle:
    """Address of a ``RequestTable`` living in POSIX shared memory.

    Picklable and tiny: the segment name, the row count, and the spec
    list.  Workers :func:`map_request_table` it to get zero-copy numpy
    views over the columns -- no per-shard pickling of array data,
    which is what made the historical process-pool path lose to serial
    on array-native work.
    """

    name: str
    rows: int
    specs: tuple
    #: Generative tables carry a fifth ``output_len`` column.
    generative: bool = False


#: Column order inside a shared segment; every column is 8 bytes/row.
#: Generative tables append ``output_len`` after these.
_SHARED_COLUMNS = (
    ("request_id", np.int64),
    ("arrival_s", np.float64),
    ("spec_idx", np.int64),
    ("valid_len", np.int64),
)
_GENERATIVE_COLUMN = ("output_len", np.int64)


def _segment_columns(generative: bool):
    if generative:
        return _SHARED_COLUMNS + (_GENERATIVE_COLUMN,)
    return _SHARED_COLUMNS


def share_request_table(table) -> Tuple[Any, SharedTableHandle]:
    """Copy a table's columns into one shared-memory segment.

    Returns ``(segment, handle)``; the caller owns the segment and
    must ``close()`` + ``unlink()`` it when every worker is done.
    Generative tables (``output_len`` column present) share that
    column too; the handle records the layout.
    """
    from multiprocessing import shared_memory

    generative = getattr(table, "output_len", None) is not None
    columns = _segment_columns(generative)
    rows = len(table)
    segment = shared_memory.SharedMemory(
        create=True, size=max(rows * 8 * len(columns), 1)
    )
    offset = 0
    for column, dtype in columns:
        view = np.ndarray((rows,), dtype=dtype, buffer=segment.buf, offset=offset)
        view[:] = getattr(table, column)
        offset += rows * 8
    return segment, SharedTableHandle(
        name=segment.name,
        rows=rows,
        specs=tuple(table.specs),
        generative=generative,
    )


def map_request_table(handle: SharedTableHandle) -> Tuple[Any, Any]:
    """Map a shared segment back into a zero-copy ``RequestTable``.

    Returns ``(table, segment)``.  The table's columns are views over
    the segment's buffer: the caller must keep ``segment`` referenced
    while the table is alive, and drop every column reference before
    closing it.
    """
    from multiprocessing import shared_memory

    from repro.serving.requests import RequestTable

    segment = shared_memory.SharedMemory(name=handle.name)
    columns = {}
    offset = 0
    for column, dtype in _segment_columns(handle.generative):
        columns[column] = np.ndarray(
            (handle.rows,), dtype=dtype, buffer=segment.buf, offset=offset
        )
        offset += handle.rows * 8
    return RequestTable(specs=list(handle.specs), **columns), segment


def _form_queue_shard(
    handle: SharedTableHandle,
    queue_ids: Sequence[int],
    cost_args: Tuple[Any, ...],
    max_batch_size: int,
    max_wait_s: float,
    setup_cycles: int,
) -> List[Tuple[int, Any]]:
    """Worker: phase 1 (batch formation + cost pricing) for some queues.

    The table arrives as a shared-memory handle (zero-copy mapping);
    only the per-*batch* result arrays -- roughly ``rows / mean batch
    size`` entries -- travel back through pickling.  The table was
    canonically sorted by the parent, so row grouping, formation, and
    costs are computed on exactly the arrays the parent would use.
    """
    from repro.serving import engine
    from repro.serving.devices import shared_cost_model

    cost_model = shared_cost_model(*cost_args)
    table, segment = map_request_table(handle)
    try:
        queue_specs, queue_of_spec = engine._queue_map(table.specs)
        rows_list = engine._group_rows(table.spec_idx, queue_of_spec, len(queue_specs))
        last_arrival_s = float(table.arrival_s[-1])
        frequency_hz = cost_model.config.frequency_ghz * 1e9
        out = []
        for qid in queue_ids:
            rows = rows_list[qid]
            # Fancy indexing copies, so every array below is fresh --
            # nothing shipped back references the shared buffer.
            out.append(
                (
                    qid,
                    engine._form_queue(
                        table.arrival_s[rows],
                        table.request_id[rows],
                        table.valid_len[rows],
                        queue_specs[qid],
                        cost_model,
                        max_batch_size,
                        max_wait_s,
                        setup_cycles,
                        frequency_hz,
                        last_arrival_s=last_arrival_s,
                    ),
                )
            )
        return out
    finally:
        del table
        segment.close()


def _decode_vector_shard(
    handle: SharedTableHandle,
    queue_ids: Sequence[int],
    cost_args: Tuple[Any, ...],
) -> List[Tuple[Tuple[int, bool], Tuple[Any, Any]]]:
    """Worker: phase 1 (per-queue cost vectors) for a generative table.

    The expensive part of a decode simulation's setup is pricing every
    (queue, decode?, context) the event loop will touch -- each cold
    bucket runs the exact cycle model.  Workers map the shared columns
    zero-copy, compute each assigned queue's context ceiling
    (``valid_len + output_len - 1`` over its rows), and ship back only
    the two cost vectors per (queue, decode?) key -- a few KB each.
    Values are memoized pure functions of (model, bucket), so shard
    assignment cannot change any priced cost.
    """
    from repro.serving.decode import _build_cost_vectors, _queue_map
    from repro.serving.devices import shared_cost_model

    cost_model = shared_cost_model(*cost_args)
    table, segment = map_request_table(handle)
    try:
        queue_specs, queue_of_spec = _queue_map(table.specs)
        qmap = np.asarray(queue_of_spec, dtype=np.int64)
        qids = qmap[table.spec_idx]
        ctx_hi = table.valid_len + table.output_len - 1
        out = []
        for qid in queue_ids:
            hi = int(ctx_hi[qids == qid].max())
            spec = queue_specs[qid]
            for decode in (True, False):
                cyc, en = _build_cost_vectors(cost_model, spec, decode, hi)
                out.append(((qid, decode), (cyc, en)))
        return out
    finally:
        del qids, ctx_hi
        del table
        segment.close()


def simulate_decode_table_sharded(
    table,
    cost_model,
    jobs: int,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: Optional[int] = None,
    mp_context: Optional[mp.context.BaseContext] = None,
    recorder=None,
):
    """Process-sharded :func:`repro.serving.decode.simulate_decode_table`.

    Phase 1 (per-queue cost-vector construction, including the exact
    cycle-model passes behind cold cost buckets) fans out across
    processes that map the request columns -- including the generative
    ``output_len`` column -- from one zero-copy shared-memory segment;
    the event loop runs in-parent with every cost pre-priced.  The
    result is **bitwise identical** to the serial call at every
    ``jobs`` value: vectors are memoized pure functions of (model,
    bucket), and the parent injects them without touching the event
    order.

    Same ``cost_model`` constraint as :func:`simulate_table_sharded`
    (describable by its ``(config, mode, len_bucket, seed)`` key).
    The unit of parallelism is the model queue, so single-queue tables
    fall through to the serial path.
    """
    from repro.serving.decode import _queue_map, simulate_decode_table
    from repro.serving.devices import DEFAULT_SETUP_CYCLES

    if setup_cycles is None:
        setup_cycles = DEFAULT_SETUP_CYCLES
    if len(table) == 0:
        raise ValueError("request stream must not be empty")
    if getattr(table, "output_len", None) is None:
        raise ValueError("table has no output_len column; use simulate_table_sharded")
    serial_kwargs = dict(
        num_devices=num_devices,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        setup_cycles=setup_cycles,
        recorder=recorder,
    )
    queue_specs, queue_of_spec = _queue_map(table.specs)
    qmap = np.asarray(queue_of_spec, dtype=np.int64)
    qids = qmap[table.spec_idx]
    counts = np.bincount(qids, minlength=len(queue_specs))
    active = [q for q in range(len(queue_specs)) if counts[q]]
    if jobs <= 1 or len(active) <= 1:
        return simulate_decode_table(table, cost_model, **serial_kwargs)

    # Deterministic balanced assignment: queues by descending row
    # count (id-tie-broken), dealt round-robin onto the shards.
    ranked = sorted(active, key=lambda q: (-int(counts[q]), q))
    buckets: List[List[int]] = [[] for _ in range(min(jobs, len(active)))]
    for i, qid in enumerate(ranked):
        buckets[i % len(buckets)].append(qid)

    if mp_context is None:
        methods = mp.get_all_start_methods()
        mp_context = mp.get_context("fork" if "fork" in methods else methods[0])
    cost_args = (
        cost_model.config,
        cost_model.mode,
        cost_model.len_bucket,
        cost_model.seed,
    )
    segment, handle = share_request_table(table)
    try:
        with ProcessPoolExecutor(
            max_workers=len(buckets), mp_context=mp_context
        ) as executor:
            futures = [
                executor.submit(_decode_vector_shard, handle, bucket, cost_args)
                for bucket in buckets
            ]
            vectors = {}
            for future in futures:
                vectors.update(dict(future.result()))
    finally:
        segment.close()
        segment.unlink()
    return simulate_decode_table(
        table, cost_model, _vectors=vectors, **serial_kwargs
    )


def simulate_table_sharded(
    table,
    cost_model,
    jobs: int,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_s: float = 2e-3,
    setup_cycles: Optional[int] = None,
    mp_context: Optional[mp.context.BaseContext] = None,
    recorder=None,
):
    """Process-sharded :func:`repro.serving.engine.simulate_table`.

    Phase 1 (per-model-queue batch formation + cost lookup) fans out
    across processes that map the request columns from shared memory
    instead of unpickling them; phases 2-3 run in-parent on the
    shipped-back per-batch arrays.  The result is **bitwise identical**
    to the serial call at every ``jobs`` value: workers run the same
    phase-1 code on the same canonically sorted rows, and assembly
    consumes their parts in the serial queue order.

    ``cost_model`` must be describable by its ``(config, mode,
    len_bucket, seed)`` key (the :func:`~repro.serving.devices.
    shared_cost_model` constructor workers rebuild it from); models
    with custom ``system_kwargs`` are not shardable.  Sharding pays
    off only for multi-model mixes -- the unit of parallelism is the
    model queue -- so single-queue tables fall through to the serial
    path.
    """
    from repro.serving import engine
    from repro.serving.devices import DEFAULT_SETUP_CYCLES
    from repro.serving.requests import RequestTable

    if setup_cycles is None:
        setup_cycles = DEFAULT_SETUP_CYCLES
    if len(table) == 0:
        raise ValueError("request stream must not be empty")
    if getattr(table, "output_len", None) is not None:
        # Generative batch formation depends on device timing, so the
        # shardable phase 1 is cost-vector pricing instead of batch
        # formation -- route to the decode-specific entry point.
        return simulate_decode_table_sharded(
            table,
            cost_model,
            jobs,
            num_devices=num_devices,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            setup_cycles=setup_cycles,
            mp_context=mp_context,
            recorder=recorder,
        )
    order = np.lexsort((table.request_id, table.arrival_s))
    table = RequestTable(
        specs=table.specs,
        request_id=table.request_id[order],
        arrival_s=table.arrival_s[order],
        spec_idx=table.spec_idx[order],
        valid_len=table.valid_len[order],
    )
    queue_specs, queue_of_spec = engine._queue_map(table.specs)
    rows_list = engine._group_rows(table.spec_idx, queue_of_spec, len(queue_specs))
    active = [q for q in range(len(queue_specs)) if rows_list[q].size]
    serial_kwargs = dict(
        num_devices=num_devices,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        setup_cycles=setup_cycles,
        recorder=recorder,
    )
    if jobs <= 1 or len(active) <= 1:
        return engine.simulate_table(table, cost_model, **serial_kwargs)

    # Deterministic balanced assignment: queues by descending row
    # count (id-tie-broken), dealt round-robin onto the shards.
    ranked = sorted(active, key=lambda q: (-rows_list[q].size, q))
    buckets: List[List[int]] = [[] for _ in range(min(jobs, len(active)))]
    for i, qid in enumerate(ranked):
        buckets[i % len(buckets)].append(qid)

    if mp_context is None:
        methods = mp.get_all_start_methods()
        mp_context = mp.get_context("fork" if "fork" in methods else methods[0])
    cost_args = (
        cost_model.config,
        cost_model.mode,
        cost_model.len_bucket,
        cost_model.seed,
    )
    segment, handle = share_request_table(table)
    try:
        with ProcessPoolExecutor(
            max_workers=len(buckets), mp_context=mp_context
        ) as executor:
            futures = [
                executor.submit(
                    _form_queue_shard,
                    handle,
                    bucket,
                    cost_args,
                    max_batch_size,
                    max_wait_s,
                    setup_cycles,
                )
                for bucket in buckets
            ]
            formed = {}
            for future in futures:
                formed.update(dict(future.result()))
    finally:
        segment.close()
        segment.unlink()
    return engine.simulate_table(table, cost_model, _formed=formed, **serial_kwargs)
