"""Process-sharded experiment orchestrator.

:class:`ExperimentPool` runs a set of experiments across
``ProcessPoolExecutor`` workers.  Two kinds of work unit are sharded:

* **Standalone experiments** (fig1, fig5, sensitivity, serving, ...)
  run whole in a worker, which returns the finished artifact.
* **Grid-backed experiments** (fig10-13, ffn, table3) all consume the
  shared :mod:`repro.experiments.sweep` cell grid.  The pool takes the
  union of their declared ``grid_cells()``, shards the cells by model
  (so each model's calibrated workload is generated once per shard),
  simulates shards in workers, primes the parent's sweep cache with
  the shipped-back reports, and then aggregates each experiment
  in-process — cheap, and the grid is computed exactly once no matter
  how many experiments consume it.

Determinism: every cell key and experiment kwarg carries its seed, so
results do not depend on worker count or scheduling; artifacts are
byte-identical across ``--jobs`` values.  When a :class:`~repro.
runtime.cache.ResultCache` is attached, hits skip both kinds of work
entirely and fresh results are written back after the run.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments import registry, sweep
from repro.runtime.artifacts import Artifact, build_artifact
from repro.runtime.cache import ResultCache, cache_key


@dataclass
class ExperimentOutcome:
    """One experiment's result plus how it was obtained."""

    name: str
    artifact: Optional[Artifact]
    seconds: float
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_standalone(name: str, kwargs: Dict[str, Any]) -> Tuple[Artifact, float]:
    """Worker: run one whole experiment; returns (artifact, seconds)."""
    _, module = registry.EXPERIMENTS[name]
    start = time.perf_counter()
    artifact = build_artifact(name, kwargs, module)
    return artifact, time.perf_counter() - start


def _simulate_cells(
    cells: Sequence[sweep.CellKey],
) -> List[Tuple[sweep.CellKey, Any]]:
    """Worker: simulate one shard of sweep cells (same-model, so the
    calibrated workload is generated once and shared)."""
    return [(key, sweep.simulate(*key)) for key in cells]


class ExperimentPool:
    """Shard experiments (and their sweep cells) across processes."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        mp_context: Optional[mp.context.BaseContext] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        if mp_context is None:
            # fork keeps worker start-up cheap (warm imports) and
            # inherits the parent's hash seed, so any residual
            # dict/set ordering matches the serial run exactly.
            methods = mp.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
            mp_context = mp.get_context(method)
        self._mp_context = mp_context

    # ------------------------------------------------------------------
    def run(
        self, names: Sequence[str], fast: bool = False
    ) -> Dict[str, ExperimentOutcome]:
        """Run ``names`` (cache -> shard -> aggregate); insertion-ordered.

        Raises :class:`KeyError` for unknown names before any work
        starts.  Per-experiment failures are captured in the outcome's
        ``error`` field rather than aborting the batch.
        """
        outcomes: Dict[str, Optional[ExperimentOutcome]] = {}
        pending: List[Tuple[str, Dict[str, Any], Any]] = []
        for name in names:
            if name in outcomes:
                continue
            kwargs, module = registry.resolve(name, fast)
            outcomes[name] = None
            if self.cache is not None:
                hit = self.cache.get(cache_key(name, kwargs))
                if hit is not None:
                    outcomes[name] = ExperimentOutcome(name, hit, 0.0, cached=True)
                    continue
            pending.append((name, kwargs, module))

        # Workers pay off when there is more than one experiment to
        # spread out, or when even a single pending experiment has a
        # shardable cell grid behind it.
        use_workers = self.jobs > 1 and (
            len(pending) > 1
            or any(hasattr(module, "grid_cells") for _, _, module in pending)
        )
        if use_workers:
            self._run_sharded(pending, outcomes)
        else:
            for name, kwargs, module in pending:
                outcomes[name] = self._run_local(name, kwargs, module)

        if self.cache is not None:
            for outcome in outcomes.values():
                if outcome.ok and not outcome.cached:
                    self.cache.put(outcome.artifact)
        return outcomes

    # ------------------------------------------------------------------
    def _run_local(self, name, kwargs, module) -> ExperimentOutcome:
        start = time.perf_counter()
        try:
            artifact = build_artifact(name, kwargs, module)
        except Exception as exc:  # noqa: BLE001 - reported per experiment
            return ExperimentOutcome(
                name,
                None,
                time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
        return ExperimentOutcome(name, artifact, time.perf_counter() - start)

    def _run_sharded(self, pending, outcomes) -> None:
        grid_backed = [spec for spec in pending if hasattr(spec[2], "grid_cells")]
        standalone = [spec for spec in pending if not hasattr(spec[2], "grid_cells")]

        # Union of cells the grid-backed experiments will consume,
        # sharded by (model, samples, seed) so each shard shares one
        # calibrated workload.
        needed: Dict[sweep.CellKey, None] = {}
        for _name, kwargs, module in grid_backed:
            try:
                cell_keys = module.grid_cells(**kwargs)
            except Exception:  # noqa: BLE001
                # Cell enumeration is an optimization; a drifting
                # grid_cells signature must not abort the batch.  The
                # experiment still runs via _run_local below, which
                # isolates (and reports) any real failure.
                continue
            for key in cell_keys:
                needed.setdefault(tuple(key), None)
        shards: Dict[Tuple[str, int, int], List[sweep.CellKey]] = {}
        for key in needed:
            shards.setdefault((key[0], key[3], key[4]), []).append(key)

        executor = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._mp_context
        )
        with executor:
            cell_futures = [
                executor.submit(_simulate_cells, shard)
                for shard in shards.values()
            ]
            standalone_futures = {
                executor.submit(_run_standalone, name, kwargs): name
                for name, kwargs, _module in standalone
            }
            for future in as_completed(cell_futures):
                try:
                    for key, report in future.result():
                        sweep.prime(key, report)
                except Exception as exc:  # noqa: BLE001
                    # A failed shard is re-attempted (and any real
                    # simulation error surfaced) by the consuming
                    # experiment below — but serially, so say so.
                    print(
                        f"warning: sweep shard failed ({type(exc).__name__}: "
                        f"{exc}); falling back to in-process simulation",
                        file=sys.stderr,
                    )
            # Cells are primed: aggregate the grid consumers in-parent
            # while the standalone workers keep running.  Priming is
            # scoped to this run so module-global sweep state does not
            # leak into unrelated later callers.
            try:
                for name, kwargs, module in grid_backed:
                    outcomes[name] = self._run_local(name, kwargs, module)
            finally:
                sweep.clear_primed()
            for future, name in standalone_futures.items():
                try:
                    artifact, seconds = future.result()
                except Exception as exc:  # noqa: BLE001
                    outcomes[name] = ExperimentOutcome(
                        name,
                        None,
                        0.0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    outcomes[name] = ExperimentOutcome(name, artifact, seconds)
