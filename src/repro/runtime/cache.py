"""Content-addressed disk cache for experiment artifacts.

A cache key is the SHA-256 of three ingredients:

1. the experiment name,
2. the canonical JSON of its resolved run kwargs — config dataclasses
   (e.g. :class:`~repro.core.configs.SprintConfig`) hash by field
   values, so changing any hardware parameter changes the key, and
3. the code version — a digest over every ``repro`` source file, so
   editing the simulator invalidates every cached result.

Hits replay the stored artifact (rows + rendered table) with zero
simulation work; misses fall through to the orchestrator.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.runtime.artifacts import Artifact, to_jsonable


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` package's source tree."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def canonical_kwargs(kwargs: Dict[str, Any]) -> str:
    """Stable JSON encoding of run kwargs (sorted keys, no spaces)."""
    return json.dumps(to_jsonable(dict(kwargs)), sort_keys=True, separators=(",", ":"))


def cache_key(name: str, kwargs: Dict[str, Any], version: Optional[str] = None) -> str:
    """Content address of one (experiment, kwargs, code) computation."""
    if version is None:
        version = code_version()
    payload = f"{name}\n{canonical_kwargs(kwargs)}\n{version}"
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Artifacts stored as ``<root>/<cache_key>.json``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def get(self, key: str) -> Optional[Artifact]:
        path = self.path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            artifact = Artifact.from_json(path.read_text())
        except (ValueError, KeyError, TypeError):
            # A torn/stale entry is a miss, not an error.
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def put(self, artifact: Artifact) -> Path:
        path = self.path(artifact.cache_key)
        path.write_text(artifact.to_json())
        return path
