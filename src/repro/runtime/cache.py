"""Content-addressed disk cache for experiment artifacts and work units.

An artifact cache key is the SHA-256 of three ingredients:

1. the experiment name,
2. the canonical JSON of its resolved run kwargs — config dataclasses
   (e.g. :class:`~repro.core.configs.SprintConfig`) hash by field
   values, so changing any hardware parameter changes the key, and
3. the code version — a digest over every ``repro`` source file, so
   editing the simulator invalidates every cached result.

Hits replay the stored artifact (rows + rendered table) with zero
simulation work; misses fall through to the orchestrator.

The cache also stores results at **unit granularity** for experiments
on the :mod:`~repro.runtime.units` WorkUnit protocol: one entry per
unit, addressed by the unit's key (which embeds the point's resolved
kwargs) plus the same source digest.  When an experiment's kwargs
change — a new load in the serving sweep, an extra model in a figure
grid — the whole-artifact entry misses but every already-simulated
point replays from its unit entry, so only the new points run.  Unit
results are arbitrary simulation dataclasses and are stored pickled
(the cache directory is local and operator-controlled); a torn or
unreadable entry is a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import telemetry
from repro.runtime.artifacts import Artifact, to_jsonable


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` package's source tree."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def canonical_kwargs(kwargs: Dict[str, Any]) -> str:
    """Stable JSON encoding of run kwargs (sorted keys, no spaces)."""
    return json.dumps(to_jsonable(dict(kwargs)), sort_keys=True, separators=(",", ":"))


def cache_key(name: str, kwargs: Dict[str, Any], version: Optional[str] = None) -> str:
    """Content address of one (experiment, kwargs, code) computation."""
    if version is None:
        version = code_version()
    payload = f"{name}\n{canonical_kwargs(kwargs)}\n{version}"
    return hashlib.sha256(payload.encode()).hexdigest()


def unit_cache_key(key: Any, version: Optional[str] = None) -> str:
    """Content address of one work unit's (key, code) computation.

    ``key`` is a :class:`~repro.runtime.units.WorkUnit` key — a tuple
    of primitives that embeds the point's resolved kwargs — so the
    address changes exactly when the point's parameters or any
    ``repro`` source file change.
    """
    if version is None:
        version = code_version()
    canonical = json.dumps(to_jsonable(key), sort_keys=True, separators=(",", ":"))
    payload = f"unit\n{canonical}\n{version}"
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Artifacts stored as ``<root>/<cache_key>.json``; unit results
    stored pickled as ``<root>/units/<unit_cache_key>.pkl``."""

    def __init__(self, root: Union[str, Path], sweep_stale: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.unit_hits = 0
        self.unit_misses = 0
        if sweep_stale:
            # Temp files a killed writer stranded mid-put_unit.  Only
            # swept from an orchestrating process (workers pass False:
            # a sibling's in-flight temp must not vanish under it), and
            # only when old enough that no live writer -- including a
            # concurrent orchestrator sharing this cache dir -- can
            # still be between write and rename (puts are sub-second).
            cutoff = time.time() - 3600.0
            for stale in self.root.glob("units/*.tmp-*"):
                try:
                    if stale.stat().st_mtime < cutoff:
                        stale.unlink()
                except OSError:
                    pass

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def unit_path(self, key: str) -> Path:
        return self.root / "units" / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def get(self, key: str) -> Optional[Artifact]:
        path = self.path(key)
        if not path.exists():
            self.misses += 1
            telemetry.count("artifact_cache.misses")
            return None
        try:
            artifact = Artifact.from_json(path.read_text())
        except (ValueError, KeyError, TypeError):
            # A torn/stale entry is a miss, not an error.
            self.misses += 1
            telemetry.count("artifact_cache.misses")
            telemetry.event("cache_corrupt_entry", path=str(path))
            return None
        self.hits += 1
        telemetry.count("artifact_cache.hits")
        return artifact

    def put(self, artifact: Artifact) -> Path:
        path = self.path(artifact.cache_key)
        path.write_text(artifact.to_json())
        return path

    # ------------------------------------------------------------------
    # unit granularity
    # ------------------------------------------------------------------
    def get_unit(self, key: str) -> Optional[Any]:
        """Replay one unit result by its :func:`unit_cache_key`."""
        path = self.unit_path(key)
        if not path.exists():
            self.unit_misses += 1
            telemetry.count("unit_cache.misses")
            return None
        try:
            result = pickle.loads(path.read_bytes())
        except Exception:  # noqa: BLE001 - any torn/stale entry is a miss
            self.unit_misses += 1
            telemetry.count("unit_cache.misses")
            telemetry.count("unit_cache.corrupt_entries")
            telemetry.event("cache_corrupt_entry", path=str(path))
            return None
        self.unit_hits += 1
        telemetry.count("unit_cache.hits")
        return result

    def put_unit(self, key: str, result: Any) -> Path:
        """Store one unit result; atomic so concurrent writers (worker
        processes stream results in as they land) and mid-write kills
        never leave a torn entry behind."""
        path = self.unit_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        tmp.write_bytes(pickle.dumps(result))
        os.replace(tmp, path)
        return path
