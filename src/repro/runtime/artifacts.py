"""Structured experiment artifacts: JSON alongside the printed table.

Every experiment run produces an :class:`Artifact` — the structured
rows serialized to JSON-safe data plus the rendered table (the table
is a *rendering of* the artifact, produced once from the live row
objects and carried along).  Artifacts are what the runner writes to
``--json-out``, what the cache replays, and what CI diffs and uploads.

The JSON is deliberately free of wall-clock and host information so a
run with ``--jobs 4`` is byte-identical to ``--jobs 1`` and a cache
replay is byte-identical to the original computation.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

#: Bump when the artifact JSON layout changes incompatibly.
ARTIFACT_SCHEMA = 1


def to_jsonable(obj: Any) -> Any:
    """Deterministically convert experiment results to JSON-safe data.

    Dataclass rows become field-ordered dicts, numpy scalars/arrays
    become Python scalars/nested lists, tuples become lists, enums
    (e.g. :class:`~repro.core.system.ExecutionMode`) collapse to their
    values.  Mapping insertion order is preserved (experiment code
    builds dicts in a deterministic order; sets must be sorted by the
    producer).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return to_jsonable(obj.value)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot serialize {type(obj).__name__} into an artifact")


@dataclass(frozen=True)
class Artifact:
    """One experiment's machine-readable result.

    ``kwargs`` are the resolved run kwargs (after ``--fast``
    substitution), so the artifact records exactly what was computed;
    ``cache_key`` ties it back to the :class:`~repro.runtime.cache.
    ResultCache` entry it was (or would be) stored under.
    """

    name: str
    kwargs: Dict[str, Any]
    code_version: str
    cache_key: str
    rows: Any
    table: str
    schema: int = ARTIFACT_SCHEMA

    def to_json(self) -> str:
        payload = {
            "schema": self.schema,
            "name": self.name,
            "kwargs": self.kwargs,
            "code_version": self.code_version,
            "cache_key": self.cache_key,
            "rows": self.rows,
            "table": self.table,
        }
        return json.dumps(payload, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Artifact":
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            kwargs=payload["kwargs"],
            code_version=payload["code_version"],
            cache_key=payload["cache_key"],
            rows=payload["rows"],
            table=payload["table"],
            schema=payload["schema"],
        )

    def write(self, out_dir: Union[str, Path]) -> Path:
        """Write ``<out_dir>/<name>.json``; returns the path."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{self.name}.json"
        path.write_text(self.to_json())
        return path


def build_artifact(name: str, kwargs: Dict[str, Any], module: Any) -> Artifact:
    """Run ``module.run(**kwargs)`` and package the result.

    This is the single construction path used by the serial runner,
    the process-pool workers, and the cache fill, so artifacts are
    identical no matter where they were computed.
    """
    from repro.runtime.cache import cache_key, code_version

    rows = module.run(**kwargs)
    return Artifact(
        name=name,
        kwargs=to_jsonable(dict(kwargs)),
        code_version=code_version(),
        cache_key=cache_key(name, kwargs),
        rows=to_jsonable(rows),
        table=module.format_table(rows),
    )
