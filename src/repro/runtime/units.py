"""The WorkUnit protocol: how experiments declare shardable work.

Any experiment module may opt into process-sharding by exposing three
module-level hooks next to the mandatory ``run``/``format_table``
surface (:class:`repro.experiments.registry.ShardableExperiment`):

* ``plan(**kwargs) -> list[WorkUnit]`` — enumerate the independent
  simulation points a same-argument ``run(**kwargs)`` will consume.
* ``prime(key, result)`` — install one externally computed unit result
  so the subsequent in-parent ``run`` aggregates it instead of
  re-simulating.
* ``clear_primed()`` — drop every primed result (the pool scopes
  priming to one orchestration run).

A :class:`WorkUnit` is one such point.  The contract:

* ``key`` is a picklable, hashable tuple of primitives that *fully
  determines* the result — it embeds every run kwarg the point depends
  on (model, config name, mode, load, sample count, seed, ...).  The
  key is what ``prime`` receives, what deduplicates identical points
  across experiments, and what the unit-granularity
  :class:`~repro.runtime.cache.ResultCache` content-addresses.
* ``group`` is a hashable shard affinity: units sharing a group run in
  the same worker task so per-shard warm state (a calibrated workload,
  a serving cost model) is built once and reused.
* ``execute()`` runs worker-side and returns a picklable result that
  is byte-for-byte equivalent to what the serial ``run`` would have
  computed for the same point — this is the determinism contract that
  keeps artifacts identical across ``--jobs`` values.

Implementations (:class:`repro.experiments.sweep.GridUnit`,
:class:`repro.experiments.serving.ServingUnit`) conform structurally;
they do not import this module, so the experiment layer stays free of
runtime dependencies.
"""

from __future__ import annotations

from typing import Any, Protocol, Tuple, runtime_checkable


@runtime_checkable
class WorkUnit(Protocol):
    """One independent, picklable simulation point (see module doc)."""

    @property
    def key(self) -> Tuple[Any, ...]: ...

    @property
    def group(self) -> Tuple[Any, ...]: ...

    def execute(self) -> Any: ...


#: The module-level hooks that, together, opt an experiment into
#: unit-level sharding.
UNIT_HOOKS = ("plan", "prime", "clear_primed")


def supports_units(module: Any) -> bool:
    """True when ``module`` exposes the full plan/prime/clear surface."""
    return all(callable(getattr(module, hook, None)) for hook in UNIT_HOOKS)
