"""Parallel experiment runtime: orchestrator, work units, cache, artifacts.

The layers the ``sprint-experiments`` CLI is built on:

* :mod:`repro.runtime.pool` — :class:`ExperimentPool`, the
  process-sharded orchestrator (``--jobs``),
* :mod:`repro.runtime.units` — the :class:`WorkUnit` protocol an
  experiment opts into to have its independent simulation points
  sharded (``plan``/``prime``/``clear_primed``),
* :mod:`repro.runtime.cache` — :class:`ResultCache`, the
  content-addressed result cache (``--cache-dir``), at whole-artifact
  and per-unit granularity,
* :mod:`repro.runtime.artifacts` — :class:`Artifact`, the JSON
  result layer (``--json-out``).
"""

from repro.runtime.artifacts import (
    ARTIFACT_SCHEMA,
    Artifact,
    build_artifact,
    to_jsonable,
)
from repro.runtime.cache import (
    ResultCache,
    cache_key,
    code_version,
    unit_cache_key,
)
from repro.runtime.pool import ExperimentOutcome, ExperimentPool
from repro.runtime.units import WorkUnit, supports_units

__all__ = [
    "ARTIFACT_SCHEMA",
    "Artifact",
    "ExperimentOutcome",
    "ExperimentPool",
    "ResultCache",
    "WorkUnit",
    "build_artifact",
    "cache_key",
    "code_version",
    "supports_units",
    "to_jsonable",
    "unit_cache_key",
]
