"""Parallel experiment runtime: orchestrator, result cache, artifacts.

The three layers the ``sprint-experiments`` CLI is built on:

* :mod:`repro.runtime.pool` — :class:`ExperimentPool`, the
  process-sharded orchestrator (``--jobs``),
* :mod:`repro.runtime.cache` — :class:`ResultCache`, the
  content-addressed artifact cache (``--cache-dir``),
* :mod:`repro.runtime.artifacts` — :class:`Artifact`, the JSON
  result layer (``--json-out``).
"""

from repro.runtime.artifacts import (
    ARTIFACT_SCHEMA,
    Artifact,
    build_artifact,
    to_jsonable,
)
from repro.runtime.cache import ResultCache, cache_key, code_version
from repro.runtime.pool import ExperimentOutcome, ExperimentPool

__all__ = [
    "ARTIFACT_SCHEMA",
    "Artifact",
    "ExperimentOutcome",
    "ExperimentPool",
    "ResultCache",
    "build_artifact",
    "cache_key",
    "code_version",
    "to_jsonable",
]
