"""Figure 1: % of energy spent on memory accesses vs on-chip capacity.

Sweeps the fraction of requisite on-chip buffering (20%-100%) across
sequence lengths 32-4096 on the *baseline* design and reports the share
of total energy consumed by main-memory accesses.  The paper's headline:
at 20% capacity the memory share exceeds 60% on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.workloads.generator import WorkloadSample

import numpy as np

SEQ_LENGTHS = (32, 64, 128, 256, 512, 1024, 2048, 4096)
CAPACITY_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class Fig1Row:
    seq_len: int
    capacity_fraction: float
    memory_energy_fraction: float


def _config_with_capacity(seq_len: int, fraction: float) -> SprintConfig:
    """A baseline config whose K/V buffers hold ``fraction`` of the keys."""
    vectors = max(1, int(round(seq_len * fraction)))
    kb = max(2, (2 * vectors * S_SPRINT.vector_bytes) // 1024)
    # Rebuild an S-SPRINT-like config with the scaled cache.
    return SprintConfig(
        name=f"fig1-{int(fraction * 100)}pct",
        num_corelets=S_SPRINT.num_corelets,
        onchip_cache_kb=kb,
        num_qkpu=1, num_vpu=1, num_softmax=1,
        query_buffer_bytes=64, index_buffer_bytes=512,
    )


def run(
    seq_lengths: Sequence[int] = SEQ_LENGTHS,
    fractions: Sequence[float] = CAPACITY_FRACTIONS,
) -> List[Fig1Row]:
    """Reproduce the Figure 1 sweep on the baseline design."""
    rows: List[Fig1Row] = []
    for s in seq_lengths:
        sample = WorkloadSample(
            keep_mask=np.ones((s, s), dtype=bool), valid_len=s, seq_len=s
        )
        for fraction in fractions:
            config = _config_with_capacity(s, fraction)
            system = SprintSystem(config)
            report = system.simulate_sample(sample, ExecutionMode.BASELINE)
            rows.append(
                Fig1Row(
                    seq_len=s,
                    capacity_fraction=fraction,
                    memory_energy_fraction=report.energy.read_fraction(),
                )
            )
    return rows


def format_table(rows: List[Fig1Row]) -> str:
    fractions = sorted({r.capacity_fraction for r in rows})
    seqs = sorted({r.seq_len for r in rows})
    lines = [
        "Figure 1: % energy on memory accesses (rows: S, cols: capacity %)",
        "S \\ cap%  " + "  ".join(f"{int(f * 100):>5d}%" for f in fractions),
    ]
    for s in seqs:
        vals = [
            next(
                r.memory_energy_fraction
                for r in rows
                if r.seq_len == s and r.capacity_fraction == f
            )
            for f in fractions
        ]
        lines.append(
            f"S={s:<6d}  " + "  ".join(f"{v:>5.1%}" for v in vals)
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
