"""The paper's reported numbers, for measured-vs-paper comparison.

Values transcribed from the arXiv version's figures/tables (the figure
source data is embedded in the PDF).  Used only for reporting -- the
simulator never reads these.
"""

from __future__ import annotations

#: Figure 1: average % of energy on memory accesses at 20% capacity.
FIG1_MEMORY_FRACTION_AT_20PCT = 0.60

#: Figure 3: observed overlap is 2-3x the random expectation.
FIG3_OVERLAP_RATIO_RANGE = (2.0, 3.0)
FIG3_OBSERVED = {
    # dataset -> (real overlap %, random overlap %)
    "BERT-B/SQUAD": (0.856, 0.233),
    "ViT-B/CIFAR": (0.739, 0.222),
    "ALBERT-XXL/SQUAD": (0.876, 0.215),
}

#: Figure 5: accuracy vs in-memory score bits (BERT-MRPC column).
FIG5_BERT_MRPC = {
    1: 0.0, 2: 0.409, 3: 0.789, 4: 0.865,
    5: 0.858, 6: 0.863, 7: 0.865, 8: 0.868,
}

#: Figure 9: task accuracy under the four scenarios.
FIG9_ACCURACY = {
    # model: (baseline, runtime pruning, sprint w/o recompute, sprint)
    "BERT-B": (0.80198, 0.7994, 0.77588, 0.79877),
    "BERT-L": (0.8351, 0.8330, 0.81447, 0.83387),
    "ALBERT-XL": (0.85714, 0.85146, 0.80917, 0.84910),
    "ALBERT-XXL": (0.87351, 0.87280, 0.79220, 0.87058),
    "ViT-B": (0.9873, 0.9797, 0.9445, 0.9847),
}
#: GPT-2-L perplexity (lower is better).
FIG9_GPT2_PERPLEXITY = (17.55, 17.48, 23.3682, 17.65)
#: Average absolute accuracy degradation of SPRINT vs baseline.
FIG9_AVG_DEGRADATION = 0.0036

#: Figure 10: average data-movement reduction vs S-Baseline.
FIG10_AVG_REDUCTION = {
    # config: (mask only, sprint)
    "S-SPRINT": (0.652, 0.949),
    "M-SPRINT": (0.845, 0.985),
    "L-SPRINT": (0.922, 0.989),
}

#: Figure 11: speedup geomeans and per-model values.
FIG11_GEOMEAN = {"S-SPRINT": 7.49, "M-SPRINT": 7.36, "L-SPRINT": 7.13}
FIG11_PER_MODEL = {
    "BERT-B": (8.98, 8.86, 8.64),
    "BERT-L": (10.38, 10.09, 9.56),
    "ALBERT-XL": (7.50, 7.38, 7.15),
    "ALBERT-XXL": (9.22, 9.00, 8.61),
    "ViT-B": (2.79, 2.76, 2.72),
    "GPT-2-L": (8.58, 8.45, 8.16),
    "Synth-1": (8.0, 7.89, 7.70),
    "Synth-2": (8.0, 7.89, 7.70),
}
#: Ablation: pruning-only speedup (no in-memory support).
FIG11_PRUNING_ONLY_GEOMEAN = {"S-SPRINT": 1.8, "M-SPRINT": 1.7, "L-SPRINT": 1.7}

#: Figure 12: energy-reduction geomeans and per-model values.
FIG12_GEOMEAN = {"S-SPRINT": 19.56, "M-SPRINT": 16.82, "L-SPRINT": 12.03}
FIG12_PER_MODEL = {
    "BERT-B": (22.92, 17.19, 8.55),
    "BERT-L": (28.46, 20.54, 9.91),
    "ALBERT-XL": (23.47, 17.61, 8.74),
    "ALBERT-XXL": (26.77, 19.90, 9.65),
    "ViT-B": (2.75, 2.06, 2.06),
    "GPT-2-L": (30.13, 31.63, 29.74),
    "Synth-1": (26.00, 29.72, 32.41),
    "Synth-2": (24.21, 26.75, 30.79),
}

#: Figure 13: M-SPRINT energy ratios vs baseline (pruning-only, SPRINT).
FIG13_RATIOS = {
    "BERT-B": (1.92, 17.19),
    "BERT-L": (1.94, 20.54),
    "ALBERT-XL": (1.92, 17.61),
    "ALBERT-XXL": (1.93, 19.90),
    "ViT-B": (1.40, 2.10),
    "GPT-2-L": (1.98, 31.63),
    "Synth-1": (1.95, 29.72),
    "Synth-2": (1.96, 26.75),
}
#: Baseline's ReRAM-read share of total energy (avg, excluding ViT).
FIG13_BASELINE_READ_SHARE = 0.478

#: End-to-end incl. FFN (energy saving, speedup).
FFN_END_TO_END = {
    "BERT-B": (2.2, 1.8),
    "BERT-L": (2.4, 2.0),
    "ViT-B": (1.1, 1.0),
    "Synth-2": (7.7, 4.7),
}

#: Misc claims used by tests and EXPERIMENTS.md.
AVG_FETCH_FRACTION_BETWEEN_QUERIES = 0.021  # section VI
VIT_LOCALITY_DEFICIT = 2.6  # ViT has 2.6x fewer spatial localities
