"""Figure 3: adjacent-query overlap -- real workloads vs random pruning.

For each benchmark, measures the mean fraction of a query's unpruned
keys already unpruned for the previous query, on (a) the calibrated
structured workload and (b) random masks at the same pruning rate, and
compares against the Eq. 1 theoretical expectation.  The paper observes
a striking 2-3x gap between (a) and (b)/(theory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.attention.locality import (
    expected_random_overlap,
    measure_adjacent_overlap,
)
from repro.models.zoo import get_model
from repro.workloads.generator import generate_random_masks, generate_workload

DEFAULT_MODELS = ("BERT-B", "ViT-B", "ALBERT-XXL")


@dataclass(frozen=True)
class Fig3Row:
    model: str
    dataset: str
    real_overlap: float
    random_overlap: float
    theoretical_overlap: float
    ratio_vs_random: float


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    num_samples: int = 2,
    seed: int = 0,
) -> List[Fig3Row]:
    rows: List[Fig3Row] = []
    for name in models:
        spec = get_model(name)
        seq = min(spec.seq_len, 512)  # keep the sweep fast at iso-shape
        workload = generate_workload(
            seq_len=seq,
            pruning_rate=spec.pruning_rate,
            padding_ratio=0.0,  # overlap is measured inside the valid area
            num_samples=num_samples,
            locality=spec.locality,
            causal=spec.causal,
            seed=seed,
        )
        real = float(
            np.mean([measure_adjacent_overlap(s.keep_mask) for s in workload])
        )
        random_masks = generate_random_masks(
            seq, spec.pruning_rate, count=num_samples,
            rng=np.random.default_rng(seed),
        )
        random_overlap = float(
            np.mean([measure_adjacent_overlap(m) for m in random_masks])
        )
        unpruned = max(1, round(seq * (1.0 - spec.pruning_rate)))
        theory = expected_random_overlap(seq, unpruned) / unpruned
        rows.append(
            Fig3Row(
                model=name,
                dataset=spec.dataset,
                real_overlap=real,
                random_overlap=random_overlap,
                theoretical_overlap=theory,
                ratio_vs_random=real / max(random_overlap, 1e-9),
            )
        )
    return rows


def format_table(rows: List[Fig3Row]) -> str:
    lines = [
        "Figure 3: adjacent-query unpruned-key overlap",
        f"{'model':<12} {'dataset':<10} {'real':>7} {'random':>7} "
        f"{'theory':>7} {'ratio':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<12} {r.dataset:<10} {r.real_overlap:>6.1%} "
            f"{r.random_overlap:>6.1%} {r.theoretical_overlap:>6.1%} "
            f"{r.ratio_vs_random:>5.2f}x"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
