"""Figure 5: model accuracy vs in-memory score precision (b = 1..8).

Applies Eq. 3 with a ``b``-bit in-memory score deciding the pruning and
the exact scores recomputed for survivors.  The paper's finding: 4-bit
precision has virtually no accuracy impact; 1-2 bits collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.attention.policies import ExactPolicy, SprintPolicy
from repro.models.tasks import (
    evaluate_accuracy,
    make_classification_task,
)

BIT_RANGE = tuple(range(1, 9))

#: Synthetic stand-ins for the paper's three task/model combinations.
TASK_SPECS = {
    "BERT-MRPC(synthetic)": dict(seed=11, pruning_rate=0.746),
    "BERT-SQUAD(synthetic)": dict(seed=23, pruning_rate=0.746),
    "ViT(synthetic)": dict(seed=31, pruning_rate=0.644),
}


@dataclass(frozen=True)
class Fig5Row:
    task: str
    bits: int
    accuracy: float
    baseline_accuracy: float


def run(
    bits: Sequence[int] = BIT_RANGE,
    num_samples: int = 32,
    seq_len: int = 96,
) -> List[Fig5Row]:
    rows: List[Fig5Row] = []
    for task_name, spec in TASK_SPECS.items():
        task = make_classification_task(
            num_samples=num_samples, seq_len=seq_len, seed=spec["seed"]
        )
        baseline = evaluate_accuracy(task, ExactPolicy())
        for b in bits:
            policy = SprintPolicy(
                pruning_rate=spec["pruning_rate"],
                score_bits=b,
                recompute=True,
            )
            rows.append(
                Fig5Row(
                    task=task_name,
                    bits=b,
                    accuracy=evaluate_accuracy(task, policy),
                    baseline_accuracy=baseline,
                )
            )
    return rows


def accuracy_curves(rows: List[Fig5Row]) -> Dict[str, Dict[int, float]]:
    curves: Dict[str, Dict[int, float]] = {}
    for r in rows:
        curves.setdefault(r.task, {})[r.bits] = r.accuracy
    return curves


def format_table(rows: List[Fig5Row]) -> str:
    curves = accuracy_curves(rows)
    bits = sorted({r.bits for r in rows})
    lines = [
        "Figure 5: accuracy vs in-memory score bits (with recompute)",
        f"{'task':<24} " + " ".join(f"b={b:<5d}" for b in bits) + " base",
    ]
    for task, curve in curves.items():
        base = next(r.baseline_accuracy for r in rows if r.task == task)
        vals = " ".join(f"{curve[b]:<7.3f}" for b in bits)
        lines.append(f"{task:<24} {vals} {base:.3f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
