"""Figure 10: main-memory data-movement reduction vs S-Baseline.

Two optimization levels are reported per (model, config): "Mask Only"
(two-dimensional sequence reduction alone) and "SPRINT" (runtime pruning
on top).  Reductions are normalized to the *S-Baseline* traffic, as in
the paper.  Headline averages: 94.9 / 98.5 / 98.9 % for S/M/L-SPRINT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.system import ExecutionMode
from repro.experiments import sweep
from repro.experiments.sweep import ALL_CONFIGS, ALL_MODELS, grid


@dataclass(frozen=True)
class Fig10Row:
    model: str
    config: str
    mask_only_reduction: float
    sprint_reduction: float


MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.MASK_ONLY,
    ExecutionMode.SPRINT,
)


def plan(
    models: Sequence[str] = ALL_MODELS,
    configs: Sequence[SprintConfig] = ALL_CONFIGS,
    num_samples: int = 2,
    seed: int = 1,
):
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return sweep.plan_units(models, configs, MODES, num_samples, seed)


#: Runtime hooks: unit results shipped back by the pool land in the
#: shared sweep memo that :func:`run` reads through.
prime = sweep.prime
clear_primed = sweep.clear_primed


def run(
    models: Sequence[str] = ALL_MODELS,
    configs: Sequence[SprintConfig] = ALL_CONFIGS,
    num_samples: int = 2,
    seed: int = 1,
) -> List[Fig10Row]:
    reports = grid(models, configs, MODES, num_samples, seed)
    rows: List[Fig10Row] = []
    s_name = configs[0].name  # S-SPRINT: the normalization baseline
    for model in models:
        base = reports[(model, s_name, ExecutionMode.BASELINE.value)]
        base_bytes = base.data_movement_bytes()
        for config in configs:
            mask = reports[(model, config.name, ExecutionMode.MASK_ONLY.value)]
            sprint = reports[(model, config.name, ExecutionMode.SPRINT.value)]
            rows.append(
                Fig10Row(
                    model=model,
                    config=config.name,
                    mask_only_reduction=1.0
                    - mask.data_movement_bytes() / base_bytes,
                    sprint_reduction=1.0
                    - sprint.data_movement_bytes() / base_bytes,
                )
            )
    return rows


def average_reductions(rows: List[Fig10Row]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for config in sorted({r.config for r in rows}):
        sel = [r for r in rows if r.config == config]
        out[config] = {
            "mask_only": float(np.mean([r.mask_only_reduction for r in sel])),
            "sprint": float(np.mean([r.sprint_reduction for r in sel])),
        }
    return out


def format_table(rows: List[Fig10Row]) -> str:
    lines = [
        "Figure 10: data-movement reduction vs S-Baseline",
        f"{'model':<12} {'config':<9} {'mask only':>10} {'SPRINT':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<12} {r.config:<9} {r.mask_only_reduction:>9.1%} "
            f"{r.sprint_reduction:>7.1%}"
        )
    for config, avg in average_reductions(rows).items():
        lines.append(
            f"average {config}: mask only {avg['mask_only']:.1%}, "
            f"SPRINT {avg['sprint']:.1%}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
