"""Figure 2 (qualitative): render a query-key keep mask as ASCII art.

The paper's Figure 2 shows the CoLA example: blue unpruned squares with
strong vertical-stripe structure (shared important keys), plus the grey
masked band from padding.  This module renders the same picture from a
calibrated synthetic workload, so the spatial-locality story is visible
at a glance.
"""

from __future__ import annotations


import numpy as np

from repro.workloads.generator import WorkloadSample, generate_workload

#: Glyphs: kept / pruned / padded (the paper's blue / white / grey).
KEPT, PRUNED, PADDED = "#", ".", " "


def render_mask(
    sample: WorkloadSample, max_side: int = 64
) -> str:
    """ASCII rendering of one sample's keep mask (downsampled)."""
    keep = sample.keep_mask
    s = sample.seq_len
    stride = max(1, s // max_side)
    rows = []
    for qi in range(0, s, stride):
        cells = []
        for ki in range(0, s, stride):
            if qi >= sample.valid_len or ki >= sample.valid_len:
                cells.append(PADDED)
            elif keep[qi, ki]:
                cells.append(KEPT)
            else:
                cells.append(PRUNED)
        rows.append("".join(cells))
    return "\n".join(rows)


def run(
    seq_len: int = 128,
    pruning_rate: float = 0.746,
    padding_ratio: float = 0.3,
    locality: float = 0.8,
    seed: int = 2,
) -> WorkloadSample:
    workload = generate_workload(
        seq_len, pruning_rate, padding_ratio=padding_ratio,
        num_samples=1, locality=locality, seed=seed,
    )
    return workload.samples[0]


def format_table(sample: WorkloadSample) -> str:
    header = (
        "Figure 2 (qualitative): keep mask -- '#' kept, '.' pruned, "
        "' ' padded\n"
        f"(s={sample.seq_len}, valid={sample.valid_len}, "
        f"pruning rate={sample.pruning_rate:.1%})\n"
    )
    return header + render_mask(sample)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
