"""The experiment registry: every paper figure/table, typed.

Lives apart from :mod:`repro.experiments.runner` so the parallel
runtime (:mod:`repro.runtime`) can resolve experiments without
importing the CLI (which imports the runtime back).

Each entry maps a short name to ``(fast_kwargs, module)`` where the
module satisfies :class:`ExperimentModule`: ``run(**kwargs)`` returns
the experiment's structured rows (dataclass lists, not strings) and
``format_table(rows)`` renders them as the printed paper-style table.
Grid-backed experiments additionally expose ``grid_cells(**kwargs)``
so the runtime can shard their simulation cells across workers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Protocol, Tuple, runtime_checkable

from repro.experiments import (
    ablations,
    ffn_end_to_end,
    fig1_memory_energy,
    fig2_heatmap,
    fig3_overlap,
    fig5_bit_sensitivity,
    fig8_imbalance,
    fig9_accuracy,
    fig10_data_movement,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    sensitivity,
    serving,
    table3_comparison,
)


@runtime_checkable
class ExperimentModule(Protocol):
    """Structural contract every registered experiment module meets."""

    run: Callable[..., Any]
    format_table: Callable[..., str]


#: Keyword arguments an experiment's ``run`` accepts (the registry
#: stores the reduced-size set used by ``--fast``).
RunKwargs = Dict[str, Any]

ExperimentSpec = Tuple[RunKwargs, ExperimentModule]

#: name -> (run kwargs for fast mode, module)
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "fig1": ({"seq_lengths": (32, 128, 512)}, fig1_memory_energy),
    "fig2": ({}, fig2_heatmap),
    "fig3": ({"num_samples": 1}, fig3_overlap),
    "fig5": ({"num_samples": 16}, fig5_bit_sensitivity),
    "fig8": ({"num_samples": 1}, fig8_imbalance),
    "fig9": ({"num_samples": 16}, fig9_accuracy),
    "fig10": ({"num_samples": 1}, fig10_data_movement),
    "fig11": ({"num_samples": 1}, fig11_speedup),
    "fig12": ({"num_samples": 1}, fig12_energy),
    "fig13": ({"num_samples": 1}, fig13_breakdown),
    "ffn": ({"num_samples": 1}, ffn_end_to_end),
    "table3": ({"num_samples": 1}, table3_comparison),
    "ablations": ({}, ablations),
    "sensitivity": ({}, sensitivity),
    "serving": ({"num_requests": 100, "loads": (20.0, 80.0)}, serving),
}


def resolve(name: str, fast: bool = False) -> Tuple[RunKwargs, ExperimentModule]:
    """The (kwargs, module) a run of ``name`` uses; KeyError if unknown."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(EXPERIMENTS)}"
        )
    fast_kwargs, module = EXPERIMENTS[name]
    return (dict(fast_kwargs) if fast else {}), module
