"""The experiment registry: every paper figure/table, typed.

Lives apart from :mod:`repro.experiments.runner` so the parallel
runtime (:mod:`repro.runtime`) can resolve experiments without
importing the CLI (which imports the runtime back).

Each entry maps a short name to ``(fast_kwargs, module)`` where the
module satisfies :class:`ExperimentModule`: ``run(**kwargs)`` returns
the experiment's structured rows (dataclass lists, not strings) and
``format_table(rows)`` renders them as the printed paper-style table.

A module may additionally satisfy :class:`ShardableExperiment` — the
optional WorkUnit surface (:mod:`repro.runtime.units`): ``plan``
enumerates the independent simulation points behind a ``run``,
``prime`` installs an externally computed point, ``clear_primed``
drops them.  The runtime shards any such experiment's units across
worker processes; the grid-backed figures (fig10-13, ffn, table3), the
serving sweep, and the sensitivity sweeps all opt in.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Protocol, Tuple, runtime_checkable

from repro.experiments import (
    ablations,
    decode,
    ffn_end_to_end,
    fig1_memory_energy,
    fig2_heatmap,
    fig3_overlap,
    fig5_bit_sensitivity,
    fig8_imbalance,
    fig9_accuracy,
    fig10_data_movement,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    resilience,
    sensitivity,
    serving,
    table3_comparison,
)


@runtime_checkable
class ExperimentModule(Protocol):
    """Structural contract every registered experiment module meets."""

    run: Callable[..., Any]
    format_table: Callable[..., str]


@runtime_checkable
class ShardableExperiment(ExperimentModule, Protocol):
    """The optional WorkUnit surface a module exposes to be sharded.

    ``plan(**kwargs)`` must enumerate units for exactly the points a
    same-argument ``run(**kwargs)`` consumes; ``run`` must aggregate a
    primed point without re-simulating it.  Use
    :func:`repro.runtime.units.supports_units` to test for conformance.
    """

    plan: Callable[..., Any]
    prime: Callable[..., None]
    clear_primed: Callable[[], None]


#: Keyword arguments an experiment's ``run`` accepts (the registry
#: stores the reduced-size set used by ``--fast``).
RunKwargs = Dict[str, Any]

ExperimentSpec = Tuple[RunKwargs, ExperimentModule]

#: name -> (run kwargs for fast mode, module)
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "fig1": ({"seq_lengths": (32, 128, 512)}, fig1_memory_energy),
    "fig2": ({}, fig2_heatmap),
    "fig3": ({"num_samples": 1}, fig3_overlap),
    "fig5": ({"num_samples": 16}, fig5_bit_sensitivity),
    "fig8": ({"num_samples": 1}, fig8_imbalance),
    "fig9": ({"num_samples": 16}, fig9_accuracy),
    "fig10": ({"num_samples": 1}, fig10_data_movement),
    "fig11": ({"num_samples": 1}, fig11_speedup),
    "fig12": ({"num_samples": 1}, fig12_energy),
    "fig13": ({"num_samples": 1}, fig13_breakdown),
    "ffn": ({"num_samples": 1}, ffn_end_to_end),
    "table3": ({"num_samples": 1}, table3_comparison),
    "ablations": ({}, ablations),
    "sensitivity": (
        {"rates": (0.3, 0.65, 0.9), "seq_lens": (128, 512, 2048)},
        sensitivity,
    ),
    "serving": ({"requests_per_point": 100, "loads": (20.0, 80.0)}, serving),
    "decode": (
        {"requests_per_point": 150, "mean_output_lens": (2.0, 16.0)},
        decode,
    ),
    "resilience": (
        {
            "requests_per_point": 300,
            "mtbfs": (2.0, 8.0),
            "fleets": (1, 2),
        },
        resilience,
    ),
}


def resolve(name: str, fast: bool = False) -> Tuple[RunKwargs, ExperimentModule]:
    """The (kwargs, module) a run of ``name`` uses; KeyError if unknown."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(EXPERIMENTS)}"
        )
    fast_kwargs, module = EXPERIMENTS[name]
    return (dict(fast_kwargs) if fast else {}), module


def describe(name: str) -> str:
    """One-line description of ``name`` (the module docstring's first
    line); KeyError if unknown."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}")
    _, module = EXPERIMENTS[name]
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0].strip() if doc else ""
