"""Figure 8: CORELET workload imbalance, sequential vs token-interleaved.

Computes the max/min unpruned-token ratio per query averaged over the
workload, for 2/4/8/16 CORELETs.  Token interleaving (adjacent keys to
different CORELETs) should sit far closer to the ideal 1.0 than the
sequential block mapping, because unpruned indices cluster spatially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.accelerator.interleave import workload_imbalance
from repro.models.zoo import get_model
from repro.workloads.generator import generate_workload

DEFAULT_MODELS = ("BERT-B", "ViT-B", "GPT-2-L")
CORELET_COUNTS = (2, 4, 8, 16)


@dataclass(frozen=True)
class Fig8Row:
    model: str
    num_corelets: int
    sequential_imbalance: float
    interleaved_imbalance: float


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    corelet_counts: Sequence[int] = CORELET_COUNTS,
    num_samples: int = 2,
    seed: int = 0,
) -> List[Fig8Row]:
    rows: List[Fig8Row] = []
    for name in models:
        spec = get_model(name)
        workload = generate_workload(
            seq_len=min(spec.seq_len, 512),
            pruning_rate=spec.pruning_rate,
            padding_ratio=spec.padding_ratio,
            num_samples=num_samples,
            locality=spec.locality,
            causal=spec.causal,
            seed=seed,
        )
        for n in corelet_counts:
            seq_vals, int_vals = [], []
            for sample in workload:
                keep = sample.keep_mask[: sample.valid_len, : sample.valid_len]
                seq_vals.append(workload_imbalance(keep, n, "sequential"))
                int_vals.append(workload_imbalance(keep, n, "interleaved"))
            rows.append(
                Fig8Row(
                    model=name,
                    num_corelets=n,
                    sequential_imbalance=float(np.mean(seq_vals)),
                    interleaved_imbalance=float(np.mean(int_vals)),
                )
            )
    return rows


def format_table(rows: List[Fig8Row]) -> str:
    lines = [
        "Figure 8: CORELET imbalance (1.0 = ideal balance)",
        f"{'model':<10} {'corelets':>8} {'sequential':>11} {'interleaved':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<10} {r.num_corelets:>8d} "
            f"{r.sequential_imbalance:>10.3f} {r.interleaved_imbalance:>11.3f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
