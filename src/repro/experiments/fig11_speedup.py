"""Figure 11: speedup over the iso-resource baseline (plus ablation).

Per (model, config) the speedup is SPRINT cycles vs the same config's
baseline cycles.  The ablation rows reproduce the paper's "runtime
pruning without in-memory computing" study (1.8/1.7/1.7x average).
Paper geomeans: 7.49 / 7.36 / 7.13 for S/M/L-SPRINT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.system import ExecutionMode
from repro.experiments import sweep
from repro.experiments.sweep import ALL_CONFIGS, ALL_MODELS, grid


@dataclass(frozen=True)
class Fig11Row:
    model: str
    config: str
    speedup: float
    pruning_only_speedup: float


MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.PRUNING_ONLY,
    ExecutionMode.SPRINT,
)


def plan(
    models: Sequence[str] = ALL_MODELS,
    configs: Sequence[SprintConfig] = ALL_CONFIGS,
    num_samples: int = 2,
    seed: int = 1,
):
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return sweep.plan_units(models, configs, MODES, num_samples, seed)


#: Runtime hooks: unit results shipped back by the pool land in the
#: shared sweep memo that :func:`run` reads through.
prime = sweep.prime
clear_primed = sweep.clear_primed


def run(
    models: Sequence[str] = ALL_MODELS,
    configs: Sequence[SprintConfig] = ALL_CONFIGS,
    num_samples: int = 2,
    seed: int = 1,
) -> List[Fig11Row]:
    reports = grid(models, configs, MODES, num_samples, seed)
    rows: List[Fig11Row] = []
    for model in models:
        for config in configs:
            base = reports[(model, config.name, ExecutionMode.BASELINE.value)]
            sprint = reports[(model, config.name, ExecutionMode.SPRINT.value)]
            pruning = reports[
                (model, config.name, ExecutionMode.PRUNING_ONLY.value)
            ]
            rows.append(
                Fig11Row(
                    model=model,
                    config=config.name,
                    speedup=sprint.speedup_vs(base),
                    pruning_only_speedup=pruning.speedup_vs(base),
                )
            )
    return rows


def geomeans(rows: List[Fig11Row]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for config in sorted({r.config for r in rows}):
        sel = [r for r in rows if r.config == config]
        out[config] = {
            "sprint": float(
                np.exp(np.mean([np.log(r.speedup) for r in sel]))
            ),
            "pruning_only": float(
                np.exp(np.mean([np.log(r.pruning_only_speedup) for r in sel]))
            ),
        }
    return out


def format_table(rows: List[Fig11Row]) -> str:
    lines = [
        "Figure 11: speedup vs iso-resource baseline",
        f"{'model':<12} {'config':<9} {'SPRINT':>8} {'pruning-only':>13}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<12} {r.config:<9} {r.speedup:>7.2f}x "
            f"{r.pruning_only_speedup:>12.2f}x"
        )
    for config, g in geomeans(rows).items():
        lines.append(
            f"geomean {config}: SPRINT {g['sprint']:.2f}x, "
            f"pruning-only {g['pruning_only']:.2f}x"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
