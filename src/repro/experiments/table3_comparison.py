"""Table III: throughput / energy / area efficiency vs prior accelerators.

Computes M-SPRINT's GOPs/s, GOPs/J, GOPs/s/mm2, and GOPs/s/J/mm2 from
the simulator (effective dense-attention operations divided by measured
time/energy, the accounting pruning accelerators use) and tabulates them
against the published A3 / SpAtten / LeOPArd rows, including the Dennard
re-scaling of the 40 nm designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.configs import M_SPRINT, SprintConfig
from repro.core.system import ExecutionMode
from repro.energy.area import (
    M_SPRINT_AREA_MM2,
    PRIOR_WORK,
    AcceleratorMetrics,
    dennard_scale_energy,
)
from repro.experiments import sweep
from repro.experiments.sweep import ALL_MODELS, grid
from repro.models.zoo import get_model


@dataclass(frozen=True)
class Table3Row:
    name: str
    process_nm: int
    area_mm2: float
    gops_per_s: float
    gops_per_j: float
    gops_per_s_mm2: float
    gops_per_s_j_mm2: float
    memory_cost_included: bool
    simulated: bool


def effective_attention_ops(seq_len: int, head_dim: int) -> float:
    """Dense-equivalent operations of one attention head.

    ``Q.K^T`` and ``P.V`` are each ``2 * s^2 * d`` ops (MAC = 2), plus
    ~5 ops per score for softmax (exp, add, divide and friends).
    """
    return 2.0 * 2.0 * seq_len ** 2 * head_dim + 5.0 * seq_len ** 2


def simulate_msprint_metrics(
    models: Sequence[str] = ALL_MODELS,
    config: SprintConfig = M_SPRINT,
    num_samples: int = 2,
    seed: int = 1,
) -> AcceleratorMetrics:
    """Aggregate effective throughput/efficiency over the benchmark suite."""
    reports = grid(models, (config,), (ExecutionMode.SPRINT,), num_samples, seed)
    total_ops = 0.0
    total_seconds = 0.0
    total_joules = 0.0
    for model in models:
        spec = get_model(model)
        report = reports[(model, config.name, ExecutionMode.SPRINT.value)]
        total_ops += effective_attention_ops(spec.seq_len, config.head_dim)
        total_seconds += report.cycles / (config.frequency_ghz * 1e9)
        total_joules += report.energy.total_joules
    return AcceleratorMetrics(
        ops=total_ops,
        seconds=total_seconds,
        joules=total_joules,
        area_mm2=M_SPRINT_AREA_MM2,
    )


def plan(
    models: Sequence[str] = ALL_MODELS,
    num_samples: int = 2,
    seed: int = 1,
):
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return sweep.plan_units(
        models, (M_SPRINT,), (ExecutionMode.SPRINT,), num_samples, seed
    )


#: Runtime hooks: unit results shipped back by the pool land in the
#: shared sweep memo that :func:`run` reads through.
prime = sweep.prime
clear_primed = sweep.clear_primed


def run(
    models: Sequence[str] = ALL_MODELS,
    num_samples: int = 2,
    seed: int = 1,
) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for name, prior in PRIOR_WORK.items():
        if name == "M-SPRINT":
            continue
        rows.append(
            Table3Row(
                name=prior.name,
                process_nm=prior.process_nm,
                area_mm2=prior.area_mm2,
                gops_per_s=prior.gops_per_s,
                gops_per_j=prior.gops_per_j,
                gops_per_s_mm2=prior.gops_per_s_mm2,
                gops_per_s_j_mm2=prior.gops_per_s_j_mm2,
                memory_cost_included=prior.memory_cost_included,
                simulated=False,
            )
        )
    metrics = simulate_msprint_metrics(models, num_samples=num_samples, seed=seed)
    rows.append(
        Table3Row(
            name="M-SPRINT (simulated)",
            process_nm=65,
            area_mm2=metrics.area_mm2,
            gops_per_s=metrics.gops_per_s,
            gops_per_j=metrics.gops_per_j,
            gops_per_s_mm2=metrics.gops_per_s_mm2,
            gops_per_s_j_mm2=metrics.gops_per_s_j_mm2,
            memory_cost_included=True,
            simulated=True,
        )
    )
    return rows


def dennard_scaled_gops_per_j(
    rows: List[Table3Row], to_nm: int = 40
) -> Dict[str, float]:
    """GOPs/J of the simulated rows re-scaled to ``to_nm`` (paper's 3873.5)."""
    out: Dict[str, float] = {}
    for r in rows:
        if not r.simulated or r.gops_per_j <= 0:
            continue
        joules_per_gop = 1.0 / r.gops_per_j
        scaled = dennard_scale_energy(joules_per_gop, r.process_nm, to_nm)
        out[r.name] = 1.0 / scaled
    return out


def format_table(rows: List[Table3Row]) -> str:
    lines = [
        "Table III: comparison with prior accelerators",
        f"{'design':<22} {'nm':>4} {'mm2':>6} {'GOPs/s':>9} {'GOPs/J':>9} "
        f"{'GOPs/s/mm2':>11} {'GOPs/s/J/mm2':>13} {'mem?':>5}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<22} {r.process_nm:>4d} {r.area_mm2:>6.2f} "
            f"{r.gops_per_s:>9.1f} {r.gops_per_j:>9.1f} "
            f"{r.gops_per_s_mm2:>11.1f} {r.gops_per_s_j_mm2:>13.1f} "
            f"{'yes' if r.memory_cost_included else 'no':>5}"
        )
    for name, val in dennard_scaled_gops_per_j(rows).items():
        lines.append(f"{name} Dennard-scaled to 40nm: {val:.1f} GOPs/J")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
