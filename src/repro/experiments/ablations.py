"""Ablation studies for the design choices DESIGN.md calls out.

Four studies beyond the paper's numbered figures:

1. **SLD reuse** -- how much main-memory traffic the Spatial Locality
   Detection engine saves vs re-fetching every unpruned vector.
2. **Token interleaving** -- cycle cost of sequential block mapping vs
   interleaving in the full system (complements Figure 8's raw metric).
3. **Threshold noise margin** -- section III-A's robustness knob: a
   negative margin keeps borderline tokens, trading pruning rate (and
   thus performance) for noise immunity.
4. **Locality sensitivity** -- how the SPRINT benefit scales with the
   workload's intrinsic spatial locality (ViT sits at the low end).

Every row of every study is an independent :class:`AblationUnit` on
the runtime's WorkUnit protocol (``plan``/``prime``/``clear_primed``),
so ``sprint-experiments ablations --jobs N`` spreads rows across
workers and the unit cache replays unchanged rows.  Units group by
study so a worker shard warms one study's shared state (a
SprintSystem, a classification task) once per process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.configs import L_SPRINT, S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.models.zoo import get_model
from repro.workloads.generator import generate_workload

#: Fixed axes of each study.  Shared by the study functions' defaults
#: and :func:`plan`'s unit parameters -- they must agree, or primed
#: lookups silently miss and sharded rows recompute in-parent.
SLD_MODELS = ("BERT-B", "ViT-B", "GPT-2-L")
INTERLEAVING_MODELS = ("BERT-B", "GPT-2-L")
DEFAULT_MARGINS = (0.0, 0.2, 0.4, 0.8)
MARGIN_PRUNING_RATE = 0.746
MARGIN_NOISE_SIGMA = 0.15
MARGIN_NUM_SAMPLES = 24
MARGIN_SEED = 19
DEFAULT_LOCALITIES = (0.2, 0.5, 0.8)
LOCALITY_SEQ_LEN = 384
LOCALITY_PRUNING_RATE = 0.746
DEFAULT_SEED = 1


@lru_cache(maxsize=8)
def _shared_system(config: SprintConfig) -> SprintSystem:
    """One simulator per config, shared by every locality row a
    process runs (rows are pure under their parameters)."""
    return SprintSystem(config)


@dataclass(frozen=True)
class SldAblationRow:
    model: str
    traffic_with_sld_bytes: float
    traffic_without_sld_bytes: float

    @property
    def traffic_saving(self) -> float:
        if self.traffic_with_sld_bytes <= 0:
            return float("inf")
        return self.traffic_without_sld_bytes / self.traffic_with_sld_bytes


def _sld_row(
    model: str, config: SprintConfig, num_samples: int, seed: int
) -> SldAblationRow:
    """One independently computable row of the SLD study."""
    spec = get_model(model)
    with_sld = SprintSystem(config, enable_sld=True).simulate_model(
        spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
    )
    without = SprintSystem(config, enable_sld=False).simulate_model(
        spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
    )
    return SldAblationRow(
        model=model,
        traffic_with_sld_bytes=with_sld.data_movement_bytes(),
        traffic_without_sld_bytes=without.data_movement_bytes(),
    )


def run_sld_ablation(
    models: Sequence[str] = SLD_MODELS,
    config: SprintConfig = S_SPRINT,
    num_samples: int = 1,
    seed: int = DEFAULT_SEED,
) -> List[SldAblationRow]:
    rows = []
    for name in models:
        key = _unit_key("sld", name, config, num_samples, seed)
        row = _PRIMED.get(key)
        if row is None:
            row = _sld_row(name, config, num_samples, seed)
        rows.append(row)
    return rows


@dataclass(frozen=True)
class InterleavingAblationRow:
    model: str
    interleaved_cycles: float
    sequential_cycles: float

    @property
    def slowdown_without_interleaving(self) -> float:
        if self.interleaved_cycles <= 0:
            return float("inf")
        return self.sequential_cycles / self.interleaved_cycles


def _interleaving_row(
    model: str, config: SprintConfig, num_samples: int, seed: int
) -> InterleavingAblationRow:
    """One independently computable row of the interleaving study."""
    spec = get_model(model)
    inter = SprintSystem(config, enable_interleaving=True).simulate_model(
        spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
    )
    seq = SprintSystem(config, enable_interleaving=False).simulate_model(
        spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
    )
    return InterleavingAblationRow(
        model=model,
        interleaved_cycles=inter.cycles,
        sequential_cycles=seq.cycles,
    )


def run_interleaving_ablation(
    models: Sequence[str] = INTERLEAVING_MODELS,
    config: SprintConfig = None,
    num_samples: int = 1,
    seed: int = DEFAULT_SEED,
) -> List[InterleavingAblationRow]:
    config = config or L_SPRINT  # imbalance needs multiple CORELETs
    rows = []
    for name in models:
        key = _unit_key("interleaving", name, config, num_samples, seed)
        row = _PRIMED.get(key)
        if row is None:
            row = _interleaving_row(name, config, num_samples, seed)
        rows.append(row)
    return rows


@dataclass(frozen=True)
class MarginAblationRow:
    margin: float
    pruning_rate: float
    accuracy: float


@lru_cache(maxsize=4)
def _margin_task(num_samples: int, seed: int):
    """One classification task per (samples, seed), shared by every
    margin row a process runs (task generation is seed-pure)."""
    from repro.models.tasks import make_classification_task

    return make_classification_task(
        num_samples=num_samples, seq_len=96, seed=seed
    )


def _margin_row(
    margin: float,
    pruning_rate: float,
    noise_sigma: float,
    num_samples: int,
    seed: int,
) -> MarginAblationRow:
    """One independently computable row of the noise-margin study."""
    from repro.attention.policies import SprintPolicy
    from repro.models.tasks import evaluate_accuracy

    task = _margin_task(num_samples, seed)
    policy = SprintPolicy(
        pruning_rate,
        noise_sigma=noise_sigma,
        threshold_margin=margin,
        recompute=True,
    )
    accuracy = evaluate_accuracy(task, policy)
    # Measure the achieved pruning rate on one sample's first head.
    x = task.inputs[0]
    scores = task.model.score_matrices(x, 0)[0]
    _, keep = policy.process(scores)
    return MarginAblationRow(
        margin=margin,
        pruning_rate=1.0 - float(keep.mean()),
        accuracy=accuracy,
    )


def run_margin_ablation(
    margins: Sequence[float] = DEFAULT_MARGINS,
    pruning_rate: float = MARGIN_PRUNING_RATE,
    noise_sigma: float = MARGIN_NOISE_SIGMA,
    num_samples: int = MARGIN_NUM_SAMPLES,
    seed: int = MARGIN_SEED,
) -> List[MarginAblationRow]:
    """Noise-margin sweep: margin recovers accuracy, costs pruning rate."""
    rows = []
    for margin in margins:
        key = (
            "ablations", "margin", margin, pruning_rate, noise_sigma,
            num_samples, seed,
        )
        row = _PRIMED.get(key)
        if row is None:
            row = _margin_row(
                margin, pruning_rate, noise_sigma, num_samples, seed
            )
        rows.append(row)
    return rows


@dataclass(frozen=True)
class LocalityAblationRow:
    locality: float
    measured_overlap: float
    energy_reduction: float


def _locality_row(
    locality: float,
    config: SprintConfig,
    seq_len: int,
    pruning_rate: float,
    seed: int,
) -> LocalityAblationRow:
    """One independently computable row of the locality study."""
    from repro.attention.locality import measure_adjacent_overlap

    system = _shared_system(config)
    workload = generate_workload(
        seq_len, pruning_rate, padding_ratio=0.0,
        num_samples=1, locality=locality, seed=seed,
    )
    reports = system.simulate_modes(
        workload,
        (ExecutionMode.BASELINE, ExecutionMode.SPRINT),
        "ablation",
    )
    base = reports[ExecutionMode.BASELINE.value]
    sprint = reports[ExecutionMode.SPRINT.value]
    overlap = measure_adjacent_overlap(workload.samples[0].keep_mask)
    return LocalityAblationRow(
        locality=locality,
        measured_overlap=overlap,
        energy_reduction=sprint.energy_reduction_vs(base),
    )


def run_locality_ablation(
    localities: Sequence[float] = DEFAULT_LOCALITIES,
    config: SprintConfig = S_SPRINT,
    seq_len: int = LOCALITY_SEQ_LEN,
    pruning_rate: float = LOCALITY_PRUNING_RATE,
    seed: int = DEFAULT_SEED,
) -> List[LocalityAblationRow]:
    rows = []
    for locality in localities:
        key = (
            "ablations", "locality", locality,
            dataclasses.astuple(config), seq_len, pruning_rate, seed,
        )
        row = _PRIMED.get(key)
        if row is None:
            row = _locality_row(locality, config, seq_len, pruning_rate, seed)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# WorkUnit protocol (plan / prime / clear_primed)
# ----------------------------------------------------------------------
AblationRow = Union[
    SldAblationRow, InterleavingAblationRow, MarginAblationRow,
    LocalityAblationRow,
]


def _unit_key(
    study: str,
    value: Union[str, float],
    config: SprintConfig,
    num_samples: int,
    seed: int,
) -> Tuple:
    """Content key of one model-sweep row (sld / interleaving)."""
    return (
        "ablations", study, value, dataclasses.astuple(config),
        num_samples, seed,
    )


@dataclass(frozen=True)
class AblationUnit:
    """One ablation row as a runtime WorkUnit.

    ``study`` selects the table ("sld" | "interleaving" | "margin" |
    "locality"); ``value`` is its swept parameter (a model name for
    the first two, a margin / locality float for the rest).  The fixed
    axes of the margin and locality studies ride in the module
    constants, which :func:`plan` and the ``run_*`` defaults share.
    """

    study: str
    value: Union[str, float]
    config: SprintConfig
    num_samples: int
    seed: int

    @property
    def key(self) -> Tuple:
        if self.study == "margin":
            return (
                "ablations", "margin", self.value, MARGIN_PRUNING_RATE,
                MARGIN_NOISE_SIGMA, self.num_samples, self.seed,
            )
        if self.study == "locality":
            return (
                "ablations", "locality", self.value,
                dataclasses.astuple(self.config), LOCALITY_SEQ_LEN,
                LOCALITY_PRUNING_RATE, self.seed,
            )
        return _unit_key(
            self.study, self.value, self.config, self.num_samples, self.seed
        )

    @property
    def group(self) -> Tuple[str, str, str]:
        return ("ablations", self.config.name, self.study)

    def execute(self) -> AblationRow:
        if self.study == "sld":
            return _sld_row(
                self.value, self.config, self.num_samples, self.seed
            )
        if self.study == "interleaving":
            return _interleaving_row(
                self.value, self.config, self.num_samples, self.seed
            )
        if self.study == "margin":
            return _margin_row(
                self.value, MARGIN_PRUNING_RATE, MARGIN_NOISE_SIGMA,
                self.num_samples, self.seed,
            )
        return _locality_row(
            self.value, self.config, LOCALITY_SEQ_LEN,
            LOCALITY_PRUNING_RATE, self.seed,
        )


#: Rows installed by :func:`prime` (computed in a worker process or
#: replayed from the unit cache); consulted by the studies before
#: simulating a row locally.
_PRIMED: Dict[Tuple, AblationRow] = {}


def plan(
    models: Sequence[str] = SLD_MODELS,
    interleaving_models: Sequence[str] = INTERLEAVING_MODELS,
    margins: Sequence[float] = DEFAULT_MARGINS,
    localities: Sequence[float] = DEFAULT_LOCALITIES,
    config: SprintConfig = S_SPRINT,
    seed: int = DEFAULT_SEED,
) -> List[AblationUnit]:
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    units = [
        AblationUnit(
            study="sld", value=m, config=config, num_samples=1, seed=seed
        )
        for m in models
    ]
    units.extend(
        AblationUnit(
            study="interleaving", value=m, config=L_SPRINT,
            num_samples=1, seed=seed,
        )
        for m in interleaving_models
    )
    units.extend(
        AblationUnit(
            study="margin", value=margin, config=config,
            num_samples=MARGIN_NUM_SAMPLES, seed=MARGIN_SEED,
        )
        for margin in margins
    )
    units.extend(
        AblationUnit(
            study="locality", value=locality, config=config,
            num_samples=1, seed=seed,
        )
        for locality in localities
    )
    return units


def prime(key: Tuple, row: AblationRow) -> None:
    """Install an externally computed row (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = row


def clear_primed() -> None:
    _PRIMED.clear()


def format_tables(
    sld: List[SldAblationRow],
    inter: List[InterleavingAblationRow],
    margin: List[MarginAblationRow],
    locality: List[LocalityAblationRow],
) -> str:
    lines = ["Ablation studies", "", "1. SLD reuse (traffic saving):"]
    for r in sld:
        lines.append(
            f"   {r.model:<10} {r.traffic_saving:6.2f}x less traffic with SLD"
        )
    lines.append("2. Token interleaving (cycle cost of sequential mapping):")
    for r in inter:
        lines.append(
            f"   {r.model:<10} sequential is "
            f"{r.slowdown_without_interleaving:5.2f}x slower"
        )
    lines.append("3. Threshold noise margin:")
    for r in margin:
        lines.append(
            f"   margin={r.margin:.2f}: pruning {r.pruning_rate:6.1%}, "
            f"accuracy {r.accuracy:.3f}"
        )
    lines.append("4. Locality sensitivity:")
    for r in locality:
        lines.append(
            f"   locality={r.locality:.1f}: overlap {r.measured_overlap:6.1%},"
            f" energy reduction {r.energy_reduction:6.2f}x"
        )
    return "\n".join(lines)


def run():
    """Aggregate runner-compatible entry point."""
    return (
        run_sld_ablation(),
        run_interleaving_ablation(),
        run_margin_ablation(),
        run_locality_ablation(),
    )


def format_table(rows) -> str:
    return format_tables(*rows)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
